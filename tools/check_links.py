#!/usr/bin/env python3
"""Checks relative links in the repository's markdown files.

Walks every *.md file (skipping build trees), extracts inline links and
images, and verifies that each relative target exists.  Absolute URLs
(http/https/mailto) and pure in-page anchors (#...) are not fetched; for
anchors into other local files only the file's existence is checked.

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link: file:line: target).
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", ".git", ".cache", "third_party"}
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_file(path: Path, root: Path):
    broken = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SCHEMES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (root / rel) if rel.startswith("/") else (path.parent / rel)
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    failures = 0
    checked = 0
    for path in markdown_files(root):
        checked += 1
        for lineno, target in check_file(path, root):
            print(f"{path}:{lineno}: broken link: {target}")
            failures += 1
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
