#!/usr/bin/env python3
"""Compare two BENCH_*.json files on pinned metrics; fail on regressions.

CI runs a fresh benchmark (usually a --quick run) and diffs it against the
baseline committed at the repo root.  Metrics that come from the simulated
timeline are deterministic — the same binary on any machine produces
bit-identical values — so those are compared exactly (the default);
wall-clock metrics get a tolerance.

Usage:
    bench_diff.py BASELINE CURRENT [options]

Options:
    --metric PATH[:DIR[:TOL]]   Compare the value at PATH in both files.
        PATH  dot-separated keys into the JSON ('pinned.m2_checksum';
              integer segments index arrays: 'module2.0.sim_time_s').
        DIR   which direction is better, one of
                equal   any change beyond TOL is a failure (default)
                higher  only a drop beyond TOL is a failure
                lower   only a rise beyond TOL is a failure
        TOL   allowed relative change in percent (default 0 — exact).
    --require PATH:OP:VALUE     Assert the CURRENT value alone, no
        baseline needed.  OP is one of ge, gt, le, lt, eq, true, false
        ('pinned.m2_overlap_comm_drop:ge:2').
    --default-tol PCT           Tolerance used when no --metric is given
        and every shared numeric leaf under 'pinned' is compared
        (default 0).

With no --metric arguments, every key under the 'pinned' object of the
baseline is compared in 'equal' mode; a pinned key missing from CURRENT is
a failure.

Exit status: 0 all checks pass, 1 any regression or violated requirement,
2 usage or file errors.
"""

import argparse
import json
import math
import sys


def lookup(doc, path):
    """Walks PATH into `doc`; returns (found, value)."""
    node = doc
    for part in path.split("."):
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return False, None
        elif isinstance(node, dict) and part in node:
            node = node[part]
        else:
            return False, None
    return True, node


def rel_change(base, cur):
    """Relative change of `cur` vs `base`, signed; inf when base == 0."""
    if base == cur:
        return 0.0
    if base == 0:
        return math.inf
    return (cur - base) / abs(base)


def check_metric(base_doc, cur_doc, path, direction, tol_pct):
    ok_b, base = lookup(base_doc, path)
    ok_c, cur = lookup(cur_doc, path)
    if not ok_b:
        return False, f"{path}: missing from baseline"
    if not ok_c:
        return False, f"{path}: missing from current"
    if isinstance(base, bool) or isinstance(cur, bool) or \
            not isinstance(base, (int, float)) or \
            not isinstance(cur, (int, float)):
        ok = base == cur
        return ok, f"{path}: {base!r} -> {cur!r}" + \
            ("" if ok else "  (non-numeric values must match)")
    change = rel_change(base, cur)
    pct = change * 100.0
    tol = tol_pct / 100.0
    if direction == "equal":
        bad = abs(change) > tol
    elif direction == "higher":  # higher is better: a drop is a regression
        bad = change < -tol
    else:  # lower is better: a rise is a regression
        bad = change > tol
    detail = (f"{path}: {base:g} -> {cur:g} ({pct:+.3g}%, "
              f"{direction}, tol {tol_pct:g}%)")
    return not bad, detail


def check_require(cur_doc, path, op, value):
    ok_c, cur = lookup(cur_doc, path)
    if not ok_c:
        return False, f"{path}: missing from current"
    if op in ("true", "false"):
        want = op == "true"
        ok = cur is want
        return ok, f"{path}: {cur!r} (require {op})"
    try:
        threshold = float(value)
    except ValueError:
        return False, f"{path}: bad required value {value!r}"
    if isinstance(cur, bool) or not isinstance(cur, (int, float)):
        return False, f"{path}: {cur!r} is not numeric (require {op} {value})"
    ops = {
        "ge": cur >= threshold,
        "gt": cur > threshold,
        "le": cur <= threshold,
        "lt": cur < threshold,
        "eq": cur == threshold,
    }
    if op not in ops:
        return False, f"{path}: unknown require op {op!r}"
    return ops[op], f"{path}: {cur:g} (require {op} {threshold:g})"


def parse_metric_spec(spec):
    parts = spec.split(":")
    path = parts[0]
    direction = parts[1] if len(parts) > 1 and parts[1] else "equal"
    if direction not in ("equal", "higher", "lower"):
        raise ValueError(f"bad direction {direction!r} in --metric {spec!r}")
    tol = float(parts[2]) if len(parts) > 2 else 0.0
    if len(parts) > 3:
        raise ValueError(f"too many fields in --metric {spec!r}")
    return path, direction, tol


def parse_require_spec(spec):
    parts = spec.split(":")
    if len(parts) == 2 and parts[1] in ("true", "false"):
        return parts[0], parts[1], ""
    if len(parts) != 3:
        raise ValueError(f"--require needs PATH:OP:VALUE, got {spec!r}")
    return parts[0], parts[1], parts[2]


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], add_help=True)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--metric", action="append", default=[],
                    metavar="PATH[:DIR[:TOL]]")
    ap.add_argument("--require", action="append", default=[],
                    metavar="PATH:OP:VALUE")
    ap.add_argument("--default-tol", type=float, default=0.0, metavar="PCT")
    args = ap.parse_args(argv)

    try:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        with open(args.current) as f:
            cur_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    try:
        metrics = [parse_metric_spec(s) for s in args.metric]
        requires = [parse_require_spec(s) for s in args.require]
    except ValueError as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    if not metrics:
        found, pinned = lookup(base_doc, "pinned")
        if not found or not isinstance(pinned, dict):
            print("bench_diff: no --metric given and baseline has no "
                  "'pinned' object", file=sys.stderr)
            return 2
        metrics = [(f"pinned.{k}", "equal", args.default_tol)
                   for k in pinned]

    failures = 0
    for path, direction, tol in metrics:
        ok, detail = check_metric(base_doc, cur_doc, path, direction, tol)
        print(f"{'ok  ' if ok else 'FAIL'}  {detail}")
        failures += 0 if ok else 1
    for path, op, value in requires:
        ok, detail = check_require(cur_doc, path, op, value)
        print(f"{'ok  ' if ok else 'FAIL'}  {detail}")
        failures += 0 if ok else 1

    total = len(metrics) + len(requires)
    print(f"bench_diff: {total - failures}/{total} checks passed"
          + (f", {failures} FAILED" if failures else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
