// dipdc — the command-line driver for every pedagogic module.
//
// This is the "assignment binary" a student would run while working
// through the modules: pick a module, a rank count, a machine shape, and
// the module's knobs, and get the experiment's numbers (optionally with a
// communication timeline).
//
//   dipdc module1 --ranks=8 --activity=pingpong --bytes=65536
//   dipdc module2 --ranks=8 --n=1024 --dim=90 --tile=128 --trace-cache
//   dipdc module3 --ranks=8 --n=100000 --dist=exponential --policy=histogram
//   dipdc module4 --ranks=16 --engine=rtree --nodes=2
//   dipdc module4 --ranks=9 --serve --qps=6000 --mix=hotspot
//   dipdc module5 --ranks=16 --k=32 --strategy=weighted
//   dipdc module6 --ranks=8 --cells=65536 --overlap
//   dipdc module7 --ranks=8 --tokens=1000000 --partition=hash
//   dipdc warmup  --ranks=8
//
// Global options: --ranks, --nodes, --seed, --timeline (print the ASCII
// trace), --transport-stats (print the transport fast-path counters),
// --trace-json=FILE (write a Chrome/Perfetto trace of the run — open it at
// https://ui.perfetto.dev or feed it to dipdc-trace), --trace-wall (add
// wall-clock stamps to the exported trace; off by default so exports stay
// bit-identical), --metrics (print the unified metrics registry),
// --metrics-csv=FILE (write the registry as CSV), --faults=<spec>
// (deterministic fault injection, e.g. "drop=0.1,dup=0.05,kill=3@40,
// retries=4"; grammar in minimpi/faults.hpp), --fault-seed=N (seed of
// the per-rank fault streams) and --backend=threads|shm|tcp (transport
// backend; simulated results are bit-identical on all three).  --help
// prints the usage summary.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dataio/chunk.hpp"
#include "dataio/dataset.hpp"
#include "kernels/dispatch.hpp"
#include "minimpi/backend.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/faults.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/stats.hpp"
#include "minimpi/trace.hpp"
#include "modules/comm/module1.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/kmeans/module5.hpp"
#include "modules/mapreduce/module7.hpp"
#include "modules/rangequery/module4.hpp"
#include "modules/rangequery/serving.hpp"
#include "modules/sort/module3.hpp"
#include "modules/stencil/module6.hpp"
#include "modules/warmup/warmup.hpp"
#include "obs/perfetto.hpp"
#include "support/args.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;
namespace pm = dipdc::perfmodel;
namespace io = dipdc::dataio;
using namespace dipdc::support;

namespace {

struct Common {
  int ranks = 4;
  int nodes = 1;
  std::uint64_t seed = 1;
  bool timeline = false;
  bool transport_stats = false;
  bool metrics = false;
  std::string metrics_csv;  // --metrics-csv=FILE, empty = don't write
  std::string trace_json;   // --trace-json=FILE, empty = don't write
  bool trace_wall = false;
  std::string faults;  // --faults spec, empty = no injection
  std::uint64_t fault_seed = 1;
  /// --backend=threads|shm|tcp: how ranks exchange bytes underneath the
  /// simulator (results are bit-identical either way; see DESIGN.md).
  mpi::BackendKind backend = mpi::BackendKind::kThreads;
  /// --kernel=auto|scalar|simd: compute-kernel ISA for modules 2/3/5
  /// (results are bit-identical either way; this is a perf knob).
  dipdc::kernels::Policy kernel = dipdc::kernels::Policy::kAuto;

  /// Anything that needs the event recorder armed?
  [[nodiscard]] bool wants_trace() const {
    return timeline || metrics || !metrics_csv.empty() ||
           !trace_json.empty();
  }
};

mpi::RuntimeOptions options_for(const Common& c) {
  mpi::RuntimeOptions opts;
  opts.backend.kind = c.backend;
  opts.machine = pm::MachineConfig::monsoon_like(c.nodes);
  opts.record_trace = c.wants_trace();
  opts.trace_wall_time = c.trace_wall;
  if (!c.faults.empty()) {
    mpi::parse_fault_spec(c.faults, opts.faults, opts.reliable);
    opts.faults.seed = c.fault_seed;
  }
  return opts;
}

/// The out-of-core knobs shared by modules 2 and 3: --stream switches a
/// module to its chunk-file pipeline, --chunk-rows sizes the chunks, and
/// --no-overlap degrades the rotation to issue-and-wait (the baseline the
/// overlap speedup is measured against).
struct StreamArgs {
  bool stream = false;
  std::size_t chunk_rows = 256;
  bool overlap = true;
};

StreamArgs stream_args(const ArgParser& args) {
  StreamArgs s;
  s.stream = args.get_bool("stream", false);
  s.chunk_rows = static_cast<std::size_t>(args.get_int("chunk-rows", 256));
  s.overlap = !args.get_bool("no-overlap", false);
  return s;
}

/// Spills `d` to a chunk file in the temp dir; removed on destruction.
struct SpilledDataset {
  SpilledDataset(const io::Dataset& d, std::size_t chunk_rows,
                 std::uint64_t seed)
      : path((std::filesystem::temp_directory_path() /
              ("dipdc_stream_" + std::to_string(seed) + "_" +
               std::to_string(d.size()) + "x" + std::to_string(d.dim()) +
               ".chunks"))
                 .string()) {
    io::dataset_to_chunks(d, path, chunk_rows);
  }
  ~SpilledDataset() { std::remove(path.c_str()); }
  std::string path;
};

/// Writes `text` to `path` ("-" = stdout); returns false on I/O failure.
bool write_file(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

void maybe_reports(const Common& c, const mpi::RunResult& result) {
  if (c.transport_stats) {
    std::printf("\n%s",
                mpi::transport_report(result.total_stats()).c_str());
  }
  if (c.metrics || !c.metrics_csv.empty()) {
    dipdc::obs::Registry reg = mpi::build_metrics(result);
    // Which compute-kernel ISA the run dispatched to (1 = SIMD, 0 =
    // scalar), so recorded metrics identify the code path they measured.
    reg.set_gauge("kernel.dispatch",
                  dipdc::kernels::resolve(c.kernel) ==
                          dipdc::kernels::Isa::kSimd
                      ? 1.0
                      : 0.0);
    if (c.metrics) std::printf("\n%s", reg.report().c_str());
    if (!c.metrics_csv.empty()) write_file(c.metrics_csv, reg.to_csv());
  }
  if (!c.trace_json.empty()) {
    write_file(c.trace_json,
               dipdc::obs::to_perfetto_json(mpi::make_trace(result)));
  }
  if (!c.timeline) return;
  std::printf("\n%s", mpi::render_timeline(result.trace, c.ranks,
                                           result.max_sim_time())
                          .c_str());
}

int run_module1(const ArgParser& args, const Common& c) {
  namespace m1 = dipdc::modules::comm1;
  const std::string activity = args.get("activity", "pingpong");
  const auto iterations = static_cast<int>(args.get_int("iterations", 100));
  const auto bytes_n =
      static_cast<std::size_t>(args.get_int("bytes", 1024));
  const auto messages = static_cast<int>(args.get_int("messages", 32));
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        if (activity == "pingpong") {
          const auto r = m1::ping_pong(comm, iterations, bytes_n);
          if (comm.rank() == 0) {
            std::printf("ping-pong: %d iterations of %s, mean one-way %s\n",
                        r.iterations, bytes(r.message_bytes).c_str(),
                        seconds(r.mean_one_way).c_str());
          }
        } else if (activity == "ring") {
          const auto r = m1::ring_nonblocking(comm, c.ranks);
          if (comm.rank() == 0) {
            std::printf("ring: token after %d rounds = %lld\n", r.rounds,
                        static_cast<long long>(r.token));
          }
        } else if (activity == "random") {
          const auto r = m1::random_comm_any_source(comm, messages, c.seed);
          if (comm.rank() == 0) {
            std::printf("random comm: %llu sent / %llu received per rank, "
                        "payloads %s\n",
                        static_cast<unsigned long long>(r.messages_sent),
                        static_cast<unsigned long long>(r.messages_received),
                        r.payloads_consistent ? "consistent" : "CORRUPT");
          }
        } else {
          if (comm.rank() == 0) {
            std::printf("unknown --activity '%s' "
                        "(pingpong|ring|random)\n",
                        activity.c_str());
          }
        }
      },
      options_for(c));
  maybe_reports(c, result);
  return 0;
}

int run_module2(const ArgParser& args, const Common& c) {
  namespace m2 = dipdc::modules::distmatrix;
  const auto n = static_cast<std::size_t>(args.get_int("n", 1024));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 90));
  m2::Config cfg;
  cfg.tile = static_cast<std::size_t>(args.get_int("tile", 0));
  cfg.trace_cache = args.get_bool("trace-cache", false);
  cfg.kernel = c.kernel;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, c.seed);
  const StreamArgs s = stream_args(args);
  m2::Result r;
  mpi::RunResult result;
  if (s.stream) {
    const SpilledDataset spill(d, s.chunk_rows, c.seed);
    result = mpi::run(
        c.ranks,
        [&](mpi::Comm& comm) {
          const auto res =
              m2::run_streamed(comm, spill.path, cfg, {s.overlap});
          if (comm.rank() == 0) r = res;
        },
        options_for(c));
  } else {
    result = mpi::run(
        c.ranks,
        [&](mpi::Comm& comm) {
          const auto res = m2::run_distributed(
              comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
          if (comm.rank() == 0) r = res;
        },
        options_for(c));
  }
  const std::string kernel =
      s.stream ? "streamed C=" + std::to_string(s.chunk_rows) +
                     (s.overlap ? "" : " no-overlap")
      : cfg.tile == 0 ? "row-wise"
                      : "tiled T=" + std::to_string(cfg.tile);
  std::printf("distance matrix %zux%zu (%zu-D), %s: sim time %s, "
              "checksum %.3e\n",
              n, n, dim, kernel.c_str(), seconds(r.sim_time).c_str(),
              r.checksum);
  if (cfg.trace_cache) {
    std::printf("L1 miss rate %s, DRAM traffic/rank %s\n",
                percent(r.miss_rate).c_str(),
                bytes(static_cast<std::uint64_t>(r.dram_bytes)).c_str());
  }
  maybe_reports(c, result);
  return 0;
}

int run_module3(const ArgParser& args, const Common& c) {
  namespace m3 = dipdc::modules::distsort;
  const auto n = static_cast<std::size_t>(args.get_int("n", 100000));
  const bool exponential = args.get("dist", "uniform") == "exponential";
  m3::Config cfg;
  cfg.policy = args.get("policy", "width") == "histogram"
                   ? m3::SplitterPolicy::kHistogram
                   : m3::SplitterPolicy::kEqualWidth;
  cfg.lo = 0.0;
  cfg.hi = 10.0;
  cfg.kernel = c.kernel;
  const bool elastic_on = args.get_bool("repartition", false);
  const double threshold = args.get_double("imbalance-threshold", 1.10);
  const StreamArgs s = stream_args(args);
  m3::Result r;
  mpi::RunResult result;
  if (s.stream) {
    if (cfg.policy != m3::SplitterPolicy::kEqualWidth) {
      std::fprintf(stderr,
                   "error: --stream needs --policy=width (equal-width "
                   "splitters are the only data-independent policy)\n");
      return 2;
    }
    // The same keys the in-core run would generate, spilled rank-major
    // into a chunk file: the streamed sort buckets the identical multiset.
    std::vector<double> keys;
    keys.reserve(n * static_cast<std::size_t>(c.ranks));
    for (int rank = 0; rank < c.ranks; ++rank) {
      auto rng = make_stream(c.seed, static_cast<std::uint64_t>(rank));
      for (std::size_t i = 0; i < n; ++i) {
        keys.push_back(exponential ? std::min(rng.exponential(1.0), 9.999)
                                   : rng.uniform(0.0, 10.0));
      }
    }
    const SpilledDataset spill(io::Dataset(1, std::move(keys)), s.chunk_rows,
                               c.seed);
    result = mpi::run(
        c.ranks,
        [&](mpi::Comm& comm) {
          std::vector<double> sorted;
          const auto res = m3::streamed_bucket_sort(comm, spill.path, cfg,
                                                    sorted, {s.overlap});
          if (comm.rank() == 0) r = res;
        },
        options_for(c));
  } else {
    result = mpi::run(
        c.ranks,
        [&](mpi::Comm& comm) {
          auto rng = make_stream(c.seed,
                                 static_cast<std::uint64_t>(comm.rank()));
          std::vector<double> local(n);
          for (auto& v : local) {
            v = exponential ? std::min(rng.exponential(1.0), 9.999)
                            : rng.uniform(0.0, 10.0);
          }
          m3::Result res;
          if (elastic_on) {
            m3::ElasticConfig ecfg;
            ecfg.imbalance_threshold = threshold;
            res = m3::elastic_bucket_sort(comm, std::move(local), cfg, ecfg);
          } else {
            res = m3::distributed_bucket_sort(comm, local, cfg);
          }
          if (comm.rank() == 0) r = res;
        },
        options_for(c));
  }
  std::printf("bucket sort, %zu %s keys/rank%s, %s splitters: sorted=%s "
              "imbalance=%.2f sim time %s\n",
              n, exponential ? "exponential" : "uniform",
              s.stream ? " (streamed)" : "",
              cfg.policy == m3::SplitterPolicy::kHistogram ? "histogram"
                                                           : "equal-width",
              r.globally_sorted ? "yes" : "NO", r.imbalance,
              seconds(r.sim_time).c_str());
  maybe_reports(c, result);
  return 0;
}

/// Module 4, serving mode (--serve): the sharded range-query service
/// under sustained open-loop load (modules/rangequery/serving.hpp).
int run_module4_serve(const ArgParser& args, const Common& c) {
  namespace m4 = dipdc::modules::rangequery;
  m4::ServeConfig cfg;
  cfg.n_points = static_cast<std::size_t>(args.get_int("n", 50000));
  cfg.side = args.get_double("side", 4.0);
  cfg.qps = args.get_double("qps", 4000.0);
  cfg.duration = args.get_double("duration", 1.0);
  cfg.mix = m4::parse_mix(args.get("mix", "uniform"));
  cfg.hot_fraction = args.get_double("hot-fraction", 0.9);
  cfg.zipf_s = args.get_double("zipf", 1.1);
  cfg.batch = static_cast<std::size_t>(args.get_int("batch", 16));
  cfg.queue_cap = static_cast<std::size_t>(args.get_int("queue-cap", 256));
  cfg.pipeline = static_cast<std::size_t>(args.get_int("pipeline", 2));
  cfg.grid = static_cast<std::size_t>(args.get_int("grid", 0));
  cfg.seed = c.seed;
  cfg.kernel = c.kernel;
  m4::ServeResult r;
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        const auto res = m4::serve(comm, cfg);
        if (comm.rank() == 0) r = res;
      },
      options_for(c));
  std::printf(
      "serving (%s mix, %d shards, %dx%d grid): offered %llu q at %.0f "
      "q/s, admitted %llu, rejected %llu, completed %llu in %llu "
      "batches\n",
      m4::mix_name(cfg.mix), r.shards, r.grid_side, r.grid_side,
      static_cast<unsigned long long>(r.offered), cfg.qps,
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.batches));
  std::printf(
      "  achieved %.0f q/s, latency p50 %s p99 %s max %s, %llu matches, "
      "%s entries checked, shard imbalance %.2f\n",
      r.achieved_qps, seconds(r.p50_latency).c_str(),
      seconds(r.p99_latency).c_str(), seconds(r.max_latency).c_str(),
      static_cast<unsigned long long>(r.total_matches),
      count(r.entries_checked).c_str(), r.shard_imbalance);
  maybe_reports(c, result);
  return 0;
}

int run_module4(const ArgParser& args, const Common& c) {
  namespace m4 = dipdc::modules::rangequery;
  namespace sp = dipdc::spatial;
  if (args.get_bool("serve", false)) return run_module4_serve(args, c);
  const auto n = static_cast<std::size_t>(args.get_int("n", 50000));
  const auto nq = static_cast<std::size_t>(args.get_int("queries", 512));
  const std::string engine_name = args.get("engine", "brute");
  m4::Config cfg;
  cfg.engine = engine_name == "rtree"      ? m4::Engine::kRTree
               : engine_name == "quadtree" ? m4::Engine::kQuadTree
               : engine_name == "kdtree"   ? m4::Engine::kKdTree
                                           : m4::Engine::kBruteForce;
  Xoshiro256 rng(c.seed);
  std::vector<sp::Point2> points(n);
  for (auto& p : points) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  const auto queries = m4::make_query_workload(nq, 100.0, 8.0, c.seed + 1);
  m4::Result r;
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        const auto res = m4::run_distributed(comm, points, queries, cfg);
        if (comm.rank() == 0) r = res;
      },
      options_for(c));
  std::printf("range queries (%s): %llu matches, %s entries checked, "
              "sim time %s\n",
              engine_name.c_str(),
              static_cast<unsigned long long>(r.total_matches),
              count(r.entries_checked).c_str(), seconds(r.sim_time).c_str());
  maybe_reports(c, result);
  return 0;
}

int run_module5(const ArgParser& args, const Common& c) {
  namespace m5 = dipdc::modules::kmeans;
  const auto n = static_cast<std::size_t>(args.get_int("n", 50000));
  const auto k = static_cast<std::size_t>(args.get_int("k", 8));
  m5::Config cfg;
  cfg.k = k;
  cfg.strategy = args.get("strategy", "weighted") == "explicit"
                     ? m5::Strategy::kExplicitAssignments
                     : m5::Strategy::kWeightedMeans;
  cfg.kernel = c.kernel;
  const bool elastic_on = args.get_bool("repartition", false);
  const double threshold = args.get_double("imbalance-threshold", 1.25);
  const auto data = io::generate_clusters(n, 2, k, 1.0, 0.0, 100.0, c.seed);
  m5::Result r;
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        m5::Result res;
        if (elastic_on) {
          m5::ElasticConfig ecfg;
          ecfg.imbalance_threshold = threshold;
          res = m5::elastic(comm, comm.rank() == 0 ? data.data : io::Dataset{},
                            cfg, ecfg);
        } else {
          res = m5::distributed(
              comm, comm.rank() == 0 ? data.data : io::Dataset{}, cfg);
        }
        if (comm.rank() == 0) r = res;
      },
      options_for(c));
  std::printf("k-means k=%zu (%s): %d iterations, inertia %.1f, compute %s "
              "/ comm %s, loop volume %s\n",
              k,
              cfg.strategy == m5::Strategy::kWeightedMeans ? "weighted means"
                                                           : "explicit",
              r.iterations, r.inertia, seconds(r.compute_time).c_str(),
              seconds(r.comm_time).c_str(), bytes(r.comm_bytes).c_str());
  maybe_reports(c, result);
  return 0;
}

int run_module6(const ArgParser& args, const Common& c) {
  namespace m6 = dipdc::modules::stencil;
  m6::Config cfg;
  cfg.global_cells = static_cast<std::size_t>(args.get_int("cells", 65536));
  cfg.iterations = static_cast<int>(args.get_int("iterations", 64));
  cfg.halo_width = static_cast<int>(args.get_int("halo", 1));
  cfg.exchange = args.get_bool("overlap", false) ? m6::Exchange::kOverlapped
                                                 : m6::Exchange::kBlocking;
  m6::Result r;
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        const auto res = m6::run_distributed(comm, cfg);
        if (comm.rank() == 0) r = res;
      },
      options_for(c));
  std::printf("stencil %zu cells x %d sweeps, halo %d, %s: checksum %.6f, "
              "sim time %s (comm %s)\n",
              cfg.global_cells, cfg.iterations, cfg.halo_width,
              cfg.exchange == m6::Exchange::kOverlapped ? "overlapped"
                                                        : "blocking",
              r.checksum, seconds(r.sim_time).c_str(),
              seconds(r.comm_time).c_str());
  maybe_reports(c, result);
  return 0;
}

int run_module7(const ArgParser& args, const Common& c) {
  namespace m7 = dipdc::modules::mapreduce;
  const auto n = static_cast<std::size_t>(args.get_int("tokens", 1000000));
  const auto vocab =
      static_cast<std::uint64_t>(args.get_int("vocab", 1 << 15));
  m7::Config cfg;
  cfg.vocabulary = vocab;
  cfg.map_side_combine = !args.get_bool("no-combine", false);
  cfg.partitioning = args.get("partition", "hash") == "range"
                         ? m7::Partitioning::kRange
                         : m7::Partitioning::kHash;
  const auto tokens =
      io::generate_zipf_tokens(n, vocab, args.get_double("zipf", 1.1),
                               c.seed);
  m7::Result r;
  const auto result = mpi::run(
      c.ranks,
      [&](mpi::Comm& comm) {
        const auto parts = io::block_partition(
            tokens.size(), static_cast<std::size_t>(comm.size()));
        const auto [b, e] = parts[static_cast<std::size_t>(comm.rank())];
        const auto res = m7::word_count(
            comm, {tokens.data() + b, e - b}, cfg);
        if (comm.rank() == 0) r = res;
      },
      options_for(c));
  std::printf("word count, %zu tokens: total %llu, shuffle %llu tuples "
              "(rank 0), reducer imbalance %.2f, sim time %s\n",
              n, static_cast<unsigned long long>(r.global_total),
              static_cast<unsigned long long>(r.shuffle_tuples_sent),
              r.reducer_imbalance, seconds(r.sim_time).c_str());
  maybe_reports(c, result);
  return 0;
}

int run_warmup(const ArgParser& /*args*/, const Common& c) {
  namespace wu = dipdc::modules::warmup;
  const auto result = mpi::run(
      c.ranks,
      [](mpi::Comm& comm) {
        const auto reports = wu::run_all(comm);
        if (comm.rank() == 0) {
          for (const auto& r : reports) {
            std::printf("  [%s] %-16s %s\n", r.passed ? "PASS" : "FAIL",
                        r.name.c_str(), r.detail.c_str());
          }
        }
      },
      options_for(c));
  maybe_reports(c, result);
  return 0;
}

void usage() {
  std::printf(
      "usage: dipdc <module1|module2|module3|module4|module5|module6|"
      "module7|warmup> [options]\n"
      "global options:\n"
      "  --ranks=N            ranks to simulate (default 4)\n"
      "  --nodes=N            nodes in the machine model (default 1)\n"
      "  --seed=N             dataset/workload seed (default 1)\n"
      "  --timeline           print the ASCII communication timeline\n"
      "  --transport-stats    print the transport fast-path counters\n"
      "  --metrics            print the unified metrics registry\n"
      "  --metrics-csv=FILE   write the metrics registry as CSV "
      "('-' = stdout)\n"
      "  --trace-json=FILE    write a Chrome/Perfetto trace "
      "('-' = stdout);\n"
      "                       open at https://ui.perfetto.dev or analyze "
      "with dipdc-trace\n"
      "  --trace-wall         add wall-clock stamps to the exported trace\n"
      "                       (off by default: zeroed stamps keep exports "
      "bit-identical)\n"
      "  --faults=SPEC        deterministic fault injection\n"
      "  --fault-seed=N       seed of the per-rank fault streams "
      "(default 1)\n"
      "  --backend=B          transport backend: threads|shm|tcp "
      "(default threads;\n"
      "                       shm forks a router process, tcp uses loopback "
      "sockets;\n"
      "                       simulated results are bit-identical on all "
      "three)\n"
      "  --repartition        modules 3/5: run on the elastic container "
      "(weight-driven\n"
      "                       rebalancing; with --faults=kill survivors "
      "shrink and\n"
      "                       continue on the smaller communicator)\n"
      "  --imbalance-threshold=X  repartition when max/mean weighted load "
      "exceeds X\n"
      "                       (module3 default 1.10, module5 default 1.25)\n"
      "  --kernel=P           compute-kernel ISA for modules 2/3/5: "
      "auto|scalar|simd\n"
      "                       (default auto; DIPDC_KERNEL env works too; "
      "results are\n"
      "                       bit-identical either way)\n"
      "  --help               this summary\n"
      "fault spec: drop=P dup=P delay=P[:S] kill=R[@N] retries=K timeout=S\n"
      "            (comma-separated, e.g. --faults=drop=0.1,retries=4)\n"
      "per-module options (defaults in parentheses):\n"
      "  module1: --activity=pingpong|ring|random --iterations=N(100)\n"
      "           --bytes=N(1024) --messages=N(32)\n"
      "  module2: --n=N(1024) --dim=D(90) --tile=T(0) --trace-cache\n"
      "  module3: --n=N(100000) --dist=uniform|exponential "
      "--policy=width|histogram\n"
      "  modules 2/3 out-of-core (dataset spilled to a chunk file; only "
      "rank 0\n"
      "           touches the disk, chunks stream through nonblocking "
      "broadcasts):\n"
      "           --stream --chunk-rows=N(256) --no-overlap (issue-and-wait "
      "baseline)\n"
      "  module4: --n=N(50000) --queries=N(512) "
      "--engine=brute|rtree|quadtree|kdtree\n"
      "           --serve: sharded serving mode under sustained load; "
      "rank 0 drives,\n"
      "           the rest hold grid shards: --qps=Q(4000) "
      "--duration=S(1.0)\n"
      "           --mix=uniform|hotspot|zipf --hot-fraction=P(0.9) "
      "--zipf=S(1.1)\n"
      "           --batch=N(16) --queue-cap=N(256) --pipeline=N(2) "
      "--grid=G(auto)\n"
      "           --side=W(4.0)\n"
      "  module5: --n=N(50000) --k=K(8) --strategy=weighted|explicit\n"
      "  module6: --cells=N(65536) --iterations=N(64) --halo=W(1) "
      "--overlap\n"
      "  module7: --tokens=N(1000000) --vocab=N(32768) --zipf=S(1.1)\n"
      "           --partition=hash|range --no-combine\n"
      "  warmup:  (no extra options)\n");
}

/// Every option any module (or the driver itself) understands.  Unknown
/// options abort the run up front: a misspelled flag silently falling back
/// to its default is the worst kind of experiment error.
const std::vector<std::string>& known_options() {
  static const std::vector<std::string> kKnown = {
      // global
      "ranks", "nodes", "seed", "timeline", "transport-stats", "metrics",
      "metrics-csv", "trace-json", "trace-wall", "faults", "fault-seed",
      "backend", "kernel", "repartition", "imbalance-threshold", "help",
      // module1
      "activity", "iterations", "bytes", "messages",
      // module2
      "n", "dim", "tile", "trace-cache",
      // modules 2/3 out-of-core
      "stream", "chunk-rows", "no-overlap",
      // module3
      "dist", "policy",
      // module4
      "queries", "engine",
      // module4 --serve
      "serve", "qps", "duration", "mix", "hot-fraction", "batch",
      "queue-cap", "pipeline", "grid", "side",
      // module5
      "k", "strategy",
      // module6
      "cells", "halo", "overlap",
      // module7
      "tokens", "vocab", "no-combine", "partition", "zipf",
  };
  return kKnown;
}

/// Returns false (after printing to stderr) when an unrecognized option is
/// present.
bool validate_options(const ArgParser& args) {
  bool ok = true;
  for (const std::string& key : args.keys()) {
    const auto& known = known_options();
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    const std::string hint = closest_match(key, known);
    if (hint.empty()) {
      std::fprintf(stderr, "error: unrecognized option --%s\n", key.c_str());
    } else {
      std::fprintf(stderr,
                   "error: unrecognized option --%s (did you mean --%s?)\n",
                   key.c_str(), hint.c_str());
    }
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (!validate_options(args)) return 2;
  if (args.get_bool("help", false) || args.command() == "help") {
    usage();
    return 0;
  }
  Common c;
  c.ranks = static_cast<int>(args.get_int("ranks", 4));
  c.nodes = static_cast<int>(args.get_int("nodes", 1));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  c.timeline = args.get_bool("timeline", false);
  c.transport_stats = args.get_bool("transport-stats", false);
  c.metrics = args.get_bool("metrics", false);
  c.metrics_csv = args.get("metrics-csv");
  c.trace_json = args.get("trace-json");
  c.trace_wall = args.get_bool("trace-wall", false);
  c.faults = args.get("faults");
  c.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  const std::string backend_name = args.get("backend", "threads");
  if (!mpi::parse_backend_kind(backend_name, &c.backend)) {
    std::fprintf(stderr,
                 "error: unknown --backend '%s' (threads|shm|tcp)\n",
                 backend_name.c_str());
    return 2;
  }
  try {
    c.kernel = dipdc::kernels::parse_policy(args.get("kernel", "auto"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    const std::string& cmd = args.command();
    int rc = 0;
    if (cmd == "module1") rc = run_module1(args, c);
    else if (cmd == "module2") rc = run_module2(args, c);
    else if (cmd == "module3") rc = run_module3(args, c);
    else if (cmd == "module4") rc = run_module4(args, c);
    else if (cmd == "module5") rc = run_module5(args, c);
    else if (cmd == "module6") rc = run_module6(args, c);
    else if (cmd == "module7") rc = run_module7(args, c);
    else if (cmd == "warmup") rc = run_warmup(args, c);
    else {
      usage();
      return cmd.empty() ? 0 : 1;
    }
    for (const auto& key : args.unused()) {
      std::printf("warning: unused option --%s\n", key.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
