// dipdc-trace — offline analyzer for Perfetto traces written by
// `dipdc --trace-json=FILE` (or any tool that uses obs::to_perfetto_json).
//
//   dipdc module5 --ranks=8 --k=32 --trace-json=m5.json
//   dipdc-trace m5.json
//
// Reports, from the simulated timeline alone:
//  - the makespan and the critical path through the send/recv
//    happens-before graph, attributed per category (how much of the
//    end-to-end time is communication vs compute vs untracked local work);
//  - a per-rank breakdown (comm / compute / idle / untracked / tail);
//  - the top-k slowest collective spans.
//
// Options: --top=N (collectives to list, default 5), --path (print every
// step of the critical path), --help.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/event.hpp"
#include "obs/perfetto.hpp"
#include "support/args.hpp"

namespace obs = dipdc::obs;
using dipdc::support::ArgParser;
using dipdc::support::closest_match;

namespace {

void usage() {
  std::printf(
      "usage: dipdc-trace <trace.json> [options]\n"
      "analyze a Perfetto trace written by 'dipdc --trace-json=FILE'\n"
      "options:\n"
      "  --top=N   list the N slowest collective spans (default 5)\n"
      "  --path    print every step of the critical path\n"
      "  --help    this summary\n");
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

const char* via_name(obs::CriticalPath::Via via) {
  switch (via) {
    case obs::CriticalPath::Via::kEnd: return "end";
    case obs::CriticalPath::Via::kLocal: return "local";
    case obs::CriticalPath::Via::kMessage: return "message";
    case obs::CriticalPath::Via::kCollective: return "collective";
  }
  return "?";
}

double pct(double part, double whole) {
  return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

void print_critical_path(const obs::CriticalPath& cp, bool full_path) {
  std::printf("critical path (%zu steps, ends on rank %d):\n",
              cp.steps.size(), cp.end_rank);
  for (std::size_t c = 0; c < obs::kCategoryCount; ++c) {
    const double s = cp.by_category[c];
    if (s <= 0.0) continue;
    std::printf("  %-11s %12.3f us  %5.1f%%\n",
                std::string(obs::category_name(
                                static_cast<obs::Category>(c)))
                    .c_str(),
                s * 1e6, pct(s, cp.makespan));
  }
  if (cp.untracked > 0.0) {
    std::printf("  %-11s %12.3f us  %5.1f%%\n", "untracked",
                cp.untracked * 1e6, pct(cp.untracked, cp.makespan));
  }
  std::printf("  comm share of critical path: %.1f%%\n",
              100.0 * cp.comm_share());
  if (!full_path) return;
  std::printf("  steps (chronological):\n");
  for (const obs::CriticalPath::Step& s : cp.steps) {
    std::printf("    r%-3d %-14s [%10.3f, %10.3f] us  +%.3f us  via %s\n",
                s.event->rank, std::string(s.event->name).c_str(),
                s.event->t_start * 1e6, s.event->t_end * 1e6,
                s.attributed * 1e6, via_name(s.via));
  }
}

void print_breakdown(const obs::Trace& trace) {
  const std::vector<obs::RankBreakdown> rows = obs::rank_breakdown(trace);
  std::printf(
      "per-rank breakdown (us):\n"
      "  rank        comm     compute        idle   untracked        tail\n");
  for (const obs::RankBreakdown& b : rows) {
    std::printf("  %-4d %11.3f %11.3f %11.3f %11.3f %11.3f\n", b.rank,
                b.comm * 1e6, b.compute * 1e6, b.idle * 1e6,
                b.untracked * 1e6, b.tail * 1e6);
  }
}

void print_collectives(const obs::Trace& trace, std::size_t k) {
  const std::vector<const obs::Event*> top = obs::top_collectives(trace, k);
  if (top.empty()) return;
  std::printf("slowest collectives:\n");
  for (const obs::Event* e : top) {
    std::printf("  %-14s r%-3d %10.3f us  at %.3f us  (%zu bytes)\n",
                std::string(e->name).c_str(), e->rank,
                (e->t_end - e->t_start) * 1e6, e->t_start * 1e6, e->bytes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  static const std::vector<std::string> known = {"top", "path", "help"};
  bool ok = true;
  for (const std::string& opt : args.keys()) {
    if (std::find(known.begin(), known.end(), opt) != known.end()) continue;
    std::fprintf(stderr, "error: unknown option --%s\n", opt.c_str());
    const std::string hint = closest_match(opt, known);
    if (!hint.empty()) {
      std::fprintf(stderr, "  did you mean --%s?\n", hint.c_str());
    }
    ok = false;
  }
  if (!ok) return 2;
  if (args.get_bool("help", false)) {
    usage();
    return 0;
  }
  const std::string path = args.command();
  if (path.empty()) {
    usage();
    return 2;
  }
  const auto top = static_cast<std::size_t>(args.get_int("top", 5));
  const bool full_path = args.get_bool("path", false);

  try {
    const obs::Trace trace = obs::parse_perfetto_json(read_file(path));
    std::printf("%s: %d ranks, %zu events, makespan %.3f us\n", path.c_str(),
                trace.nranks, trace.events.size(), trace.max_time() * 1e6);
    const obs::CriticalPath cp = obs::critical_path(trace);
    print_critical_path(cp, full_path);
    print_breakdown(trace);
    print_collectives(trace, top);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
