// dipdc-fuzz — property-based conformance fuzzer for minimpi.
//
// Generates random-but-valid multi-rank communication programs, executes
// them on the real threaded runtime, and diffs every observable (receive
// payloads, collective results, CommStats, trace shape) against a
// single-threaded sequential oracle.  A failing seed is automatically
// shrunk with ddmin and persisted as a replayable seed file plus a
// standalone C++ repro.
//
//   dipdc-fuzz --seeds=1000                  # fuzz seeds 1..1000
//   dipdc-fuzz --seeds=500 --seed=7000       # fuzz seeds 7000..7499
//   dipdc-fuzz --smoke                       # quick PR-gate preset
//   dipdc-fuzz --seed=42 --print             # one seed, list the program
//   dipdc-fuzz --replay=repro-42.seed        # re-run a persisted failure
//
// Options: --seeds=N (count), --seed=S (base seed), --ranks=R (max world
// size), --ops=N (target events per program), --max-bytes=B,
// --faults=auto|none|<spec> (default auto: a random plan is drawn per
// seed), --fault-seed=F, --container=0 (no elastic-container events),
// --icollectives=0 (no nonblocking-collective events),
// --shrink=0 (skip minimisation), --out=DIR (where
// repro artifacts go), --keep-going (do not stop at the first failure),
// --print (list each failing program), --replay=FILE, --backend=B (run on
// the threads/shm/tcp transport), --cross-backend (every seed on all three
// backends with bit-identical digests), --smoke.
//
// Exit codes: 0 all seeds clean, 1 mismatch found (or replay failed),
// 2 bad command line.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/check.hpp"
#include "fuzz/execute.hpp"
#include "fuzz/generate.hpp"
#include "fuzz/program.hpp"
#include "fuzz/seedfile.hpp"
#include "fuzz/shrink.hpp"
#include "minimpi/backend.hpp"
#include "support/args.hpp"

namespace fuzz = dipdc::fuzz;
namespace mpi = dipdc::minimpi;
using dipdc::support::ArgParser;
using dipdc::support::closest_match;

namespace {

void usage() {
  std::printf(
      "usage: dipdc-fuzz [options]\n"
      "options:\n"
      "  --seeds=N         seeds to fuzz (default 100)\n"
      "  --seed=S          base seed; with no --seeds, runs just this one\n"
      "  --ranks=R         maximum world size per program\n"
      "  --ops=N           target events per generated program\n"
      "  --max-bytes=B     maximum message payload size\n"
      "  --faults=MODE     auto (default: random plan per seed), none, or a\n"
      "                    fault spec: drop=P dup=P delay=P[:S] kill=R[@N]\n"
      "                    retries=K timeout=S (comma-separated)\n"
      "  --fault-seed=F    seed of the per-rank fault streams (0 = derive\n"
      "                    from the program seed)\n"
      "  --container=0     leave elastic-container events (create /\n"
      "                    set_weight / repartition) out of generated\n"
      "                    programs (default on)\n"
      "  --icollectives=0  leave nonblocking-collective events (ibcast /\n"
      "                    ireduce / iallreduce / iallgatherv with\n"
      "                    deferred waits) out of generated programs\n"
      "                    (default on)\n"
      "  --shrink=0        skip ddmin minimisation of failing programs\n"
      "  --out=DIR         where repro-<seed>.seed/.cpp artifacts go "
      "(default .)\n"
      "  --keep-going      do not stop at the first failure\n"
      "  --print           list each failing (or replayed) program\n"
      "  --replay=FILE     re-run a persisted .seed failure file\n"
      "  --backend=B       transport backend: threads (default), shm, tcp\n"
      "  --cross-backend   run every seed on all three backends and require\n"
      "                    bit-identical digests (overrides --backend)\n"
      "  --smoke           quick PR-gate preset (40 seeds, small programs)\n"
      "  --help            this summary\n"
      "environment:\n"
      "  DIPDC_FUZZ_TRACE=1  print each program before executing it (useful\n"
      "                      when a seed hangs before the checker can "
      "report)\n"
      "exit codes: 0 all seeds clean, 1 mismatch found (or replay failed),\n"
      "            2 bad command line\n");
}

struct Config {
  long seeds = 100;
  std::uint64_t base_seed = 1;
  fuzz::GenConfig gen;
  bool do_shrink = true;
  bool keep_going = false;
  bool print = false;
  std::string out_dir = ".";
  std::string replay_file;
  mpi::BackendKind backend = mpi::BackendKind::kThreads;
  bool cross_backend = false;
};

/// Failure predicate for the shrinker.  Wildcard and fault bugs can be
/// scheduling-dependent, so a candidate is run a few times and counts as
/// failing if any run fails.  In cross-backend mode the candidate fails if
/// any backend leg fails (or the digests diverge) in any repeat.
bool still_fails(const Config& cfg, const fuzz::Program& p, int repeats) {
  for (int i = 0; i < repeats; ++i) {
    if (cfg.cross_backend) {
      if (!fuzz::check_across_backends(p).ok) return true;
      continue;
    }
    const fuzz::ExecutionOutcome out = fuzz::execute(p);
    if (!fuzz::check(p, out).ok) return true;
  }
  return false;
}

int shrink_repeats(const fuzz::Program& p) {
  const bool racy = p.has_any_source_window() || !p.fault_spec.empty();
  return racy ? 3 : 1;
}

/// Shrinks a failing program and writes <out>/repro-<seed>.seed plus
/// <out>/repro-<seed>.cpp.
void handle_failure(const Config& cfg, const fuzz::Program& failing,
                    const std::string& summary) {
  std::printf("FAIL seed=%llu fault_seed=%llu ranks=%d ops=%zu%s%s\n",
              static_cast<unsigned long long>(failing.seed),
              static_cast<unsigned long long>(failing.fault_seed),
              failing.nranks, failing.op_count(),
              failing.fault_spec.empty() ? "" : " faults=",
              failing.fault_spec.c_str());
  std::printf("%s", summary.c_str());

  fuzz::Program minimal = failing;
  bool faults_dropped = false;
  if (cfg.do_shrink) {
    const int repeats = shrink_repeats(failing);
    const fuzz::ShrinkResult shrunk = fuzz::shrink(
        failing, [&](const fuzz::Program& cand) {
          return still_fails(cfg, cand, repeats);
        });
    minimal = shrunk.program;
    faults_dropped = shrunk.faults_dropped;
    std::printf("shrunk: %zu -> %zu ops (%d evaluations)\n",
                failing.op_count(), minimal.op_count(), shrunk.evaluations);
  }
  if (cfg.print) std::printf("%s", fuzz::describe(minimal).c_str());

  std::error_code ec;
  std::filesystem::create_directories(cfg.out_dir, ec);
  const std::string stem =
      cfg.out_dir + "/repro-" + std::to_string(failing.seed);
  fuzz::save_seed(stem + ".seed",
                  fuzz::to_seed_spec(minimal, cfg.gen, faults_dropped));
  {
    const std::string cpp = fuzz::to_cpp(minimal);
    std::FILE* f = std::fopen((stem + ".cpp").c_str(), "w");
    if (f != nullptr) {
      std::fwrite(cpp.data(), 1, cpp.size(), f);
      std::fclose(f);
    }
  }
  std::printf("repro written: %s.seed, %s.cpp\n", stem.c_str(), stem.c_str());
}

int run_replay(const Config& cfg) {
  const fuzz::SeedSpec spec = fuzz::load_seed(cfg.replay_file);
  fuzz::Program p = spec.materialize();
  p.options.backend.kind = cfg.backend;
  std::printf("replay %s: seed=%llu ranks=%d ops=%zu%s%s\n",
              cfg.replay_file.c_str(),
              static_cast<unsigned long long>(p.seed), p.nranks, p.op_count(),
              p.fault_spec.empty() ? "" : " faults=", p.fault_spec.c_str());
  if (cfg.print) std::printf("%s", fuzz::describe(p).c_str());
  if (cfg.cross_backend) {
    const fuzz::BackendEquivalence eq = fuzz::check_across_backends(p);
    if (eq.ok) {
      std::printf("replay PASSED on every backend\n");
      return 0;
    }
    std::printf("replay FAILED (reproduced):\n%s", eq.summary().c_str());
    return 1;
  }
  const fuzz::ExecutionOutcome out = fuzz::execute(p);
  const fuzz::CheckResult result = fuzz::check(p, out);
  if (result.ok) {
    std::printf("replay PASSED (the bug this seed captured appears fixed)\n");
    return 0;
  }
  std::printf("replay FAILED (reproduced):\n%s", result.summary().c_str());
  return 1;
}

int run_fuzz(const Config& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  long failures = 0;
  long executed = 0;
  for (long i = 0; i < cfg.seeds; ++i) {
    const std::uint64_t seed = cfg.base_seed + static_cast<std::uint64_t>(i);
    fuzz::Program p = fuzz::generate(seed, cfg.gen);
    p.options.backend.kind = cfg.backend;
    ++executed;
    if (cfg.cross_backend) {
      const fuzz::BackendEquivalence eq = fuzz::check_across_backends(p);
      if (!eq.ok) {
        ++failures;
        handle_failure(cfg, p, eq.summary());
        if (!cfg.keep_going) break;
      }
      continue;
    }
    const fuzz::ExecutionOutcome out = fuzz::execute(p);
    const fuzz::CheckResult result = fuzz::check(p, out);
    if (!result.ok) {
      ++failures;
      handle_failure(cfg, p, result.summary());
      if (!cfg.keep_going) break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  std::printf("%ld seeds, %ld failure%s, %.2f s (%.1f seeds/s)\n", executed,
              failures, failures == 1 ? "" : "s", secs,
              secs > 0 ? static_cast<double>(executed) / secs : 0.0);
  return failures > 0 ? 1 : 0;
}

const std::vector<std::string>& known_options() {
  static const std::vector<std::string> kKnown = {
      "seeds",      "seed",   "ranks",      "ops",  "max-bytes",
      "faults",     "fault-seed", "container", "icollectives", "shrink",
      "out",
      "keep-going", "print",  "replay", "backend", "cross-backend",
      "smoke",      "help",
  };
  return kKnown;
}

bool validate_options(const ArgParser& args) {
  bool ok = true;
  for (const std::string& key : args.keys()) {
    const auto& known = known_options();
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    const std::string hint = closest_match(key, known);
    if (hint.empty()) {
      std::fprintf(stderr, "error: unrecognized option --%s\n", key.c_str());
    } else {
      std::fprintf(stderr,
                   "error: unrecognized option --%s (did you mean --%s?)\n",
                   key.c_str(), hint.c_str());
    }
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (!validate_options(args)) return 2;
  if (args.get_bool("help", false)) {
    usage();
    return 0;
  }
  if (!args.command().empty()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args.command().c_str());
    return 2;
  }

  Config cfg;
  cfg.gen.fault_spec = "auto";
  if (args.get_bool("smoke", false)) {
    // PR-gate preset: a few seconds of wall clock, faults included.
    cfg.seeds = 40;
    cfg.gen.max_ranks = 6;
    cfg.gen.target_events = 24;
  }
  cfg.seeds = args.get_int("seeds", cfg.seeds);
  cfg.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.gen.max_ranks =
      static_cast<int>(args.get_int("ranks", cfg.gen.max_ranks));
  cfg.gen.target_events =
      static_cast<int>(args.get_int("ops", cfg.gen.target_events));
  cfg.gen.max_bytes = static_cast<std::uint32_t>(
      args.get_int("max-bytes", static_cast<long>(cfg.gen.max_bytes)));
  cfg.gen.fault_spec = args.get("faults", cfg.gen.fault_spec);
  if (cfg.gen.fault_spec == "none") cfg.gen.fault_spec.clear();
  cfg.gen.fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  cfg.gen.container_ops = args.get_bool("container", true);
  cfg.gen.icollective_ops = args.get_bool("icollectives", true);
  cfg.do_shrink = args.get_bool("shrink", true);
  cfg.keep_going = args.get_bool("keep-going", false);
  cfg.print = args.get_bool("print", false);
  cfg.out_dir = args.get("out", ".");
  cfg.replay_file = args.get("replay");
  const std::string backend_name = args.get("backend", "threads");
  if (!mpi::parse_backend_kind(backend_name, &cfg.backend)) {
    std::fprintf(stderr,
                 "error: unknown --backend '%s' (threads|shm|tcp)\n",
                 backend_name.c_str());
    return 2;
  }
  cfg.cross_backend = args.get_bool("cross-backend", false);

  try {
    if (!cfg.replay_file.empty()) return run_replay(cfg);
    if (args.has("seed") && !args.has("seeds")) cfg.seeds = 1;
    return run_fuzz(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
