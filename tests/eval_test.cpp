// The paper's evaluation artifacts: the reconstructed quiz dataset must
// reproduce every Table IV statistic, and the Table I / Table II metadata
// must be internally consistent and verified against the instrumented
// reference solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dataio/dataset.hpp"
#include "eval/quizdata.hpp"
#include "eval/quizstats.hpp"
#include "eval/tables.hpp"
#include "minimpi/runtime.hpp"
#include "modules/comm/module1.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/kmeans/module5.hpp"
#include "modules/rangequery/module4.hpp"
#include "modules/sort/module3.hpp"
#include "support/rng.hpp"

namespace ev = dipdc::eval;
namespace mpi = dipdc::minimpi;

namespace {

double round2(double v) { return std::round(v * 100.0) / 100.0; }

}  // namespace

TEST(QuizData, FortyTwoUsablePairs) {
  const auto pairs = ev::all_pairs();
  EXPECT_EQ(pairs.size(), 42u);  // Table IV: Total Pre & Post Quiz Pairs
}

TEST(QuizData, SevenStudentsCompletedEverything) {
  int complete = 0;
  for (int s = 0; s < ev::kStudents; ++s) {
    bool all = true;
    for (int q = 0; q < ev::kQuizzes; ++q) {
      all = all && ev::quiz_score(s, q).has_value();
    }
    if (all) ++complete;
  }
  EXPECT_EQ(complete, 7);  // paper §IV-A: "Seven of ten students..."
}

TEST(QuizData, ScoresAreValidPercentages) {
  for (const auto& sp : ev::all_pairs()) {
    EXPECT_GE(sp.pair.pre, 0.0);
    EXPECT_LE(sp.pair.pre, 100.0);
    EXPECT_GE(sp.pair.post, 0.0);
    EXPECT_LE(sp.pair.post, 100.0);
  }
}

TEST(TableIV, PairClassificationCounts) {
  const auto counts = ev::count_pairs(ev::all_pairs());
  EXPECT_EQ(counts.total, 42);
  EXPECT_EQ(counts.equal, 17);
  EXPECT_EQ(counts.increased, 19);
  EXPECT_EQ(counts.decreased, 6);
}

TEST(TableIV, MeanRelativeIncrease) {
  const auto inc =
      ev::mean_relative_change(ev::all_pairs(), ev::Direction::kIncrease);
  EXPECT_EQ(inc.pairs, 19);
  EXPECT_DOUBLE_EQ(round2(inc.relative_to_pre * 100.0), 47.86);
}

TEST(TableIV, MeanRelativeDecrease) {
  const auto dec =
      ev::mean_relative_change(ev::all_pairs(), ev::Direction::kDecrease);
  EXPECT_EQ(dec.pairs, 6);
  EXPECT_DOUBLE_EQ(round2(dec.relative_to_pre * 100.0), 27.30);
}

TEST(TableIV, PerQuizMeans) {
  const double expect[ev::kQuizzes][2] = {{88.89, 98.15},
                                          {82.22, 88.89},
                                          {69.50, 77.78},
                                          {60.71, 67.86},
                                          {80.21, 79.17}};
  const auto pairs = ev::all_pairs();
  for (int q = 0; q < ev::kQuizzes; ++q) {
    const auto means = ev::quiz_means(pairs, q);
    EXPECT_DOUBLE_EQ(round2(means.pre), expect[q][0]) << "quiz " << q + 1;
    EXPECT_DOUBLE_EQ(round2(means.post), expect[q][1]) << "quiz " << q + 1;
  }
}

TEST(TableIV, Quiz5IsTheOnlyMeanDecrease) {
  const auto pairs = ev::all_pairs();
  for (int q = 0; q < 4; ++q) {
    const auto m = ev::quiz_means(pairs, q);
    EXPECT_GT(m.post, m.pre) << "quiz " << q + 1;
  }
  const auto m5 = ev::quiz_means(pairs, 4);
  EXPECT_LT(m5.post, m5.pre);
}

TEST(Figure2, ExactlyStudents1347Decrease) {
  // Paper §IV-C: students #2,5,6,8,9,10 never decreased; #1,3,4,7 did.
  const auto dec = ev::students_with_decrease(ev::all_pairs());
  EXPECT_EQ(dec, (std::vector<int>{0, 2, 3, 6}));  // 0-based
}

TEST(TableIII, CohortSumsToTen) {
  int total = 0;
  for (const auto& row : ev::demographics()) total += row.count;
  EXPECT_EQ(total, 10);
}

TEST(TableI, FifteenOutcomesWithSaneLevels) {
  const auto& rows = ev::learning_outcomes();
  EXPECT_EQ(rows.size(), 15u);
  int assigned = 0;
  for (const auto& row : rows) {
    EXPECT_FALSE(row.description.empty());
    bool any = false;
    for (const auto level : row.levels) {
      if (level != ev::Bloom::kNone) {
        any = true;
        ++assigned;
      }
    }
    EXPECT_TRUE(any) << row.description;
  }
  // Every module teaches several outcomes.
  EXPECT_GT(assigned, 25);
}

TEST(TableII, RowsCoverThePaper) {
  const auto& rows = ev::primitive_usage();
  EXPECT_EQ(rows.size(), 10u);
  // Module 1 requires Send/Recv/Isend/Wait, as the paper states.
  int required_m1 = 0;
  for (const auto& row : rows) {
    if (row.usage[0] == ev::Usage::kRequired) ++required_m1;
  }
  EXPECT_EQ(required_m1, 4);
}

// ---- Table II verified against the instrumented reference solutions -----

namespace {

mpi::CommStats run_module(int module_index) {
  using dipdc::dataio::Dataset;
  const int p = 4;
  mpi::RunResult result;
  switch (module_index) {
    case 0:
      result = mpi::run(p, [](mpi::Comm& comm) {
        dipdc::modules::comm1::ping_pong(comm, 3, 64);
        dipdc::modules::comm1::ring_nonblocking(comm, comm.size());
        dipdc::modules::comm1::random_comm_any_source(comm, 4, 3);
      });
      break;
    case 1: {
      const auto d = dipdc::dataio::generate_uniform(64, 8, 0.0, 1.0, 1);
      result = mpi::run(p, [&](mpi::Comm& comm) {
        dipdc::modules::distmatrix::Config cfg;
        cfg.tile = 16;
        dipdc::modules::distmatrix::run_distributed(
            comm, comm.rank() == 0 ? d : Dataset{}, cfg);
      });
      break;
    }
    case 2:
      result = mpi::run(p, [](mpi::Comm& comm) {
        auto rng = dipdc::support::make_stream(
            7, static_cast<std::uint64_t>(comm.rank()));
        std::vector<double> local(500);
        for (auto& v : local) v = rng.uniform();
        dipdc::modules::distsort::Config cfg;
        dipdc::modules::distsort::distributed_bucket_sort(comm, local, cfg);
      });
      break;
    case 3: {
      std::vector<dipdc::spatial::Point2> pts(500);
      auto rng = dipdc::support::Xoshiro256(9);
      for (auto& pt : pts) {
        pt.x = rng.uniform(0.0, 10.0);
        pt.y = rng.uniform(0.0, 10.0);
      }
      const auto queries =
          dipdc::modules::rangequery::make_query_workload(16, 10.0, 1.0, 5);
      result = mpi::run(p, [&](mpi::Comm& comm) {
        dipdc::modules::rangequery::Config cfg;
        cfg.engine = dipdc::modules::rangequery::Engine::kRTree;
        dipdc::modules::rangequery::run_distributed(comm, pts, queries, cfg);
      });
      break;
    }
    case 4: {
      const auto d = dipdc::dataio::generate_clusters(400, 2, 3, 0.2, 0.0,
                                                      10.0, 11);
      result = mpi::run(p, [&](mpi::Comm& comm) {
        dipdc::modules::kmeans::Config cfg;
        cfg.k = 3;
        dipdc::modules::kmeans::distributed(
            comm, comm.rank() == 0 ? d.data : Dataset{}, cfg);
      });
      break;
    }
    default:
      break;
  }
  return result.total_stats();
}

}  // namespace

TEST(TableII, EveryModuleUsesItsRequiredPrimitives) {
  for (int m = 0; m < ev::kModules; ++m) {
    const auto stats = run_module(m);
    EXPECT_TRUE(ev::required_primitives_used(m, stats)) << "module " << m + 1;
  }
}

TEST(TableII, FamilyCallCountsAreMeasured) {
  const auto stats = run_module(1);  // distance matrix
  const auto& rows = ev::primitive_usage();
  // Row 6 is MPI_Scatter (family includes Scatterv), row 7 is MPI_Reduce.
  EXPECT_GT(ev::family_calls(rows[6], stats), 0u);
  EXPECT_GT(ev::family_calls(rows[7], stats), 0u);
  // Module 2 never calls plain Send.
  EXPECT_EQ(ev::family_calls(rows[0], stats), 0u);
}

#include "eval/survey.hpp"

TEST(Survey, DifficultyReportsCoverTheCohort) {
  int total = 0;
  for (const auto& r : ev::difficulty_reports()) total += r.students;
  EXPECT_EQ(total, 10);  // 1 easier + 5 more difficult + 4 much more
}

TEST(Survey, LeastFavoriteVotesMatchThePaper) {
  const auto& v = ev::least_favorite_votes();
  EXPECT_EQ(v.votes, (std::array<int, 5>{2, 1, 1, 2, 1}));
  EXPECT_EQ(v.total(), 7);
}

TEST(Survey, FavoriteAndChallengingHighlights) {
  EXPECT_EQ(ev::favorite_module_votes().votes[4], 4);     // Module 5
  EXPECT_EQ(ev::most_challenging_votes().votes[1], 4);    // Module 2
}

TEST(Survey, QuotesAreNonEmpty) {
  const auto& quotes = ev::quoted_responses();
  EXPECT_GE(quotes.size(), 5u);
  for (const auto& q : quotes) EXPECT_FALSE(q.empty());
}
