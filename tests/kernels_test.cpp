// src/kernels contract tests.
//
// The load-bearing property is *bit-equality*: the scalar fallback, the
// AVX2 path and the canonical reference helpers must produce identical
// bits for every shape — dimensions that are not a multiple of the lane
// width, tiles larger than n, k = 1, empty row ranges — because the
// modules' determinism guarantees (checksums, iteration counts, traces)
// ride on it.  SIMD cases are skipped on hosts without AVX2; the scalar
// vs. reference checks always run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "kernels/detail/canonical.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/distance.hpp"
#include "kernels/filter.hpp"
#include "kernels/kmeans.hpp"
#include "kernels/sort.hpp"
#include "support/rng.hpp"

namespace ker = dipdc::kernels;
using dipdc::support::Xoshiro256;

namespace {

std::vector<double> random_values(std::size_t count, std::uint64_t seed,
                                  double lo = -3.0, double hi = 3.0) {
  Xoshiro256 rng(seed);
  std::vector<double> v(count);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

bool simd_available() { return ker::simd_supported(); }

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch.

TEST(KernelsDispatch, ParsePolicy) {
  EXPECT_EQ(ker::parse_policy("auto"), ker::Policy::kAuto);
  EXPECT_EQ(ker::parse_policy("scalar"), ker::Policy::kScalar);
  EXPECT_EQ(ker::parse_policy("simd"), ker::Policy::kSimd);
  EXPECT_THROW((void)ker::parse_policy("avx512"), std::exception);
  EXPECT_THROW((void)ker::parse_policy(""), std::exception);
}

TEST(KernelsDispatch, ResolveHonoursExplicitPolicy) {
  EXPECT_EQ(ker::resolve(ker::Policy::kScalar), ker::Isa::kScalar);
  if (simd_available()) {
    EXPECT_EQ(ker::resolve(ker::Policy::kSimd), ker::Isa::kSimd);
  } else {
    // Explicitly forcing an unavailable ISA is a loud error, not a
    // silent fallback.
    EXPECT_THROW((void)ker::resolve(ker::Policy::kSimd), std::exception);
  }
}

TEST(KernelsDispatch, Names) {
  EXPECT_STREQ(ker::isa_name(ker::Isa::kScalar), "scalar");
  EXPECT_STREQ(ker::isa_name(ker::Isa::kSimd), "simd");
  EXPECT_STREQ(ker::policy_name(ker::Policy::kAuto), "auto");
}

// ---------------------------------------------------------------------------
// Distance kernels.

TEST(KernelsDistance, SquaredDistanceMatchesReference) {
  // Dimensions straddling the lane width: tails of every length.
  for (const std::size_t dim : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{7},
                                std::size_t{8}, std::size_t{90},
                                std::size_t{91}}) {
    const auto a = random_values(dim, 100 + dim);
    const auto b = random_values(dim, 200 + dim);
    const double ref =
        ker::detail::squared_distance_ref(a.data(), b.data(), dim);
    EXPECT_EQ(ker::squared_distance(ker::Isa::kScalar, a.data(), b.data(),
                                    dim),
              ref)
        << "dim " << dim;
    if (simd_available()) {
      EXPECT_EQ(ker::squared_distance(ker::Isa::kSimd, a.data(), b.data(),
                                      dim),
                ref)
          << "dim " << dim;
    }
  }
}

TEST(KernelsDistance, DistanceRowsScalarSimdBitEqualOverRandomShapes) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(60);
    const std::size_t dim = 1 + rng.uniform_index(100);
    const std::size_t row_begin = rng.uniform_index(n + 1);
    const std::size_t row_end =
        row_begin + rng.uniform_index(n - row_begin + 1);
    // tile = 0 (row-wise), tile > n, and interior tiles all occur.
    const std::size_t tile = rng.uniform_index(n + 8);
    const auto all = random_values(n * dim, 1000 + static_cast<std::uint64_t>(trial));
    const std::size_t rows = row_end - row_begin;

    std::vector<double> out_scalar(rows * n, -1.0);
    std::vector<double> out_simd(rows * n, -2.0);
    ker::distance_rows(ker::Isa::kScalar, all.data(), dim, n, row_begin,
                       row_end, tile, out_scalar.data());
    ker::distance_rows(ker::Isa::kSimd, all.data(), dim, n, row_begin,
                       row_end, tile, out_simd.data());
    for (std::size_t i = 0; i < out_scalar.size(); ++i) {
      ASSERT_EQ(out_scalar[i], out_simd[i])
          << "trial " << trial << " n=" << n << " dim=" << dim
          << " rows=[" << row_begin << "," << row_end << ") tile=" << tile
          << " cell " << i;
    }
  }
}

TEST(KernelsDistance, DistanceRowSubrangesBitEqual) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  const std::size_t n = 37;
  const std::size_t dim = 13;
  const auto all = random_values(n * dim, 7);
  const auto a = random_values(dim, 8);
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t j_begin = rng.uniform_index(n + 1);
    const std::size_t j_end = j_begin + rng.uniform_index(n - j_begin + 1);
    std::vector<double> row_scalar(n, -1.0);
    std::vector<double> row_simd(n, -1.0);
    ker::distance_row(ker::Isa::kScalar, a.data(), all.data(), dim, j_begin,
                      j_end, row_scalar.data());
    ker::distance_row(ker::Isa::kSimd, a.data(), all.data(), dim, j_begin,
                      j_end, row_simd.data());
    EXPECT_EQ(row_scalar, row_simd)
        << "range [" << j_begin << "," << j_end << ")";
  }
  // Inverted range (module 2's symmetric path issues these for rows
  // below the current tile): a no-op, no cell may be touched.
  std::vector<double> row_scalar(n, -7.0), row_simd(n, -7.0);
  ker::distance_row(ker::Isa::kScalar, a.data(), all.data(), dim, 20, 5,
                    row_scalar.data());
  ker::distance_row(ker::Isa::kSimd, a.data(), all.data(), dim, 20, 5,
                    row_simd.data());
  EXPECT_EQ(row_scalar, std::vector<double>(n, -7.0));
  EXPECT_EQ(row_simd, std::vector<double>(n, -7.0));
}

TEST(KernelsDistance, DistanceRowsMatchesPerPairReference) {
  const std::size_t n = 19;
  const std::size_t dim = 6;
  const auto all = random_values(n * dim, 11);
  std::vector<double> out(2 * n, 0.0);
  ker::distance_rows(ker::Isa::kScalar, all.data(), dim, n, 3, 5, 4,
                     out.data());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ref = std::sqrt(ker::detail::squared_distance_ref(
          all.data() + (3 + r) * dim, all.data() + j * dim, dim));
      EXPECT_EQ(out[r * n + j], ref) << "row " << r << " col " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// k-means kernels.

TEST(KernelsKmeans, AssignScalarSimdBitEqualOverRandomShapes) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(50);
    const std::size_t dim = 1 + rng.uniform_index(40);
    const std::size_t k = 1 + rng.uniform_index(9);  // includes k = 1
    const auto pts = random_values(n * dim, 3000 + static_cast<std::uint64_t>(trial));
    auto cents = random_values(k * dim, 4000 + static_cast<std::uint64_t>(trial));
    if (k >= 2) {
      // Duplicate centroid: exact distance ties must break to the lowest
      // index on both paths.
      std::copy(cents.begin(),
                cents.begin() + static_cast<std::ptrdiff_t>(dim),
                cents.begin() + static_cast<std::ptrdiff_t>((k - 1) * dim));
    }

    std::vector<std::size_t> assign_scalar(n), assign_simd(n);
    std::vector<double> sums_scalar(k * dim, 0.0), sums_simd(k * dim, 0.0);
    std::vector<double> counts_scalar(k, 0.0), counts_simd(k, 0.0);
    ker::assign_points(ker::Isa::kScalar, pts.data(), n, dim, cents.data(),
                       k, assign_scalar.data(), sums_scalar.data(),
                       counts_scalar.data());
    ker::assign_points(ker::Isa::kSimd, pts.data(), n, dim, cents.data(), k,
                       assign_simd.data(), sums_simd.data(),
                       counts_simd.data());
    ASSERT_EQ(assign_scalar, assign_simd)
        << "trial " << trial << " n=" << n << " dim=" << dim << " k=" << k;
    ASSERT_EQ(sums_scalar, sums_simd) << "trial " << trial;
    ASSERT_EQ(counts_scalar, counts_simd) << "trial " << trial;
  }
}

TEST(KernelsKmeans, AssignWithoutAccumulatorsAndNearestCentroidAgree) {
  const std::size_t n = 23;
  const std::size_t dim = 7;
  const std::size_t k = 5;
  const auto pts = random_values(n * dim, 31);
  const auto cents = random_values(k * dim, 32);
  for (const auto isa : {ker::Isa::kScalar, ker::Isa::kSimd}) {
    if (isa == ker::Isa::kSimd && !simd_available()) continue;
    std::vector<std::size_t> assignment(n);
    ker::assign_points(isa, pts.data(), n, dim, cents.data(), k,
                       assignment.data(), nullptr, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(assignment[i],
                ker::nearest_centroid(isa, pts.data() + i * dim,
                                      cents.data(), k, dim))
          << "point " << i;
    }
  }
}

TEST(KernelsKmeans, UpdateCentroidsBitEqualAndEmptyClustersStayPut) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 1 + rng.uniform_index(8);
    const std::size_t dim = 1 + rng.uniform_index(30);
    const auto sums = random_values(k * dim, 5000 + static_cast<std::uint64_t>(trial));
    std::vector<double> counts(k);
    for (auto& c : counts) {
      c = rng.uniform() < 0.3 ? 0.0 : std::floor(rng.uniform(1.0, 20.0));
    }
    auto cents_scalar = random_values(k * dim, 6000 + static_cast<std::uint64_t>(trial));
    auto cents_simd = cents_scalar;
    const auto before = cents_scalar;

    const double mv_scalar =
        ker::update_centroids(ker::Isa::kScalar, cents_scalar.data(),
                              sums.data(), counts.data(), k, dim);
    const double mv_simd =
        ker::update_centroids(ker::Isa::kSimd, cents_simd.data(),
                              sums.data(), counts.data(), k, dim);
    ASSERT_EQ(cents_scalar, cents_simd) << "trial " << trial;
    ASSERT_EQ(mv_scalar, mv_simd) << "trial " << trial;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] != 0.0) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        EXPECT_EQ(cents_scalar[c * dim + j], before[c * dim + j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sort kernels.

TEST(KernelsSort, HistogramMatchesReferenceIncludingOutOfRangeAndNaN) {
  const std::size_t bins = 16;
  const double lo = 0.0;
  const double width = 0.5;
  auto values = random_values(503, 61, -2.0, 10.0);  // spills both ends
  values.push_back(lo);                              // exactly lo -> bin 0
  values.push_back(lo + width * static_cast<double>(bins));  // above top
  values.push_back(std::numeric_limits<double>::quiet_NaN());

  std::vector<std::uint64_t> ref(bins, 0);
  for (const double v : values) {
    ++ref[ker::detail::histogram_bin_ref(v, lo, width, bins)];
  }
  for (const auto isa : {ker::Isa::kScalar, ker::Isa::kSimd}) {
    if (isa == ker::Isa::kSimd && !simd_available()) continue;
    std::vector<std::uint64_t> hist(bins, 0);
    ker::histogram(isa, values.data(), values.size(), lo, width, bins,
                   hist.data());
    EXPECT_EQ(hist, ref) << ker::isa_name(isa);
  }
}

TEST(KernelsSort, BucketIndicesMatchesReferenceOnSplitterCollisions) {
  // Splitter values occur verbatim in the input: v == splitter must land
  // in the bucket *after* the splitter (upper_bound semantics) on every
  // path.  NaN compares false with every splitter -> bucket 0.
  std::vector<double> splitters = {1.0, 2.0, 2.0, 5.0};  // repeated too
  auto values = random_values(257, 71, 0.0, 6.0);
  values.insert(values.end(), {1.0, 2.0, 5.0, 0.0, 6.0,
                               std::numeric_limits<double>::quiet_NaN()});

  std::vector<std::uint32_t> ref(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ref[i] = static_cast<std::uint32_t>(ker::detail::bucket_of_ref(
        values[i], splitters.data(), splitters.size()));
  }
  for (const auto isa : {ker::Isa::kScalar, ker::Isa::kSimd}) {
    if (isa == ker::Isa::kSimd && !simd_available()) continue;
    std::vector<std::uint32_t> out(values.size(), 999);
    ker::bucket_indices(isa, values.data(), values.size(), splitters.data(),
                        splitters.size(), out.data());
    EXPECT_EQ(out, ref) << ker::isa_name(isa);
  }
}

TEST(KernelsSort, ScalarSimdBitEqualOverRandomShapes) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = rng.uniform_index(200);  // includes n = 0
    const std::size_t bins = 1 + rng.uniform_index(64);
    const std::size_t nsplit = rng.uniform_index(12);
    const auto values = random_values(n, 7000 + static_cast<std::uint64_t>(trial), -1.0, 9.0);
    std::vector<double> splitters(nsplit);
    for (std::size_t s = 0; s < nsplit; ++s) {
      splitters[s] = static_cast<double>(s) * 8.0 /
                     static_cast<double>(nsplit + 1);
    }

    std::vector<std::uint64_t> h_scalar(bins, 0), h_simd(bins, 0);
    ker::histogram(ker::Isa::kScalar, values.data(), n, -1.0, 10.0 / static_cast<double>(bins),
                   bins, h_scalar.data());
    ker::histogram(ker::Isa::kSimd, values.data(), n, -1.0, 10.0 / static_cast<double>(bins),
                   bins, h_simd.data());
    ASSERT_EQ(h_scalar, h_simd) << "trial " << trial;

    std::vector<std::uint32_t> b_scalar(n), b_simd(n);
    ker::bucket_indices(ker::Isa::kScalar, values.data(), n,
                        splitters.data(), nsplit, b_scalar.data());
    ker::bucket_indices(ker::Isa::kSimd, values.data(), n, splitters.data(),
                        nsplit, b_simd.data());
    ASSERT_EQ(b_scalar, b_simd) << "trial " << trial;
  }
}

TEST(KernelsFilter, MatchesReferenceIncludingBoundaries) {
  // Boundary-inclusive points (closed rectangle), points just outside,
  // NaN coordinates, and a degenerate zero-area window.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 1.0, 3.0, 0.999, 3.001,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0, 3.0, 1.0, 2.0, 2.0, 2.0,
                                  std::numeric_limits<double>::quiet_NaN()};
  for (const auto isa : {ker::Isa::kScalar, ker::Isa::kSimd}) {
    if (isa == ker::Isa::kSimd && !simd_available()) continue;
    // [1,3]x[1,3]: the five corner/edge/inside points match, the
    // just-outside and NaN points do not.
    EXPECT_EQ(ker::count_in_rect(isa, xs.data(), ys.data(), xs.size(), 1.0,
                                 1.0, 3.0, 3.0),
              5u)
        << ker::isa_name(isa);
    // Zero-area window: only the exact point matches.
    EXPECT_EQ(ker::count_in_rect(isa, xs.data(), ys.data(), xs.size(), 2.0,
                                 2.0, 2.0, 2.0),
              1u)
        << ker::isa_name(isa);
    // Inverted (min > max) window matches nothing.
    EXPECT_EQ(ker::count_in_rect(isa, xs.data(), ys.data(), xs.size(), 3.0,
                                 3.0, 1.0, 1.0),
              0u)
        << ker::isa_name(isa);
    // NaN bound matches nothing.
    EXPECT_EQ(ker::count_in_rect(
                  isa, xs.data(), ys.data(), xs.size(),
                  std::numeric_limits<double>::quiet_NaN(), 1.0, 3.0, 3.0),
              0u)
        << ker::isa_name(isa);
  }
}

TEST(KernelsFilter, ScalarSimdBitEqualOverRandomShapes) {
  if (!simd_available()) GTEST_SKIP() << "no AVX2 on this host";
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = rng.uniform_index(300);  // includes n = 0
    auto xs = random_values(n, 5000 + static_cast<std::uint64_t>(trial),
                            0.0, 100.0);
    auto ys = random_values(n, 6000 + static_cast<std::uint64_t>(trial),
                            0.0, 100.0);
    if (n > 4) {
      xs[n / 2] = std::numeric_limits<double>::quiet_NaN();
      ys[n / 3] = std::numeric_limits<double>::infinity();
    }
    const double x0 = rng.uniform(0.0, 100.0);
    const double y0 = rng.uniform(0.0, 100.0);
    const double w = rng.uniform(-5.0, 40.0);  // negative = inverted rect
    std::uint64_t ref = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ref += ker::detail::in_rect_ref(xs[i], ys[i], x0, y0, x0 + w, y0 + w)
                 ? 1u
                 : 0u;
    }
    EXPECT_EQ(ker::count_in_rect(ker::Isa::kScalar, xs.data(), ys.data(), n,
                                 x0, y0, x0 + w, y0 + w),
              ref)
        << "trial " << trial;
    EXPECT_EQ(ker::count_in_rect(ker::Isa::kSimd, xs.data(), ys.data(), n,
                                 x0, y0, x0 + w, y0 + w),
              ref)
        << "trial " << trial;
  }
}
