// Critical-path analysis: attribution telescopes to the makespan, the walk
// is deterministic, message edges are followed, and the paper's §III-F
// shape (comm share of the critical path falls as per-rank compute grows)
// comes out of a real k-means run.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"
#include "modules/kmeans/module5.hpp"
#include "obs/critical_path.hpp"

namespace mpi = dipdc::minimpi;
namespace obs = dipdc::obs;
namespace m5 = dipdc::modules::kmeans;
namespace io = dipdc::dataio;

namespace {

obs::Trace trace_of(int ranks, const std::function<void(mpi::Comm&)>& body) {
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  return mpi::make_trace(mpi::run(ranks, body, opts));
}

double attributed_total(const obs::CriticalPath& cp) {
  double total = cp.untracked;
  for (const double s : cp.by_category) total += s;
  return total;
}

/// CriticalPath::steps points into the analyzed Trace, so the trace must
/// outlive the path — carry both (vector moves keep Event pointers valid).
struct KmeansAnalysis {
  obs::Trace trace;
  obs::CriticalPath cp;
};

KmeansAnalysis kmeans_critical_path(std::size_t k) {
  const auto dataset =
      io::generate_clusters(2000, 2, 16, 1.0, 0.0, 100.0, 555).data;
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  m5::Config cfg;
  cfg.k = k;
  cfg.max_iterations = 8;
  cfg.tolerance = -1.0;
  const mpi::RunResult result = mpi::run(4, [&](mpi::Comm& comm) {
    (void)m5::distributed(comm, comm.rank() == 0 ? dataset : io::Dataset{},
                          cfg);
  }, opts);
  KmeansAnalysis out;
  out.trace = mpi::make_trace(result);
  out.cp = obs::critical_path(out.trace);
  return out;
}

}  // namespace

TEST(CriticalPath, EmptyTraceIsEmptyPath) {
  const obs::CriticalPath cp = obs::critical_path(obs::Trace{});
  EXPECT_EQ(cp.steps.size(), 0u);
  EXPECT_DOUBLE_EQ(cp.makespan, 0.0);
}

TEST(CriticalPath, AttributionTelescopesToMakespan) {
  const obs::Trace trace = trace_of(4, [](mpi::Comm& comm) {
    comm.sim_compute(500.0 * static_cast<double>(comm.rank() + 1), 4000.0);
    (void)comm.allreduce_value(comm.rank(), mpi::ops::Sum{});
    if (comm.rank() == 0) comm.send_value(1, 1);
    if (comm.rank() == 1) (void)comm.recv_value<int>(0);
    comm.barrier();
  });
  const obs::CriticalPath cp = obs::critical_path(trace);
  EXPECT_GT(cp.makespan, 0.0);
  EXPECT_NEAR(attributed_total(cp), cp.makespan, 1e-12);
  EXPECT_GE(cp.end_rank, 0);
  // Steps come out chronological.
  for (std::size_t i = 1; i < cp.steps.size(); ++i) {
    EXPECT_LE(cp.steps[i - 1].event->t_end, cp.steps[i].event->t_end);
  }
}

TEST(CriticalPath, FollowsMessageEdgeAcrossRanks) {
  // Rank 0 computes, then sends; rank 1 just waits for the message.  The
  // path must end on rank 1 but route through rank 0's send (and compute).
  const obs::Trace trace = trace_of(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.sim_compute(50000.0, 400000.0);
      comm.send_value(7, 1);
    } else {
      (void)comm.recv_value<int>(0);
    }
  });
  const obs::CriticalPath cp = obs::critical_path(trace);
  EXPECT_EQ(cp.end_rank, 1);
  bool crossed = false;
  for (const auto& step : cp.steps) {
    if (step.via == obs::CriticalPath::Via::kMessage) crossed = true;
  }
  EXPECT_TRUE(crossed);
  EXPECT_GT(cp.by_category[static_cast<std::size_t>(obs::Category::kCompute)],
            0.0);
}

TEST(CriticalPath, DeterministicAcrossRuns) {
  const KmeansAnalysis ra = kmeans_critical_path(8);
  const KmeansAnalysis rb = kmeans_critical_path(8);
  const obs::CriticalPath& a = ra.cp;
  const obs::CriticalPath& b = rb.cp;
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.end_rank, b.end_rank);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].event->rank, b.steps[i].event->rank);
    EXPECT_DOUBLE_EQ(a.steps[i].attributed, b.steps[i].attributed);
  }
  for (std::size_t c = 0; c < obs::kCategoryCount; ++c) {
    EXPECT_DOUBLE_EQ(a.by_category[c], b.by_category[c]);
  }
}

TEST(CriticalPath, CommShareFallsAsKGrows) {
  // Paper §III-F: at low k the per-iteration allreduce dominates; at high
  // k the assignment compute does.  The critical-path attribution must
  // reproduce that crossover.
  const double low_k = kmeans_critical_path(2).cp.comm_share();
  const double high_k = kmeans_critical_path(64).cp.comm_share();
  EXPECT_GT(low_k, high_k);
  EXPECT_GT(low_k, 0.5);
  EXPECT_LT(high_k, 0.5);
}

TEST(RankBreakdown, CoversEveryRankUpToMakespan) {
  const obs::Trace trace = trace_of(3, [](mpi::Comm& comm) {
    comm.sim_compute(1000.0 * static_cast<double>(comm.rank() + 1), 8000.0);
    comm.barrier();
  });
  const std::vector<obs::RankBreakdown> rows = obs::rank_breakdown(trace);
  ASSERT_EQ(rows.size(), 3u);
  const double makespan = trace.max_time();
  for (const obs::RankBreakdown& b : rows) {
    const double covered =
        b.comm + b.compute + b.idle + b.untracked + b.tail;
    EXPECT_NEAR(covered, makespan, 1e-12) << "rank " << b.rank;
  }
}

TEST(TopCollectives, SortedLongestFirst) {
  const obs::Trace trace = trace_of(3, [](mpi::Comm& comm) {
    comm.barrier();
    std::vector<double> big(4096, 1.0), out(4096, 0.0);
    comm.allreduce(std::span<const double>(big), std::span<double>(out),
                   mpi::ops::Sum{});
  });
  const auto top = obs::top_collectives(trace, 4);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1]->t_end - top[i - 1]->t_start,
              top[i]->t_end - top[i]->t_start);
  }
}
