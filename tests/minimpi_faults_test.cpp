// Deterministic fault injection and reliable delivery.
//
// The contract under test: the same (plan, seed, program) triple injects
// the identical fault sequence; send_reliable recovers from injected drops
// within its retry budget; duplicates are delivered exactly once; and a
// killed rank degrades the world gracefully — every survivor gets
// RankFailedError instead of hanging.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/faults.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/stats.hpp"

namespace mpi = dipdc::minimpi;

namespace {

mpi::RuntimeOptions with_faults(const mpi::FaultOptions& plan,
                                int max_retries = 8) {
  mpi::RuntimeOptions opts;
  opts.faults = plan;
  opts.reliable.max_retries = max_retries;
  return opts;
}

/// Neighbour ring: every rank plain-sends `messages` ints right and
/// receives as many from the left.  Completes as long as the plan does not
/// drop (dup/delay only).  Values are deliberately not asserted: plain
/// sends have at-least-once semantics under duplication, so a receive may
/// observe a stale duplicate — that is the documented behaviour the
/// reliable layer exists to fix.
mpi::RunResult ring_run(int ranks, int messages,
                        const mpi::RuntimeOptions& opts) {
  return mpi::run(
      ranks,
      [messages](mpi::Comm& comm) {
        const int p = comm.size();
        const int next = (comm.rank() + 1) % p;
        const int prev = (comm.rank() - 1 + p) % p;
        for (int i = 0; i < messages; ++i) {
          comm.send_value(comm.rank() * 1000 + i, next, 0);
          (void)comm.recv_value<int>(prev, 0);
        }
      },
      opts);
}

}  // namespace

TEST(FaultSpec, ParsesEveryClause) {
  mpi::FaultOptions f;
  mpi::ReliableOptions r;
  mpi::parse_fault_spec("drop=0.25,dup=0.1,delay=0.5:2e-6,kill=3@7,retries=5,timeout=1e-4",
                        f, r);
  EXPECT_DOUBLE_EQ(f.drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(f.dup_prob, 0.1);
  EXPECT_DOUBLE_EQ(f.delay_prob, 0.5);
  EXPECT_DOUBLE_EQ(f.delay_seconds, 2e-6);
  EXPECT_EQ(f.kill_rank, 3);
  EXPECT_EQ(f.kill_at_call, 7u);
  EXPECT_EQ(r.max_retries, 5);
  EXPECT_DOUBLE_EQ(r.timeout_seconds, 1e-4);
  EXPECT_TRUE(f.injects());
  EXPECT_TRUE(f.kills());
}

TEST(FaultSpec, KillWithoutCallNumberMeansFirstCall) {
  mpi::FaultOptions f;
  mpi::ReliableOptions r;
  mpi::parse_fault_spec("kill=2", f, r);
  EXPECT_EQ(f.kill_rank, 2);
  EXPECT_EQ(f.kill_at_call, 1u);
}

TEST(FaultSpec, MalformedSpecsThrow) {
  mpi::FaultOptions f;
  mpi::ReliableOptions r;
  EXPECT_THROW(mpi::parse_fault_spec("", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("drop=1.5", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("drop=0.1x", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("drop=", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("bogus=1", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("kill=-1", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("kill=2@0", f, r), mpi::MpiError);
  EXPECT_THROW(mpi::parse_fault_spec("retries=-3", f, r), mpi::MpiError);
}

TEST(FaultInjection, SameSeedInjectsIdenticalSequence) {
  mpi::FaultOptions plan;
  plan.seed = 7;
  plan.dup_prob = 0.3;
  plan.delay_prob = 0.2;

  const auto a = ring_run(4, 50, with_faults(plan));
  const auto b = ring_run(4, 50, with_faults(plan));
  ASSERT_EQ(a.rank_stats.size(), b.rank_stats.size());
  std::uint64_t total_dups = 0;
  for (std::size_t r = 0; r < a.rank_stats.size(); ++r) {
    EXPECT_EQ(a.rank_stats[r].fault_dups, b.rank_stats[r].fault_dups);
    EXPECT_EQ(a.rank_stats[r].fault_delays, b.rank_stats[r].fault_delays);
    EXPECT_EQ(a.sim_times[r], b.sim_times[r]);  // bit-identical
    total_dups += a.rank_stats[r].fault_dups;
  }
  EXPECT_GT(total_dups, 0u);

  // A different seed draws a different sequence.
  mpi::FaultOptions other = plan;
  other.seed = 8;
  const auto c = ring_run(4, 50, with_faults(other));
  bool any_difference = false;
  for (std::size_t r = 0; r < a.rank_stats.size(); ++r) {
    any_difference = any_difference ||
                     a.rank_stats[r].fault_dups != c.rank_stats[r].fault_dups ||
                     a.rank_stats[r].fault_delays !=
                         c.rank_stats[r].fault_delays;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjection, ArmedButZeroProbabilityPlanChangesNothing) {
  // A plan with a seed but all probabilities zero must not perturb the run:
  // injection draws nothing when no message-level fault is armed.
  mpi::FaultOptions plan;
  plan.seed = 12345;
  const auto faulty = ring_run(4, 20, with_faults(plan));
  const auto clean = ring_run(4, 20, mpi::RuntimeOptions{});
  for (std::size_t r = 0; r < clean.rank_stats.size(); ++r) {
    EXPECT_EQ(faulty.sim_times[r], clean.sim_times[r]);
    EXPECT_EQ(faulty.rank_stats[r].transport_messages_sent,
              clean.rank_stats[r].transport_messages_sent);
  }
  EXPECT_EQ(faulty.total_stats().fault_drops, 0u);
}

TEST(FaultInjection, DelayedMessagesStretchSimulatedTime) {
  mpi::FaultOptions plan;
  plan.delay_prob = 1.0;
  plan.delay_seconds = 0.25;  // enormous next to the LogGP terms
  const auto delayed = ring_run(2, 4, with_faults(plan));
  const auto clean = ring_run(2, 4, mpi::RuntimeOptions{});
  EXPECT_EQ(delayed.total_stats().fault_delays, 2u * 4u);
  EXPECT_GT(delayed.max_sim_time(), clean.max_sim_time() + 0.25);
}

TEST(ReliableDelivery, RecoversEveryDroppedMessage) {
  mpi::FaultOptions plan;
  plan.seed = 3;
  plan.drop_prob = 0.3;
  constexpr int kMessages = 40;

  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < kMessages; ++i) {
            comm.send_reliable_value(i * 17, 1, 5);
          }
        } else {
          for (int i = 0; i < kMessages; ++i) {
            EXPECT_EQ(comm.recv_reliable_value<int>(0, 5), i * 17);
          }
        }
      },
      with_faults(plan));

  const mpi::CommStats total = result.total_stats();
  EXPECT_GT(total.fault_drops, 0u);         // faults actually fired
  EXPECT_GT(total.reliable_retries, 0u);    // and were recovered by resend
  EXPECT_EQ(total.reliable_retries, total.reliable_timeouts);
  EXPECT_EQ(total.calls_to(mpi::Primitive::kSendReliable),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(total.calls_to(mpi::Primitive::kRecvReliable),
            static_cast<std::uint64_t>(kMessages));
}

TEST(ReliableDelivery, ReliableRunsAreSeedReproducible) {
  mpi::FaultOptions plan;
  plan.seed = 11;
  plan.drop_prob = 0.25;
  auto once = [&] {
    return mpi::run(
        2,
        [](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < 25; ++i) comm.send_reliable_value(i, 1);
          } else {
            for (int i = 0; i < 25; ++i) {
              EXPECT_EQ(comm.recv_reliable_value<int>(0), i);
            }
          }
        },
        with_faults(plan));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.total_stats().fault_drops, b.total_stats().fault_drops);
  EXPECT_EQ(a.total_stats().reliable_retries,
            b.total_stats().reliable_retries);
  for (std::size_t r = 0; r < a.sim_times.size(); ++r) {
    EXPECT_EQ(a.sim_times[r], b.sim_times[r]);
  }
}

TEST(ReliableDelivery, InjectedDuplicatesAreFilteredExactlyOnce) {
  mpi::FaultOptions plan;
  plan.dup_prob = 1.0;  // every frame is delivered twice
  constexpr int kMessages = 16;

  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < kMessages; ++i) {
            comm.send_reliable_value(100 + i, 1);
          }
        } else {
          for (int i = 0; i < kMessages; ++i) {
            EXPECT_EQ(comm.recv_reliable_value<int>(0), 100 + i);
          }
        }
      },
      with_faults(plan));

  const mpi::CommStats total = result.total_stats();
  EXPECT_EQ(total.fault_dups, static_cast<std::uint64_t>(kMessages));
  // The duplicate of frame i is popped (and filtered) while receiving frame
  // i+1; the last frame's duplicate is never consumed.
  EXPECT_EQ(total.reliable_duplicates,
            static_cast<std::uint64_t>(kMessages - 1));
}

TEST(ReliableDelivery, ExhaustedRetryBudgetThrows) {
  mpi::FaultOptions plan;
  plan.drop_prob = 1.0;  // nothing ever arrives
  try {
    mpi::run(
        2,
        [](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            comm.send_reliable_value(42, 1);
          } else {
            (void)comm.recv_reliable_value<int>(0);
          }
        },
        with_faults(plan, /*max_retries=*/2));
    FAIL() << "expected MpiError";
  } catch (const mpi::MpiError& e) {
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
  }
}

TEST(RankFailure, KilledRankMidCollectiveFailsEverySurvivor) {
  mpi::FaultOptions plan;
  plan.kill_rank = 2;
  plan.kill_at_call = 5;
  std::array<std::atomic<bool>, 4> saw_failure{};

  try {
    mpi::run(
        4,
        [&saw_failure](mpi::Comm& comm) {
          try {
            for (int i = 0; i < 10; ++i) comm.barrier();
          } catch (const mpi::RankFailedError&) {
            saw_failure[static_cast<std::size_t>(comm.rank())] = true;
            throw;
          }
        },
        with_faults(plan));
    FAIL() << "expected RankFailedError";
  } catch (const mpi::RankFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos);
    EXPECT_NE(what.find("killed by fault injection"), std::string::npos);
  }
  // Nobody hung: the dead rank threw, and every survivor was unblocked
  // with the same error class.
  for (const auto& saw : saw_failure) EXPECT_TRUE(saw.load());
}

TEST(RankFailure, KilledRankMidP2PUnblocksBlockedReceiver) {
  mpi::FaultOptions plan;
  plan.kill_rank = 1;
  plan.kill_at_call = 1;  // rank 1 dies at its very first primitive call
  std::atomic<bool> receiver_failed{false};

  EXPECT_THROW(
      mpi::run(
          2,
          [&receiver_failed](mpi::Comm& comm) {
            if (comm.rank() == 0) {
              try {
                (void)comm.recv_value<int>(1, 0);  // never arrives
              } catch (const mpi::RankFailedError&) {
                receiver_failed = true;
                throw;
              }
            } else {
              comm.send_value(7, 0, 0);  // dies inside this call
            }
          },
          with_faults(plan)),
      mpi::RankFailedError);
  EXPECT_TRUE(receiver_failed.load());
}

TEST(RankFailure, FaultCountersAppearInTransportReport) {
  mpi::FaultOptions plan;
  plan.seed = 5;
  plan.drop_prob = 0.4;
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < 12; ++i) comm.send_reliable_value(i, 1);
        } else {
          for (int i = 0; i < 12; ++i) {
            (void)comm.recv_reliable_value<int>(0);
          }
        }
      },
      with_faults(plan));
  const std::string report = mpi::transport_report(result.total_stats());
  EXPECT_NE(report.find("fault injection:"), std::string::npos);
  EXPECT_NE(report.find("reliable delivery:"), std::string::npos);

  // Fault-free stats keep the report free of fault rows.
  const auto clean = ring_run(2, 2, mpi::RuntimeOptions{});
  EXPECT_EQ(mpi::transport_report(clean.total_stats()).find("fault"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection on split-created communicators.  The injector keys on
// world ranks and user-level p2p frames, so subcomm traffic must see the
// same treatment as world traffic — and collectives (internal frames) must
// stay immune no matter which comm they run on.

TEST(SubcommFaults, ReliableDeliveryRecoversDropsOnSubcomm) {
  mpi::FaultOptions plan;
  plan.seed = 11;
  plan.drop_prob = 0.3;
  mpi::run(
      6,
      [](mpi::Comm& world) {
        // Even/odd subcomms of 3 ranks each; ring of reliable messages
        // inside each subcomm.  Staggered send/recv order: acks are only
        // emitted by recv_reliable, so a ring of simultaneous blocking
        // reliable sends would wait on acks that can never be produced.
        mpi::Comm sub = world.split(world.rank() % 2, world.rank());
        const int p = sub.size();
        const int next = (sub.rank() + 1) % p;
        const int prev = (sub.rank() - 1 + p) % p;
        for (int i = 0; i < 8; ++i) {
          if (sub.rank() % 2 == 0) {
            sub.send_reliable_value(sub.rank() * 100 + i, next, 3);
            const int got = sub.recv_reliable_value<int>(prev, 3);
            EXPECT_EQ(got, prev * 100 + i);
          } else {
            const int got = sub.recv_reliable_value<int>(prev, 3);
            EXPECT_EQ(got, prev * 100 + i);
            sub.send_reliable_value(sub.rank() * 100 + i, next, 3);
          }
        }
      },
      with_faults(plan, /*max_retries=*/32));
}

TEST(SubcommFaults, DuplicatesFilteredExactlyOnceOnSubcomm) {
  mpi::FaultOptions plan;
  plan.seed = 7;
  plan.dup_prob = 0.5;
  mpi::run(
      4,
      [](mpi::Comm& world) {
        mpi::Comm sub = world.split(world.rank() / 2, world.rank());
        if (sub.rank() == 0) {
          for (int i = 0; i < 10; ++i) sub.send_reliable_value(i, 1);
        } else {
          for (int i = 0; i < 10; ++i) {
            // Exactly-once and in order despite duplicated frames.
            EXPECT_EQ(sub.recv_reliable_value<int>(0), i);
          }
        }
      },
      with_faults(plan));
}

TEST(SubcommFaults, CollectivesOnSubcommsAreImmuneToInjection) {
  // drop=1.0 destroys every user p2p frame, yet collectives ride internal
  // channels: a subcomm allreduce must still complete and be exact.
  mpi::FaultOptions plan;
  plan.drop_prob = 1.0;
  plan.delay_prob = 1.0;
  mpi::run(
      6,
      [](mpi::Comm& world) {
        mpi::Comm sub = world.split(world.rank() % 2, world.rank());
        const int sum = sub.allreduce_value(
            world.rank(), [](int a, int b) { return a + b; });
        const int want = world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
        EXPECT_EQ(sum, want);
      },
      with_faults(plan));
}

TEST(SubcommFaults, KillAfterSplitFailsSurvivorsInBothSubcomms) {
  // Rank 3 dies after the split (its 2nd primitive call).  Rank death
  // degrades the whole world, so survivors blocked in either subcomm —
  // including the one rank 3 never joined — must all see RankFailedError.
  //
  // This test was the long-standing "passes on rerun" flake in this
  // binary.  The earlier version raced on thread scheduling twice over:
  //  (a) it ran a BOUNDED loop of 50 allreduces, silently assuming the
  //      kill (rank 3's 2nd call) lands before the independent even
  //      subcomm drains all 50 — on a loaded one-core host ranks 0/1
  //      could finish first and return cleanly; and
  //  (b) it counted failures only inside the loop, while the split
  //      itself sat outside the try — a survivor scheduled late enough
  //      correctly observes RankFailedError already AT its split call
  //      and slipped past the counter.
  // Neither was a runtime bug: every rank always got RankFailedError.
  // The loop is now unbounded (the even subcomm can never outrun the
  // kill; a genuine propagation bug shows up as a test timeout, not a
  // flake) and the counter wraps the whole rank body, so the outcome is
  // schedule-independent.  Repeated in-process to pin that cheaply.
  mpi::FaultOptions plan;
  plan.kill_rank = 3;
  plan.kill_at_call = 2;
  for (int rep = 0; rep < 10; ++rep) {
    SCOPED_TRACE(rep);
    std::atomic<int> failures{0};
    EXPECT_THROW(
        mpi::run(
            4,
            [&failures](mpi::Comm& world) {
              try {
                mpi::Comm sub = world.split(world.rank() / 2, world.rank());
                for (int i = 0;; ++i) {
                  (void)sub.allreduce_value(i, [](int a, int b) {
                    return a + b;
                  });
                }
              } catch (const mpi::RankFailedError&) {
                failures.fetch_add(1);
                throw;
              }
            },
            with_faults(plan)),
        mpi::RankFailedError);
    // The killed rank observes its own death as RankFailedError too: 4.
    EXPECT_EQ(failures.load(), 4) << "every rank must fail, none may hang";
  }
}

TEST(ReliableDelivery, SoleSurvivorSenderTimesOutInsteadOfHanging) {
  // Regression: when the stall-proof check expires the *calling* thread's
  // own ack timeout, the wakeup used to be lost (the caller was not yet in
  // its condition-variable wait) — with no other live rank to re-notify,
  // the sender slept forever.  Found by mpifuzz: the sole surviving sender
  // must instead burn its retry budget and throw.
  mpi::FaultOptions plan;
  plan.seed = 3;
  try {
    mpi::run(
        2,
        [](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            comm.send_reliable_value(1, 1);  // consumed, acked
            comm.send_reliable_value(2, 1);  // receiver already gone
          } else {
            (void)comm.recv_reliable_value<int>(0);
            // exit without receiving the second message
          }
        },
        with_faults(plan, /*max_retries=*/2));
    FAIL() << "expected MpiError";
  } catch (const mpi::MpiError& e) {
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
  }
}
