// Abort propagation: one rank throwing must unblock every other rank with
// AbortError, and run() must rethrow the original exception to the caller
// (the secondary AbortErrors are never what the user sees).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;

TEST(Abort, ThrowMidP2PUnblocksEveryBlockedReceiver) {
  std::atomic<int> aborted_survivors{0};
  try {
    mpi::run(4, [&aborted_survivors](mpi::Comm& comm) {
      if (comm.rank() == 0) {
        throw std::runtime_error("boom in rank 0");
      }
      try {
        // Blocks forever: rank 0 dies before sending anything.
        (void)comm.recv_value<int>(0, 0);
      } catch (const mpi::AbortError&) {
        ++aborted_survivors;
        throw;
      }
    });
    FAIL() << "expected the original exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom in rank 0");
  }
  EXPECT_EQ(aborted_survivors.load(), 3);
}

TEST(Abort, ThrowMidCollectiveUnblocksEveryParticipant) {
  std::atomic<int> aborted_survivors{0};
  try {
    mpi::run(4, [&aborted_survivors](mpi::Comm& comm) {
      try {
        for (int i = 0; i < 8; ++i) {
          if (comm.rank() == 1 && i == 3) {
            throw std::runtime_error("boom mid-barrier");
          }
          comm.barrier();
        }
      } catch (const mpi::AbortError&) {
        ++aborted_survivors;
        throw;
      }
    });
    FAIL() << "expected the original exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom mid-barrier");
  }
  EXPECT_EQ(aborted_survivors.load(), 3);
}

TEST(Abort, ThrowMidRendezvousSendUnblocksTheSender) {
  // A rendezvous sender blocked on a never-posted receive must also be
  // unblocked when another rank dies.
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 0;  // every nonempty send is a rendezvous
  std::atomic<bool> sender_aborted{false};
  try {
    mpi::run(
        2,
        [&sender_aborted](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            try {
              comm.send_value(1, 1, 0);  // blocks: rank 1 never receives
            } catch (const mpi::AbortError&) {
              sender_aborted = true;
              throw;
            }
          } else {
            throw std::runtime_error("receiver died first");
          }
        },
        opts);
    FAIL() << "expected the original exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "receiver died first");
  }
  EXPECT_TRUE(sender_aborted.load());
}

TEST(Abort, AbortErrorCarriesTheRootCauseMessage) {
  std::string survivor_message;
  try {
    mpi::run(2, [&survivor_message](mpi::Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("original cause");
      try {
        (void)comm.recv_value<int>(0, 0);
      } catch (const mpi::AbortError& e) {
        survivor_message = e.what();
        throw;
      }
    });
    FAIL() << "expected the original exception to be rethrown";
  } catch (const std::runtime_error&) {
  }
  EXPECT_NE(survivor_message.find("original cause"), std::string::npos);
}
