#include <gtest/gtest.h>

#include "perfmodel/machine.hpp"
#include "support/error.hpp"

namespace pm = dipdc::perfmodel;

TEST(Placement, BlockSplitsContiguously) {
  pm::Placement p{pm::PlacementPolicy::kBlock};
  // 8 ranks over 2 nodes: 0-3 on node 0, 4-7 on node 1.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.node_of(r, 8, 2), 0) << r;
  for (int r = 4; r < 8; ++r) EXPECT_EQ(p.node_of(r, 8, 2), 1) << r;
}

TEST(Placement, BlockWithUnevenRanks) {
  pm::Placement p{pm::PlacementPolicy::kBlock};
  // 5 ranks over 2 nodes: ceil(5/2)=3 on node 0, rest on node 1.
  EXPECT_EQ(p.node_of(0, 5, 2), 0);
  EXPECT_EQ(p.node_of(2, 5, 2), 0);
  EXPECT_EQ(p.node_of(3, 5, 2), 1);
  EXPECT_EQ(p.node_of(4, 5, 2), 1);
}

TEST(Placement, RoundRobinCycles) {
  pm::Placement p{pm::PlacementPolicy::kRoundRobin};
  EXPECT_EQ(p.node_of(0, 6, 3), 0);
  EXPECT_EQ(p.node_of(1, 6, 3), 1);
  EXPECT_EQ(p.node_of(2, 6, 3), 2);
  EXPECT_EQ(p.node_of(3, 6, 3), 0);
}

TEST(Placement, SingleNodeAlwaysZero) {
  pm::Placement p{};
  for (int r = 0; r < 7; ++r) EXPECT_EQ(p.node_of(r, 7, 1), 0);
}

TEST(Placement, RejectsBadRank) {
  pm::Placement p{};
  EXPECT_THROW((void)p.node_of(5, 4, 1), dipdc::support::PreconditionError);
  EXPECT_THROW((void)p.node_of(-1, 4, 1), dipdc::support::PreconditionError);
}

TEST(MachineConfig, MonsoonLikeShape) {
  const auto cfg = pm::MachineConfig::monsoon_like(4);
  EXPECT_EQ(cfg.nodes, 4);
  EXPECT_EQ(cfg.cores_per_node, 32);
  EXPECT_EQ(cfg.total_cores(), 128);
}

TEST(MachineConfig, ExternalLoadDefaultsToZero) {
  const pm::MachineConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.external_load(0), 0.0);
  EXPECT_DOUBLE_EQ(cfg.external_load(99), 0.0);
}

TEST(MachineConfig, ExternalLoadClamped) {
  pm::MachineConfig cfg;
  cfg.external_bw_load = {2.0};
  EXPECT_DOUBLE_EQ(cfg.external_load(0), 0.99);
}

TEST(CostModel, RanksPerNodeCounts) {
  auto cfg = pm::MachineConfig::monsoon_like(2);
  pm::CostModel cm(cfg, pm::Placement{}, 6);
  EXPECT_EQ(cm.ranks_on_node(0), 3);
  EXPECT_EQ(cm.ranks_on_node(1), 3);
  EXPECT_EQ(cm.node_of(0), 0);
  EXPECT_EQ(cm.node_of(5), 1);
}

TEST(CostModel, IntraNodeMessagesAreCheaper) {
  auto cfg = pm::MachineConfig::monsoon_like(2);
  pm::CostModel cm(cfg, pm::Placement{}, 4);  // ranks 0,1 node 0; 2,3 node 1
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(cm.message_time(0, 1, bytes), cm.message_time(0, 2, bytes));
}

TEST(CostModel, MessageTimeIsHockney) {
  pm::MachineConfig cfg;
  cfg.intra_latency = 1e-6;
  cfg.intra_bandwidth = 1e9;
  pm::CostModel cm(cfg, pm::Placement{}, 2);
  EXPECT_DOUBLE_EQ(cm.message_time(0, 1, 0), 1e-6);
  EXPECT_DOUBLE_EQ(cm.message_time(0, 1, 1000), 1e-6 + 1000.0 / 1e9);
}

TEST(CostModel, KernelTimeRoofline) {
  pm::MachineConfig cfg;
  cfg.core_flops = 1e9;
  cfg.node_mem_bandwidth = 1e9;
  pm::CostModel cm(cfg, pm::Placement{}, 1);
  // Compute-bound kernel: many flops, no traffic.
  EXPECT_DOUBLE_EQ(cm.kernel_time(0, 1e9, 0.0), 1.0);
  // Memory-bound kernel: no flops, much traffic.
  EXPECT_DOUBLE_EQ(cm.kernel_time(0, 0.0, 2e9), 2.0);
  // Roofline takes the max.
  EXPECT_DOUBLE_EQ(cm.kernel_time(0, 1e9, 2e9), 2.0);
}

TEST(CostModel, BandwidthShareSplitsAcrossRanks) {
  pm::MachineConfig cfg;
  cfg.node_mem_bandwidth = 8e9;
  pm::CostModel one(cfg, pm::Placement{}, 1);
  pm::CostModel four(cfg, pm::Placement{}, 4);
  EXPECT_DOUBLE_EQ(one.bandwidth_share(0), 8e9);
  EXPECT_DOUBLE_EQ(four.bandwidth_share(0), 2e9);
}

TEST(CostModel, TwoNodesDoubleAggregateBandwidth) {
  // The Module 4 lesson: p ranks on 2 nodes see twice the per-rank share
  // of memory bandwidth that p ranks on 1 node do.
  pm::MachineConfig one_node = pm::MachineConfig::monsoon_like(1);
  pm::MachineConfig two_nodes = pm::MachineConfig::monsoon_like(2);
  pm::CostModel cm1(one_node, pm::Placement{}, 8);
  pm::CostModel cm2(two_nodes, pm::Placement{}, 8);
  EXPECT_DOUBLE_EQ(cm2.bandwidth_share(0), 2.0 * cm1.bandwidth_share(0));
}

TEST(CostModel, ExternalLoadStealsBandwidth) {
  pm::MachineConfig cfg;
  cfg.node_mem_bandwidth = 10e9;
  cfg.external_bw_load = {0.5};
  pm::CostModel cm(cfg, pm::Placement{}, 1);
  EXPECT_DOUBLE_EQ(cm.bandwidth_share(0), 5e9);
  // Memory-bound kernels slow down correspondingly.
  EXPECT_DOUBLE_EQ(cm.kernel_time(0, 0.0, 5e9), 1.0);
}

TEST(CostModel, KernelRejectsNegativeInputs) {
  pm::MachineConfig cfg;
  pm::CostModel cm(cfg, pm::Placement{}, 1);
  EXPECT_THROW((void)cm.kernel_time(0, -1.0, 0.0),
               dipdc::support::PreconditionError);
}

TEST(Scaling, SpeedupsRelativeToFirst) {
  const auto s = pm::speedups({10.0, 5.0, 2.5});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
}

TEST(Scaling, EmptyAndZeroSafe) {
  EXPECT_TRUE(pm::speedups({}).empty());
  const auto s = pm::speedups({1.0, 0.0});
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Scaling, ParallelEfficiency) {
  EXPECT_DOUBLE_EQ(pm::parallel_efficiency(8.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(pm::parallel_efficiency(4.0, 8), 0.5);
  EXPECT_DOUBLE_EQ(pm::parallel_efficiency(4.0, 0), 0.0);
}

TEST(Scaling, WeakEfficiency) {
  EXPECT_DOUBLE_EQ(pm::weak_efficiency(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(pm::weak_efficiency(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(pm::weak_efficiency(1.0, 0.0), 0.0);
}
