// Module 6 (extension): halo exchange correctness across rank counts,
// exchange styles and halo widths, plus the latency-hiding effect.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "minimpi/runtime.hpp"
#include "modules/stencil/module6.hpp"

namespace mpi = dipdc::minimpi;
namespace m6 = dipdc::modules::stencil;

namespace {

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

TEST(Sequential, DiffusionConservesInteriorMassApproximately) {
  m6::Config cfg;
  cfg.global_cells = 1000;
  cfg.iterations = 8;
  const auto field = m6::run_sequential(cfg);
  ASSERT_EQ(field.size(), 1000u);
  // Diffusion with zero boundaries only loses mass through the two edges.
  double initial = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) initial += m6::initial_value(i);
  const double final_sum = sum_of(field);
  EXPECT_LT(final_sum, initial + 1e-9);
  EXPECT_GT(final_sum, initial * 0.9);
}

TEST(Sequential, SmoothingReducesRoughness) {
  m6::Config cfg;
  cfg.global_cells = 512;
  cfg.iterations = 32;
  const auto field = m6::run_sequential(cfg);
  double rough_before = 0.0, rough_after = 0.0;
  for (std::size_t i = 1; i < 512; ++i) {
    rough_before += std::fabs(m6::initial_value(i) - m6::initial_value(i - 1));
    rough_after += std::fabs(field[i] - field[i - 1]);
  }
  EXPECT_LT(rough_after, rough_before / 4.0);
}

class StencilSweep
    : public ::testing::TestWithParam<std::tuple<int, int, m6::Exchange>> {};

TEST_P(StencilSweep, DistributedMatchesSequentialChecksum) {
  const auto [p, halo, exchange] = GetParam();
  if (exchange == m6::Exchange::kOverlapped && halo != 1) {
    GTEST_SKIP() << "overlap is implemented for halo width 1";
  }
  m6::Config cfg;
  cfg.global_cells = 4096;
  cfg.iterations = 24;
  cfg.halo_width = halo;
  cfg.exchange = exchange;
  const double expect = sum_of(m6::run_sequential(cfg));

  mpi::run(p, [&](mpi::Comm& comm) {
    const auto r = m6::run_distributed(comm, cfg);
    EXPECT_NEAR(r.checksum, expect, 1e-9 * std::fabs(expect) + 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksHalosExchanges, StencilSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(m6::Exchange::kBlocking,
                                         m6::Exchange::kOverlapped)));

TEST(Stencil, DeepHalosReduceMessageCount) {
  m6::Config narrow, wide;
  narrow.global_cells = wide.global_cells = 4096;
  narrow.iterations = wide.iterations = 32;
  narrow.halo_width = 1;
  wide.halo_width = 4;
  std::uint64_t msgs_narrow = 0, msgs_wide = 0;
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto a = m6::run_distributed(comm, narrow);
    const auto b = m6::run_distributed(comm, wide);
    if (comm.rank() == 1) {  // an interior rank with two neighbours
      msgs_narrow = a.halo_messages;
      msgs_wide = b.halo_messages;
    }
  });
  EXPECT_EQ(msgs_narrow, 64u);  // 2 per round x 32 rounds
  EXPECT_EQ(msgs_wide, 16u);    // 2 per round x 8 rounds
}

TEST(Stencil, OverlapHidesCommunication) {
  // On a multi-node machine with meaningful latency, the overlapped
  // exchange finishes sooner than the serialized one.
  m6::Config blocking, overlapped;
  blocking.global_cells = overlapped.global_cells = 1 << 15;
  blocking.iterations = overlapped.iterations = 64;
  blocking.exchange = m6::Exchange::kBlocking;
  overlapped.exchange = m6::Exchange::kOverlapped;

  mpi::RuntimeOptions opts;
  opts.machine = dipdc::perfmodel::MachineConfig::monsoon_like(4);
  opts.machine.inter_latency = 2e-5;  // a slow interconnect

  double t_blocking = 0.0, t_overlapped = 0.0;
  mpi::run(
      8,
      [&](mpi::Comm& comm) {
        t_blocking = m6::run_distributed(comm, blocking).sim_time;
      },
      opts);
  mpi::run(
      8,
      [&](mpi::Comm& comm) {
        t_overlapped = m6::run_distributed(comm, overlapped).sim_time;
      },
      opts);
  EXPECT_LT(t_overlapped, t_blocking);
}

TEST(Stencil, RejectsBadConfigs) {
  m6::Config cfg;
  cfg.iterations = 10;
  cfg.halo_width = 3;  // not a divisor
  EXPECT_THROW((void)m6::run_sequential(cfg),
               dipdc::support::PreconditionError);
  m6::Config overlap_wide;
  overlap_wide.exchange = m6::Exchange::kOverlapped;
  overlap_wide.halo_width = 2;
  overlap_wide.iterations = 4;
  EXPECT_THROW((void)m6::run_sequential(overlap_wide),
               dipdc::support::PreconditionError);
  m6::Config unstable;
  unstable.alpha = 0.9;
  EXPECT_THROW((void)m6::run_sequential(unstable),
               dipdc::support::PreconditionError);
}

TEST(Stencil, TooManyRanksForTheGridRejected) {
  m6::Config cfg;
  cfg.global_cells = 4;
  cfg.halo_width = 2;
  cfg.iterations = 2;
  EXPECT_THROW(
      mpi::run(4, [&](mpi::Comm& comm) { m6::run_distributed(comm, cfg); }),
      dipdc::support::PreconditionError);
}
