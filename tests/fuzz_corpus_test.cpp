// Replays the checked-in fuzz corpus (tests/fuzz_corpus/*.seed) against
// the oracle on every test run.  The corpus pins down behaviours the
// random fuzzer only hits occasionally — wildcard-matching races, subcomm
// collectives under faults, reliable delivery under drops, rank kills —
// and doubles as the regression net for the seed-file replay path: every
// program here is rebuilt from its few-number spec, never deserialized.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/check.hpp"
#include "fuzz/execute.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/program.hpp"
#include "fuzz/seedfile.hpp"

namespace fz = dipdc::fuzz;

namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DIPDC_CORPUS_DIR)) {
    if (entry.path().extension() == ".seed") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

TEST(FuzzCorpus, HasAtLeastTwentySeeds) {
  EXPECT_GE(corpus_files().size(), 20u);
}

TEST(FuzzCorpus, EverySeedReplaysCleanly) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const fz::Program p = fz::load_seed(path).materialize();
    const fz::CheckResult r = fz::check(p, fz::execute(p));
    EXPECT_TRUE(r.ok) << r.summary();
  }
}

TEST(FuzzCorpus, ReplayIsBitIdenticalFromSeedAlone) {
  // Two independent loads + executions must agree.  Digest equality is
  // asserted only for plans that cannot drop or duplicate (retry and
  // stall-proof counters under lossy plans depend on thread scheduling);
  // lossy seeds still assert that both runs pass the oracle.
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const fz::Program p1 = fz::load_seed(path).materialize();
    const fz::Program p2 = fz::load_seed(path).materialize();
    EXPECT_EQ(fz::describe(p1), fz::describe(p2))
        << "materialize() is not deterministic";

    const auto& f = p1.options.faults;
    const bool kills = f.kill_rank >= 0 && f.kill_at_call > 0;
    const bool lossy = f.drop_prob > 0.0 || f.dup_prob > 0.0;

    const fz::ExecutionOutcome o1 = fz::execute(p1);
    const fz::ExecutionOutcome o2 = fz::execute(p2);
    const fz::Expectation e = fz::oracle(p1);
    EXPECT_TRUE(fz::check(p1, e, o1).ok) << fz::check(p1, e, o1).summary();
    EXPECT_TRUE(fz::check(p2, e, o2).ok) << fz::check(p2, e, o2).summary();
    if (!lossy && !kills) {
      EXPECT_EQ(fz::digest(p1, e, o1), fz::digest(p2, e, o2))
          << "replay digest differs between runs";
    }
  }
}

TEST(FuzzCorpus, EverySeedIsBitIdenticalAcrossBackends) {
  // The cross-backend conformance oracle: each corpus seed replays on the
  // shm and tcp transports and must (a) pass the sequential oracle there
  // and (b) for non-lossy plans, produce an outcome digest bit-identical
  // to the threads run.  The simulated-timing fields travel inside the
  // wire frames, so any divergence means the seam corrupted an envelope.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
  constexpr bool kSkipShm = true;
#else
  constexpr bool kSkipShm = false;
#endif
#elif defined(__SANITIZE_THREAD__)
  constexpr bool kSkipShm = true;
#else
  constexpr bool kSkipShm = false;
#endif
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const fz::Program p = fz::load_seed(path).materialize();
    const fz::BackendEquivalence eq = fz::check_across_backends(p, kSkipShm);
    EXPECT_TRUE(eq.ok) << eq.summary();
  }
}
