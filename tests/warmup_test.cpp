// The ancillary warm-up exercises must self-verify on any world size.
#include <gtest/gtest.h>

#include "minimpi/runtime.hpp"
#include "modules/warmup/warmup.hpp"

namespace mpi = dipdc::minimpi;
namespace wu = dipdc::modules::warmup;

class WarmupSweep : public ::testing::TestWithParam<int> {};

TEST_P(WarmupSweep, AllExercisesPass) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    const auto reports = wu::run_all(comm);
    ASSERT_EQ(reports.size(), 6u);
    for (const auto& r : reports) {
      EXPECT_TRUE(r.passed) << r.name << ": " << r.detail;
      EXPECT_FALSE(r.detail.empty()) << r.name;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, WarmupSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Warmup, PiEstimateTightensWithMoreSamples) {
  mpi::run(4, [](mpi::Comm& comm) {
    const auto coarse = wu::monte_carlo_pi(comm, 1000);
    const auto fine = wu::monte_carlo_pi(comm, 500000);
    EXPECT_TRUE(fine.passed) << fine.detail;
    (void)coarse;  // the coarse estimate may or may not pass the 0.05 gate
  });
}

TEST(Warmup, ChainSumMatchesClosedForm) {
  for (const int p : {1, 2, 5, 9}) {
    mpi::run(p, [p](mpi::Comm& comm) {
      const auto r = wu::chain_sum(comm);
      EXPECT_TRUE(r.passed) << "p=" << p << ": " << r.detail;
    });
  }
}

TEST(Warmup, ExercisesUseOnlyPointToPointWhereRequired) {
  // The chain/relay exercises are "no collectives allowed": verify via the
  // instrumentation that they used none.
  const auto result = mpi::run(4, [](mpi::Comm& comm) {
    (void)wu::chain_sum(comm);
    (void)wu::relay_broadcast(comm);
  });
  const auto total = result.total_stats();
  EXPECT_EQ(total.calls_to(mpi::Primitive::kReduce), 0u);
  EXPECT_EQ(total.calls_to(mpi::Primitive::kBcast), 0u);
  EXPECT_GT(total.calls_to(mpi::Primitive::kSend), 0u);
}
