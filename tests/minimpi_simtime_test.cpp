// Simulated-time semantics: the Hockney message model, roofline kernels,
// and the node-placement effects the modules' experiments rely on.
#include <gtest/gtest.h>

#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "perfmodel/machine.hpp"

namespace mpi = dipdc::minimpi;
namespace pm = dipdc::perfmodel;

namespace {

mpi::RuntimeOptions simple_machine() {
  mpi::RuntimeOptions opts;
  opts.machine.nodes = 1;
  opts.machine.intra_latency = 1e-6;
  opts.machine.intra_bandwidth = 1e9;
  opts.machine.core_flops = 1e9;
  opts.machine.node_mem_bandwidth = 1e9;
  return opts;
}

}  // namespace

TEST(SimTime, ReceiverClockAdvancesByMessageTime) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::uint8_t> data(1000);
          comm.send(std::span<const std::uint8_t>(data), 1);
        } else {
          (void)comm.recv_vector<std::uint8_t>(0);
        }
      },
      simple_machine());
  // Receiver finishes at alpha + bytes/bandwidth = 1e-6 + 1000/1e9 = 2e-6.
  EXPECT_NEAR(result.sim_times[1], 2e-6, 1e-12);
  // Eager sender only pays the (much smaller) injection overhead.
  EXPECT_NEAR(result.sim_times[0], 1e-7, 1e-12);
}

TEST(SimTime, RendezvousSynchronisesSenderWithReceiver) {
  auto opts = simple_machine();
  opts.eager_threshold = 0;
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::uint8_t> data(1000);
          comm.send(std::span<const std::uint8_t>(data), 1);
        } else {
          comm.sim_advance(1.0);  // receiver is busy for a long time
          (void)comm.recv_vector<std::uint8_t>(0);
        }
      },
      opts);
  // The receiver reaches the recv at t=1.0 with the message head long
  // arrived; it still pays the 1 us payload ingestion (1000 B at 1 GB/s),
  // and the rendezvous sender synchronises to the same completion.
  EXPECT_NEAR(result.sim_times[1], 1.0 + 1e-6, 1e-9);
  EXPECT_NEAR(result.sim_times[0], 1.0 + 1e-6, 1e-9);
}

TEST(SimTime, LateReceiverWaitsOnlyUntilArrival) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          comm.sim_advance(0.5);  // sender computes first
          comm.send_value<char>('x', 1);
        } else {
          (void)comm.recv_value<char>(0);
        }
      },
      simple_machine());
  // Receiver idles from 0 until the message lands at 0.5 + msg time.
  EXPECT_NEAR(result.sim_times[1], 0.5 + 1e-6 + 1e-9, 1e-12);
  const auto& recv_stats = result.rank_stats[1];
  EXPECT_NEAR(recv_stats.sim_comm_seconds, result.sim_times[1], 1e-12);
}

TEST(SimTime, FanInSerializesOnTheReceiverLink) {
  // Four senders each ship 1 MB to rank 0 at t=0.  The receiver's ingress
  // link serializes the payloads, so rank 0 finishes after ingesting the
  // combined 4 MB (4 ms at 1 GB/s), not after a single message time.
  const auto result = mpi::run(
      5,
      [](mpi::Comm& comm) {
        const std::size_t n = 1000000;
        if (comm.rank() == 0) {
          for (int i = 0; i < 4; ++i) {
            (void)comm.recv_vector<std::uint8_t>();
          }
        } else {
          std::vector<std::uint8_t> data(n);
          comm.send(std::span<const std::uint8_t>(data), 0);
        }
      },
      simple_machine());
  EXPECT_GT(result.sim_times[0], 4e-3);
  EXPECT_LT(result.sim_times[0], 4.1e-3);
}

TEST(SimTime, ComputeAdvancesOnlyTheComputingRank) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) comm.sim_compute(2e9, 0.0);  // 2 seconds
      },
      simple_machine());
  EXPECT_NEAR(result.sim_times[0], 2.0, 1e-12);
  EXPECT_NEAR(result.sim_times[1], 0.0, 1e-12);
  EXPECT_NEAR(result.rank_stats[0].sim_compute_seconds, 2.0, 1e-12);
}

TEST(SimTime, MemoryBoundKernelsContendOnSharedBandwidth) {
  // The same memory-bound kernel on 1 vs 4 ranks of a single node: with 4
  // resident ranks each gets 1/4 of the bandwidth, so per-rank time is 4x
  // and there is no speedup — the saturating "Program 1" of Figure 1.
  auto opts = simple_machine();
  const double bytes_per_rank = 1e9;  // 1 second at full bandwidth

  const auto t1 = mpi::run(
      1, [&](mpi::Comm& comm) { comm.sim_compute(0.0, bytes_per_rank); },
      opts);
  const auto t4 = mpi::run(
      4, [&](mpi::Comm& comm) { comm.sim_compute(0.0, bytes_per_rank / 4); },
      opts);
  EXPECT_NEAR(t1.max_sim_time(), 1.0, 1e-9);
  // Each rank moves 1/4 of the data at 1/4 of the bandwidth: same time.
  EXPECT_NEAR(t4.max_sim_time(), 1.0, 1e-9);
}

TEST(SimTime, ComputeBoundKernelsScaleLinearly) {
  auto opts = simple_machine();
  const double total_flops = 4e9;
  const auto t1 = mpi::run(
      1, [&](mpi::Comm& comm) { comm.sim_compute(total_flops, 0.0); }, opts);
  const auto t4 = mpi::run(
      4, [&](mpi::Comm& comm) { comm.sim_compute(total_flops / 4, 0.0); },
      opts);
  EXPECT_NEAR(t1.max_sim_time() / t4.max_sim_time(), 4.0, 1e-9);
}

TEST(SimTime, TwoNodesBeatOneForMemoryBoundWork) {
  // Module 4 activity 3: p ranks on 2 nodes exploit twice the aggregate
  // memory bandwidth of p ranks on 1 node.
  const double bytes_per_rank = 1e9;
  mpi::RuntimeOptions one;
  one.machine = simple_machine().machine;
  one.machine.nodes = 1;
  mpi::RuntimeOptions two = one;
  two.machine.nodes = 2;

  auto workload = [&](mpi::Comm& comm) {
    comm.sim_compute(0.0, bytes_per_rank);
  };
  const auto t_one = mpi::run(8, workload, one);
  const auto t_two = mpi::run(8, workload, two);
  EXPECT_NEAR(t_one.max_sim_time() / t_two.max_sim_time(), 2.0, 1e-9);
}

TEST(SimTime, InterNodeMessagesCostMore) {
  mpi::RuntimeOptions opts;
  opts.machine.nodes = 2;
  opts.machine.intra_latency = 1e-6;
  opts.machine.inter_latency = 10e-6;
  opts.machine.intra_bandwidth = 1e10;
  opts.machine.inter_bandwidth = 1e9;

  // 4 ranks, block placement: 0,1 on node 0; 2,3 on node 1.
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        std::vector<std::uint8_t> buf(1000);
        if (comm.rank() == 0) {
          comm.send(std::span<const std::uint8_t>(buf), 1);  // intra
          comm.send(std::span<const std::uint8_t>(buf), 2);  // inter
        } else if (comm.rank() == 1 || comm.rank() == 2) {
          (void)comm.recv_vector<std::uint8_t>(0);
        }
      },
      opts);
  // Rank 1 (same node) completes earlier than rank 2 (other node), even
  // though rank 2's message was sent later only by the injection overhead.
  EXPECT_LT(result.sim_times[1], result.sim_times[2]);
}

TEST(SimTime, ExternalCorunnerSlowsMemoryBoundKernels) {
  mpi::RuntimeOptions quiet = simple_machine();
  mpi::RuntimeOptions noisy = simple_machine();
  noisy.machine.external_bw_load = {0.5};

  auto workload = [](mpi::Comm& comm) { comm.sim_compute(0.0, 1e9); };
  const auto t_quiet = mpi::run(1, workload, quiet);
  const auto t_noisy = mpi::run(1, workload, noisy);
  EXPECT_NEAR(t_noisy.max_sim_time() / t_quiet.max_sim_time(), 2.0, 1e-9);
  // A compute-bound kernel is unaffected by the co-runner.
  auto compute = [](mpi::Comm& comm) { comm.sim_compute(1e9, 0.0); };
  const auto c_quiet = mpi::run(1, compute, quiet);
  const auto c_noisy = mpi::run(1, compute, noisy);
  EXPECT_NEAR(c_noisy.max_sim_time(), c_quiet.max_sim_time(), 1e-12);
}

TEST(SimTime, BarrierSynchronisesClocks) {
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        comm.sim_advance(static_cast<double>(comm.rank()));  // skewed work
        comm.barrier();
      },
      simple_machine());
  // After the barrier every clock is at least the slowest rank's time.
  for (const double t : result.sim_times) {
    EXPECT_GE(t, 3.0);
  }
}

TEST(SimTime, ReduceTimeGrowsWithLatency) {
  mpi::RuntimeOptions fast = simple_machine();
  mpi::RuntimeOptions slow = simple_machine();
  slow.machine.intra_latency = 1e-3;

  auto workload = [](mpi::Comm& comm) {
    const double v = 1.0;
    double out = 0.0;
    comm.reduce(std::span<const double>(&v, 1), std::span<double>(&out, 1),
                mpi::ops::Sum{}, 0);
  };
  const auto t_fast = mpi::run(8, workload, fast);
  const auto t_slow = mpi::run(8, workload, slow);
  EXPECT_GT(t_slow.max_sim_time(), t_fast.max_sim_time() * 100);
}

TEST(SimTime, WtimeIsMonotoneThroughOperations) {
  mpi::run(
      2,
      [](mpi::Comm& comm) {
        double last = comm.wtime();
        EXPECT_GE(last, 0.0);
        comm.sim_advance(0.25);
        EXPECT_GE(comm.wtime(), last);
        last = comm.wtime();
        comm.barrier();
        EXPECT_GE(comm.wtime(), last);
      },
      simple_machine());
}

TEST(SimTime, CommComputeAndIdleSecondsPartitionTheClock) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        comm.sim_compute(1e8, 0.0);  // kernel work -> sim_compute_seconds
        comm.sim_advance(0.125);     // explicit advance -> sim_idle_seconds
        if (comm.rank() == 0) {
          comm.send_value(1, 1);
        } else {
          (void)comm.recv_value<int>(0);
        }
      },
      simple_machine());
  for (const auto& s : result.rank_stats) {
    EXPECT_GT(s.sim_compute_seconds, 0.0);
    EXPECT_GT(s.sim_comm_seconds, 0.0);
    EXPECT_NEAR(s.sim_idle_seconds, 0.125, 1e-12);
  }
  for (std::size_t r = 0; r < result.sim_times.size(); ++r) {
    EXPECT_NEAR(result.rank_stats[r].sim_compute_seconds +
                    result.rank_stats[r].sim_comm_seconds +
                    result.rank_stats[r].sim_idle_seconds,
                result.sim_times[r], 1e-12);
  }
}
