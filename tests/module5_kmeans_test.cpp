// Module 5: distributed k-means — both communication strategies must match
// the sequential reference; communication volumes must rank as the module
// teaches (explicit assignments >> weighted means).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/runtime.hpp"
#include "modules/kmeans/module5.hpp"

namespace mpi = dipdc::minimpi;
namespace m5 = dipdc::modules::kmeans;
namespace io = dipdc::dataio;

namespace {

io::ClusteredDataset well_separated(std::size_t n, std::size_t k,
                                    std::uint64_t seed) {
  return io::generate_clusters(n, 2, k, 0.2, 0.0, 100.0, seed);
}

double centroid_set_distance(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t k,
                             std::size_t dim) {
  // Max over a-centroids of the distance to the nearest b-centroid
  // (order-insensitive comparison).
  double worst = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < k; ++j) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = a[i * dim + d] - b[j * dim + d];
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    worst = std::max(worst, best);
  }
  return std::sqrt(worst);
}

}  // namespace

TEST(Sequential, ConvergesOnSeparatedClusters) {
  const auto data = well_separated(2000, 4, 61);
  m5::Config cfg;
  cfg.k = 4;
  const auto r = m5::lloyd_sequential(data.data, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 1);
  // Found centroids sit near the generating centers.
  EXPECT_LT(centroid_set_distance(r.centroids,
                                  {data.true_centers.values().begin(),
                                   data.true_centers.values().end()},
                                  4, 2),
            1.0);
}

TEST(Sequential, InertiaDecreasesWithMoreClusters) {
  const auto data = well_separated(2000, 8, 67);
  m5::Config few, many;
  few.k = 2;
  many.k = 8;
  const auto rf = m5::lloyd_sequential(data.data, few);
  const auto rm = m5::lloyd_sequential(data.data, many);
  EXPECT_LT(rm.inertia, rf.inertia);
}

TEST(Sequential, RejectsBadK) {
  const auto data = well_separated(10, 2, 71);
  m5::Config cfg;
  cfg.k = 11;  // k > n
  EXPECT_THROW((void)m5::lloyd_sequential(data.data, cfg),
               dipdc::support::PreconditionError);
}

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<int, m5::Strategy>> {};

TEST_P(StrategySweep, DistributedMatchesSequential) {
  const auto [p, strategy] = GetParam();
  const auto data = well_separated(3000, 5, 73);
  m5::Config cfg;
  cfg.k = 5;
  cfg.strategy = strategy;
  const auto seq = m5::lloyd_sequential(data.data, cfg);

  mpi::run(p, [&](mpi::Comm& comm) {
    const auto dist = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, cfg);
    EXPECT_TRUE(dist.converged);
    EXPECT_LT(centroid_set_distance(dist.centroids, seq.centroids, 5, 2),
              1e-6);
    EXPECT_NEAR(dist.inertia, seq.inertia, 1e-6 * (1.0 + seq.inertia));
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndStrategies, StrategySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(m5::Strategy::kExplicitAssignments,
                                         m5::Strategy::kWeightedMeans)));

TEST(Strategies, ProduceIdenticalClusterings) {
  const auto data = well_separated(4000, 6, 79);
  m5::Config a, b;
  a.k = b.k = 6;
  a.strategy = m5::Strategy::kExplicitAssignments;
  b.strategy = m5::Strategy::kWeightedMeans;
  std::vector<double> ca, cb;
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto ra = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, a);
    const auto rb = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, b);
    EXPECT_LT(centroid_set_distance(ra.centroids, rb.centroids, 6, 2), 1e-6);
    if (comm.rank() == 0) {
      ca = ra.centroids;
      cb = rb.centroids;
    }
  });
}

TEST(Strategies, ExplicitAssignmentsCommunicateMuchMore) {
  // The module's communication-volume lesson: option A ships O(N) data per
  // iteration, option B ships O(k*d).
  const auto data = well_separated(20000, 4, 83);
  m5::Config a, b;
  a.k = b.k = 4;
  a.strategy = m5::Strategy::kExplicitAssignments;
  b.strategy = m5::Strategy::kWeightedMeans;
  std::uint64_t bytes_a = 0, bytes_b = 0;
  int iters_a = 0, iters_b = 0;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto ra = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, a);
    const auto rb = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, b);
    if (comm.rank() == 0) {
      bytes_a = ra.comm_bytes;
      bytes_b = rb.comm_bytes;
      iters_a = ra.iterations;
      iters_b = rb.iterations;
    }
  });
  ASSERT_GT(iters_a, 0);
  // Compare per-iteration volumes (iteration counts can differ by FP).
  const double per_a = static_cast<double>(bytes_a) / iters_a;
  const double per_b = static_cast<double>(bytes_b) / iters_b;
  EXPECT_GT(per_a, 3.0 * per_b);
}

TEST(Phases, LargeKShiftsTimeTowardCompute) {
  // Module headline: low k -> communication dominates; high k -> compute.
  const auto data = well_separated(5000, 2, 89);
  auto share_for_k = [&](std::size_t k) {
    m5::Config cfg;
    cfg.k = k;
    cfg.max_iterations = 10;
    cfg.tolerance = -1.0;  // run exactly 10 iterations for a fair split
    double compute = 0.0, comm_t = 0.0;
    mpi::run(8, [&](mpi::Comm& comm) {
      const auto r = m5::distributed(
          comm, comm.rank() == 0 ? data.data : io::Dataset{}, cfg);
      if (comm.rank() == 0) {
        compute = r.compute_time;
        comm_t = r.comm_time;
      }
    });
    return compute / (compute + comm_t);
  };
  const double low_k = share_for_k(2);
  const double high_k = share_for_k(64);
  EXPECT_GT(high_k, low_k);
}

TEST(Edge, KEqualsOneCollapsesToMean) {
  const auto data = well_separated(1000, 3, 97);
  m5::Config cfg;
  cfg.k = 1;
  mpi::run(3, [&](mpi::Comm& comm) {
    const auto r = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, cfg);
    EXPECT_TRUE(r.converged);
    // Single centroid = dataset mean.
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < data.data.size(); ++i) {
      mx += data.data.point(i)[0];
      my += data.data.point(i)[1];
    }
    mx /= static_cast<double>(data.data.size());
    my /= static_cast<double>(data.data.size());
    EXPECT_NEAR(r.centroids[0], mx, 1e-9);
    EXPECT_NEAR(r.centroids[1], my, 1e-9);
  });
}

TEST(Edge, KEqualsNAssignsOnePointEach) {
  const auto data = well_separated(12, 12, 101);
  m5::Config cfg;
  cfg.k = 12;
  const auto r = m5::lloyd_sequential(data.data, cfg);
  EXPECT_TRUE(r.converged);
}

TEST(Init, PlusPlusMatchesBetweenSequentialAndDistributed) {
  const auto data = well_separated(2000, 6, 103);
  m5::Config cfg;
  cfg.k = 6;
  cfg.init = m5::Init::kPlusPlus;
  cfg.init_seed = 9;
  const auto seq = m5::lloyd_sequential(data.data, cfg);
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto dist = m5::distributed(
        comm, comm.rank() == 0 ? data.data : io::Dataset{}, cfg);
    EXPECT_LT(centroid_set_distance(dist.centroids, seq.centroids, 6, 2),
              1e-6);
  });
}

TEST(Init, PlusPlusRecoversFromAdversarialFirstK) {
  // Construct a dataset whose first k points all sit in ONE cluster: the
  // module's first-k initialization starts all centroids there and often
  // converges to a worse local optimum than k-means++ seeding.
  const std::size_t k = 8;
  auto base = well_separated(4000, k, 107);
  // Move the first k points into cluster of point 0.
  for (std::size_t i = 1; i < k; ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      base.data.point(i)[d] = base.data.point(0)[d] + 1e-3 * static_cast<double>(i);
    }
  }
  m5::Config firstk, plusplus;
  firstk.k = plusplus.k = k;
  plusplus.init = m5::Init::kPlusPlus;
  plusplus.init_seed = 3;
  const auto r_first = m5::lloyd_sequential(base.data, firstk);
  const auto r_pp = m5::lloyd_sequential(base.data, plusplus);
  EXPECT_LE(r_pp.inertia, r_first.inertia * 1.001);
  // With well-separated blobs, ++ should in fact be much better.
  EXPECT_LT(r_pp.inertia, r_first.inertia * 0.7);
}

TEST(Init, PlusPlusIsSeedDeterministic) {
  const auto data = well_separated(1000, 3, 109);
  m5::Config cfg;
  cfg.k = 3;
  cfg.init = m5::Init::kPlusPlus;
  cfg.init_seed = 42;
  const auto a = m5::lloyd_sequential(data.data, cfg);
  const auto b = m5::lloyd_sequential(data.data, cfg);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.iterations, b.iterations);
}
