// Cache-simulator oracles: analytically known miss patterns.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "support/error.hpp"

namespace cs = dipdc::cachesim;

TEST(CacheLevel, ColdMissThenHit) {
  cs::CacheLevel cache({1024, 64, 2});
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(CacheLevel, SequentialStreamMissesOncePerLine) {
  cs::CacheLevel cache({32 * 1024, 64, 8});
  const std::size_t n = 16 * 1024;  // fits in cache
  for (std::size_t i = 0; i < n; ++i) {
    cache.access(i);
  }
  EXPECT_EQ(cache.misses(), n / 64);
}

TEST(CacheLevel, DirectMappedConflictThrashes) {
  // Two addresses mapping to the same set of a direct-mapped cache evict
  // each other on every access.
  cs::CacheLevel cache({1024, 64, 1});  // 16 sets
  const std::uint64_t a = 0;
  const std::uint64_t b = 1024;  // same set, different tag
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.access(a));
    EXPECT_FALSE(cache.access(b));
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheLevel, TwoWayAssociativityResolvesTheConflict) {
  cs::CacheLevel cache({2048, 64, 2});  // same 16 sets, 2 ways
  const std::uint64_t a = 0;
  const std::uint64_t b = 2048;
  cache.access(a);
  cache.access(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cache.access(a));
    EXPECT_TRUE(cache.access(b));
  }
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed) {
  // Fully associative 4-line cache.
  cs::CacheLevel cache({4 * 64, 64, 4});
  cache.access(0 * 64);
  cache.access(1 * 64);
  cache.access(2 * 64);
  cache.access(3 * 64);
  // Touch line 0 so line 1 is now LRU.
  EXPECT_TRUE(cache.access(0));
  // Install a 5th line; it must evict line 1.
  EXPECT_FALSE(cache.access(4 * 64));
  EXPECT_TRUE(cache.access(0));        // still resident
  EXPECT_FALSE(cache.access(1 * 64));  // evicted
}

TEST(CacheLevel, WorkingSetLargerThanCacheThrashes) {
  // Cyclic sweep over 2x the cache size with LRU never hits.
  cs::CacheLevel cache({1024, 64, 16});  // fully associative, 16 lines
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t line = 0; line < 32; ++line) {
      cache.access(line * 64);
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheLevel, ResetClearsEverything) {
  cs::CacheLevel cache({1024, 64, 2});
  cache.access(0);
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(cs::CacheLevel({1000, 64, 3}),
               dipdc::support::PreconditionError);
  EXPECT_THROW(cs::CacheLevel({1024, 0, 1}),
               dipdc::support::PreconditionError);
}

TEST(CacheHierarchy, L1MissCanHitL2) {
  cs::CacheHierarchy h({{128, 64, 2}, {4096, 64, 8}});
  // Fill beyond L1 (2 lines) but within L2.
  for (std::uint64_t line = 0; line < 8; ++line) h.access(line * 64);
  // Line 0 fell out of L1 but is resident in L2.
  h.access(0);
  EXPECT_EQ(h.level(0).misses(), 9u);
  EXPECT_EQ(h.level(1).hits(), 1u);
  EXPECT_EQ(h.memory_accesses(), 8u);
}

TEST(CacheHierarchy, MemoryTrafficCountsLastLevelMisses) {
  cs::CacheHierarchy h({{128, 64, 2}, {256, 64, 4}});
  for (std::uint64_t line = 0; line < 100; ++line) h.access(line * 64);
  EXPECT_EQ(h.memory_traffic_bytes(), 100u * 64u);
}

TEST(CacheHierarchy, AccessRangeTouchesEveryLine) {
  cs::CacheHierarchy h({{32 * 1024, 64, 8}});
  h.access_range(0, 640);  // lines 0..9
  EXPECT_EQ(h.level(0).accesses(), 10u);
  h.access_range(60, 8);  // straddles lines 0 and 1: two accesses, both hits
  EXPECT_EQ(h.level(0).hits(), 2u);
  h.access_range(0, 0);  // empty: no accesses
  EXPECT_EQ(h.level(0).accesses(), 12u);
}

TEST(CacheHierarchy, TypicalShape) {
  auto h = cs::CacheHierarchy::typical();
  EXPECT_EQ(h.levels(), 2u);
  EXPECT_EQ(h.level(0).config().size_bytes, 32u * 1024u);
  EXPECT_EQ(h.level(1).config().size_bytes, 1024u * 1024u);
}

TEST(Tracer, NullTracerIsFree) {
  cs::NullTracer t;
  t.touch(nullptr, 128);  // must be a no-op
  SUCCEED();
}

TEST(Tracer, CacheTracerFeedsHierarchy) {
  auto h = cs::CacheHierarchy::typical();
  cs::CacheTracer t(&h);
  std::vector<double> data(1024);
  t.touch(data.data(), data.size() * sizeof(double));
  EXPECT_EQ(h.total_accesses(), 8192u / 64u + (
      // the vector may straddle one extra line depending on alignment
      (reinterpret_cast<std::uintptr_t>(data.data()) % 64 == 0) ? 0u : 1u));
}

TEST(Tracer, RowwiseVsTiledMatrixTraversal) {
  // The Module 2 phenomenon in miniature: repeatedly streaming a large
  // array misses every time, while processing it tile by tile with reuse
  // inside the tile hits.
  const std::size_t doubles = 64 * 1024;  // 512 KiB, larger than our cache
  std::vector<double> big(doubles);

  auto stream_twice = [&](cs::CacheHierarchy& h) {
    cs::CacheTracer t(&h);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < doubles; ++i) {
        t.touch(&big[i], sizeof(double));
      }
    }
  };
  auto tiled_twice = [&](cs::CacheHierarchy& h) {
    cs::CacheTracer t(&h);
    const std::size_t tile = 2048;  // 16 KiB tiles fit in L1
    for (std::size_t base = 0; base < doubles; base += tile) {
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = base; i < base + tile; ++i) {
          t.touch(&big[i], sizeof(double));
        }
      }
    }
  };

  cs::CacheHierarchy h1({{32 * 1024, 64, 8}});
  cs::CacheHierarchy h2({{32 * 1024, 64, 8}});
  stream_twice(h1);
  tiled_twice(h2);
  EXPECT_GT(h1.memory_traffic_bytes(), 15u * h2.memory_traffic_bytes() / 10u);
}
