// Shrink-on-failure scenario matrix: kill rank R at its Nth primitive call
// and assert the survivors finish with correct results, for an R x N grid
// over the elastic modules 3 (bucket sort, bit-exact) and 5 (k-means,
// tolerance-correct) and for the container itself, on every transport
// backend (shm legs skipped under TSan, as in minimpi_backend_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dataio/dataset.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "modules/kmeans/module5.hpp"
#include "modules/sort/module3.hpp"
#include "run_forced.hpp"

namespace mpi = dipdc::minimpi;
namespace io = dipdc::dataio;
namespace m3 = dipdc::modules::distsort;
namespace m5 = dipdc::modules::kmeans;
using dipdc::container::Container;
using dipdc::container::Partitioning;
using dipdc::testing::all_backends;
using dipdc::testing::forced;

namespace {

mpi::RuntimeOptions kill_plan(mpi::BackendKind kind, int rank,
                              std::uint64_t at_call) {
  mpi::RuntimeOptions opts = forced(kind);
  opts.faults.kill_rank = rank;
  opts.faults.kill_at_call = at_call;
  return opts;
}

std::string label(mpi::BackendKind kind, int rank, std::uint64_t at_call) {
  return std::string(mpi::to_string(kind)) + " kill=" +
         std::to_string(rank) + "@" + std::to_string(at_call);
}

std::uint64_t element_value(std::size_t global_index) {
  return 0x9e3779b97f4a7c15ULL * (global_index + 1) ^ 0xabcdef;
}

/// Deterministic exponential-ish skewed keys in [0, 1): most mass near 0,
/// so equal-width buckets are heavily imbalanced — module 3's activity 2.
std::vector<double> skewed_keys(int rank, std::size_t count) {
  std::vector<double> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(rank) * 1000003 + i + 1) * 2654435761ULL;
    const double u =
        static_cast<double>(h % 1000003) / 1000003.0;  // uniform-ish
    keys[i] = 1.0 - std::exp(-3.0 * u);  // skewed towards 0... and < 1
  }
  return keys;
}

}  // namespace

// ---- Container-level scenarios ---------------------------------------------

// The driver program: a checkpointed repartition loop.  Per rank the call
// sequence is: checkpoint (sendrecv, irecv, send, wait = calls 1-4), then
// per round allgather (5) + allreduce (6) + 2 alltoallv (7-8) + checkpoint
// (9-12), and so on.  The grid kills after the dead rank has completed a
// full-participation collective that follows a checkpoint — the point at
// which every rank provably finished that checkpoint, so recovery is
// deterministic: 6 restores generation 0, 11 falls back from the
// interrupted generation 1 to 0, 14 restores generation 1.  In every case
// the survivors shrink and the global array is intact bit-for-bit.
TEST(ContainerFaults, SurvivorsRecoverCheckpointedDataAfterAKill) {
  const std::size_t total = 60;
  std::vector<std::uint64_t> expected(total);
  for (std::size_t g = 0; g < total; ++g) expected[g] = element_value(g);

  for (const int kill_rank : {1, 2, 3}) {
    for (const std::uint64_t at_call : {6ULL, 11ULL, 14ULL}) {
      bool recovered_somewhere = false;
      mpi::run(
          4,
          [&](mpi::Comm& comm) {
            const Partitioning block =
                Partitioning::block(total, comm.size());
            std::vector<std::uint64_t> slab(block.count(comm.rank()));
            for (std::size_t i = 0; i < slab.size(); ++i) {
              slab[i] = element_value(block.begin(comm.rank()) + i);
            }
            Container<std::uint64_t> c =
                Container<std::uint64_t>::from_local(comm, total, 1, slab);
            mpi::Comm* cur = &comm;
            std::optional<mpi::Comm> shrunk;
            try {
              c.checkpoint({});
              for (int round = 0; round < 4; ++round) {
                std::vector<double> w(c.count());
                for (std::size_t i = 0; i < w.size(); ++i) {
                  w[i] = 1.0 + static_cast<double>(
                                   (c.global_begin() + i +
                                    static_cast<std::size_t>(7 * round)) %
                                   13);
                }
                c.set_weights(w);
                c.repartition();
                c.checkpoint({});
              }
            } catch (const mpi::RankFailedError&) {
              if (cur->failed_rank() == cur->world_rank()) throw;
              shrunk.emplace(cur->shrink());
              cur = &*shrunk;
              (void)c.recover(*cur);
              if (cur->rank() == 0) recovered_somewhere = true;
            }
            // Whether or not the kill fired before completion, the global
            // array must be intact on whatever communicator we ended on.
            const Partitioning& part = c.partitioning();
            const int p = cur->size();
            std::vector<std::size_t> counts(static_cast<std::size_t>(p));
            std::vector<std::size_t> displs(static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) {
              counts[static_cast<std::size_t>(r)] = part.count(r);
              displs[static_cast<std::size_t>(r)] = part.begin(r);
            }
            std::vector<std::uint64_t> global(part.total());
            cur->allgatherv(std::span<const std::uint64_t>(c.local()),
                            counts, displs,
                            std::span<std::uint64_t>(global));
            EXPECT_EQ(global, expected)
                << label(mpi::BackendKind::kThreads, kill_rank, at_call);
          },
          kill_plan(mpi::BackendKind::kThreads, kill_rank, at_call));
      EXPECT_TRUE(recovered_somewhere)
          << "kill=" << kill_rank << "@" << at_call
          << " never triggered a recovery";
    }
  }
}

TEST(ContainerFaults, UnrecoverableWhenTheFirstCheckpointNeverCompleted) {
  // Rank 1 dies at its very first call — inside the generation-0 buddy
  // exchange — so no consistent generation exists and from_local has no
  // source to fall back to: recover() must throw on the survivors (and the
  // run must surface it, not swallow it).
  EXPECT_THROW(
      mpi::run(
          4,
          [&](mpi::Comm& comm) {
            const std::size_t total = 40;
            const Partitioning block =
                Partitioning::block(total, comm.size());
            std::vector<std::uint64_t> slab(block.count(comm.rank()), 7);
            Container<std::uint64_t> c =
                Container<std::uint64_t>::from_local(comm, total, 1, slab);
            std::optional<mpi::Comm> shrunk;
            try {
              c.checkpoint({});
              c.repartition();
            } catch (const mpi::RankFailedError&) {
              if (comm.failed_rank() == comm.world_rank()) throw;
              shrunk.emplace(comm.shrink());
              (void)c.recover(*shrunk);  // throws: nothing to restore
            }
          },
          kill_plan(mpi::BackendKind::kThreads, 1, 1)),
      mpi::RankFailedError);
}

TEST(ContainerFaults, RecoveredArrayIsIdenticalOnEveryBackend) {
  const std::size_t total = 48;
  auto run_one = [&](mpi::BackendKind kind) {
    std::vector<std::uint64_t> at_survivor_root;
    mpi::run(
        4,
        [&](mpi::Comm& comm) {
          const Partitioning block = Partitioning::block(total, comm.size());
          std::vector<std::uint64_t> slab(block.count(comm.rank()));
          for (std::size_t i = 0; i < slab.size(); ++i) {
            slab[i] = element_value(block.begin(comm.rank()) + i);
          }
          Container<std::uint64_t> c =
              Container<std::uint64_t>::from_local(comm, total, 1, slab);
          mpi::Comm* cur = &comm;
          std::optional<mpi::Comm> shrunk;
          try {
            c.checkpoint({});
            for (int round = 0; round < 3; ++round) {
              std::vector<double> w(c.count(), 1.0 + comm.rank());
              c.set_weights(w);
              c.repartition();
              c.checkpoint({});
            }
          } catch (const mpi::RankFailedError&) {
            if (cur->failed_rank() == cur->world_rank()) throw;
            shrunk.emplace(cur->shrink());
            cur = &*shrunk;
            (void)c.recover(*cur);
          }
          const Partitioning& part = c.partitioning();
          const int p = cur->size();
          std::vector<std::size_t> counts(static_cast<std::size_t>(p));
          std::vector<std::size_t> displs(static_cast<std::size_t>(p));
          for (int r = 0; r < p; ++r) {
            counts[static_cast<std::size_t>(r)] = part.count(r);
            displs[static_cast<std::size_t>(r)] = part.begin(r);
          }
          std::vector<std::uint64_t> global(part.total());
          cur->allgatherv(std::span<const std::uint64_t>(c.local()), counts,
                          displs, std::span<std::uint64_t>(global));
          if (cur->world_rank() == 0) at_survivor_root = global;
        },
        kill_plan(kind, 2, 7));
    return at_survivor_root;
  };

  const std::vector<std::uint64_t> reference =
      run_one(mpi::BackendKind::kThreads);
  ASSERT_FALSE(reference.empty());
  for (const mpi::BackendKind kind : dipdc::testing::other_backends()) {
    EXPECT_EQ(run_one(kind), reference) << mpi::to_string(kind);
  }
}

// ---- Module 3: elastic bucket sort -----------------------------------------

// Per non-root rank the call sequence is: from_counts allgather (1),
// generation-0 checkpoint (2-5), splitter bcast (6), alltoall (7),
// alltoallv (8), verification reduce/bcast pairs (9-20), adopt allgather
// (21), then the rebalance collectives.  The kills land after the dead
// rank completed a full-participation collective past the checkpoint (the
// alltoall at 7), so generation 0 is provably ring-complete: 9 dies in
// the verification, 14 in the boundary check, 21 at the adoption.
TEST(ContainerFaults, Module3KillGridMatchesTheNoFaultSort) {
  const std::size_t per_rank = 160;
  m3::Config cfg;
  cfg.policy = m3::SplitterPolicy::kHistogram;
  m3::ElasticConfig ecfg;

  auto run_one = [&](const mpi::RuntimeOptions& opts,
                     m3::Result* result_out) {
    std::vector<double> at_root;
    mpi::run(
        4,
        [&](mpi::Comm& comm) {
          std::vector<double> sorted;
          const m3::Result r = m3::elastic_bucket_sort(
              comm, skewed_keys(comm.rank(), per_rank), cfg, ecfg, &sorted);
          if (comm.world_rank() == 0) {
            at_root = std::move(sorted);
            if (result_out != nullptr) *result_out = r;
          }
        },
        opts);
    return at_root;
  };

  m3::Result no_fault_result;
  const std::vector<double> reference = run_one({}, &no_fault_result);
  ASSERT_EQ(reference.size(), per_rank * 4);
  ASSERT_TRUE(no_fault_result.globally_sorted);
  ASSERT_TRUE(std::is_sorted(reference.begin(), reference.end()));

  for (const mpi::BackendKind kind : all_backends()) {
    for (const int kill_rank : {1, 2, 3}) {
      for (const std::uint64_t at_call : {9ULL, 14ULL, 21ULL}) {
        m3::Result result;
        const std::vector<double> sorted =
            run_one(kill_plan(kind, kill_rank, at_call), &result);
        // Bit-exact: the survivors re-sort the same multiset.
        EXPECT_EQ(sorted, reference) << label(kind, kill_rank, at_call);
        EXPECT_TRUE(result.globally_sorted)
            << label(kind, kill_rank, at_call);
      }
    }
  }
}

// ---- Module 5: elastic k-means ----------------------------------------------

// Non-root rank calls: shape bcast (1), scatterv (2), centroids bcast (3),
// generation-0 checkpoint (4-7), then per iteration two allreduces, a
// checkpoint, and the rebalance collectives.  Kill at call 3 dies inside
// the data distribution (the acceptance scenario: recovery rebuilds from
// the root-retained source, or redistributes when a survivor was stranded
// inside the scatter); 8 dies right after the input checkpoint (restores
// generation 0 or falls back to the source, depending on how far the
// survivors got — both converge to the same centroids); 15 dies past the
// full-participation rebalance allgather, so generation 1 is provably
// ring-complete and is restored.
TEST(ContainerFaults, Module5KillGridMatchesTheNoFaultCentroids) {
  const auto d = io::generate_clusters(600, 2, 3, 0.3, 0.0, 30.0, 29);
  m5::Config cfg;
  cfg.k = 3;
  m5::ElasticConfig ecfg;

  auto run_one = [&](const mpi::RuntimeOptions& opts) {
    m5::Result at_root{};
    mpi::run(
        4,
        [&](mpi::Comm& comm) {
          const m5::Result r = m5::elastic(
              comm, comm.rank() == 0 ? d.data : io::Dataset{}, cfg, ecfg);
          if (comm.world_rank() == 0) at_root = r;
        },
        opts);
    return at_root;
  };

  const m5::Result reference = run_one({});
  ASSERT_TRUE(reference.converged);
  ASSERT_EQ(reference.centroids.size(), cfg.k * 2);

  for (const int kill_rank : {1, 2, 3}) {
    for (const std::uint64_t at_call : {3ULL, 8ULL, 15ULL}) {
      const m5::Result r =
          run_one(kill_plan(mpi::BackendKind::kThreads, kill_rank, at_call));
      const std::string tag =
          label(mpi::BackendKind::kThreads, kill_rank, at_call);
      EXPECT_TRUE(r.converged) << tag;
      ASSERT_EQ(r.centroids.size(), reference.centroids.size()) << tag;
      for (std::size_t i = 0; i < reference.centroids.size(); ++i) {
        // Tolerance, not bit-exact: survivor counts change the float
        // summation order.
        EXPECT_NEAR(r.centroids[i], reference.centroids[i], 1e-6)
            << tag << " centroid component " << i;
      }
      EXPECT_NEAR(r.inertia, reference.inertia,
                  1e-6 * (1.0 + std::abs(reference.inertia)))
          << tag;
    }
  }
}

TEST(ContainerFaults, Module5AcceptanceScenarioSurvivesOnEveryBackend) {
  // `dipdc module5 --faults=kill=1@3 --repartition` must complete with
  // correct centroids on the surviving ranks, on threads, shm, and tcp.
  const auto d = io::generate_clusters(600, 2, 3, 0.3, 0.0, 30.0, 29);
  m5::Config cfg;
  cfg.k = 3;
  m5::ElasticConfig ecfg;

  auto run_one = [&](const mpi::RuntimeOptions& opts) {
    m5::Result at_root{};
    mpi::run(
        4,
        [&](mpi::Comm& comm) {
          const m5::Result r = m5::elastic(
              comm, comm.rank() == 0 ? d.data : io::Dataset{}, cfg, ecfg);
          if (comm.world_rank() == 0) at_root = r;
        },
        opts);
    return at_root;
  };

  const m5::Result reference = run_one({});
  for (const mpi::BackendKind kind : all_backends()) {
    const std::string tag = label(kind, 1, 3);
    m5::Result r;
    try {
      r = run_one(kill_plan(kind, 1, 3));
    } catch (const std::exception& e) {
      FAIL() << tag << " did not survive: " << e.what();
    }
    EXPECT_TRUE(r.converged) << tag;
    ASSERT_EQ(r.centroids.size(), reference.centroids.size()) << tag;
    for (std::size_t i = 0; i < reference.centroids.size(); ++i) {
      EXPECT_NEAR(r.centroids[i], reference.centroids[i], 1e-6) << tag;
    }
  }
}
