#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/ascii_chart.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace support = dipdc::support;

TEST(Rng, DeterministicAcrossInstances) {
  support::Xoshiro256 a(1234);
  support::Xoshiro256 b(1234);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  support::Xoshiro256 a(1);
  support::Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  support::Xoshiro256 g(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  support::Xoshiro256 g(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  support::Xoshiro256 g(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInBounds) {
  support::Xoshiro256 g(9);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto k = g.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++histogram[static_cast<std::size_t>(k)];
  }
  // Every bucket hit roughly uniformly.
  for (const int count : histogram) {
    EXPECT_GT(count, 8000);
    EXPECT_LT(count, 12000);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  support::Xoshiro256 g(11);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = g.exponential(rate);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments) {
  support::Xoshiro256 g(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  support::Xoshiro256 g(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, MakeStreamProducesIndependentStreams) {
  auto a = support::make_stream(99, 0);
  auto b = support::make_stream(99, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  // Same (seed, stream) is reproducible.
  auto a2 = support::make_stream(99, 0);
  EXPECT_EQ(support::make_stream(99, 0)(), a2());
}

TEST(Error, RequireThrowsWithContext) {
  try {
    DIPDC_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const support::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(DIPDC_REQUIRE(true, "fine"));
}

TEST(Format, Fixed) {
  EXPECT_EQ(support::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(support::fixed(2.0, 0), "2");
  EXPECT_EQ(support::fixed(-1.5, 1), "-1.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(support::percent(0.4786), "47.86%");
  EXPECT_EQ(support::percent(1.0, 0), "100%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(support::bytes(512), "512 B");
  EXPECT_EQ(support::bytes(1536), "1.50 KiB");
  EXPECT_EQ(support::bytes(3u * 1024 * 1024), "3.00 MiB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(support::seconds(1.5), "1.500 s");
  EXPECT_EQ(support::seconds(0.0025), "2.500 ms");
  EXPECT_EQ(support::seconds(3e-6), "3.000 us");
  EXPECT_EQ(support::seconds(5e-9), "5.0 ns");
  EXPECT_EQ(support::seconds(0.0), "0 s");
}

TEST(Format, Count) {
  EXPECT_EQ(support::count(42), "42");
  EXPECT_EQ(support::count(999999), "999999");
  EXPECT_EQ(support::count(2000000), "2.00e+06");
}

TEST(Table, RendersHeaderAndCells) {
  support::Table t("My Table");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_rule();
  t.add_row({"beta", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, HandlesRaggedRows) {
  support::Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW({ auto s = t.render(); (void)s; });
}

TEST(AsciiChart, BarChartScalesToMax) {
  const std::string s = support::bar_chart(
      {{"pre", 50.0, '#'}, {"post", 100.0, '='}}, 100.0, 20);
  // The 100-value bar is twice as long as the 50-value bar.
  EXPECT_NE(s.find(std::string(20, '=')), std::string::npos);
  EXPECT_NE(s.find(std::string(10, '#')), std::string::npos);
}

TEST(AsciiChart, LineChartContainsGlyphsAndLegend) {
  support::Series s1{"linear", {1, 2, 3, 4}, {1, 2, 3, 4}, '*'};
  support::Series s2{"flat", {1, 2, 3, 4}, {1, 1, 1, 1}, 'o'};
  const std::string s = support::line_chart({s1, s2}, 40, 10);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
  EXPECT_NE(s.find("linear"), std::string::npos);
  EXPECT_NE(s.find("flat"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesDoesNotCrash) {
  EXPECT_NO_THROW({ auto s = support::line_chart({}, 10, 5); (void)s; });
  EXPECT_NO_THROW({ auto s = support::bar_chart({}); (void)s; });
}

// ---- ArgParser -------------------------------------------------------------

#include "support/args.hpp"

namespace {

support::ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return {static_cast<int>(argv.size()), argv.data()};
}

}  // namespace

TEST(Args, CommandAndEqualsOptions) {
  const auto a = parse({"module3", "--ranks=8", "--policy=histogram"});
  EXPECT_EQ(a.command(), "module3");
  EXPECT_EQ(a.get_int("ranks", 0), 8);
  EXPECT_EQ(a.get("policy"), "histogram");
}

TEST(Args, SpaceSeparatedValues) {
  const auto a = parse({"run", "--n", "42", "--name", "alpha"});
  EXPECT_EQ(a.get_int("n", 0), 42);
  EXPECT_EQ(a.get("name"), "alpha");
}

TEST(Args, BareFlagsAreTrue) {
  const auto a = parse({"run", "--verbose", "--overlap"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_TRUE(a.get_bool("overlap"));
  EXPECT_FALSE(a.get_bool("missing", false));
  EXPECT_TRUE(a.get_bool("missing", true));
}

TEST(Args, BooleanSpellings) {
  const auto a = parse({"run", "--a=YES", "--b=0", "--c=off", "--d=True"});
  EXPECT_TRUE(a.get_bool("a"));
  EXPECT_FALSE(a.get_bool("b"));
  EXPECT_FALSE(a.get_bool("c"));
  EXPECT_TRUE(a.get_bool("d"));
}

TEST(Args, NumericErrorsThrow) {
  const auto a = parse({"run", "--n=abc", "--x=1.5"});
  EXPECT_THROW((void)a.get_int("n", 0), support::PreconditionError);
  EXPECT_DOUBLE_EQ(a.get_double("x", 0.0), 1.5);
  EXPECT_THROW((void)a.get_bool("x"), support::PreconditionError);
}

TEST(Args, PositionalsAfterCommand) {
  const auto a = parse({"cmd", "one", "--k=1", "two"});
  EXPECT_EQ(a.command(), "cmd");
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "one");
  EXPECT_EQ(a.positionals()[1], "two");
}

TEST(Args, UnusedReportsUnqueriedOptions) {
  const auto a = parse({"cmd", "--used=1", "--typo=2"});
  (void)a.get_int("used", 0);
  const auto u = a.unused();
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], "typo");
}

TEST(Args, MissingFallbacks) {
  const auto a = parse({"cmd"});
  EXPECT_FALSE(a.has("nope"));
  EXPECT_EQ(a.get("nope", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("nope", 2.5), 2.5);
}

TEST(Args, TrailingGarbageRejected) {
  // Regression: std::stol("8x") silently parses as 8, hiding the typo.
  const auto a = parse({"run", "--ranks=8x", "--x=1.5e", "--y=2.0ms"});
  EXPECT_THROW((void)a.get_int("ranks", 0), support::PreconditionError);
  EXPECT_THROW((void)a.get_double("x", 0.0), support::PreconditionError);
  EXPECT_THROW((void)a.get_double("y", 0.0), support::PreconditionError);
}

TEST(Args, KeysListsEveryParsedOption) {
  const auto a = parse({"cmd", "--b=1", "--a", "--c=x"});
  const auto k = a.keys();
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], "a");  // sorted
  EXPECT_EQ(k[1], "b");
  EXPECT_EQ(k[2], "c");
}

TEST(Args, ClosestMatchSuggestsNearbySpellings) {
  const std::vector<std::string> known{"ranks", "nodes", "timeline"};
  EXPECT_EQ(support::closest_match("rnaks", known), "ranks");
  EXPECT_EQ(support::closest_match("timelin", known), "timeline");
  EXPECT_EQ(support::closest_match("zzzzzzzzzz", known), "");
}

TEST(Rng, UniformIndexEmptyRangeThrows) {
  // Regression: uniform_index(0) used to silently return 0, a valid-looking
  // index into an empty container.
  support::Xoshiro256 g(1);
  EXPECT_THROW((void)g.uniform_index(0), support::PreconditionError);
  EXPECT_EQ(g.uniform_index(1), 0u);
}
