// Nonblocking collectives: results match the blocking collectives, requests
// compose with wait/test/wait_any (including mixed p2p sets), issue-before-
// wait pipelines overlap, and edge cases (already-complete, destroyed
// unwaited, wait after rank failure) behave per the documented contract.
// Backend bit-identity for the streamed module pipelines built on these
// lives in module_determinism_test; this file pins the primitive layer.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/faults.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "run_forced.hpp"

namespace mpi = dipdc::minimpi;

class ICollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(ICollectiveSweep, IbcastFromEveryRoot) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(64, comm.rank() == root ? root + 1000 : -1);
      mpi::Request req = comm.ibcast(std::span<int>(data), root);
      comm.wait(req);
      for (const int v : data) EXPECT_EQ(v, root + 1000);
    }
  });
}

TEST_P(ICollectiveSweep, IbcastRootMayReuseBufferAfterIssue) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    std::vector<int> data(32, comm.rank() == 0 ? 7 : -1);
    mpi::Request req = comm.ibcast(std::span<int>(data), 0);
    // Fan-out stages a copy: clobbering the root's buffer after issue must
    // not corrupt what the other ranks receive.
    if (comm.rank() == 0) std::fill(data.begin(), data.end(), -99);
    comm.wait(req);
    if (comm.rank() != 0) {
      for (const int v : data) EXPECT_EQ(v, 7);
    }
  });
}

TEST_P(ICollectiveSweep, IreduceMatchesBlockingReduce) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    std::vector<double> send(48);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<double>(comm.rank() + 1) * 0.5 +
                static_cast<double>(i) * 0.001;
    }
    std::vector<double> blocking(send.size(), 0.0);
    std::vector<double> nonblocking(send.size(), 0.0);
    comm.reduce(std::span<const double>(send), std::span<double>(blocking),
                mpi::ops::Sum{}, 0);
    mpi::Request req =
        comm.ireduce(std::span<const double>(send),
                     std::span<double>(nonblocking), mpi::ops::Sum{}, 0);
    comm.wait(req);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < send.size(); ++i) {
        // The nonblocking fold is linear ascending; the blocking reduce
        // may bracket as a tree, so fp results agree only up to rounding.
        EXPECT_DOUBLE_EQ(blocking[i], nonblocking[i])
            << "i=" << i << " p=" << p;
      }
    }
  });
}

TEST_P(ICollectiveSweep, IreduceFromNonzeroRoot) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const int root = p - 1;
    std::vector<std::uint64_t> send(16, 1u << comm.rank());
    std::vector<std::uint64_t> recv(16, 0);
    mpi::Request req =
        comm.ireduce(std::span<const std::uint64_t>(send),
                     std::span<std::uint64_t>(recv), mpi::ops::Sum{}, root);
    comm.wait(req);
    if (comm.rank() == root) {
      const std::uint64_t expect = (1u << p) - 1;  // sum of 2^r over ranks
      for (const std::uint64_t v : recv) EXPECT_EQ(v, expect);
    }
  });
}

TEST_P(ICollectiveSweep, IallreduceMatchesBlockingAllreduce) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    std::vector<double> send(40);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = 1.0 / static_cast<double>(comm.rank() + 2) +
                static_cast<double>(i);
    }
    std::vector<double> blocking(send.size(), 0.0);
    std::vector<double> nonblocking(send.size(), 0.0);
    comm.allreduce(std::span<const double>(send), std::span<double>(blocking),
                   mpi::ops::Sum{});
    mpi::Request req = comm.iallreduce(std::span<const double>(send),
                                       std::span<double>(nonblocking),
                                       mpi::ops::Sum{});
    comm.wait(req);
    for (std::size_t i = 0; i < send.size(); ++i) {
      EXPECT_DOUBLE_EQ(blocking[i], nonblocking[i]) << "i=" << i;
    }
  });
}

TEST_P(ICollectiveSweep, IallgathervConcatenatesInRankOrder) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    // Rank r contributes r+1 elements — exercises uneven counts.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      const auto nr = static_cast<std::size_t>(r);
      counts[nr] = nr + 1;
      displs[nr] = total;
      total += counts[nr];
    }
    const auto me = static_cast<std::size_t>(comm.rank());
    std::vector<int> send(counts[me]);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = comm.rank() * 100 + static_cast<int>(i);
    }
    std::vector<int> recv(total, -1);
    mpi::Request req = comm.iallgatherv(
        std::span<const int>(send), std::span<const std::size_t>(counts),
        std::span<const std::size_t>(displs), std::span<int>(recv));
    comm.wait(req);
    for (int r = 0; r < p; ++r) {
      const auto nr = static_cast<std::size_t>(r);
      for (std::size_t i = 0; i < counts[nr]; ++i) {
        EXPECT_EQ(recv[displs[nr] + i], r * 100 + static_cast<int>(i));
      }
    }
  });
}

TEST_P(ICollectiveSweep, PipelinedIbcastsCompleteInIssueOrder) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    // The streamed-module pattern: several broadcasts in flight at once,
    // waited oldest-first while "compute" happens between issues.
    constexpr int kDepth = 4;
    std::array<std::vector<int>, kDepth> bufs;
    std::array<mpi::Request, kDepth> reqs;
    for (int k = 0; k < kDepth; ++k) {
      bufs[static_cast<std::size_t>(k)]
          .assign(128, comm.rank() == 0 ? 10 * k : -1);
      reqs[static_cast<std::size_t>(k)] =
          comm.ibcast(std::span<int>(bufs[static_cast<std::size_t>(k)]), 0);
    }
    for (int k = 0; k < kDepth; ++k) {
      comm.wait(reqs[static_cast<std::size_t>(k)]);
      for (const int v : bufs[static_cast<std::size_t>(k)]) {
        EXPECT_EQ(v, 10 * k);
      }
    }
  });
}

TEST_P(ICollectiveSweep, InterleavesWithBlockingCollectives) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    std::vector<int> a(16, comm.rank() == 0 ? 1 : -1);
    mpi::Request req = comm.ibcast(std::span<int>(a), 0);
    // A blocking collective issued while the nonblocking one is in flight
    // must not steal its payload (tags are unique per invocation).
    std::vector<int> b(16, comm.rank() == p - 1 ? 2 : -1);
    comm.bcast(std::span<int>(b), p - 1);
    comm.wait(req);
    for (const int v : a) EXPECT_EQ(v, 1);
    for (const int v : b) EXPECT_EQ(v, 2);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ICollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// ---- Request composition edge cases ---------------------------------------

TEST(ICollectiveRequests, TestPollsToCompletionWithoutBlocking) {
  mpi::run(4, [](mpi::Comm& comm) {
    std::vector<double> send(8, static_cast<double>(comm.rank()));
    std::vector<double> recv(8, 0.0);
    mpi::Request req = comm.iallreduce(
        std::span<const double>(send), std::span<double>(recv),
        mpi::ops::Sum{});
    mpi::Status st;
    while (!comm.test(req, &st)) {
      // Non-zero ranks cannot complete until rank 0's own poll runs the
      // combine-and-fan-out, so spin on wall-clock, not simulated, time.
      std::this_thread::yield();
    }
    for (const double v : recv) EXPECT_DOUBLE_EQ(v, 0.0 + 1.0 + 2.0 + 3.0);
    // test() on an already-complete request stays true and cheap.
    EXPECT_TRUE(comm.test(req));
    EXPECT_TRUE(comm.test(req));
  });
}

TEST(ICollectiveRequests, WaitAnyOnAlreadyCompleteCollective) {
  mpi::run(2, [](mpi::Comm& comm) {
    std::vector<int> data(4, comm.rank() == 0 ? 5 : -1);
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.ibcast(std::span<int>(data), 0));
    comm.wait(reqs[0]);
    // Completed requests stay selectable: wait_any must return instead of
    // blocking for a second completion that will never come.
    const std::size_t which = comm.wait_any(std::span<mpi::Request>(reqs));
    EXPECT_EQ(which, 0u);
    for (const int v : data) EXPECT_EQ(v, 5);
  });
}

TEST(ICollectiveRequests, WaitAnyOnMixedP2PAndCollectiveSet) {
  mpi::run(2, [](mpi::Comm& comm) {
    std::vector<int> bc(8, comm.rank() == 0 ? 3 : -1);
    std::vector<int> p2p(8, -1);
    std::vector<mpi::Request> reqs;
    if (comm.rank() == 0) {
      std::vector<int> payload(8, 42);
      comm.send(std::span<const int>(payload), 1, 77);
      reqs.push_back(comm.ibcast(std::span<int>(bc), 0));
      comm.wait_all(std::span<mpi::Request>(reqs));
    } else {
      reqs.push_back(comm.irecv(std::span<int>(p2p), 0, 77));
      reqs.push_back(comm.ibcast(std::span<int>(bc), 0));
      // wait_any picks either kind; the caller then retires the other
      // explicitly (completed requests stay selectable, as with p2p-only
      // sets).
      const std::size_t which = comm.wait_any(std::span<mpi::Request>(reqs));
      ASSERT_LT(which, 2u);
      comm.wait(reqs[which == 0 ? 1 : 0]);
      for (const int v : p2p) EXPECT_EQ(v, 42);
      for (const int v : bc) EXPECT_EQ(v, 3);
    }
  });
}

TEST(ICollectiveRequests, DestroyingCompletedUnwaitedRequestIsSafe) {
  // Issue on all ranks, synchronize so every transfer has landed, then
  // drop the requests without ever waiting.  Nothing may leak, dangle, or
  // trip teardown: root-side fan-in stays in mailbox-owned envelopes and
  // the runtime clears leftover unexpected messages at join.
  mpi::run(4, [](mpi::Comm& comm) {
    std::vector<std::uint64_t> send(16, 1);
    std::vector<std::uint64_t> recv(16, 0);
    {
      mpi::Request r1 = comm.ibcast(std::span<std::uint64_t>(send), 0);
      mpi::Request r2 =
          comm.ireduce(std::span<const std::uint64_t>(send),
                       std::span<std::uint64_t>(recv), mpi::ops::Sum{}, 0);
      comm.barrier();  // everything eager has been delivered by now
      // r1, r2 destroyed here, unwaited.
    }
    comm.barrier();
  });
}

TEST(ICollectiveRequests, ValidationFailuresThrowAtIssue) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          std::vector<int> v(4), out(3);  // size mismatch
                          comm.ireduce(std::span<const int>(v),
                                       std::span<int>(out), mpi::ops::Sum{},
                                       0);
                        }),
               mpi::MpiError);
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          std::vector<int> v(4);
                          comm.ibcast(std::span<int>(v), 5);  // bad root
                        }),
               mpi::MpiError);
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 std::vector<int> send(4), recv(8);
                 std::vector<std::size_t> counts = {4, 4};  // short displs
                 std::vector<std::size_t> displs = {0};
                 comm.iallgatherv(std::span<const int>(send),
                                  std::span<const std::size_t>(counts),
                                  std::span<const std::size_t>(displs),
                                  std::span<int>(recv));
               }),
      mpi::MpiError);
}

TEST(ICollectiveRequests, WaitAfterRankFailureRethrows) {
  mpi::FaultOptions plan;
  plan.kill_rank = 1;
  plan.kill_at_call = 1;  // rank 1 dies at its first primitive call
  mpi::RuntimeOptions opts;
  opts.faults = plan;
  std::atomic<int> rethrew{0};

  try {
    mpi::run(
        3,
        [&rethrew](mpi::Comm& comm) {
          std::vector<std::uint64_t> send(8, 1);
          std::vector<std::uint64_t> recv(8, 0);
          mpi::Request req = comm.iallreduce(
              std::span<const std::uint64_t>(send),
              std::span<std::uint64_t>(recv), mpi::ops::Sum{});
          try {
            comm.wait(req);
          } catch (const mpi::RankFailedError&) {
            // The request stays failed, not silently complete: waiting
            // again must surface the same error, never return stale data.
            EXPECT_THROW(comm.wait(req), mpi::RankFailedError);
            rethrew.fetch_add(1);
            throw;
          }
        },
        opts);
    FAIL() << "expected RankFailedError";
  } catch (const mpi::RankFailedError&) {
  }
  EXPECT_GT(rethrew.load(), 0);
}

// ---- Accounting and backend identity ---------------------------------------

TEST(ICollectiveStats, FanOutMovesExactlyPMinusOnePayloads) {
  const auto result = mpi::run(4, [](mpi::Comm& comm) {
    std::vector<double> data(512, 1.0);
    mpi::Request req = comm.ibcast(std::span<double>(data), 0);
    comm.wait(req);
  });
  const auto total = result.total_stats();
  EXPECT_EQ(total.p2p_messages_sent, 0u);  // internal, not user p2p
  EXPECT_EQ(total.transport_bytes_sent, 3u * 512u * sizeof(double));
}

TEST(ICollectiveStats, ResultsAndClocksIdenticalAcrossBackends) {
  namespace dt = dipdc::testing;
  struct Capture {
    std::vector<double> reduced;
    std::vector<int> gathered;
    double clock = 0.0;
    bool operator==(const Capture&) const = default;
  };
  auto program = [](mpi::Comm& comm) {
    const int p = comm.size();
    Capture out;
    std::vector<double> send(64);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<double>(comm.rank()) + 0.25 * static_cast<double>(i);
    }
    out.reduced.assign(send.size(), 0.0);
    mpi::Request r1 = comm.iallreduce(std::span<const double>(send),
                                      std::span<double>(out.reduced),
                                      mpi::ops::Sum{});
    comm.wait(r1);
    // Clock is pinned here: through the allreduce each receive side has at
    // most one outstanding posted receive, so completion times are
    // schedule-independent.  iallgatherv posts p-1 concurrent receives,
    // whose *clocks* legitimately depend on physical arrival order (the
    // data below stays exact either way), so sample before issuing it.
    out.clock = comm.wtime();
    std::vector<std::size_t> counts(static_cast<std::size_t>(p), 8);
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      displs[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r) * 8;
    }
    std::vector<int> mine(8, comm.rank());
    out.gathered.assign(static_cast<std::size_t>(p) * 8, -1);
    mpi::Request r2 = comm.iallgatherv(
        std::span<const int>(mine), std::span<const std::size_t>(counts),
        std::span<const std::size_t>(displs), std::span<int>(out.gathered));
    comm.wait(r2);
    return out;
  };
  const Capture base =
      dt::run_forced(4, dt::forced(mpi::BackendKind::kThreads), program);
  EXPECT_GT(base.clock, 0.0);
  for (const mpi::BackendKind kind : dt::other_backends()) {
    const Capture got = dt::run_forced(4, dt::forced(kind), program);
    EXPECT_TRUE(got == base)
        << "backend " << static_cast<int>(kind)
        << " diverged (clock " << got.clock << " vs " << base.clock << ")";
  }
}
