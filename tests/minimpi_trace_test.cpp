// The communication trace recorder and its timeline renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"

namespace mpi = dipdc::minimpi;

namespace {

mpi::RuntimeOptions traced() {
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  return opts;
}

std::size_t count_ops(const std::vector<mpi::TraceEvent>& trace,
                      mpi::Primitive op, int rank = -1) {
  return static_cast<std::size_t>(
      std::count_if(trace.begin(), trace.end(), [&](const mpi::TraceEvent& e) {
        return e.op == mpi::op_code(op) && (rank < 0 || e.rank == rank);
      }));
}

}  // namespace

TEST(Trace, DisabledByDefault) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) comm.send_value(1, 1);
    else (void)comm.recv_value<int>(0);
  });
  EXPECT_TRUE(result.trace.empty());
}

TEST(Trace, RecordsSendAndRecvWithPeersAndBytes) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<double> d(10);
          comm.send(std::span<const double>(d), 1, 4);
        } else {
          std::vector<double> d(10);
          comm.recv(std::span<double>(d), 0, 4);
        }
      },
      traced());
  ASSERT_EQ(result.trace.size(), 2u);
  const auto send_it = std::find_if(
      result.trace.begin(), result.trace.end(),
      [](const auto& e) { return mpi::is_op(e, mpi::Primitive::kSend); });
  ASSERT_NE(send_it, result.trace.end());
  EXPECT_EQ(send_it->rank, 0);
  EXPECT_EQ(send_it->peer, 1);
  EXPECT_EQ(send_it->tag, 4);
  EXPECT_EQ(send_it->bytes, 80u);
  EXPECT_GE(send_it->t_end, send_it->t_start);
  const auto recv_it = std::find_if(
      result.trace.begin(), result.trace.end(),
      [](const auto& e) { return mpi::is_op(e, mpi::Primitive::kRecv); });
  ASSERT_NE(recv_it, result.trace.end());
  EXPECT_EQ(recv_it->rank, 1);
  EXPECT_EQ(recv_it->peer, 0);  // resolved source, not the wildcard
}

TEST(Trace, CollectivesAppearOnEveryRank) {
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        comm.barrier();
        double v = 1.0;
        double out = 0.0;
        comm.allreduce(std::span<const double>(&v, 1),
                       std::span<double>(&out, 1), mpi::ops::Sum{});
      },
      traced());
  EXPECT_EQ(count_ops(result.trace, mpi::Primitive::kBarrier), 4u);
  EXPECT_EQ(count_ops(result.trace, mpi::Primitive::kAllreduce), 4u);
  // Internal tree messages must NOT appear as sends.
  EXPECT_EQ(count_ops(result.trace, mpi::Primitive::kSend), 0u);
}

TEST(Trace, WaitCarriesTheReceiveStatus) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value(7, 1, 9);
        } else {
          int v = 0;
          auto req = comm.irecv(std::span<int>(&v, 1), 0, 9);
          comm.wait(req);
        }
      },
      traced());
  const auto wait_it = std::find_if(
      result.trace.begin(), result.trace.end(),
      [](const auto& e) { return mpi::is_op(e, mpi::Primitive::kWait); });
  ASSERT_NE(wait_it, result.trace.end());
  EXPECT_EQ(wait_it->peer, 0);
  EXPECT_EQ(wait_it->bytes, sizeof(int));
}

TEST(Trace, EventsAreTemporallyOrderedPerRank) {
  const auto result = mpi::run(
      3,
      [](mpi::Comm& comm) {
        for (int i = 0; i < 5; ++i) comm.barrier();
      },
      traced());
  for (int r = 0; r < 3; ++r) {
    double last = -1.0;
    for (const auto& e : result.trace) {
      if (e.rank != r) continue;
      EXPECT_GE(e.t_start, last);
      last = e.t_start;
    }
  }
}

TEST(Timeline, RendersGlyphsAndRanks) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<char> big(1 << 20);
          comm.send(std::span<const char>(big), 1);
        } else {
          comm.sim_advance(1e-4);
          (void)comm.recv_vector<char>(0);
        }
      },
      traced());
  const std::string timeline = mpi::render_timeline(
      result.trace, 2, result.max_sim_time(), 60);
  EXPECT_NE(timeline.find("rank 0"), std::string::npos);
  EXPECT_NE(timeline.find("rank 1"), std::string::npos);
  EXPECT_NE(timeline.find('s'), std::string::npos);   // the send
  EXPECT_NE(timeline.find('p'), std::string::npos);   // recv_vector probes
  const std::string log = mpi::render_log(result.trace);
  EXPECT_NE(log.find("MPI_Send"), std::string::npos);
  EXPECT_NE(log.find("MPI_Recv"), std::string::npos);
}

TEST(Timeline, TruncatesLongLogs) {
  const auto result = mpi::run(
      2,
      [](mpi::Comm& comm) {
        for (int i = 0; i < 50; ++i) {
          if (comm.rank() == 0) comm.send_value(i, 1);
          else (void)comm.recv_value<int>(0);
        }
      },
      traced());
  const std::string log = mpi::render_log(result.trace, 10);
  EXPECT_NE(log.find("more)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Degenerate inputs.  mpifuzz's checker renders timelines for failure
// reports, so these must never divide by a zero horizon, index out of
// bounds, or crash on empty traces — regression net for the degenerate
// handling in render_timeline().

TEST(Timeline, EmptyTraceRendersZeroAxis) {
  const std::string t = mpi::render_timeline({}, 3, 0.0, 40);
  EXPECT_NE(t.find("time 0 .. 0"), std::string::npos);
  EXPECT_NE(t.find("rank 0"), std::string::npos);
  EXPECT_NE(t.find("rank 2"), std::string::npos);
}

TEST(Timeline, ZeroDurationEventsLandInColumnZero) {
  // All events instantaneous at t = 0: the horizon is degenerate but the
  // glyphs must still appear (in the first column) without dividing by 0.
  std::vector<mpi::TraceEvent> trace(1);
  trace[0].rank = 0;
  trace[0].op = mpi::op_code(mpi::Primitive::kSend);
  trace[0].t_start = 0.0;
  trace[0].t_end = 0.0;
  const std::string t = mpi::render_timeline(trace, 1, 0.0, 40);
  EXPECT_NE(t.find('s'), std::string::npos);
}

TEST(Timeline, ClampedWidthAndOutOfRangeRanksAreSafe) {
  std::vector<mpi::TraceEvent> trace(2);
  trace[0].rank = 5;  // beyond nranks: must be ignored, not crash
  trace[0].op = mpi::op_code(mpi::Primitive::kRecv);
  trace[0].t_start = 0.0;
  trace[0].t_end = 1.0;
  trace[1].rank = 0;
  trace[1].op = mpi::op_code(mpi::Primitive::kSend);
  trace[1].t_start = 0.5;
  trace[1].t_end = 2.0;  // past the stated horizon: must clamp to width-1
  const std::string narrow = mpi::render_timeline(trace, 1, 1.0, 0);
  // Width is clamped to 1: the rank 0 row is a single cell holding the
  // send glyph; the out-of-range rank 5 event leaves no row at all.
  const std::size_t row = narrow.find("rank 0");
  ASSERT_NE(row, std::string::npos);
  const std::size_t bar = narrow.find('|', row);
  ASSERT_NE(bar, std::string::npos);
  EXPECT_EQ(narrow[bar + 1], 's');
  const std::string t = mpi::render_timeline(trace, 1, 1.0, 20);
  EXPECT_NE(t.find('s', t.find("rank 0")), std::string::npos);
}

TEST(Timeline, ZeroRanksRendersHeaderOnly) {
  const std::string t = mpi::render_timeline({}, 0, 1.0, 40);
  EXPECT_NE(t.find("time 0"), std::string::npos);
  EXPECT_EQ(t.find("rank"), std::string::npos);
}
