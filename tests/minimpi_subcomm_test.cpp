// Sub-communicators (Comm::split), Waitany, and Allgatherv.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;

TEST(Split, EvenOddGroups) {
  mpi::run(6, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(comm.rank() % 2);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    EXPECT_EQ(sub.world_rank(), comm.rank());
    // Collectives within the subgroup see only the subgroup.
    const long long sum = sub.allreduce_value(
        static_cast<long long>(comm.rank()), mpi::ops::Sum{});
    // Even group: 0+2+4 = 6; odd group: 1+3+5 = 9.
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 6 : 9);
  });
}

TEST(Split, KeyControlsOrdering) {
  mpi::run(4, [](mpi::Comm& comm) {
    // Reverse the ranks within a single group.
    mpi::Comm sub = comm.split(0, /*key=*/-comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, SingletonGroups) {
  mpi::run(3, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(comm.rank());  // one rank per color
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    // Collectives on a singleton are trivial.
    EXPECT_EQ(sub.allreduce_value(7, mpi::ops::Sum{}), 7);
  });
}

TEST(Split, PointToPointStaysInsideTheGroup) {
  mpi::run(4, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(comm.rank() % 2);
    // Each subgroup runs its own ring with the *same tags*; contexts keep
    // them separate.
    const int next = (sub.rank() + 1) % sub.size();
    const int prev = (sub.rank() - 1 + sub.size()) % sub.size();
    sub.send_value(comm.rank() * 10, next, /*tag=*/5);
    const int got = sub.recv_value<int>(prev, 5);
    // My predecessor in the subgroup is the same-parity rank below me.
    const int expect_world =
        (comm.rank() + comm.size() - 2) % comm.size();
    EXPECT_EQ(got, expect_world * 10);
  });
}

TEST(Split, ParentAndChildDoNotCrossTalk) {
  mpi::run(4, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(0);  // same membership, different context
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 3);
      sub.send_value(2, 1, 3);
    } else if (comm.rank() == 1) {
      // Receive from the subcomm first: it must get the subcomm message
      // even though the parent-comm message arrived earlier.
      EXPECT_EQ(sub.recv_value<int>(0, 3), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 3), 1);
    }
  });
}

TEST(Split, NestedSplits) {
  mpi::run(8, [](mpi::Comm& comm) {
    mpi::Comm half = comm.split(comm.rank() / 4);   // two groups of 4
    mpi::Comm quarter = half.split(half.rank() / 2);  // four groups of 2
    EXPECT_EQ(quarter.size(), 2);
    const long long sum = quarter.allreduce_value(
        static_cast<long long>(comm.rank()), mpi::ops::Sum{});
    // Pairs: (0,1), (2,3), (4,5), (6,7).
    EXPECT_EQ(sum, (comm.rank() / 2) * 4 + 1);
  });
}

TEST(Split, SharedClockAcrossCommunicators) {
  mpi::run(2, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(0);
    const double before = comm.wtime();
    sub.sim_advance(1.0);
    EXPECT_NEAR(comm.wtime(), before + 1.0, 1e-12);
    EXPECT_NEAR(sub.wtime(), comm.wtime(), 1e-12);
  });
}

TEST(Split, NegativeColorRejected) {
  EXPECT_THROW(
      mpi::run(2, [](mpi::Comm& comm) { (void)comm.split(-1); }),
      mpi::MpiError);
}

TEST(Split, DeadlockInsideSubcommIsDetected) {
  EXPECT_THROW(mpi::run(4,
                        [](mpi::Comm& comm) {
                          mpi::Comm sub = comm.split(comm.rank() % 2);
                          if (sub.rank() == 0) {
                            (void)sub.recv_value<int>(1, 0);  // never sent
                          }
                        }),
               mpi::DeadlockError);
}

TEST(WaitAny, ReturnsACompletedRequest) {
  mpi::run(3, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      int a = -1, b = -1;
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecv(std::span<int>(&a, 1), 1, 1));
      reqs.push_back(comm.irecv(std::span<int>(&b, 1), 2, 2));
      mpi::Status st;
      const std::size_t first =
          comm.wait_any(std::span<mpi::Request>(reqs), &st);
      ASSERT_LT(first, 2u);
      const std::size_t second = first == 0 ? 1 : 0;
      comm.wait(reqs[second]);
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    } else {
      comm.send_value(comm.rank() * 100, 0, comm.rank());
    }
  });
}

TEST(WaitAny, WorksWithSendRequests) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      int v = 9;
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.isend(std::span<const int>(&v, 1), 1));
      const std::size_t idx =
          comm.wait_any(std::span<mpi::Request>(reqs));
      EXPECT_EQ(idx, 0u);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0), 9);
    }
  });
}

TEST(WaitAny, EmptyListRejected) {
  EXPECT_THROW(
      mpi::run(1,
               [](mpi::Comm& comm) {
                 std::vector<mpi::Request> none;
                 (void)comm.wait_any(std::span<mpi::Request>(none));
               }),
      mpi::MpiError);
}

TEST(Allgatherv, UnevenContributions) {
  const int p = 5;
  mpi::run(p, [p](mpi::Comm& comm) {
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < p; ++i) {
      counts.push_back(static_cast<std::size_t>(i + 1));
      displs.push_back(total);
      total += counts.back();
    }
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    std::vector<int> everything(total, -1);
    comm.allgatherv(std::span<const int>(mine),
                    std::span<const std::size_t>(counts),
                    std::span<const std::size_t>(displs),
                    std::span<int>(everything));
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
        EXPECT_EQ(everything[displs[static_cast<std::size_t>(r)] + i], r);
      }
    }
  });
}

TEST(Split, StatsAccumulateOnTheSharedRankState) {
  const auto result = mpi::run(4, [](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(comm.rank() % 2);
    if (sub.rank() == 0) sub.send_value(1, 1);
    if (sub.rank() == 1) (void)sub.recv_value<int>(0);
  });
  // Sends made through the subcomm show up in the per-world-rank stats.
  EXPECT_EQ(result.total_stats().calls_to(mpi::Primitive::kSend), 2u);
  EXPECT_EQ(result.total_stats().p2p_messages_sent, 2u);
}
