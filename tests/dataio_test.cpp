#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>

#include "dataio/chunk.hpp"
#include "dataio/dataset.hpp"
#include "support/error.hpp"

namespace io = dipdc::dataio;

namespace {

/// Temp-file path that cleans up after itself.
struct TempPath {
  explicit TempPath(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

}  // namespace

TEST(Dataset, ShapeAndAccess) {
  io::Dataset d(3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.point(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(d.point(1)[2], 6.0);
  const auto r = d.rows(1, 2);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
}

TEST(Dataset, RejectsRaggedValues) {
  EXPECT_THROW(io::Dataset(3, {1, 2}), dipdc::support::PreconditionError);
  EXPECT_THROW(io::Dataset(0, {}), dipdc::support::PreconditionError);
}

TEST(Generators, UniformBoundsAndDeterminism) {
  const auto a = io::generate_uniform(1000, 5, -2.0, 3.0, 77);
  const auto b = io::generate_uniform(1000, 5, -2.0, 3.0, 77);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.dim(), 5u);
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    EXPECT_GE(a.values()[i], -2.0);
    EXPECT_LT(a.values()[i], 3.0);
    EXPECT_DOUBLE_EQ(a.values()[i], b.values()[i]);
  }
  const auto c = io::generate_uniform(1000, 5, -2.0, 3.0, 78);
  EXPECT_NE(a.values()[0], c.values()[0]);
}

TEST(Generators, ExponentialIsSkewed) {
  const auto d = io::generate_exponential(100000, 1, 2.0, 5);
  double mean = 0.0;
  std::size_t below_mean = 0;
  for (const double v : d.values()) {
    EXPECT_GE(v, 0.0);
    mean += v;
  }
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(mean, 0.5, 0.01);
  for (const double v : d.values()) {
    if (v < mean) ++below_mean;
  }
  // For Exp, ~63% of the mass is below the mean: clearly skewed.
  EXPECT_GT(below_mean, d.size() * 60 / 100);
}

TEST(Generators, ClustersCarryGroundTruth) {
  const auto c = io::generate_clusters(2000, 2, 4, 0.05, 0.0, 10.0, 31);
  EXPECT_EQ(c.data.size(), 2000u);
  EXPECT_EQ(c.true_centers.size(), 4u);
  EXPECT_EQ(c.labels.size(), 2000u);
  // Every point lies near its generating center.
  for (std::size_t i = 0; i < c.data.size(); ++i) {
    const auto p = c.data.point(i);
    const auto ctr = c.true_centers.point(c.labels[i]);
    const double dx = p[0] - ctr[0];
    const double dy = p[1] - ctr[1];
    EXPECT_LT(dx * dx + dy * dy, 1.0);  // within 20 sigma
  }
}

TEST(Partition, BlockPartitionCoversExactly) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t p : {1u, 2u, 3u, 7u, 16u}) {
      const auto parts = io::block_partition(n, p);
      ASSERT_EQ(parts.size(), p);
      std::size_t expect_begin = 0;
      std::size_t max_len = 0, min_len = n + 1;
      for (const auto& [b, e] : parts) {
        EXPECT_EQ(b, expect_begin);
        EXPECT_LE(b, e);
        max_len = std::max(max_len, e - b);
        min_len = std::min(min_len, e - b);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
      EXPECT_LE(max_len - min_len, 1u);
    }
  }
}

TEST(Csv, RoundTripPreservesValues) {
  const auto original = io::generate_uniform(50, 4, 0.0, 1.0, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dipdc_csv_test.csv").string();
  io::write_csv(original, path);
  const auto loaded = io::read_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < original.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.values()[i], original.values()[i]);
  }
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(io::read_csv("/nonexistent/definitely/not/here.csv"),
               dipdc::support::PreconditionError);
}

TEST(Csv, MalformedRowsReportLineNumbers) {
  TempPath tmp("dipdc_csv_malformed.csv");
  {
    std::ofstream out(tmp.path);
    out << "1.0,2.0\n"
        << "3.0,4.0\n"
        << "5.0,oops\n";
  }
  try {
    io::read_csv(tmp.path);
    FAIL() << "expected PreconditionError";
  } catch (const dipdc::support::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, RaggedRowsReportLineNumbers) {
  TempPath tmp("dipdc_csv_ragged.csv");
  {
    std::ofstream out(tmp.path);
    out << "1.0,2.0\n"
        << "\n"  // blank lines are skipped but still counted
        << "3.0,4.0,5.0\n";
  }
  try {
    io::read_csv(tmp.path);
    FAIL() << "expected PreconditionError";
  } catch (const dipdc::support::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":3"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2"), std::string::npos) << what;
  }
}

// ---- Chunk files -----------------------------------------------------------

TEST(Chunks, RoundTripWithPartialLastChunk) {
  const auto original = io::generate_uniform(103, 7, -1.0, 1.0, 11);
  TempPath tmp("dipdc_chunks_roundtrip.bin");
  io::dataset_to_chunks(original, tmp.path, /*chunk_rows=*/16);

  io::ChunkReader reader(tmp.path);
  EXPECT_EQ(reader.dim(), 7u);
  EXPECT_EQ(reader.total_rows(), 103u);
  EXPECT_EQ(reader.num_chunks(), 7u);  // 6 full + 1 short
  EXPECT_EQ(reader.info().rows_in_chunk(6), 103u - 6u * 16u);

  const auto loaded = io::read_chunks(tmp.path);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < original.values().size(); ++i) {
    EXPECT_EQ(loaded.values()[i], original.values()[i]);
  }
}

TEST(Chunks, StreamingMatchesRandomAccessAndResets) {
  const auto original = io::generate_uniform(64, 3, 0.0, 5.0, 23);
  TempPath tmp("dipdc_chunks_stream.bin");
  io::dataset_to_chunks(original, tmp.path, /*chunk_rows=*/10);

  io::ChunkReader reader(tmp.path);
  for (int pass = 0; pass < 2; ++pass) {  // second pass exercises reset()
    std::vector<double> streamed, direct;
    std::size_t seen = 0;
    while (true) {
      const std::size_t k = reader.next(streamed);
      if (k == reader.num_chunks()) break;
      EXPECT_EQ(k, seen++);
      reader.read_chunk(k, direct);
      ASSERT_EQ(streamed.size(), direct.size());
      EXPECT_EQ(streamed, direct);
    }
    EXPECT_EQ(seen, reader.num_chunks());
    reader.reset();
  }
}

TEST(Chunks, WriterAcceptsArbitraryRowBatches) {
  TempPath tmp("dipdc_chunks_batches.bin");
  {
    io::ChunkWriter writer(tmp.path, /*dim=*/2, /*chunk_rows=*/4);
    // Batches smaller and larger than a chunk, never aligned to one.
    std::vector<double> one = {1, 2};
    std::vector<double> five = {3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    std::vector<double> three = {13, 14, 15, 16, 17, 18};
    writer.append(one);
    writer.append(five);
    writer.append(three);
    EXPECT_THROW(writer.append(std::vector<double>{99}),  // half a row
                 dipdc::support::PreconditionError);
    writer.close();
    EXPECT_EQ(writer.rows_written(), 9u);
  }
  const auto loaded = io::read_chunks(tmp.path);
  EXPECT_EQ(loaded.size(), 9u);
  for (std::size_t i = 0; i < 18; ++i) {
    EXPECT_EQ(loaded.values()[i], static_cast<double>(i + 1));
  }
}

TEST(Chunks, CsvConversionMatchesReadCsv) {
  const auto original = io::generate_uniform(41, 4, -3.0, 3.0, 9);
  TempPath csv("dipdc_chunks_from_csv.csv");
  TempPath bin("dipdc_chunks_from_csv.bin");
  io::write_csv(original, csv.path);

  const io::ChunkFileInfo info =
      io::csv_to_chunks(csv.path, bin.path, /*chunk_rows=*/8);
  EXPECT_EQ(info.dim, 4u);
  EXPECT_EQ(info.total_rows, 41u);
  EXPECT_EQ(info.num_chunks(), 6u);

  const auto via_csv = io::read_csv(csv.path);
  const auto via_chunks = io::read_chunks(bin.path);
  ASSERT_EQ(via_chunks.size(), via_csv.size());
  for (std::size_t i = 0; i < via_csv.values().size(); ++i) {
    EXPECT_EQ(via_chunks.values()[i], via_csv.values()[i]);
  }
}

TEST(Chunks, RejectsCorruptHeaderAndTruncation) {
  TempPath tmp("dipdc_chunks_bad.bin");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "this is not a chunk file";
  }
  EXPECT_THROW(io::ChunkReader reader(tmp.path),
               dipdc::support::PreconditionError);

  // Valid header, missing payload bytes.
  const auto original = io::generate_uniform(20, 2, 0.0, 1.0, 4);
  io::dataset_to_chunks(original, tmp.path, 8);
  const auto full = std::filesystem::file_size(tmp.path);
  std::filesystem::resize_file(tmp.path, full - 16);
  io::ChunkReader reader(tmp.path);
  std::vector<double> chunk;
  EXPECT_THROW(reader.read_chunk(2, chunk),
               dipdc::support::PreconditionError);
}
