#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "dataio/dataset.hpp"
#include "support/error.hpp"

namespace io = dipdc::dataio;

TEST(Dataset, ShapeAndAccess) {
  io::Dataset d(3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.point(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(d.point(1)[2], 6.0);
  const auto r = d.rows(1, 2);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
}

TEST(Dataset, RejectsRaggedValues) {
  EXPECT_THROW(io::Dataset(3, {1, 2}), dipdc::support::PreconditionError);
  EXPECT_THROW(io::Dataset(0, {}), dipdc::support::PreconditionError);
}

TEST(Generators, UniformBoundsAndDeterminism) {
  const auto a = io::generate_uniform(1000, 5, -2.0, 3.0, 77);
  const auto b = io::generate_uniform(1000, 5, -2.0, 3.0, 77);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.dim(), 5u);
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    EXPECT_GE(a.values()[i], -2.0);
    EXPECT_LT(a.values()[i], 3.0);
    EXPECT_DOUBLE_EQ(a.values()[i], b.values()[i]);
  }
  const auto c = io::generate_uniform(1000, 5, -2.0, 3.0, 78);
  EXPECT_NE(a.values()[0], c.values()[0]);
}

TEST(Generators, ExponentialIsSkewed) {
  const auto d = io::generate_exponential(100000, 1, 2.0, 5);
  double mean = 0.0;
  std::size_t below_mean = 0;
  for (const double v : d.values()) {
    EXPECT_GE(v, 0.0);
    mean += v;
  }
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(mean, 0.5, 0.01);
  for (const double v : d.values()) {
    if (v < mean) ++below_mean;
  }
  // For Exp, ~63% of the mass is below the mean: clearly skewed.
  EXPECT_GT(below_mean, d.size() * 60 / 100);
}

TEST(Generators, ClustersCarryGroundTruth) {
  const auto c = io::generate_clusters(2000, 2, 4, 0.05, 0.0, 10.0, 31);
  EXPECT_EQ(c.data.size(), 2000u);
  EXPECT_EQ(c.true_centers.size(), 4u);
  EXPECT_EQ(c.labels.size(), 2000u);
  // Every point lies near its generating center.
  for (std::size_t i = 0; i < c.data.size(); ++i) {
    const auto p = c.data.point(i);
    const auto ctr = c.true_centers.point(c.labels[i]);
    const double dx = p[0] - ctr[0];
    const double dy = p[1] - ctr[1];
    EXPECT_LT(dx * dx + dy * dy, 1.0);  // within 20 sigma
  }
}

TEST(Partition, BlockPartitionCoversExactly) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t p : {1u, 2u, 3u, 7u, 16u}) {
      const auto parts = io::block_partition(n, p);
      ASSERT_EQ(parts.size(), p);
      std::size_t expect_begin = 0;
      std::size_t max_len = 0, min_len = n + 1;
      for (const auto& [b, e] : parts) {
        EXPECT_EQ(b, expect_begin);
        EXPECT_LE(b, e);
        max_len = std::max(max_len, e - b);
        min_len = std::min(min_len, e - b);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
      EXPECT_LE(max_len - min_len, 1u);
    }
  }
}

TEST(Csv, RoundTripPreservesValues) {
  const auto original = io::generate_uniform(50, 4, 0.0, 1.0, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dipdc_csv_test.csv").string();
  io::write_csv(original, path);
  const auto loaded = io::read_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < original.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.values()[i], original.values()[i]);
  }
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(io::read_csv("/nonexistent/definitely/not/here.csv"),
               dipdc::support::PreconditionError);
}
