// Module 7 (extension): MapReduce word count — correctness against the
// sequential oracle, the combiner's volume collapse, and partitioning
// balance under Zipf skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "modules/mapreduce/module7.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;
namespace m7 = dipdc::modules::mapreduce;
namespace io = dipdc::dataio;

namespace {

std::vector<std::uint64_t> shard(const std::vector<std::uint64_t>& all,
                                 int rank, int p) {
  const auto parts =
      io::block_partition(all.size(), static_cast<std::size_t>(p));
  const auto [b, e] = parts[static_cast<std::size_t>(rank)];
  return {all.begin() + static_cast<std::ptrdiff_t>(b),
          all.begin() + static_cast<std::ptrdiff_t>(e)};
}

}  // namespace

TEST(Zipf, DeterministicAndSkewed) {
  const auto a = io::generate_zipf_tokens(100000, 1000, 1.1, 5);
  const auto b = io::generate_zipf_tokens(100000, 1000, 1.1, 5);
  ASSERT_EQ(a, b);
  std::vector<std::uint64_t> counts(1000, 0);
  for (const auto t : a) {
    ASSERT_LT(t, 1000u);
    ++counts[t];
  }
  // Token 0 is the Zipf head: far more frequent than the median token.
  EXPECT_GT(counts[0], 20u * counts[500]);
  // And the head tokens dominate: top-10 should hold > 40% of the mass.
  std::uint64_t top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[static_cast<std::size_t>(i)];
  EXPECT_GT(top10, 40000u);
}

TEST(Zipf, ExponentZeroIsUniform) {
  const auto t = io::generate_zipf_tokens(200000, 100, 0.0, 6);
  std::vector<std::uint64_t> counts(100, 0);
  for (const auto x : t) ++counts[x];
  for (const auto c : counts) {
    EXPECT_GT(c, 1500u);
    EXPECT_LT(c, 2500u);
  }
}

TEST(SequentialOracle, CountsEveryToken) {
  const std::vector<std::uint64_t> toks{3, 1, 3, 3, 7, 1};
  const auto counts = m7::word_count_sequential(toks);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], (m7::KeyCount{1, 2}));
  EXPECT_EQ(counts[1], (m7::KeyCount{3, 3}));
  EXPECT_EQ(counts[2], (m7::KeyCount{7, 1}));
}

TEST(Partitioning, CoversAllReducersAndIsStable) {
  m7::Config cfg;
  cfg.vocabulary = 1000;
  for (const auto part : {m7::Partitioning::kHash, m7::Partitioning::kRange}) {
    cfg.partitioning = part;
    std::vector<bool> hit(8, false);
    for (std::uint64_t k = 0; k < 1000; ++k) {
      const int r = m7::reducer_of(k, cfg, 8);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, 8);
      EXPECT_EQ(r, m7::reducer_of(k, cfg, 8));
      hit[static_cast<std::size_t>(r)] = true;
    }
    for (const bool h : hit) EXPECT_TRUE(h);
  }
}

class WordCountSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, m7::Partitioning>> {
};

TEST_P(WordCountSweep, MatchesSequentialOracle) {
  const auto [p, combine, part] = GetParam();
  const auto all = io::generate_zipf_tokens(60000, 5000, 1.05, 42);
  const auto oracle = m7::word_count_sequential(all);

  m7::Config cfg;
  cfg.map_side_combine = combine;
  cfg.partitioning = part;
  cfg.vocabulary = 5000;

  mpi::run(p, [&](mpi::Comm& comm) {
    const auto mine = shard(all, comm.rank(), comm.size());
    const auto r = m7::word_count(comm, mine, cfg);
    EXPECT_EQ(r.global_total, all.size());
    // Every key this rank owns matches the oracle, and belongs here.
    for (const auto& kc : r.counts) {
      EXPECT_EQ(m7::reducer_of(kc.key, cfg, comm.size()), comm.rank());
      const auto it = std::lower_bound(
          oracle.begin(), oracle.end(), kc,
          [](const m7::KeyCount& a, const m7::KeyCount& b) {
            return a.key < b.key;
          });
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(it->key, kc.key);
      EXPECT_EQ(it->count, kc.count);
    }
    // And the number of distinct keys across ranks matches the oracle.
    const long long mine_keys = static_cast<long long>(r.counts.size());
    const long long total_keys = comm.allreduce_value(
        mine_keys, dipdc::minimpi::ops::Sum{});
    EXPECT_EQ(static_cast<std::size_t>(total_keys), oracle.size());
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksCombinePartitioning, WordCountSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(true, false),
                       ::testing::Values(m7::Partitioning::kHash,
                                         m7::Partitioning::kRange)));

TEST(Combiner, CollapsesShuffleVolume) {
  const auto all = io::generate_zipf_tokens(100000, 2000, 1.1, 7);
  m7::Config with, without;
  with.map_side_combine = true;
  without.map_side_combine = false;
  std::uint64_t sent_with = 0, sent_without = 0;
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto mine = shard(all, comm.rank(), comm.size());
    const auto a = m7::word_count(comm, mine, with);
    const auto b = m7::word_count(comm, mine, without);
    if (comm.rank() == 0) {
      sent_with = a.shuffle_tuples_sent;
      sent_without = b.shuffle_tuples_sent;
    }
  });
  // Without the combiner every token travels; with it, at most the number
  // of distinct keys per rank (2000).
  EXPECT_EQ(sent_without, 25000u);
  EXPECT_LE(sent_with, 2000u);
  EXPECT_GT(sent_without, 10u * sent_with);
}

TEST(Skew, RangePartitioningCollapsesUnderZipf) {
  // Without a combiner, range partitioning sends the whole Zipf head to
  // reducer 0; hash partitioning spreads the tuple load.
  const auto all = io::generate_zipf_tokens(200000, 8000, 1.2, 9);
  m7::Config hash, range;
  hash.map_side_combine = range.map_side_combine = false;
  hash.partitioning = m7::Partitioning::kHash;
  range.partitioning = m7::Partitioning::kRange;
  hash.vocabulary = range.vocabulary = 8000;
  double imb_hash = 0.0, imb_range = 0.0;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto mine = shard(all, comm.rank(), comm.size());
    const auto h = m7::word_count(comm, mine, hash);
    const auto r = m7::word_count(comm, mine, range);
    if (comm.rank() == 0) {
      imb_hash = h.reducer_imbalance;
      imb_range = r.reducer_imbalance;
    }
  });
  // Hash partitioning is not perfectly balanced either: the hottest *key*
  // still lands on a single reducer (keys, not tuples, are partitioned) —
  // itself a teachable limit of hash partitioning.  But range
  // partitioning additionally sends the *whole* Zipf head range to
  // reducer 0 and is far worse.
  EXPECT_LT(imb_hash, 4.0);
  EXPECT_GT(imb_range, 4.0);
  EXPECT_GT(imb_range, 2.0 * imb_hash);
}

TEST(Edge, EmptyShardsAreFine) {
  m7::Config cfg;
  mpi::run(3, [&](mpi::Comm& comm) {
    std::vector<std::uint64_t> mine;
    if (comm.rank() == 1) mine = {5, 5, 9};
    const auto r = m7::word_count(comm, mine, cfg);
    EXPECT_EQ(r.global_total, 3u);
  });
}
