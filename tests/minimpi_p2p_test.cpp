// Point-to-point semantics of the minimpi runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;

TEST(P2P, ScalarRoundTrip) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(42, 1);
    } else {
      EXPECT_EQ(comm.recv_value<int>(), 42);
    }
  });
}

TEST(P2P, VectorPayload) {
  mpi::run(2, [](mpi::Comm& comm) {
    std::vector<double> data(1000);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(std::span<const double>(data), 1, 7);
    } else {
      const mpi::Status st = comm.recv(std::span<double>(data), 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count<double>(), 1000u);
      EXPECT_DOUBLE_EQ(data[999], 999.0);
    }
  });
}

TEST(P2P, MessagesDoNotOvertake) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send_value(i, 1, /*tag=*/3);
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(P2P, TagSelectionSkipsNonMatching) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, /*tag=*/10);
      comm.send_value(2, 1, /*tag=*/20);
    } else {
      // Receive the tag-20 message first even though tag-10 arrived first.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(P2P, AnySourceReceivesFromEveryone) {
  const int p = 6;
  mpi::run(p, [p](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::set<int> seen;
      for (int i = 1; i < p; ++i) {
        int v = 0;
        const mpi::Status st =
            comm.recv(std::span<int>(&v, 1), mpi::kAnySource, 5);
        EXPECT_EQ(v, st.source * 100);
        seen.insert(st.source);
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(p - 1));
    } else {
      comm.send_value(comm.rank() * 100, 0, 5);
    }
  });
}

TEST(P2P, AnyTagMatchesFirstArrival) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(11, 1, /*tag=*/4);
    } else {
      int v = 0;
      const mpi::Status st =
          comm.recv(std::span<int>(&v, 1), 0, mpi::kAnyTag);
      EXPECT_EQ(st.tag, 4);
      EXPECT_EQ(v, 11);
    }
  });
}

TEST(P2P, ProbeThenSizedReceive) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3, 4, 5};
      comm.send(std::span<const int>(data), 1, 9);
    } else {
      const mpi::Status st = comm.probe(0, 9);
      EXPECT_EQ(st.count<int>(), 5u);
      std::vector<int> data(st.count<int>());
      comm.recv(std::span<int>(data), st.source, st.tag);
      EXPECT_EQ(data.back(), 5);
    }
  });
}

TEST(P2P, RecvVectorSizesItself) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(37, 1.5f);
      comm.send(std::span<const float>(data), 1);
    } else {
      const auto got = comm.recv_vector<float>(0);
      EXPECT_EQ(got.size(), 37u);
      EXPECT_FLOAT_EQ(got[36], 1.5f);
    }
  });
}

TEST(P2P, IprobeNonBlocking) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      // Nothing has been sent to rank 0.
      EXPECT_FALSE(comm.iprobe().has_value());
      comm.send_value(1, 1);
    } else {
      (void)comm.recv_value<int>();
      // Now something must be probe-able once it arrives; spin on iprobe.
      // (The message from rank 0 was already received above, so send one.)
    }
  });
}

TEST(P2P, IprobeSeesPendingMessage) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(123, 1, 8);
      comm.send_value(0, 1, 99);  // completion marker
    } else {
      // Wait for the marker to guarantee arrival order, then iprobe.
      (void)comm.recv_value<int>(0, 99);
      const auto st = comm.iprobe(0, 8);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->bytes, sizeof(int));
      EXPECT_EQ(comm.recv_value<int>(0, 8), 123);
    }
  });
}

TEST(P2P, SendrecvRingShift) {
  const int p = 5;
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    const int next = (r + 1) % p;
    const int prev = (r - 1 + p) % p;
    int out = r;
    int in = -1;
    comm.sendrecv(std::span<const int>(&out, 1), next, 0,
                  std::span<int>(&in, 1), prev, 0);
    EXPECT_EQ(in, prev);
  });
}

TEST(P2P, IsendIrecvWait) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      int v = 77;
      mpi::Request req = comm.isend(std::span<const int>(&v, 1), 1);
      comm.wait(req);
    } else {
      int v = 0;
      mpi::Request req = comm.irecv(std::span<int>(&v, 1), 0);
      const mpi::Status st = comm.wait(req);
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(v, 77);
    }
  });
}

TEST(P2P, IrecvPostedBeforeSendIsMatched) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      int v = 0;
      mpi::Request req = comm.irecv(std::span<int>(&v, 1), 0, 6);
      // Tell rank 0 the receive is posted.
      comm.send_value(1, 0, 50);
      comm.wait(req);
      EXPECT_EQ(v, 88);
    } else {
      (void)comm.recv_value<int>(1, 50);
      comm.send_value(88, 1, 6);
    }
  });
}

TEST(P2P, WaitAllCompletesEverything) {
  const int p = 4;
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    std::vector<int> inbox(static_cast<std::size_t>(p), -1);
    std::vector<mpi::Request> reqs;
    for (int src = 0; src < p; ++src) {
      if (src == r) continue;
      reqs.push_back(comm.irecv(
          std::span<int>(&inbox[static_cast<std::size_t>(src)], 1), src, 2));
    }
    for (int dst = 0; dst < p; ++dst) {
      if (dst == r) continue;
      comm.send_value(r, dst, 2);
    }
    comm.wait_all(std::span<mpi::Request>(reqs));
    for (int src = 0; src < p; ++src) {
      if (src == r) continue;
      EXPECT_EQ(inbox[static_cast<std::size_t>(src)], src);
    }
  });
}

TEST(P2P, TestPollsUntilDone) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(5, 1);
    } else {
      int v = 0;
      mpi::Request req = comm.irecv(std::span<int>(&v, 1), 0);
      mpi::Status st;
      while (!comm.test(req, &st)) {
      }
      EXPECT_EQ(v, 5);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, SendToSelfEagerWorks) {
  mpi::run(1, [](mpi::Comm& comm) {
    comm.send_value(3, 0);
    EXPECT_EQ(comm.recv_value<int>(0), 3);
  });
}

TEST(P2P, TruncationIsAnError) {
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 if (comm.rank() == 0) {
                   std::vector<int> big(10, 1);
                   comm.send(std::span<const int>(big), 1);
                 } else {
                   int small = 0;
                   comm.recv(std::span<int>(&small, 1), 0);
                 }
               }),
      mpi::MpiError);
}

TEST(P2P, InvalidPeerRejected) {
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 if (comm.rank() == 0) comm.send_value(1, 5);
                 else (void)comm.recv_value<int>();
               }),
      mpi::MpiError);
}

TEST(P2P, NegativeUserTagRejected) {
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 if (comm.rank() == 0) comm.send_value(1, 1, -5);
                 else (void)comm.recv_value<int>();
               }),
      mpi::MpiError);
}

TEST(P2P, EmptyMessageDelivers) {
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const int>{}, 1, 3);
    } else {
      const mpi::Status st = comm.recv(std::span<int>{}, 0, 3);
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(P2P, StatsCountPrimitivesAndBytes) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data(100, 2);
      comm.send(std::span<const int>(data), 1);
      comm.send(std::span<const int>(data), 1);
    } else {
      (void)comm.recv_vector<int>(0);
      (void)comm.recv_vector<int>(0);
    }
  });
  const auto& s0 = result.rank_stats[0];
  const auto& s1 = result.rank_stats[1];
  EXPECT_EQ(s0.calls_to(mpi::Primitive::kSend), 2u);
  EXPECT_EQ(s0.p2p_messages_sent, 2u);
  EXPECT_EQ(s0.p2p_bytes_sent, 2u * 100u * sizeof(int));
  EXPECT_EQ(s1.calls_to(mpi::Primitive::kRecv), 2u);
  EXPECT_EQ(s1.calls_to(mpi::Primitive::kProbe), 2u);
  EXPECT_EQ(s1.p2p_bytes_received, 2u * 100u * sizeof(int));
}

TEST(P2P, RunResultAggregates) {
  const auto result = mpi::run(3, [](mpi::Comm& comm) {
    if (comm.rank() != 0) comm.send_value(1, 0);
    else {
      (void)comm.recv_value<int>();
      (void)comm.recv_value<int>();
    }
  });
  EXPECT_EQ(result.total_stats().calls_to(mpi::Primitive::kSend), 2u);
  EXPECT_EQ(result.total_stats().calls_to(mpi::Primitive::kRecv), 2u);
  EXPECT_EQ(result.rank_stats.size(), 3u);
  EXPECT_EQ(result.sim_times.size(), 3u);
  EXPECT_GE(result.max_sim_time(), 0.0);
}

TEST(P2P, LargeRendezvousMessage) {
  // Larger than the default eager threshold, so the rendezvous path runs.
  mpi::run(2, [](mpi::Comm& comm) {
    const std::size_t n = 1 << 17;  // 512 KiB of ints
    if (comm.rank() == 0) {
      std::vector<int> data(n, 9);
      comm.send(std::span<const int>(data), 1);
    } else {
      const auto got = comm.recv_vector<int>(0);
      EXPECT_EQ(got.size(), n);
      EXPECT_EQ(got.front(), 9);
      EXPECT_EQ(got.back(), 9);
    }
  });
}

// ---- Property-style sweeps over world sizes -------------------------------

class WorldSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorldSweep, TokenRingVisitsEveryRank) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    if (p == 1) return;
    if (r == 0) {
      comm.send_value(1, 1 % p);
      const int token = comm.recv_value<int>(p - 1);
      EXPECT_EQ(token, p);  // incremented once per rank
    } else {
      const int token = comm.recv_value<int>(r - 1);
      comm.send_value(token + 1, (r + 1) % p);
    }
  });
}

TEST_P(WorldSweep, PairwiseExchangeSumsMatch) {
  const int p = GetParam();
  const auto result = mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    long long sum = 0;
    std::vector<mpi::Request> reqs;
    std::vector<int> inbox(static_cast<std::size_t>(p), 0);
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r) continue;
      reqs.push_back(comm.irecv(
          std::span<int>(&inbox[static_cast<std::size_t>(peer)], 1), peer, 1));
    }
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r) continue;
      comm.send_value(r + peer, peer, 1);
    }
    comm.wait_all(std::span<mpi::Request>(reqs));
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r) continue;
      sum += inbox[static_cast<std::size_t>(peer)];
      EXPECT_EQ(inbox[static_cast<std::size_t>(peer)], peer + r);
    }
    (void)sum;
  });
  EXPECT_EQ(result.total_stats().p2p_messages_sent,
            static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p - 1));
}

TEST_P(WorldSweep, RandomCommunicationWithAnySource) {
  const int p = GetParam();
  // Every rank sends a random number of messages to random peers, then all
  // message counts are circulated so each rank knows how many to expect.
  mpi::run(p, [](mpi::Comm& comm) {
    const int r = comm.rank();
    const int p2 = comm.size();
    auto rng = dipdc::support::make_stream(2024, static_cast<std::uint64_t>(r));
    std::vector<int> sends_to(static_cast<std::size_t>(p2), 0);
    const int nmsg = static_cast<int>(rng.uniform_index(5));
    for (int i = 0; i < nmsg; ++i) {
      const int dst = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(p2)));
      ++sends_to[static_cast<std::size_t>(dst)];
    }
    std::vector<int> recv_counts(static_cast<std::size_t>(p2), 0);
    comm.alltoall(std::span<const int>(sends_to),
                  std::span<int>(recv_counts));
    int expected = 0;
    for (const int c : recv_counts) expected += c;
    for (int dst = 0; dst < p2; ++dst) {
      for (int i = 0; i < sends_to[static_cast<std::size_t>(dst)]; ++i) {
        comm.send_value(r, dst, 42);
      }
    }
    for (int i = 0; i < expected; ++i) {
      int v = -1;
      const mpi::Status st =
          comm.recv(std::span<int>(&v, 1), mpi::kAnySource, 42);
      EXPECT_EQ(v, st.source);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, WorldSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13, 16));
