// Module 4: distributed range queries — brute force vs. indexed engines,
// scaling characters, and the node-placement lesson.
#include <gtest/gtest.h>

#include <vector>

#include "minimpi/runtime.hpp"
#include "modules/rangequery/module4.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;
namespace m4 = dipdc::modules::rangequery;
namespace sp = dipdc::spatial;

namespace {

std::vector<sp::Point2> make_points(std::size_t n, std::uint64_t seed) {
  dipdc::support::Xoshiro256 rng(seed);
  std::vector<sp::Point2> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  return pts;
}

}  // namespace

TEST(Workload, DeterministicAndShaped) {
  const auto a = m4::make_query_workload(100, 50.0, 2.0, 7);
  const auto b = m4::make_query_workload(100, 50.0, 2.0, 7);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_NEAR(a[i].xmax - a[i].xmin, 2.0, 1e-9);
    EXPECT_NEAR(a[i].ymax - a[i].ymin, 2.0, 1e-9);
  }
}

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<int, m4::Engine>> {};

TEST_P(EngineSweep, MatchCountIndependentOfRanksAndEngine) {
  const auto [p, engine] = GetParam();
  const auto points = make_points(3000, 11);
  const auto queries = m4::make_query_workload(60, 100.0, 8.0, 13);

  // Oracle via sequential brute force.
  std::uint64_t expect = 0;
  std::vector<std::uint32_t> hits;
  for (const auto& q : queries) {
    hits.clear();
    sp::brute_force_query(points, q, hits);
    expect += hits.size();
  }
  ASSERT_GT(expect, 0u);

  m4::Config cfg;
  cfg.engine = engine;
  mpi::run(p, [&](mpi::Comm& comm) {
    const auto r = m4::run_distributed(comm, points, queries, cfg);
    EXPECT_EQ(r.total_matches, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndEngines, EngineSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(m4::Engine::kBruteForce,
                                         m4::Engine::kRTree,
                                         m4::Engine::kQuadTree,
                                         m4::Engine::kKdTree)));

TEST(Efficiency, RTreeChecksFarFewerEntries) {
  const auto points = make_points(20000, 17);
  const auto queries = m4::make_query_workload(50, 100.0, 2.0, 19);
  m4::Config brute, rtree;
  rtree.engine = m4::Engine::kRTree;
  mpi::run(2, [&](mpi::Comm& comm) {
    const auto rb = m4::run_distributed(comm, points, queries, brute);
    const auto rt = m4::run_distributed(comm, points, queries, rtree);
    EXPECT_EQ(rb.total_matches, rt.total_matches);
    EXPECT_LT(rt.entries_checked * 10, rb.entries_checked);
    EXPECT_GT(rt.nodes_visited, 0u);
    EXPECT_EQ(rb.nodes_visited, 0u);
  });
}

TEST(Efficiency, RTreeIsAbsolutelyFasterInSimulatedTime) {
  // Activity 2's outcome: despite worse scalability the R-tree is much
  // more efficient in absolute terms.
  const auto points = make_points(20000, 23);
  const auto queries = m4::make_query_workload(100, 100.0, 2.0, 29);
  m4::Config brute, rtree;
  rtree.engine = m4::Engine::kRTree;
  double t_brute = 0.0, t_rtree = 0.0;
  mpi::run(4, [&](mpi::Comm& comm) {
    t_brute = m4::run_distributed(comm, points, queries, brute).sim_time;
    t_rtree = m4::run_distributed(comm, points, queries, rtree).sim_time;
  });
  EXPECT_LT(t_rtree * 2, t_brute);
}

namespace {

double engine_time(int p, m4::Engine engine,
                   const std::vector<sp::Point2>& points,
                   const std::vector<sp::Rect>& queries,
                   dipdc::perfmodel::MachineConfig machine = {}) {
  m4::Config cfg;
  cfg.engine = engine;
  mpi::RuntimeOptions opts;
  opts.machine = machine;
  double t = 0.0;
  mpi::run(
      p,
      [&](mpi::Comm& comm) {
        // Measure the query phase only: the index build is a fixed cost
        // shared by all rank counts (it is replicated, not partitioned).
        t = m4::run_distributed(comm, points, queries, cfg).sim_time;
      },
      opts);
  return t;
}

}  // namespace

TEST(Scaling, BruteForceScalesBetterThanRTree) {
  // The module's crossover: on a single node, the compute-bound brute
  // force approaches linear speedup while the memory-bound R-tree
  // saturates on shared bandwidth.
  const auto points = make_points(20000, 31);
  const auto queries = m4::make_query_workload(400, 100.0, 10.0, 37);
  dipdc::perfmodel::MachineConfig one_node;  // 1 node, shared bandwidth

  const double sb =
      engine_time(1, m4::Engine::kBruteForce, points, queries, one_node) /
      engine_time(16, m4::Engine::kBruteForce, points, queries, one_node);
  const double sr =
      engine_time(1, m4::Engine::kRTree, points, queries, one_node) /
      engine_time(16, m4::Engine::kRTree, points, queries, one_node);
  EXPECT_GT(sb, sr);
  EXPECT_GT(sb, 8.0);   // near-linear
  EXPECT_LT(sr, 12.0);  // clearly saturating
}

TEST(Placement, TwoNodesBeatOneForTheRTree) {
  // Activity 3: p ranks on 2 nodes exploit twice the aggregate memory
  // bandwidth, helping the memory-bound R-tree.
  const auto points = make_points(20000, 41);
  const auto queries = m4::make_query_workload(400, 100.0, 10.0, 43);
  auto one = dipdc::perfmodel::MachineConfig::monsoon_like(1);
  auto two = dipdc::perfmodel::MachineConfig::monsoon_like(2);
  const double t1 = engine_time(16, m4::Engine::kRTree, points, queries, one);
  const double t2 = engine_time(16, m4::Engine::kRTree, points, queries, two);
  EXPECT_LT(t2, t1);
}

TEST(Edge, EmptyQuerySetIsFine) {
  const auto points = make_points(100, 47);
  mpi::run(3, [&](mpi::Comm& comm) {
    const auto r = m4::run_distributed(comm, points,
                                       std::vector<sp::Rect>{}, m4::Config{});
    EXPECT_EQ(r.total_matches, 0u);
  });
}

TEST(Edge, MoreRanksThanQueries) {
  const auto points = make_points(500, 53);
  const auto queries = m4::make_query_workload(2, 100.0, 50.0, 59);
  m4::Config cfg;
  cfg.engine = m4::Engine::kRTree;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto r = m4::run_distributed(comm, points, queries, cfg);
    EXPECT_GT(r.total_matches, 0u);
  });
}
