// Spatial index correctness: R-tree and quad-tree vs. the brute-force
// oracle, structural invariants, and the efficiency property Module 4
// teaches (indexed search checks far fewer entries).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/geometry.hpp"
#include "index/kdtree.hpp"
#include "index/quadtree.hpp"
#include "index/rtree.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sp = dipdc::spatial;

namespace {

std::vector<sp::Point2> random_points(std::size_t n, std::uint64_t seed,
                                      double extent = 100.0) {
  dipdc::support::Xoshiro256 rng(seed);
  std::vector<sp::Point2> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, extent);
    p.y = rng.uniform(0.0, extent);
  }
  return pts;
}

std::vector<sp::Rect> random_windows(std::size_t n, std::uint64_t seed,
                                     double extent = 100.0,
                                     double max_side = 20.0) {
  dipdc::support::Xoshiro256 rng(seed);
  std::vector<sp::Rect> ws(n);
  for (auto& w : ws) {
    const double x = rng.uniform(0.0, extent);
    const double y = rng.uniform(0.0, extent);
    const double wx = rng.uniform(0.0, max_side);
    const double wy = rng.uniform(0.0, max_side);
    w = {x, y, x + wx, y + wy};
  }
  return ws;
}

std::vector<std::uint32_t> sorted(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

TEST(Rect, ContainsAndIntersects) {
  const sp::Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(sp::Point2{5, 5}));
  EXPECT_TRUE(r.contains(sp::Point2{0, 0}));    // closed boundary
  EXPECT_TRUE(r.contains(sp::Point2{10, 10}));
  EXPECT_FALSE(r.contains(sp::Point2{10.01, 5}));
  EXPECT_TRUE(r.intersects({5, 5, 15, 15}));
  EXPECT_TRUE(r.intersects({10, 10, 20, 20}));  // touching corners
  EXPECT_FALSE(r.intersects({11, 11, 20, 20}));
}

TEST(Rect, AreaUnitedEnlargement) {
  const sp::Rect a{0, 0, 2, 3};
  EXPECT_DOUBLE_EQ(a.area(), 6.0);
  const sp::Rect b{4, 0, 5, 1};
  const sp::Rect u = a.united(b);
  EXPECT_EQ(u, (sp::Rect{0, 0, 5, 3}));
  EXPECT_DOUBLE_EQ(a.enlargement(b), 15.0 - 6.0);
  // Empty rect is the unite identity.
  EXPECT_EQ(sp::Rect::empty().united(a), a);
}

TEST(BruteForce, FindsExactlyTheContainedPoints) {
  const std::vector<sp::Point2> pts{{1, 1}, {2, 2}, {3, 3}, {10, 10}};
  std::vector<std::uint32_t> out;
  sp::QueryStats stats;
  sp::brute_force_query(pts, {0, 0, 2.5, 2.5}, out, &stats);
  EXPECT_EQ(sorted(out), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(stats.entries_checked, 4u);
}

TEST(RTree, EmptyTreeQueriesNothing) {
  sp::RTree tree;
  std::vector<std::uint32_t> out;
  tree.query({0, 0, 100, 100}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.check_invariants());
}

TEST(RTree, RejectsTinyFanout) {
  EXPECT_THROW(sp::RTree(2), dipdc::support::PreconditionError);
}

TEST(RTree, SingleAndDuplicatePoints) {
  sp::RTree tree(4);
  tree.insert({5, 5}, 0);
  tree.insert({5, 5}, 1);
  tree.insert({5, 5}, 2);
  std::vector<std::uint32_t> out;
  tree.query({5, 5, 5, 5}, out);
  EXPECT_EQ(sorted(out), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(tree.check_invariants());
}

TEST(RTree, HeightGrowsWithInserts) {
  sp::RTree tree(4);
  const auto pts = random_points(200, 1);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.insert(pts[i], static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GE(tree.height(), 3);
  EXPECT_TRUE(tree.check_invariants());
}

class RTreeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RTreeSweep, InsertedTreeMatchesBruteForce) {
  const auto [n, fanout] = GetParam();
  const auto pts = random_points(n, 42 + n);
  sp::RTree tree(fanout);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.insert(pts[i], static_cast<std::uint32_t>(i));
  }
  ASSERT_TRUE(tree.check_invariants());
  for (const auto& w : random_windows(25, n * 7 + fanout)) {
    std::vector<std::uint32_t> got, expect;
    tree.query(w, got);
    sp::brute_force_query(pts, w, expect);
    EXPECT_EQ(sorted(got), sorted(expect));
  }
}

TEST_P(RTreeSweep, BulkLoadedTreeMatchesBruteForce) {
  const auto [n, fanout] = GetParam();
  const auto pts = random_points(n, 24 + n);
  const sp::RTree tree = sp::RTree::bulk_load(pts, fanout);
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.check_invariants());
  for (const auto& w : random_windows(25, n * 3 + fanout)) {
    std::vector<std::uint32_t> got, expect;
    tree.query(w, got);
    sp::brute_force_query(pts, w, expect);
    EXPECT_EQ(sorted(got), sorted(expect));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFanouts, RTreeSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 5u, 64u, 500u, 3000u),
                       ::testing::Values(4u, 8u, 32u)));

TEST(RTree, BulkLoadHeightIsLogarithmic) {
  const auto pts = random_points(4096, 9);
  const sp::RTree tree = sp::RTree::bulk_load(pts, 16);
  // ceil(log_16(4096/16)) + 1 = 3 levels for a packed tree.
  EXPECT_LE(tree.height(), 4);
  EXPECT_GE(tree.height(), 3);
}

TEST(RTree, SelectiveQueryChecksFarFewerEntriesThanBruteForce) {
  // The Module 4 lesson: the index prunes the search.
  const auto pts = random_points(20000, 17);
  const sp::RTree tree = sp::RTree::bulk_load(pts, 16);
  sp::QueryStats tree_stats, brute_stats;
  std::vector<std::uint32_t> out;
  const sp::Rect window{10, 10, 12, 12};  // ~0.04% selectivity
  tree.query(window, out, &tree_stats);
  out.clear();
  sp::brute_force_query(pts, window, out, &brute_stats);
  EXPECT_LT(tree_stats.entries_checked * 20, brute_stats.entries_checked);
}

TEST(RTree, BoundsCoverAllPoints) {
  const auto pts = random_points(500, 21);
  sp::RTree tree(8);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.insert(pts[i], static_cast<std::uint32_t>(i));
  }
  const sp::Rect b = tree.bounds();
  for (const auto& p : pts) EXPECT_TRUE(b.contains(p));
}

TEST(QuadTree, InsertRejectsOutOfBounds) {
  sp::QuadTree qt({0, 0, 10, 10}, 4);
  EXPECT_TRUE(qt.insert({5, 5}, 0));
  EXPECT_FALSE(qt.insert({11, 5}, 1));
  EXPECT_EQ(qt.size(), 1u);
}

TEST(QuadTree, MatchesBruteForceOnRandomData) {
  const auto pts = random_points(3000, 33);
  sp::QuadTree qt({0, 0, 100, 100}, 8);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(qt.insert(pts[i], static_cast<std::uint32_t>(i)));
  }
  for (const auto& w : random_windows(25, 99)) {
    std::vector<std::uint32_t> got, expect;
    qt.query(w, got);
    sp::brute_force_query(pts, w, expect);
    EXPECT_EQ(sorted(got), sorted(expect));
  }
}

TEST(QuadTree, DuplicatePointsBeyondCapacityStopAtMaxDepth) {
  sp::QuadTree qt({0, 0, 10, 10}, 2, /*max_depth=*/6);
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(qt.insert({3, 3}, i));
  }
  std::vector<std::uint32_t> out;
  qt.query({3, 3, 3, 3}, out);
  EXPECT_EQ(out.size(), 50u);
}

TEST(QuadTree, AlsoPrunesComparedToBruteForce) {
  const auto pts = random_points(20000, 55);
  sp::QuadTree qt({0, 0, 100, 100}, 16);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(qt.insert(pts[i], static_cast<std::uint32_t>(i)));
  }
  sp::QueryStats qt_stats, brute_stats;
  std::vector<std::uint32_t> out;
  const sp::Rect window{40, 40, 42, 42};
  qt.query(window, out, &qt_stats);
  out.clear();
  sp::brute_force_query(pts, window, out, &brute_stats);
  EXPECT_LT(qt_stats.entries_checked * 10, brute_stats.entries_checked);
}

// ---- k-d tree --------------------------------------------------------------

TEST(KdTree, EmptyTree) {
  const sp::KdTree tree;
  std::vector<std::uint32_t> out;
  tree.query({0, 0, 10, 10}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.check_invariants());
}

TEST(KdTree, MatchesBruteForceOnRandomData) {
  for (const std::size_t n : {1u, 2u, 17u, 500u, 5000u}) {
    const auto pts = random_points(n, 1000 + n);
    const auto tree = sp::KdTree::build(pts);
    EXPECT_EQ(tree.size(), n);
    ASSERT_TRUE(tree.check_invariants()) << n;
    for (const auto& w : random_windows(20, 2000 + n)) {
      std::vector<std::uint32_t> got, expect;
      tree.query(w, got);
      sp::brute_force_query(pts, w, expect);
      EXPECT_EQ(sorted(got), sorted(expect)) << n;
    }
  }
}

TEST(KdTree, BalancedHeight) {
  const auto pts = random_points(4096, 77);
  const auto tree = sp::KdTree::build(pts);
  // Median splits give height exactly ceil(log2(n+1)) = 13 for 4096.
  EXPECT_LE(tree.height(), 13);
}

TEST(KdTree, DuplicateCoordinates) {
  std::vector<sp::Point2> pts(100, sp::Point2{5.0, 5.0});
  const auto tree = sp::KdTree::build(pts);
  EXPECT_TRUE(tree.check_invariants());
  std::vector<std::uint32_t> out;
  tree.query({5, 5, 5, 5}, out);
  EXPECT_EQ(out.size(), 100u);
  out.clear();
  tree.query({6, 6, 7, 7}, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, PrunesComparedToBruteForce) {
  const auto pts = random_points(20000, 88);
  const auto tree = sp::KdTree::build(pts);
  sp::QueryStats tree_stats, brute_stats;
  std::vector<std::uint32_t> out;
  const sp::Rect window{20, 20, 22, 22};
  tree.query(window, out, &tree_stats);
  out.clear();
  sp::brute_force_query(pts, window, out, &brute_stats);
  EXPECT_LT(tree_stats.entries_checked * 10, brute_stats.entries_checked);
}
