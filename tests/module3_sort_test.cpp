// Module 3: distributed bucket sort, load imbalance, histogram splitters.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "modules/sort/module3.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;
namespace m3 = dipdc::modules::distsort;

namespace {

std::vector<double> local_uniform(int rank, std::size_t n, double lo,
                                  double hi) {
  auto rng = dipdc::support::make_stream(500, static_cast<std::uint64_t>(rank));
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

std::vector<double> local_exponential(int rank, std::size_t n, double rate) {
  auto rng = dipdc::support::make_stream(501, static_cast<std::uint64_t>(rank));
  std::vector<double> v(n);
  for (auto& x : v) x = rng.exponential(rate);
  return v;
}

}  // namespace

TEST(Splitters, EqualWidthAreEvenlySpaced) {
  mpi::run(4, [](mpi::Comm& comm) {
    m3::Config cfg;
    cfg.lo = 0.0;
    cfg.hi = 8.0;
    std::vector<double> none;
    const auto s = m3::compute_splitters(comm, none, cfg);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 2.0);
    EXPECT_DOUBLE_EQ(s[1], 4.0);
    EXPECT_DOUBLE_EQ(s[2], 6.0);
  });
}

TEST(Splitters, HistogramEqualizesSkewedData) {
  mpi::run(4, [](mpi::Comm& comm) {
    m3::Config cfg;
    cfg.policy = m3::SplitterPolicy::kHistogram;
    cfg.lo = 0.0;
    cfg.hi = 10.0;
    auto local = local_exponential(comm.rank(), 20000, 1.0);
    for (auto& v : local) v = std::min(v, 9.999);
    const auto s = m3::compute_splitters(comm, local, cfg);
    ASSERT_EQ(s.size(), 3u);
    // For Exp(1), the quartile boundaries are about 0.29, 0.69, 1.39 —
    // far below the equal-width 2.5/5.0/7.5.
    EXPECT_LT(s[0], 1.0);
    EXPECT_LT(s[1], 1.5);
    EXPECT_LT(s[2], 2.5);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  });
}

class SortSweep : public ::testing::TestWithParam<int> {};

TEST_P(SortSweep, UniformEqualWidthSortsAndBalances) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    auto local = local_uniform(comm.rank(), 5000, 0.0, 1.0);
    m3::Config cfg;  // equal width over [0,1)
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    EXPECT_EQ(r.total_elements, 5000u * static_cast<std::size_t>(comm.size()));
    EXPECT_LT(r.imbalance, 1.1);  // uniform data balances naturally
    EXPECT_TRUE(std::is_sorted(local.begin(), local.end()));
  });
}

TEST_P(SortSweep, ExponentialEqualWidthIsImbalanced) {
  const int p = GetParam();
  if (p < 4) GTEST_SKIP() << "imbalance needs several buckets";
  mpi::run(p, [p](mpi::Comm& comm) {
    auto local = local_exponential(comm.rank(), 5000, 1.0);
    for (auto& v : local) v = std::min(v, 9.999);
    m3::Config cfg;
    cfg.lo = 0.0;
    cfg.hi = 10.0;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    // Exp(1) clipped to [0,10): the first width-10/p bucket holds the bulk.
    EXPECT_GT(r.imbalance, 2.0);
  });
}

TEST_P(SortSweep, HistogramRestoresBalance) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    auto local = local_exponential(comm.rank(), 5000, 1.0);
    for (auto& v : local) v = std::min(v, 9.999);
    m3::Config cfg;
    cfg.policy = m3::SplitterPolicy::kHistogram;
    cfg.lo = 0.0;
    cfg.hi = 10.0;
    cfg.histogram_bins = 512;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    EXPECT_LT(r.imbalance, 1.5);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SortSweep,
                         ::testing::Values(1, 2, 4, 7, 8));

TEST(Sort, AllElementsSurviveTheExchange) {
  mpi::run(4, [](mpi::Comm& comm) {
    auto local = local_uniform(comm.rank(), 1000, 0.0, 1.0);
    auto copy = local;
    m3::Config cfg;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    // Global multiset preserved: compare sums as a cheap proxy.
    double in_sum = 0.0, out_sum = 0.0;
    for (const double v : copy) in_sum += v;
    for (const double v : local) out_sum += v;
    const double gin = comm.allreduce_value(in_sum, mpi::ops::Sum{});
    const double gout = comm.allreduce_value(out_sum, mpi::ops::Sum{});
    EXPECT_NEAR(gin, gout, 1e-9 * gin);
  });
}

TEST(Sort, EmptyLocalDataIsHandled) {
  mpi::run(3, [](mpi::Comm& comm) {
    std::vector<double> local;
    if (comm.rank() == 1) local = {0.9, 0.1, 0.5};
    m3::Config cfg;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    EXPECT_EQ(r.total_elements, 3u);
  });
}

TEST(Sort, DuplicateValuesStayTogether) {
  mpi::run(4, [](mpi::Comm& comm) {
    std::vector<double> local(100, 0.25);
    m3::Config cfg;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    // All duplicates land in one bucket: maximal imbalance p.
    EXPECT_NEAR(r.imbalance, 4.0, 1e-9);
  });
}

TEST(Sort, HistogramCostsMoreCommunicationSetupButSimilarTotal) {
  // Sanity on the paper's claim that histogram-based performance is
  // similar to the uniform/equal-width case.
  const int p = 8;
  double t_uniform = 0.0, t_hist = 0.0;
  mpi::run(p, [&](mpi::Comm& comm) {
    auto local = local_uniform(comm.rank(), 20000, 0.0, 1.0);
    m3::Config cfg;
    t_uniform = m3::distributed_bucket_sort(comm, local, cfg).sim_time;
  });
  mpi::run(p, [&](mpi::Comm& comm) {
    auto local = local_exponential(comm.rank(), 20000, 1.0);
    for (auto& v : local) v = std::min(v, 9.999);
    m3::Config cfg;
    cfg.policy = m3::SplitterPolicy::kHistogram;
    cfg.lo = 0.0;
    cfg.hi = 10.0;
    t_hist = m3::distributed_bucket_sort(comm, local, cfg).sim_time;
  });
  EXPECT_LT(t_hist, t_uniform * 2.0);
  EXPECT_GT(t_hist, t_uniform * 0.5);
}

TEST(Sort, MemoryBoundScalingIsBelowModule2) {
  // The module's scalability lesson: sorting (memory-bound) achieves lower
  // parallel efficiency than the compute-bound distance matrix.  Here we
  // just check that sort speedup at 8 ranks is clearly sublinear.
  auto time_at = [&](int p) {
    double t = 0.0;
    mpi::run(p, [&](mpi::Comm& comm) {
      // Fixed global size: strong scaling.
      const std::size_t local_n = 160000 / static_cast<std::size_t>(p);
      auto local = local_uniform(comm.rank(), local_n, 0.0, 1.0);
      m3::Config cfg;
      t = m3::distributed_bucket_sort(comm, local, cfg).sim_time;
    });
    return t;
  };
  const double speedup8 = time_at(1) / time_at(8);
  EXPECT_GT(speedup8, 1.0);
  EXPECT_LT(speedup8, 6.0);
}

TEST(Sampling, BalancesSkewedData) {
  mpi::run(8, [](mpi::Comm& comm) {
    auto local = local_exponential(comm.rank(), 5000, 1.0);
    for (auto& v : local) v = std::min(v, 9.999);
    m3::Config cfg;
    cfg.policy = m3::SplitterPolicy::kSampling;
    cfg.lo = 0.0;
    cfg.hi = 10.0;
    const auto r = m3::distributed_bucket_sort(comm, local, cfg);
    EXPECT_TRUE(r.globally_sorted);
    EXPECT_LT(r.imbalance, 1.2);
  });
}

TEST(Sampling, SurvivesHeterogeneousRankDistributions) {
  // Each rank holds data from a *different* range: rank r draws from
  // [r, r+1).  The histogram policy sees only rank 0's slice and collapses;
  // regular sampling uses all ranks and stays balanced.
  const int p = 8;
  auto make_local = [](int rank) {
    auto rng = dipdc::support::make_stream(
        900, static_cast<std::uint64_t>(rank));
    std::vector<double> v(4000);
    for (auto& x : v) x = rank + rng.uniform();
    return v;
  };
  double imb_hist = 0.0, imb_sample = 0.0;
  mpi::run(p, [&](mpi::Comm& comm) {
    {
      auto local = make_local(comm.rank());
      m3::Config cfg;
      cfg.policy = m3::SplitterPolicy::kHistogram;
      cfg.lo = 0.0;
      cfg.hi = 8.0;
      const auto r = m3::distributed_bucket_sort(comm, local, cfg);
      EXPECT_TRUE(r.globally_sorted);
      if (comm.rank() == 0) imb_hist = r.imbalance;
    }
    {
      auto local = make_local(comm.rank());
      m3::Config cfg;
      cfg.policy = m3::SplitterPolicy::kSampling;
      cfg.lo = 0.0;
      cfg.hi = 8.0;
      const auto r = m3::distributed_bucket_sort(comm, local, cfg);
      EXPECT_TRUE(r.globally_sorted);
      if (comm.rank() == 0) imb_sample = r.imbalance;
    }
  });
  // Rank 0's local data is all in [0,1): its histogram squeezes every
  // splitter into that interval, dumping almost everything on the last
  // rank (imbalance ~ p).  Sampling stays near-perfect.
  EXPECT_GT(imb_hist, 3.0);
  EXPECT_LT(imb_sample, 1.2);
}

TEST(Sampling, UniformDataStaysBalancedAcrossRankCounts) {
  for (const int p : {1, 2, 4, 7}) {
    mpi::run(p, [](mpi::Comm& comm) {
      auto local = local_uniform(comm.rank(), 3000, 0.0, 1.0);
      m3::Config cfg;
      cfg.policy = m3::SplitterPolicy::kSampling;
      const auto r = m3::distributed_bucket_sort(comm, local, cfg);
      EXPECT_TRUE(r.globally_sorted);
      EXPECT_LT(r.imbalance, 1.25);
    });
  }
}
