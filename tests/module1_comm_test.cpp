// Module 1 reference solutions: ping-pong, ring, random communication.
#include <gtest/gtest.h>

#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "modules/comm/module1.hpp"

namespace mpi = dipdc::minimpi;
namespace m1 = dipdc::modules::comm1;

TEST(PingPong, LatencyMatchesMachineModel) {
  mpi::RuntimeOptions opts;
  opts.machine.intra_latency = 1e-6;
  opts.machine.intra_bandwidth = 1e9;
  const int iters = 100;
  const std::size_t bytes = 1000;
  mpi::run(
      2,
      [&](mpi::Comm& comm) {
        const auto r = m1::ping_pong(comm, iters, bytes);
        if (comm.rank() == 0) {
          // Each one-way message costs alpha + bytes/bw = 2e-6 simulated.
          EXPECT_NEAR(r.mean_one_way, 2e-6, 1e-9);
          EXPECT_EQ(r.iterations, iters);
          EXPECT_EQ(r.message_bytes, bytes);
        }
      },
      opts);
}

TEST(PingPong, LargerMessagesTakeLonger) {
  mpi::run(2, [](mpi::Comm& comm) {
    const auto small = m1::ping_pong(comm, 10, 8);
    const auto large = m1::ping_pong(comm, 10, 1 << 20);
    if (comm.rank() == 0) {
      EXPECT_GT(large.mean_one_way, small.mean_one_way);
    }
  });
}

TEST(PingPong, ExtraRanksIdle) {
  const auto result = mpi::run(5, [](mpi::Comm& comm) {
    const auto r = m1::ping_pong(comm, 5, 64);
    (void)r;
  });
  // Ranks 2..4 never send.
  for (int r = 2; r < 5; ++r) {
    EXPECT_EQ(result.rank_stats[static_cast<std::size_t>(r)].p2p_messages_sent,
              0u);
  }
}

TEST(PingPong, RequiresTwoRanks) {
  EXPECT_THROW(
      mpi::run(1, [](mpi::Comm& comm) { m1::ping_pong(comm, 1, 8); }),
      dipdc::support::PreconditionError);
}

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, FullCirculationAccumulatesEveryRank) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    // After exactly p rounds the token visited every rank once.
    const auto r = m1::ring_blocking(comm, p);
    const long long rank_sum =
        static_cast<long long>(p) * (p - 1) / 2;
    if (p > 1) {
      EXPECT_EQ(r.token, comm.rank() + rank_sum);
    } else {
      EXPECT_EQ(r.token, 0);
    }
  });
}

TEST_P(RingSweep, NonblockingMatchesBlocking) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const auto a = m1::ring_blocking(comm, p);
    const auto b = m1::ring_nonblocking(comm, p);
    EXPECT_EQ(a.token, b.token);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, RingSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 13));

TEST(Ring, BlockingDeadlocksUnderRendezvous) {
  // The lesson of the module: the naive ring deadlocks when sends cannot
  // buffer, and the runtime proves it.
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 0;
  EXPECT_THROW(
      mpi::run(4, [](mpi::Comm& comm) { m1::ring_blocking(comm, 4); }, opts),
      mpi::DeadlockError);
}

TEST(Ring, NonblockingSurvivesRendezvous) {
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 0;
  EXPECT_NO_THROW(mpi::run(
      4, [](mpi::Comm& comm) { m1::ring_nonblocking(comm, 4); }, opts));
}

class RandomCommSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomCommSweep, DirectedDeliversEverything) {
  const int p = GetParam();
  const auto run = mpi::run(p, [](mpi::Comm& comm) {
    const auto r = m1::random_comm_directed(comm, 7, 99);
    EXPECT_FALSE(r.used_any_source);
    EXPECT_TRUE(r.payloads_consistent);
    EXPECT_EQ(r.messages_sent, 7u);
  });
  // Conservation: global sends == global receives.
  const auto total = run.total_stats();
  EXPECT_EQ(total.p2p_messages_sent, total.p2p_messages_received);
}

TEST_P(RandomCommSweep, AnySourceDeliversEverything) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    const auto r = m1::random_comm_any_source(comm, 7, 99);
    EXPECT_TRUE(r.used_any_source);
    EXPECT_TRUE(r.payloads_consistent);
    EXPECT_EQ(r.messages_sent, 7u);
  });
}

TEST_P(RandomCommSweep, BothVariantsReceiveTheSameMultiset) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    // Same seed => same destinations => each rank receives the same number
    // of messages under both variants.
    const auto a = m1::random_comm_directed(comm, 11, 1234);
    const auto b = m1::random_comm_any_source(comm, 11, 1234);
    EXPECT_EQ(a.messages_received, b.messages_received);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, RandomCommSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(RandomComm, ZeroMessagesIsFine) {
  EXPECT_NO_THROW(mpi::run(3, [](mpi::Comm& comm) {
    const auto r = m1::random_comm_any_source(comm, 0, 5);
    EXPECT_EQ(r.messages_sent, 0u);
    EXPECT_EQ(r.messages_received, 0u);
  }));
}
