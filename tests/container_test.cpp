// Property suite for the elastic container: weight-driven cuts conserve
// every element bit-exactly through arbitrary partition transitions, the
// cut rule is a deterministic pure function of the weights, and
// threshold-gated rebalancing converges (no ping-pong at the boundary).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "container/container.hpp"
#include "container/partitioning.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;
using dipdc::container::Container;
using dipdc::container::Partitioning;
using dipdc::container::quantize_weights;

namespace {

/// Deterministic element payload: a pure function of the global index, so
/// every rank can predict any slab without communication.
std::uint64_t element_value(std::size_t global_index) {
  return 0x9e3779b97f4a7c15ULL * (global_index + 1) ^ 0xc0ffee;
}

/// Deterministic per-element weight for a given round — identical on every
/// rank, varied enough to force real cut movement between rounds.
double weight_value(std::size_t global_index, int round) {
  const std::uint64_t h =
      (global_index + 1) * 2654435761ULL + static_cast<std::uint64_t>(round) * 97;
  return 1.0 + static_cast<double>(h % 1024) / 16.0;
}

std::vector<std::uint64_t> block_slab(std::size_t total, int parts, int rank) {
  const Partitioning part = Partitioning::block(total, parts);
  std::vector<std::uint64_t> slab(part.count(rank));
  for (std::size_t i = 0; i < slab.size(); ++i) {
    slab[i] = element_value(part.begin(rank) + i);
  }
  return slab;
}

/// Gathers the container's global array on every rank, in cut order.
std::vector<std::uint64_t> gather_global(mpi::Comm& comm,
                                         Container<std::uint64_t>& c) {
  const Partitioning& part = c.partitioning();
  const int p = comm.size();
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> displs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] = part.count(r) * c.stride();
    displs[static_cast<std::size_t>(r)] = part.begin(r) * c.stride();
  }
  std::vector<std::uint64_t> global(part.total() * c.stride());
  comm.allgatherv(std::span<const std::uint64_t>(c.local()), counts, displs,
                  std::span<std::uint64_t>(global));
  return global;
}

void set_round_weights(Container<std::uint64_t>& c, int round) {
  std::vector<double> w(c.count());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = weight_value(c.global_begin() + i, round);
  }
  c.set_weights(w);
}

}  // namespace

// ---- Partitioning ---------------------------------------------------------

TEST(Partitioning, BlockCoversEveryElementExactlyOnce) {
  for (const std::size_t total : {0UL, 1UL, 7UL, 64UL, 97UL}) {
    for (int parts = 1; parts <= 9; ++parts) {
      const Partitioning part = Partitioning::block(total, parts);
      EXPECT_EQ(part.total(), total);
      EXPECT_EQ(part.parts(), parts);
      std::size_t covered = 0;
      for (int r = 0; r < parts; ++r) {
        EXPECT_EQ(part.begin(r), covered);
        covered += part.count(r);
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partitioning, WeightCutsAreMonotoneAndConserve) {
  for (const std::size_t n : {1UL, 3UL, 50UL, 257UL}) {
    for (int parts = 1; parts <= 8; ++parts) {
      std::vector<std::uint64_t> w(n);
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 1 + ((i + 1) * 2654435761ULL) % 5000;
      }
      const Partitioning part = Partitioning::from_weights(w, parts);
      EXPECT_EQ(part.total(), n);
      const auto& cuts = part.cuts();
      ASSERT_EQ(cuts.size(), static_cast<std::size_t>(parts) + 1);
      EXPECT_EQ(cuts.front(), 0u);
      EXPECT_EQ(cuts.back(), n);
      for (std::size_t i = 1; i < cuts.size(); ++i) {
        EXPECT_LE(cuts[i - 1], cuts[i]);
      }
    }
  }
}

TEST(Partitioning, WeightCutsAreDeterministic) {
  std::vector<std::uint64_t> w(301);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1 + (i * 48271) % 9973;
  }
  const Partitioning a = Partitioning::from_weights(w, 7);
  const Partitioning b = Partitioning::from_weights(w, 7);
  EXPECT_EQ(a, b);
}

TEST(Partitioning, OwnerMatchesTheRanges) {
  std::vector<std::uint64_t> w(120, 1);
  w[3] = 10'000;  // a hot element skews the cuts
  const Partitioning part = Partitioning::from_weights(w, 5);
  for (std::size_t g = 0; g < part.total(); ++g) {
    const int r = part.owner(g);
    EXPECT_GE(g, part.begin(r));
    EXPECT_LT(g, part.end(r));
  }
}

TEST(Partitioning, HeavyPrefixShrinksTheFirstPart) {
  // The first quarter of the elements carries almost all the weight, so
  // the first part must own far fewer elements than the block layout.
  const std::size_t n = 400;
  std::vector<std::uint64_t> w(n, 1);
  for (std::size_t i = 0; i < n / 4; ++i) w[i] = 1000;
  const Partitioning part = Partitioning::from_weights(w, 4);
  EXPECT_LT(part.count(0), n / 4);
  EXPECT_LT(part.imbalance(w), 1.10);
}

TEST(Partitioning, QuantizeFloorsAtOne) {
  const std::vector<double> w = {0.0, 1e-9, 0.5, 1.0, 2.5};
  const std::vector<std::uint64_t> q = quantize_weights(w, 1024.0);
  EXPECT_EQ(q[0], 1u);
  EXPECT_EQ(q[1], 1u);
  EXPECT_EQ(q[2], 512u);
  EXPECT_EQ(q[3], 1024u);
  EXPECT_EQ(q[4], 2560u);
}

// ---- Container transitions --------------------------------------------------

TEST(Container, RepartitionConservesElementsBitExactly) {
  for (int p = 2; p <= 8; ++p) {
    for (const std::size_t total : {5UL, 97UL}) {
      mpi::run(p, [&](mpi::Comm& comm) {
        Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
            comm, total, 1, block_slab(total, comm.size(), comm.rank()));
        std::vector<std::uint64_t> expected(total);
        for (std::size_t g = 0; g < total; ++g) expected[g] = element_value(g);
        for (int round = 0; round < 4; ++round) {
          set_round_weights(c, round);
          c.repartition();
          EXPECT_EQ(c.count(), c.partitioning().count(comm.rank()));
          EXPECT_EQ(c.local().size(), c.count());
          EXPECT_EQ(gather_global(comm, c), expected)
              << "p=" << p << " total=" << total << " round=" << round;
        }
      });
    }
  }
}

TEST(Container, StrideMovesWholeElements) {
  const std::size_t total = 41;
  const std::size_t stride = 3;
  mpi::run(5, [&](mpi::Comm& comm) {
    const Partitioning part = Partitioning::block(total, comm.size());
    std::vector<std::uint64_t> slab(part.count(comm.rank()) * stride);
    for (std::size_t i = 0; i < part.count(comm.rank()); ++i) {
      for (std::size_t k = 0; k < stride; ++k) {
        slab[i * stride + k] =
            element_value((part.begin(comm.rank()) + i) * stride + k);
      }
    }
    Container<std::uint64_t> c =
        Container<std::uint64_t>::from_local(comm, total, stride, slab);
    set_round_weights(c, 1);
    c.repartition();
    // Every element's `stride` values stayed together and in order.
    std::vector<std::uint64_t> global = gather_global(comm, c);
    ASSERT_EQ(global.size(), total * stride);
    for (std::size_t v = 0; v < global.size(); ++v) {
      EXPECT_EQ(global[v], element_value(v));
    }
  });
}

TEST(Container, TransitionsAreDeterministicForAFixedSeed) {
  // Two identical runs must produce identical cut sequences and identical
  // final slabs on every rank.
  const std::size_t total = 83;
  auto run_once = [&](std::vector<std::vector<std::size_t>>& cut_log,
                      std::vector<std::uint64_t>& final_global) {
    mpi::run(6, [&](mpi::Comm& comm) {
      Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
          comm, total, 1, block_slab(total, comm.size(), comm.rank()));
      for (int round = 0; round < 5; ++round) {
        set_round_weights(c, round);
        c.repartition();
        if (comm.rank() == 0) cut_log.push_back(c.partitioning().cuts());
      }
      if (comm.rank() == 0) final_global = gather_global(comm, c);
      if (comm.rank() != 0) (void)gather_global(comm, c);
    });
  };
  std::vector<std::vector<std::size_t>> cuts_a, cuts_b;
  std::vector<std::uint64_t> global_a, global_b;
  run_once(cuts_a, global_a);
  run_once(cuts_b, global_b);
  EXPECT_EQ(cuts_a, cuts_b);
  EXPECT_EQ(global_a, global_b);
}

TEST(Container, RebalanceAtThresholdDoesNotPingPong) {
  mpi::run(4, [&](mpi::Comm& comm) {
    const std::size_t total = 64;
    Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
        comm, total, 1, block_slab(total, comm.size(), comm.rank()));
    set_round_weights(c, 2);
    // Whatever the first call decides, repeating it with unchanged weights
    // must be a no-op: the cut rule is a pure function of the weights.
    (void)c.rebalance(1.05);
    const std::uint64_t moves_after_first = c.stats().repartitions;
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(c.rebalance(1.05));
    }
    EXPECT_EQ(c.stats().repartitions, moves_after_first);
    EXPECT_GE(c.stats().rebalance_noops, 5u);
  });
}

TEST(Container, RebalanceBelowThresholdIsANoOp) {
  mpi::run(4, [&](mpi::Comm& comm) {
    const std::size_t total = 64;  // divides evenly: imbalance exactly 1.0
    Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
        comm, total, 1, block_slab(total, comm.size(), comm.rank()));
    EXPECT_FALSE(c.rebalance(1.25));  // unit weights, perfectly balanced
    EXPECT_EQ(c.stats().repartitions, 0u);
  });
}

TEST(Container, WeightSkewShiftsElementsAwayFromTheHeavyRank) {
  mpi::run(4, [&](mpi::Comm& comm) {
    const std::size_t total = 128;
    Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
        comm, total, 1, block_slab(total, comm.size(), comm.rank()));
    // Rank 0's elements are 100x heavier than everyone else's.
    std::vector<double> w(c.count(), comm.rank() == 0 ? 100.0 : 1.0);
    c.set_weights(w);
    EXPECT_TRUE(c.repartition());
    EXPECT_LT(c.partitioning().count(0), total / 4);
  });
}

TEST(Container, AdoptRebuildsCutsFromTheNewCounts) {
  mpi::run(3, [&](mpi::Comm& comm) {
    const std::size_t total = 30;
    Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
        comm, total, 1, block_slab(total, comm.size(), comm.rank()));
    // Simulate an owner-computes exchange: rank 0 ends up with 20 elements,
    // rank 1 with 10, rank 2 with none — contiguous global ranges.
    const std::size_t counts[3] = {20, 10, 0};
    const std::size_t begins[3] = {0, 20, 30};
    const int me = comm.rank();
    std::vector<std::uint64_t> mine(counts[me]);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = element_value(begins[me] + i);
    }
    c.adopt(mine);
    EXPECT_EQ(c.partitioning().count(0), 20u);
    EXPECT_EQ(c.partitioning().count(2), 0u);
    // Unit weights after adopt: a rebalance levels the counts again.
    EXPECT_TRUE(c.rebalance(1.05));
    EXPECT_EQ(c.count(), 10u);
    std::vector<std::uint64_t> global = gather_global(comm, c);
    for (std::size_t g = 0; g < total; ++g) {
      EXPECT_EQ(global[g], element_value(g));
    }
  });
}

TEST(Container, ScatterRoundTripsTheSource) {
  mpi::run(5, [&](mpi::Comm& comm) {
    const std::size_t total = 23;
    std::vector<std::uint64_t> source;
    if (comm.rank() == 0) {
      source.resize(total);
      for (std::size_t g = 0; g < total; ++g) source[g] = element_value(g);
    }
    Container<std::uint64_t> c =
        Container<std::uint64_t>::scatter(comm, source, total, 1);
    EXPECT_EQ(c.count(), c.partitioning().count(comm.rank()));
    std::vector<std::uint64_t> global = gather_global(comm, c);
    for (std::size_t g = 0; g < total; ++g) {
      EXPECT_EQ(global[g], element_value(g));
    }
  });
}

TEST(Container, CheckpointsAreCheapNoOpsForCorrectness) {
  // Checkpointing must not perturb the data or the partitioning.
  mpi::run(4, [&](mpi::Comm& comm) {
    const std::size_t total = 40;
    Container<std::uint64_t> c = Container<std::uint64_t>::from_local(
        comm, total, 1, block_slab(total, comm.size(), comm.rank()));
    const std::vector<std::uint64_t> before = c.local();
    const std::uint64_t blob_word = 0xfeedface;
    c.checkpoint(std::as_bytes(std::span<const std::uint64_t>(&blob_word, 1)));
    EXPECT_EQ(c.local(), before);
    set_round_weights(c, 0);
    c.repartition();
    c.checkpoint(std::as_bytes(std::span<const std::uint64_t>(&blob_word, 1)));
    EXPECT_EQ(c.stats().checkpoints, 2u);
  });
}
