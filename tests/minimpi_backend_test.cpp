// Transport-backend seam coverage (see src/minimpi/backend.hpp).
//
// Three layers:
//  1. Unit tests of the seam pieces themselves: wire (de)serialization and
//     the raw channel contract each backend fulfils.
//  2. Cross-backend equivalence: the same program on threads/shm/tcp must
//     produce bit-identical simulated times and user-visible counters —
//     the seam carries simulated timing inside the frame and delivery
//     happens at the same program point on every backend, so nothing may
//     drift, not even in the last ulp.
//  3. Failure semantics per backend: deadlock detection, fault-injection
//     kills, reliable-delivery recovery, and the borrowed-payload guard
//     must behave identically whether ranks exchange pointers or frames.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "minimpi/backend.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;
namespace mb = dipdc::minimpi::detail_backend;

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DIPDC_TSAN 1
#endif
#endif
#if !defined(DIPDC_TSAN) && defined(__SANITIZE_THREAD__)
#define DIPDC_TSAN 1
#endif

namespace {

/// The shm backend forks a router process; under ThreadSanitizer fork is
/// only supported in limited ways and the child's shadow state is not
/// usable, so those tests are skipped in TSan builds (the tcp and threads
/// legs still run).
bool skip_under_tsan(mpi::BackendKind kind) {
#ifdef DIPDC_TSAN
  return kind == mpi::BackendKind::kShm;
#else
  (void)kind;
  return false;
#endif
}

std::vector<mpi::BackendKind> all_backends() {
  return {mpi::BackendKind::kThreads, mpi::BackendKind::kShm,
          mpi::BackendKind::kTcp};
}

mpi::RuntimeOptions with_backend(mpi::BackendKind kind,
                                 mpi::RuntimeOptions base = {}) {
  base.backend.kind = kind;
  return base;
}

std::string backend_param_name(
    const ::testing::TestParamInfo<mpi::BackendKind>& param) {
  return mpi::to_string(param.param);
}

/// Runs `fn` under every backend and asserts the RunResult is
/// bit-identical to the threads run: same per-rank simulated clocks and
/// the same user-visible communication counters.
void expect_equivalent_across_backends(
    int nranks, const std::function<void(mpi::Comm&)>& fn,
    mpi::RuntimeOptions base = {}) {
  const mpi::RunResult ref =
      mpi::run(nranks, fn, with_backend(mpi::BackendKind::kThreads, base));
  for (const mpi::BackendKind kind :
       {mpi::BackendKind::kShm, mpi::BackendKind::kTcp}) {
    if (skip_under_tsan(kind)) continue;
    SCOPED_TRACE(std::string("backend=") + mpi::to_string(kind));
    const mpi::RunResult got = mpi::run(nranks, fn, with_backend(kind, base));
    ASSERT_EQ(got.sim_times.size(), ref.sim_times.size());
    for (std::size_t r = 0; r < ref.sim_times.size(); ++r) {
      // Bitwise double equality: the timing fields travel inside the wire
      // frame, so not even a ulp of drift is acceptable.
      EXPECT_EQ(got.sim_times[r], ref.sim_times[r]) << "rank " << r;
    }
    for (std::size_t r = 0; r < ref.rank_stats.size(); ++r) {
      const mpi::CommStats& a = ref.rank_stats[r];
      const mpi::CommStats& b = got.rank_stats[r];
      EXPECT_EQ(a.calls, b.calls) << "rank " << r;
      EXPECT_EQ(a.p2p_bytes_sent, b.p2p_bytes_sent) << "rank " << r;
      EXPECT_EQ(a.p2p_messages_sent, b.p2p_messages_sent) << "rank " << r;
      EXPECT_EQ(a.p2p_bytes_received, b.p2p_bytes_received) << "rank " << r;
      EXPECT_EQ(a.p2p_messages_received, b.p2p_messages_received)
          << "rank " << r;
      EXPECT_EQ(a.transport_bytes_sent, b.transport_bytes_sent)
          << "rank " << r;
      EXPECT_EQ(a.transport_messages_sent, b.transport_messages_sent)
          << "rank " << r;
      // (rendezvous_stalls is deliberately absent: it records whether the
      // sender REALLY blocked before the receiver posted — a wall-clock
      // race that varies run to run on every backend, threads included.)
      EXPECT_EQ(a.sim_comm_seconds, b.sim_comm_seconds) << "rank " << r;
      EXPECT_EQ(a.sim_compute_seconds, b.sim_compute_seconds) << "rank " << r;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Seam units: kind parsing and wire (de)serialization.

TEST(BackendWire, KindNamesRoundTrip) {
  for (const mpi::BackendKind kind : all_backends()) {
    mpi::BackendKind parsed{};
    ASSERT_TRUE(mpi::parse_backend_kind(mpi::to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  mpi::BackendKind parsed{};
  EXPECT_FALSE(mpi::parse_backend_kind("carrier-pigeon", &parsed));
  EXPECT_FALSE(mpi::parse_backend_kind("", &parsed));
}

TEST(BackendWire, EnvelopeSurvivesSerialization) {
  // Pools recycle through deleters holding shared_from_this, so they must
  // live behind a shared_ptr (as in Runtime).
  const auto pool_ptr =
      std::make_shared<dipdc::minimpi::detail::BufferPool>(/*enabled=*/true);
  dipdc::minimpi::detail::BufferPool& pool = *pool_ptr;
  dipdc::minimpi::detail::Envelope env;
  env.source = 3;
  env.src_world = 7;
  env.dest = 1;
  env.tag = 42;
  env.context = 5;
  env.rendezvous = true;
  env.internal = false;
  env.trace_seq = 991;
  env.arrival_head = 1.25e-6;
  env.byte_time = 3.5e-7;
  std::vector<std::byte> body(70000);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::byte>(i * 31 + 7);
  }
  env.payload = dipdc::minimpi::detail::Payload::owned(
      pool.acquire(body.size(), nullptr), body);

  std::vector<std::byte> frame;
  mb::serialize_envelope(env, frame);
  EXPECT_EQ(frame.size(), sizeof(mb::WireHeader) + body.size());

  dipdc::minimpi::detail::Envelope out;
  mb::deserialize_envelope(frame, out, pool);
  EXPECT_EQ(out.source, env.source);
  EXPECT_EQ(out.src_world, env.src_world);
  EXPECT_EQ(out.dest, env.dest);
  EXPECT_EQ(out.tag, env.tag);
  EXPECT_EQ(out.context, env.context);
  EXPECT_EQ(out.rendezvous, env.rendezvous);
  EXPECT_EQ(out.internal, env.internal);
  EXPECT_EQ(out.trace_seq, env.trace_seq);
  EXPECT_EQ(out.arrival_head, env.arrival_head);  // bitwise
  EXPECT_EQ(out.byte_time, env.byte_time);
  ASSERT_EQ(out.payload.size(), body.size());
  EXPECT_EQ(std::memcmp(out.payload.data(), body.data(), body.size()), 0);
  // The deserialized payload owns its bytes (pooled), never a view into
  // the frame.
  EXPECT_TRUE(out.payload.shareable());
  EXPECT_FALSE(out.payload.is_borrowed());
}

TEST(BackendWire, SmallPayloadDeserializesInline) {
  const auto pool_ptr =
      std::make_shared<dipdc::minimpi::detail::BufferPool>(/*enabled=*/true);
  dipdc::minimpi::detail::BufferPool& pool = *pool_ptr;
  dipdc::minimpi::detail::Envelope env;
  const std::vector<std::byte> body(16, std::byte{0xAB});
  env.payload = dipdc::minimpi::detail::Payload::inline_copy(body);
  std::vector<std::byte> frame;
  mb::serialize_envelope(env, frame);
  dipdc::minimpi::detail::Envelope out;
  mb::deserialize_envelope(frame, out, pool);
  ASSERT_EQ(out.payload.size(), body.size());
  EXPECT_FALSE(out.payload.shareable());  // inline storage, no heap buffer
}

TEST(BackendWire, MalformedFramesAreRejected) {
  const auto pool_ptr =
      std::make_shared<dipdc::minimpi::detail::BufferPool>(/*enabled=*/true);
  dipdc::minimpi::detail::BufferPool& pool = *pool_ptr;
  dipdc::minimpi::detail::Envelope out;
  // Too short for a header.
  std::vector<std::byte> runt(sizeof(mb::WireHeader) - 1);
  EXPECT_THROW(mb::deserialize_envelope(runt, out, pool), mpi::MpiError);
  // Bad magic.
  std::vector<std::byte> frame(sizeof(mb::WireHeader));
  EXPECT_THROW(mb::deserialize_envelope(frame, out, pool), mpi::MpiError);
  // Good magic but the payload length disagrees with the frame size.
  mb::WireHeader h;
  h.payload_bytes = 100;
  std::memcpy(frame.data(), &h, sizeof(h));
  EXPECT_THROW(mb::deserialize_envelope(frame, out, pool), mpi::MpiError);
}

// ---------------------------------------------------------------------------
// Raw channel contract: every backend echoes frames per-rank, in order.

class BackendChannel : public ::testing::TestWithParam<mpi::BackendKind> {};

TEST_P(BackendChannel, EchoesFramesInFifoOrder) {
  if (skip_under_tsan(GetParam())) {
    GTEST_SKIP() << "shm backend forks; not supported under TSan";
  }
  mpi::BackendOptions opt;
  opt.kind = GetParam();
  // A deliberately tiny ring so multi-kilobyte frames must stream through
  // in several chunks.
  opt.shm_ring_bytes = 256;
  auto backend = mb::make_backend(opt);
  EXPECT_STREQ(backend->name(), mpi::to_string(GetParam()));
  backend->connect(/*nranks=*/2);

  std::vector<std::byte> frame;
  for (int round = 0; round < 3; ++round) {
    for (int rank = 0; rank < 2; ++rank) {
      std::vector<std::byte> a(1024 + static_cast<std::size_t>(round) * 7777);
      std::vector<std::byte> b(33);
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<std::byte>(i + static_cast<std::size_t>(rank));
      }
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<std::byte>(0xC0 + round);
      }
      backend->send(rank, a);
      backend->send(rank, b);
      backend->recv(rank, frame);
      EXPECT_EQ(frame, a) << "rank " << rank << " round " << round;
      backend->recv(rank, frame);
      EXPECT_EQ(frame, b) << "rank " << rank << " round " << round;
    }
  }
  backend->finalize();
  backend->finalize();  // idempotent
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendChannel,
                         ::testing::ValuesIn(all_backends()),
                         backend_param_name);

// ---------------------------------------------------------------------------
// Cross-backend equivalence of full runs.

TEST(BackendEquivalence, PingPongEagerAndRendezvous) {
  expect_equivalent_across_backends(2, [](mpi::Comm& comm) {
    // Eager (small), then rendezvous (past the 64 KiB default threshold).
    for (const std::size_t n : {std::size_t{64}, std::size_t{100} * 1024}) {
      std::vector<double> buf(n / sizeof(double));
      if (comm.rank() == 0) {
        std::iota(buf.begin(), buf.end(), 1.0);
        comm.send(std::span<const double>(buf), 1, 3);
        comm.recv(std::span<double>(buf), 1, 4);
      } else {
        comm.recv(std::span<double>(buf), 0, 3);
        EXPECT_DOUBLE_EQ(buf.front(), 1.0);
        EXPECT_DOUBLE_EQ(buf.back(), static_cast<double>(buf.size()));
        comm.send(std::span<const double>(buf), 0, 4);
      }
    }
  });
}

TEST(BackendEquivalence, CollectivesAndSubcommunicators) {
  expect_equivalent_across_backends(4, [](mpi::Comm& comm) {
    std::vector<int> v(257, comm.rank() + 1);
    std::vector<int> sum(257);
    comm.allreduce(std::span<const int>(v), std::span<int>(sum),
                   mpi::ops::Sum{});
    EXPECT_EQ(sum[0], 1 + 2 + 3 + 4);
    const int color = comm.rank() % 2;
    mpi::Comm sub = comm.split(color, comm.rank());
    const int peer_sum = sub.allreduce_value(comm.rank(), mpi::ops::Sum{});
    EXPECT_EQ(peer_sum, color == 0 ? 0 + 2 : 1 + 3);
    std::vector<float> gathered(
        static_cast<std::size_t>(comm.size()) * 100);
    const std::vector<float> mine(100, static_cast<float>(comm.rank()));
    comm.allgather(std::span<const float>(mine),
                   std::span<float>(gathered));
    comm.barrier();
  });
}

TEST(BackendEquivalence, WildcardsAndNonblocking) {
  expect_equivalent_across_backends(3, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      int a = 0;
      int b = 0;
      mpi::Request ra = comm.irecv(std::span<int>(&a, 1));
      mpi::Request rb = comm.irecv(std::span<int>(&b, 1));
      comm.wait(ra);
      comm.wait(rb);
      EXPECT_EQ(a + b, 10 + 20);
    } else {
      comm.send_value(comm.rank() == 1 ? 10 : 20, 0);
    }
  });
}

TEST(BackendEquivalence, SimComputePhasesInterleaved) {
  expect_equivalent_across_backends(4, [](mpi::Comm& comm) {
    for (int it = 0; it < 3; ++it) {
      comm.sim_compute(1e6 * (comm.rank() + 1), 1e5);
      // The reduced value is every rank's pre-collective clock max; the
      // cross-backend comparison of the resulting sim times is the point.
      const double t =
          comm.allreduce_value(comm.wtime(), mpi::ops::Max{});
      EXPECT_GT(t, 0.0);
    }
  });
}

// ---------------------------------------------------------------------------
// Failure semantics must not depend on the backend.

class BackendFailures : public ::testing::TestWithParam<mpi::BackendKind> {};

TEST_P(BackendFailures, DeadlockStillDetected) {
  if (skip_under_tsan(GetParam())) {
    GTEST_SKIP() << "shm backend forks; not supported under TSan";
  }
  // Both ranks post a receive nobody will ever satisfy.  A rank blocked in
  // a *backend* channel never registers as a runtime waiter, so this also
  // regression-tests that the detector neither misses the deadlock nor
  // fires while a frame round-trip is still in flight.
  EXPECT_THROW(mpi::run(
                   2,
                   [](mpi::Comm& comm) {
                     int v = 0;
                     comm.recv(std::span<int>(&v, 1));
                   },
                   with_backend(GetParam())),
               mpi::DeadlockError);
}

TEST_P(BackendFailures, RendezvousDeadlockStillDetected) {
  if (skip_under_tsan(GetParam())) {
    GTEST_SKIP() << "shm backend forks; not supported under TSan";
  }
  // Head-to-head blocking rendezvous sends: the classic Module 1 deadlock.
  // The frame round-trip happens BEFORE the sender blocks, so the detector
  // sees both ranks as waiters exactly like on the threads backend.
  mpi::RuntimeOptions opt = with_backend(GetParam());
  opt.eager_threshold = 0;  // force rendezvous for any payload
  EXPECT_THROW(mpi::run(
                   2,
                   [](mpi::Comm& comm) {
                     const int v = comm.rank();
                     int got = 0;
                     comm.send(std::span<const int>(&v, 1), 1 - comm.rank());
                     comm.recv(std::span<int>(&got, 1));
                   },
                   opt),
               mpi::DeadlockError);
}

TEST_P(BackendFailures, FaultKillPropagates) {
  if (skip_under_tsan(GetParam())) {
    GTEST_SKIP() << "shm backend forks; not supported under TSan";
  }
  mpi::RuntimeOptions opt = with_backend(GetParam());
  opt.faults.kill_rank = 1;
  opt.faults.kill_at_call = 1;
  EXPECT_THROW(mpi::run(
                   2,
                   [](mpi::Comm& comm) {
                     int v = comm.rank();
                     comm.allreduce_value(v, mpi::ops::Sum{});
                   },
                   opt),
               mpi::RankFailedError);
}

TEST_P(BackendFailures, ReliableDeliveryRecoversFromDrops) {
  if (skip_under_tsan(GetParam())) {
    GTEST_SKIP() << "shm backend forks; not supported under TSan";
  }
  mpi::RuntimeOptions opt = with_backend(GetParam());
  opt.faults.seed = 7;
  opt.faults.drop_prob = 0.5;
  const mpi::RunResult res = mpi::run(
      2,
      [](mpi::Comm& comm) {
        for (int i = 0; i < 20; ++i) {
          if (comm.rank() == 0) {
            comm.send_reliable_value(i * 3, 1);
          } else {
            EXPECT_EQ(comm.recv_reliable_value<int>(0), i * 3);
          }
        }
      },
      opt);
  // With drop_prob=0.5 over 20 messages, some retransmission is certain.
  EXPECT_GT(res.total_stats().reliable_retries, 0u);
}

TEST_P(BackendFailures, LargeFramesStreamThroughTinyShmRing) {
  if (GetParam() != mpi::BackendKind::kShm) {
    GTEST_SKIP() << "ring sizing only applies to the shm backend";
  }
#ifdef DIPDC_TSAN
  GTEST_SKIP() << "shm backend forks; not supported under TSan";
#endif
  // A 4 KiB ring versus a ~1 MiB rendezvous payload: frames must stream
  // through the ring in chunks without corruption.
  mpi::RuntimeOptions opt = with_backend(mpi::BackendKind::kShm);
  opt.backend.shm_ring_bytes = 4096;
  mpi::run(
      2,
      [](mpi::Comm& comm) {
        std::vector<std::uint64_t> data(128 * 1024);
        if (comm.rank() == 0) {
          std::iota(data.begin(), data.end(), std::uint64_t{0});
          comm.send(std::span<const std::uint64_t>(data), 1);
        } else {
          comm.recv(std::span<std::uint64_t>(data), 0);
          for (std::size_t i = 0; i < data.size(); i += 9973) {
            ASSERT_EQ(data[i], i);
          }
        }
      },
      opt);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendFailures,
                         ::testing::ValuesIn(all_backends()),
                         backend_param_name);

// ---------------------------------------------------------------------------
// Zero-copy guard: borrowed/shared payloads must degrade to copies at the
// seam, never dangle (the whole point of forcing real serialization).

TEST(BackendZeroCopy, RendezvousBorrowDegradesToCopyAcrossSeam) {
  for (const mpi::BackendKind kind :
       {mpi::BackendKind::kShm, mpi::BackendKind::kTcp}) {
    if (skip_under_tsan(kind)) continue;
    SCOPED_TRACE(mpi::to_string(kind));
    mpi::RuntimeOptions opt = with_backend(kind);
    opt.eager_threshold = 0;  // force the rendezvous (borrow-eligible) path
    const mpi::RunResult res = mpi::run(
        2,
        [](mpi::Comm& comm) {
          std::vector<int> v(5000, comm.rank());
          if (comm.rank() == 0) {
            comm.send(std::span<const int>(v), 1);
          } else {
            comm.recv(std::span<int>(v), 0);
            EXPECT_EQ(v[4999], 0);
          }
        },
        opt);
    // If the call site had still borrowed, Runtime::transport_envelope's
    // guard would have thrown; additionally the sender must report the
    // payload as copied, not zero-copied.
    EXPECT_EQ(res.rank_stats[0].zero_copy_bytes, 0u);
    EXPECT_GT(res.rank_stats[0].copied_bytes, 0u);
    EXPECT_GT(res.rank_stats[0].backend_frames, 0u);
    EXPECT_GT(res.rank_stats[0].backend_wire_bytes,
              res.rank_stats[0].backend_frames * sizeof(mb::WireHeader));
  }
}

TEST(BackendZeroCopy, ThreadsBackendStillBorrows) {
  // The guard must not regress the fast path: on the threads backend the
  // rendezvous borrow is still taken and no frames are ever produced.
  mpi::RuntimeOptions opt = with_backend(mpi::BackendKind::kThreads);
  opt.eager_threshold = 0;
  const mpi::RunResult res = mpi::run(
      2,
      [](mpi::Comm& comm) {
        std::vector<int> v(5000, comm.rank());
        if (comm.rank() == 0) {
          comm.send(std::span<const int>(v), 1);
        } else {
          comm.recv(std::span<int>(v), 0);
        }
      },
      opt);
  EXPECT_GT(res.rank_stats[0].zero_copy_bytes, 0u);
  EXPECT_EQ(res.rank_stats[0].backend_frames, 0u);
  EXPECT_EQ(res.rank_stats[0].backend_wire_bytes, 0u);
}
