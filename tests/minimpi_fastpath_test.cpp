// Transport fast path and alternative collective algorithms:
//  - forced tree/recursive-doubling/ring collectives against sequential
//    oracles, including non-power-of-two world sizes;
//  - zero-length per-rank contributions in the v-variants;
//  - sim-neutrality of the transport toggles (pooling / zero-copy /
//    inline storage change no simulated result, bit for bit);
//  - the fast-path observability counters.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;

namespace {

mpi::RuntimeOptions forced(mpi::CollectiveAlgorithm scatter_gather,
                           mpi::CollectiveAlgorithm allreduce,
                           mpi::CollectiveAlgorithm allgather) {
  mpi::RuntimeOptions opts;
  opts.collectives.scatter = scatter_gather;
  opts.collectives.gather = scatter_gather;
  opts.collectives.allreduce = allreduce;
  opts.collectives.allgather = allgather;
  return opts;
}

}  // namespace

// World sizes deliberately include non-powers-of-two (3, 5, 7): the tree
// and recursive-doubling algorithms must clip their subtree/fold regions.
class FastpathSweep : public ::testing::TestWithParam<int> {};

TEST_P(FastpathSweep, TreeScatterMatchesLinearFromEveryRoot) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kTree,
                           mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        const std::size_t chunk = 300;  // above the inline threshold
        for (int root = 0; root < p; ++root) {
          std::vector<int> send;
          if (comm.rank() == root) {
            send.resize(chunk * static_cast<std::size_t>(p));
            std::iota(send.begin(), send.end(), 0);
          }
          std::vector<int> recv(chunk, -1);
          comm.scatter(std::span<const int>(send), std::span<int>(recv),
                       root);
          for (std::size_t i = 0; i < chunk; ++i) {
            ASSERT_EQ(recv[i],
                      static_cast<int>(
                          static_cast<std::size_t>(comm.rank()) * chunk + i))
                << "root=" << root;
          }
        }
      },
      opts);
}

TEST_P(FastpathSweep, TreeGatherMatchesLinearFromEveryRoot) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kTree,
                           mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        const std::size_t chunk = 300;
        for (int root = 0; root < p; ++root) {
          std::vector<int> send(chunk);
          for (std::size_t i = 0; i < chunk; ++i) {
            send[i] = comm.rank() * 100000 + static_cast<int>(i);
          }
          std::vector<int> recv;
          if (comm.rank() == root) {
            recv.assign(chunk * static_cast<std::size_t>(p), -1);
          }
          comm.gather(std::span<const int>(send), std::span<int>(recv),
                      root);
          if (comm.rank() == root) {
            for (int r = 0; r < p; ++r) {
              for (std::size_t i = 0; i < chunk; ++i) {
                ASSERT_EQ(recv[static_cast<std::size_t>(r) * chunk + i],
                          r * 100000 + static_cast<int>(i))
                    << "root=" << root;
              }
            }
          }
        }
      },
      opts);
}

TEST_P(FastpathSweep, TreeScattervHandlesRaggedAndZeroCounts) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kTree,
                           mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        // Rank i contributes i * 40 elements; every third rank gets zero.
        std::vector<std::size_t> counts(static_cast<std::size_t>(p));
        std::vector<std::size_t> displs(static_cast<std::size_t>(p));
        std::size_t total = 0;
        for (int r = 0; r < p; ++r) {
          const auto idx = static_cast<std::size_t>(r);
          counts[idx] = (r % 3 == 2) ? 0 : static_cast<std::size_t>(r) * 40;
          displs[idx] = total;
          total += counts[idx];
        }
        for (int root = 0; root < p; ++root) {
          std::vector<double> send;
          if (comm.rank() == root) {
            send.resize(total);
            std::iota(send.begin(), send.end(), 0.0);
          }
          const auto mine = counts[static_cast<std::size_t>(comm.rank())];
          std::vector<double> recv(mine, -1.0);
          comm.scatterv(std::span<const double>(send),
                        std::span<const std::size_t>(counts),
                        std::span<const std::size_t>(displs),
                        std::span<double>(recv), root);
          const auto base =
              static_cast<double>(displs[static_cast<std::size_t>(
                  comm.rank())]);
          for (std::size_t i = 0; i < mine; ++i) {
            ASSERT_DOUBLE_EQ(recv[i], base + static_cast<double>(i))
                << "root=" << root;
          }
        }
      },
      opts);
}

TEST_P(FastpathSweep, TreeGathervHandlesRaggedAndZeroCounts) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kTree,
                           mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        std::vector<std::size_t> counts(static_cast<std::size_t>(p));
        std::vector<std::size_t> displs(static_cast<std::size_t>(p));
        std::size_t total = 0;
        for (int r = 0; r < p; ++r) {
          const auto idx = static_cast<std::size_t>(r);
          counts[idx] = (r % 2 == 0) ? 0 : static_cast<std::size_t>(r) * 50;
          displs[idx] = total;
          total += counts[idx];
        }
        for (int root = 0; root < p; ++root) {
          const auto mine = counts[static_cast<std::size_t>(comm.rank())];
          std::vector<int> send(mine, comm.rank() + 1);
          std::vector<int> recv;
          if (comm.rank() == root) recv.assign(total, -1);
          comm.gatherv(std::span<const int>(send),
                       std::span<const std::size_t>(counts),
                       std::span<const std::size_t>(displs),
                       std::span<int>(recv), root);
          if (comm.rank() == root) {
            for (int r = 0; r < p; ++r) {
              const auto idx = static_cast<std::size_t>(r);
              for (std::size_t i = 0; i < counts[idx]; ++i) {
                ASSERT_EQ(recv[displs[idx] + i], r + 1) << "root=" << root;
              }
            }
          }
        }
      },
      opts);
}

TEST_P(FastpathSweep, RecursiveDoublingAllreduceMatchesSum) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kRecursiveDoubling,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        const std::size_t n = 257;  // odd, crosses the inline threshold
        std::vector<long> send(n);
        for (std::size_t i = 0; i < n; ++i) {
          send[i] = (comm.rank() + 1) * static_cast<long>(i);
        }
        std::vector<long> recv(n, -1);
        comm.allreduce(std::span<const long>(send), std::span<long>(recv),
                       mpi::ops::Sum{});
        const long ranksum = static_cast<long>(p) * (p + 1) / 2;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(recv[i], ranksum * static_cast<long>(i));
        }
      },
      opts);
}

TEST_P(FastpathSweep, RingAllreduceMatchesSum) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kRing,
                           mpi::CollectiveAlgorithm::kAuto);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        // A large payload and a tiny one (fewer elements than ranks, so
        // some ring chunks are empty).
        for (const std::size_t n : {std::size_t{4096}, std::size_t{3}}) {
          std::vector<double> send(n);
          for (std::size_t i = 0; i < n; ++i) {
            send[i] = comm.rank() + 1.0 + static_cast<double>(i);
          }
          std::vector<double> recv(n, -1.0);
          comm.allreduce(std::span<const double>(send),
                         std::span<double>(recv), mpi::ops::Sum{});
          const double ranksum = p * (p + 1) / 2.0;
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_DOUBLE_EQ(recv[i],
                             ranksum + p * static_cast<double>(i))
                << "n=" << n;
          }
        }
      },
      opts);
}

TEST_P(FastpathSweep, RingAllgatherMatchesOracle) {
  const int p = GetParam();
  const auto opts = forced(mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kAuto,
                           mpi::CollectiveAlgorithm::kRing);
  mpi::run(
      p,
      [p](mpi::Comm& comm) {
        const std::size_t chunk = 777;
        std::vector<int> send(chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
          send[i] = comm.rank() * 10000 + static_cast<int>(i);
        }
        std::vector<int> recv(chunk * static_cast<std::size_t>(p), -1);
        comm.allgather(std::span<const int>(send), std::span<int>(recv));
        for (int r = 0; r < p; ++r) {
          for (std::size_t i = 0; i < chunk; ++i) {
            ASSERT_EQ(recv[static_cast<std::size_t>(r) * chunk + i],
                      r * 10000 + static_cast<int>(i));
          }
        }
      },
      opts);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, FastpathSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Fastpath, AlltoallvZeroLengthContributions) {
  const int p = 5;
  mpi::run(p, [p](mpi::Comm& comm) {
    // Rank r sends r+j elements to rank j, except nothing to even ranks.
    const auto np = static_cast<std::size_t>(p);
    std::vector<std::size_t> send_counts(np), send_displs(np);
    std::vector<std::size_t> recv_counts(np), recv_displs(np);
    std::size_t send_total = 0, recv_total = 0;
    for (int j = 0; j < p; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      send_counts[idx] =
          (j % 2 == 0) ? 0
                       : static_cast<std::size_t>(comm.rank() + j);
      send_displs[idx] = send_total;
      send_total += send_counts[idx];
      recv_counts[idx] =
          (comm.rank() % 2 == 0) ? 0
                                 : static_cast<std::size_t>(j + comm.rank());
      recv_displs[idx] = recv_total;
      recv_total += recv_counts[idx];
    }
    std::vector<int> send(send_total);
    for (int j = 0; j < p; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      for (std::size_t i = 0; i < send_counts[idx]; ++i) {
        send[send_displs[idx] + i] = comm.rank() * 100 + j;
      }
    }
    std::vector<int> recv(recv_total, -1);
    comm.alltoallv(std::span<const int>(send),
                   std::span<const std::size_t>(send_counts),
                   std::span<const std::size_t>(send_displs),
                   std::span<int>(recv),
                   std::span<const std::size_t>(recv_counts),
                   std::span<const std::size_t>(recv_displs));
    for (int j = 0; j < p; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      for (std::size_t i = 0; i < recv_counts[idx]; ++i) {
        ASSERT_EQ(recv[recv_displs[idx] + i], j * 100 + comm.rank());
      }
    }
  });
}

namespace {

/// A mixed workload exercising every transport path: inline eager, pooled
/// eager, rendezvous (borrowed payloads), staged collectives, wildcards.
/// Returns per-rank digests of all received data.
mpi::RunResult mixed_workload(mpi::RuntimeOptions opts,
                              std::vector<std::uint64_t>* digests = nullptr) {
  const int p = 6;
  std::vector<std::uint64_t> local(static_cast<std::size_t>(p), 0);
  auto result = mpi::run(
      p,
      [p, &local](mpi::Comm& comm) {
        std::uint64_t digest = 1469598103934665603ull;
        auto mix = [&digest](std::uint64_t v) {
          digest = (digest ^ v) * 1099511628211ull;
        };
        // Inline-size and pool-size eager p2p, plus a rendezvous message.
        std::vector<std::uint64_t> big(20000);
        for (std::size_t i = 0; i < big.size(); ++i) {
          big[i] = static_cast<std::uint64_t>(comm.rank()) * 7919 + i;
        }
        const int right = (comm.rank() + 1) % p;
        const int left = (comm.rank() - 1 + p) % p;
        comm.send_value(std::uint64_t{41} + static_cast<std::uint64_t>(
                                                comm.rank()),
                        right, 5);
        mix(comm.recv_value<std::uint64_t>(left, 5));
        mpi::Request r = comm.isend(std::span<const std::uint64_t>(big),
                                    right, 6);
        std::vector<std::uint64_t> in(big.size());
        comm.recv(std::span<std::uint64_t>(in), left, 6);
        comm.wait(r);
        for (const auto v : in) mix(v);
        // Collectives across the size spectrum (inline, staged, ring/RD
        // thresholds under kAuto).
        std::vector<double> v(9000, comm.rank() + 0.5);
        std::vector<double> sum(9000);
        comm.allreduce(std::span<const double>(v), std::span<double>(sum),
                       mpi::ops::Sum{});
        mix(static_cast<std::uint64_t>(sum[123]));
        std::vector<std::uint64_t> all(
            big.size() * static_cast<std::size_t>(p));
        comm.allgather(std::span<const std::uint64_t>(big),
                       std::span<std::uint64_t>(all));
        for (const auto x : all) mix(x);
        comm.barrier();
        local[static_cast<std::size_t>(comm.rank())] = digest;
      },
      opts);
  if (digests != nullptr) *digests = local;
  return result;
}

}  // namespace

TEST(Fastpath, TransportTogglesAreSimNeutral) {
  // pooling / zero-copy / inline storage are real-world optimizations; the
  // simulated clocks and every delivered byte must be identical bit for bit
  // with any combination of them disabled.
  mpi::RuntimeOptions base;
  base.eager_threshold = 64 * 1024;  // the isend payload goes rendezvous

  std::vector<std::uint64_t> want_digest;
  const auto want = mixed_workload(base, &want_digest);

  for (const bool pooling : {false, true}) {
    for (const bool zero_copy : {false, true}) {
      for (const std::size_t inline_threshold : {std::size_t{0},
                                                 std::size_t{256}}) {
        mpi::RuntimeOptions opts = base;
        opts.transport.pooling = pooling;
        opts.transport.zero_copy = zero_copy;
        opts.transport.inline_threshold = inline_threshold;
        std::vector<std::uint64_t> digest;
        const auto got = mixed_workload(opts, &digest);
        ASSERT_EQ(digest, want_digest)
            << "pooling=" << pooling << " zero_copy=" << zero_copy
            << " inline=" << inline_threshold;
        ASSERT_EQ(got.sim_times, want.sim_times)
            << "pooling=" << pooling << " zero_copy=" << zero_copy
            << " inline=" << inline_threshold;
      }
    }
  }
}

TEST(Fastpath, CountersObserveTheFastPath) {
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 1024;
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        // Three message classes: inline (64 B), pooled eager (512 B), and
        // rendezvous (32 KiB).  The receiver probes before posting the
        // rendezvous recv, so the sender is guaranteed to have queued the
        // envelope unexpectedly — i.e. to have stalled.  The blocking
        // rendezvous also serializes the rounds, so each round's 512-byte
        // pool buffer is back in the pool before the next acquire.
        std::vector<std::byte> small(64);
        std::vector<std::byte> medium(512);
        std::vector<std::byte> big(32 * 1024);
        for (int round = 0; round < 8; ++round) {
          if (comm.rank() == 0) {
            comm.send(std::span<const std::byte>(small), 1, 1);
            comm.send(std::span<const std::byte>(medium), 1, 2);
            comm.send(std::span<const std::byte>(big), 1, 3);
          } else if (comm.rank() == 1) {
            comm.recv(std::span<std::byte>(small), 0, 1);
            comm.recv(std::span<std::byte>(medium), 0, 2);
            (void)comm.probe(0, 3);
            comm.recv(std::span<std::byte>(big), 0, 3);
          }
        }
        std::vector<double> v(2048, 1.0);
        std::vector<double> out(2048);
        comm.allreduce(std::span<const double>(v), std::span<double>(out),
                       mpi::ops::Sum{});
      },
      opts);
  const auto total = result.total_stats();
  EXPECT_GT(total.inline_messages, 0u);     // the 64-byte messages
  EXPECT_GT(total.rendezvous_stalls, 0u);   // rank 0 outruns rank 1
  EXPECT_GT(total.pool_hits, 0u);           // 8 rounds reuse the 32 KiB class
  EXPECT_GT(total.zero_copy_bytes, 0u);     // borrowed + staged payloads
  EXPECT_GT(total.copied_bytes, 0u);
  // 16 KiB payload with p=4 crosses the kAuto recursive-doubling threshold.
  EXPECT_EQ(total.algo_count(mpi::CollectiveAlgo::kAllreduceRecursiveDoubling),
            4u);
  const std::string report = mpi::transport_report(total);
  EXPECT_NE(report.find("zero-copy"), std::string::npos);
  EXPECT_NE(report.find("allreduce/recursive-doubling"), std::string::npos);
}

TEST(Fastpath, AutoSelectionIsSizeAndRankAware) {
  // Tiny allreduce stays on the classic reduce+bcast path (bit-identical
  // module timings); mid-size goes recursive doubling; large goes ring.
  const auto stats_for = [](std::size_t nbytes) {
    auto result = mpi::run(8, [nbytes](mpi::Comm& comm) {
      std::vector<std::byte> v(nbytes, std::byte{1});
      std::vector<std::byte> out(nbytes);
      auto byte_or = [](std::byte a, std::byte b) { return a | b; };
      comm.allreduce(std::span<const std::byte>(v),
                     std::span<std::byte>(out), byte_or);
    });
    return result.total_stats();
  };
  const auto tiny = stats_for(64);
  EXPECT_EQ(tiny.algo_count(mpi::CollectiveAlgo::kAllreduceReduceBcast), 8u);
  const auto mid = stats_for(4096);
  EXPECT_EQ(mid.algo_count(mpi::CollectiveAlgo::kAllreduceRecursiveDoubling),
            8u);
  const auto large = stats_for(256 * 1024);
  EXPECT_EQ(large.algo_count(mpi::CollectiveAlgo::kAllreduceRabenseifner),
            8u);
}
