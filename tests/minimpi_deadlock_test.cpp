// Deadlock detection and failure propagation — the Module 1 lesson that
// blocking sends can deadlock, made mechanically checkable.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;

namespace {

mpi::RuntimeOptions rendezvous_everything() {
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 0;  // every nonempty send blocks until matched
  return opts;
}

}  // namespace

TEST(Deadlock, RingOfBlockingSendsDeadlocks) {
  // The classic: every rank sends "right" before receiving "left".  With
  // rendezvous sends nobody ever posts a receive, so nothing can progress.
  EXPECT_THROW(
      mpi::run(
          4,
          [](mpi::Comm& comm) {
            const int p = comm.size();
            const int next = (comm.rank() + 1) % p;
            const int prev = (comm.rank() - 1 + p) % p;
            int token = comm.rank();
            comm.send(std::span<const int>(&token, 1), next, 0);
            (void)comm.recv_value<int>(prev, 0);
          },
          rendezvous_everything()),
      mpi::DeadlockError);
}

TEST(Deadlock, SameRingWithEagerBufferingSucceeds) {
  // Identical code, default eager threshold: the sends buffer and return,
  // exactly like small-message MPI_Send in a real implementation.
  EXPECT_NO_THROW(mpi::run(4, [](mpi::Comm& comm) {
    const int p = comm.size();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    int token = comm.rank();
    comm.send(std::span<const int>(&token, 1), next, 0);
    EXPECT_EQ(comm.recv_value<int>(prev, 0), prev);
  }));
}

TEST(Deadlock, SameRingWithIsendSucceedsUnderRendezvous) {
  // The module's fix: non-blocking sends break the cycle even when every
  // message requires a rendezvous.
  EXPECT_NO_THROW(mpi::run(
      4,
      [](mpi::Comm& comm) {
        const int p = comm.size();
        const int next = (comm.rank() + 1) % p;
        const int prev = (comm.rank() - 1 + p) % p;
        int token = comm.rank();
        mpi::Request req =
            comm.isend(std::span<const int>(&token, 1), next, 0);
        EXPECT_EQ(comm.recv_value<int>(prev, 0), prev);
        comm.wait(req);
      },
      rendezvous_everything()));
}

TEST(Deadlock, SendrecvIsDeadlockSafe) {
  EXPECT_NO_THROW(mpi::run(
      5,
      [](mpi::Comm& comm) {
        const int p = comm.size();
        const int next = (comm.rank() + 1) % p;
        const int prev = (comm.rank() - 1 + p) % p;
        int out = comm.rank(), in = -1;
        comm.sendrecv(std::span<const int>(&out, 1), next, 0,
                      std::span<int>(&in, 1), prev, 0);
        EXPECT_EQ(in, prev);
      },
      rendezvous_everything()));
}

TEST(Deadlock, RecvWithNoSenderIsDetected) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 0) {
                            (void)comm.recv_value<int>(1, 0);
                          }
                          // Rank 1 exits immediately.
                        }),
               mpi::DeadlockError);
}

TEST(Deadlock, RendezvousSendToSelfIsDetected) {
  EXPECT_THROW(mpi::run(1,
                        [](mpi::Comm& comm) {
                          int v = 1;
                          comm.send(std::span<const int>(&v, 1), 0, 0);
                        },
                        rendezvous_everything()),
               mpi::DeadlockError);
}

TEST(Deadlock, MismatchedTagsAreDetected) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 0) {
                            comm.send_value(1, 1, /*tag=*/1);
                            (void)comm.recv_value<int>(1, /*tag=*/2);
                          } else {
                            // Waits for tag 3, which never comes.
                            (void)comm.recv_value<int>(0, /*tag=*/3);
                          }
                        }),
               mpi::DeadlockError);
}

TEST(Deadlock, ErrorMessageNamesBlockedRanks) {
  try {
    mpi::run(3, [](mpi::Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv_value<int>(1, 0);
      if (comm.rank() == 1) (void)comm.recv_value<int>(2, 0);
      if (comm.rank() == 2) (void)comm.recv_value<int>(0, 0);
    });
    FAIL() << "expected DeadlockError";
  } catch (const mpi::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 1"), std::string::npos);
    EXPECT_NE(what.find("rank 2"), std::string::npos);
    EXPECT_NE(what.find("Recv"), std::string::npos);
  }
}

TEST(Deadlock, BarrierWithMissingRankIsDetected) {
  EXPECT_THROW(mpi::run(3,
                        [](mpi::Comm& comm) {
                          if (comm.rank() != 2) comm.barrier();
                        }),
               mpi::DeadlockError);
}

TEST(Deadlock, DetectionCanBeDisabled) {
  // With detection off the runtime must not throw DeadlockError; we avoid
  // the actual hang by having the "late" rank eventually send.  This
  // verifies the flag plumbs through while staying terminating.
  mpi::RuntimeOptions opts;
  opts.detect_deadlock = false;
  EXPECT_NO_THROW(mpi::run(
      2,
      [](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          EXPECT_EQ(comm.recv_value<int>(1, 0), 5);
        } else {
          comm.send_value(5, 0, 0);
        }
      },
      opts));
}

TEST(Abort, ExceptionInOneRankPropagatesToCaller) {
  try {
    mpi::run(3, [](mpi::Comm& comm) {
      if (comm.rank() == 1) {
        throw std::runtime_error("rank 1 exploded");
      }
      // Other ranks block forever waiting for rank 1; the abort must
      // unblock them.
      (void)comm.recv_value<int>(1, 0);
    });
    FAIL() << "expected the rank exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1 exploded"),
              std::string::npos);
  }
}

TEST(Abort, MpiErrorsInsideRanksSurface) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          if (comm.rank() == 0) {
                            comm.send_value(1, /*dest=*/99);  // invalid peer
                          } else {
                            (void)comm.recv_value<int>(0, 0);
                          }
                        }),
               mpi::MpiError);
}

TEST(Abort, RunRejectsNonPositiveWorld) {
  EXPECT_THROW(mpi::run(0, [](mpi::Comm&) {}),
               dipdc::support::PreconditionError);
}
