// Batch-scheduler simulator: parsing, FIFO vs. backfill, exclusivity, and
// the memory-bandwidth interference model behind the "terrible twins"
// co-scheduling lesson.
#include <gtest/gtest.h>

#include <string>

#include "slurmsim/slurmsim.hpp"
#include "support/error.hpp"

namespace sl = dipdc::slurmsim;

TEST(Sbatch, ParsesCommonDirectives) {
  const std::string script = R"(#!/bin/bash
#SBATCH --job-name=distmatrix
#SBATCH --nodes=2
#SBATCH --ntasks-per-node=16
#SBATCH --time=00:30:00
#SBATCH --exclusive
#DIPDC work=900 bw-demand=0.75

srun ./distance_matrix
)";
  const sl::JobSpec j = sl::parse_sbatch(script);
  EXPECT_EQ(j.name, "distmatrix");
  EXPECT_EQ(j.nodes, 2);
  EXPECT_EQ(j.tasks_per_node, 16);
  EXPECT_DOUBLE_EQ(j.time_limit, 1800.0);
  EXPECT_TRUE(j.exclusive);
  EXPECT_DOUBLE_EQ(j.work_seconds, 900.0);
  EXPECT_DOUBLE_EQ(j.mem_bw_demand, 0.75);
}

TEST(Sbatch, ShortFlagsAndMinuteTimes) {
  const std::string script =
      "#SBATCH -J quick -N 1\n#SBATCH --time=90\n";
  const sl::JobSpec j = sl::parse_sbatch(script);
  EXPECT_EQ(j.name, "quick");
  EXPECT_EQ(j.nodes, 1);
  EXPECT_DOUBLE_EQ(j.time_limit, 90.0 * 60.0);  // minutes
  // work defaults to the time limit when no #DIPDC override is given
  EXPECT_DOUBLE_EQ(j.work_seconds, 90.0 * 60.0);
}

TEST(Sbatch, MmSsTime) {
  const sl::JobSpec j = sl::parse_sbatch("#SBATCH --time=02:30\n");
  EXPECT_DOUBLE_EQ(j.time_limit, 150.0);
}

namespace {

sl::JobSpec job(const std::string& name, int nodes, int tasks, double work,
                double bw = 0.0, bool exclusive = false,
                double submit = 0.0, double limit = -1.0) {
  sl::JobSpec j;
  j.name = name;
  j.nodes = nodes;
  j.tasks_per_node = tasks;
  j.work_seconds = work;
  j.time_limit = limit < 0.0 ? work : limit;
  j.mem_bw_demand = bw;
  j.exclusive = exclusive;
  j.submit_time = submit;
  return j;
}

}  // namespace

TEST(Fifo, SequentialWhenClusterIsFull) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("a", 1, 32, 100.0), job("b", 1, 32, 50.0)});
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].finish_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].finish_time, 150.0);
  EXPECT_DOUBLE_EQ(r.makespan, 150.0);
}

TEST(Fifo, NodeSharingWhenCoresSuffice) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("a", 1, 16, 100.0), job("b", 1, 16, 100.0)});
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 0.0);  // co-scheduled
  EXPECT_DOUBLE_EQ(r.makespan, 100.0);
}

TEST(Fifo, ExclusiveJobRefusesSharing) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(
      cluster, sl::Policy::kFifo,
      {job("a", 1, 8, 100.0), job("b", 1, 8, 100.0, 0.0, true)});
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);  // must wait for empty node
}

TEST(Fifo, NothingSharesWithAnExclusiveJob) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(
      cluster, sl::Policy::kFifo,
      {job("a", 1, 8, 100.0, 0.0, true), job("b", 1, 8, 100.0)});
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
}

TEST(Interference, TerribleTwinsOnOneNode) {
  // Two memory-hungry jobs (0.8 bandwidth demand each) sharing a node:
  // combined demand 1.6 dilates both runtimes by 1.6x.
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("twin1", 1, 16, 100.0, 0.8),
                         job("twin2", 1, 16, 100.0, 0.8)});
  EXPECT_NEAR(r.jobs[0].finish_time, 160.0, 1e-6);
  EXPECT_NEAR(r.jobs[1].finish_time, 160.0, 1e-6);
  EXPECT_NEAR(r.jobs[0].slowdown(), 1.6, 1e-9);
}

TEST(Interference, TwinsOnSeparateNodesAreUndisturbed) {
  sl::ClusterSpec cluster{2, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("twin1", 1, 32, 100.0, 0.8),
                         job("twin2", 1, 32, 100.0, 0.8)});
  EXPECT_NEAR(r.jobs[0].finish_time, 100.0, 1e-6);
  EXPECT_NEAR(r.jobs[1].finish_time, 100.0, 1e-6);
  EXPECT_NEAR(r.jobs[1].slowdown(), 1.0, 1e-9);
}

TEST(Interference, MemoryJobPairsSafelyWithComputeJob) {
  // The quiz answer: sharing with a compute-bound job (low bandwidth
  // demand) causes no degradation because total demand stays <= 1.
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("memory", 1, 16, 100.0, 0.8),
                         job("compute", 1, 16, 100.0, 0.1)});
  EXPECT_NEAR(r.jobs[0].slowdown(), 1.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].slowdown(), 1.0, 1e-9);
}

TEST(Interference, RateRecomputedWhenCorunnerFinishes) {
  // Twin 2 is shorter; after it finishes, twin 1 speeds back up.
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("long", 1, 16, 100.0, 0.8),
                         job("short", 1, 16, 16.0, 0.8)});
  // Both run at rate 1/1.6 until `short` finishes at t = 16*1.6 = 25.6,
  // by which point `long` has completed 16 units; the remaining 84 units
  // then run at full rate: finish = 25.6 + 84 = 109.6.
  EXPECT_NEAR(r.jobs[1].finish_time, 25.6, 1e-6);
  EXPECT_NEAR(r.jobs[0].finish_time, 109.6, 1e-6);
}

TEST(Interference, MultiNodeJobRunsAtItsWorstNode) {
  // Job A spans 2 nodes; a twin loads only node 1.  A's rate is set by the
  // contended node.
  sl::ClusterSpec cluster{2, 32};
  auto jobs = std::vector<sl::JobSpec>{
      job("wide", 2, 16, 100.0, 0.8),
      job("narrow", 1, 16, 1000.0, 0.8),
  };
  auto r = sl::simulate(cluster, sl::Policy::kFifo, jobs);
  // `narrow` lands on node 0 (first fit) next to one of wide's allocations.
  EXPECT_NEAR(r.jobs[0].slowdown(), 1.6, 1e-6);
}

TEST(Backfill, ShortJobJumpsAheadWithoutDelayingHead) {
  // Node layout: 2 nodes.  "running" holds both nodes until t=100.
  // Queue: "head" needs 2 nodes (blocked), "small" needs 1 node for 10s.
  // FIFO leaves the cluster idle; backfill... both policies can only start
  // small once a node frees.  Use a staggered release instead:
  //   runningA holds node 0 until 100; runningB holds node 1 until 50.
  //   head needs 2 nodes -> shadow start at 100.
  //   small (20s) fits on node 1 at t=50 and finishes at 70 <= 100: backfill.
  auto jobs = std::vector<sl::JobSpec>{
      job("runningA", 1, 32, 100.0),
      job("runningB", 1, 32, 50.0),
      job("head", 2, 32, 10.0, 0.0, false, 1.0),
      job("small", 1, 32, 20.0, 0.0, false, 2.0),
  };
  sl::ClusterSpec cluster{2, 32};

  auto fifo = sl::simulate(cluster, sl::Policy::kFifo, jobs);
  EXPECT_DOUBLE_EQ(fifo.jobs[2].start_time, 100.0);  // head
  EXPECT_DOUBLE_EQ(fifo.jobs[3].start_time, 110.0);  // small waits for head

  auto bf = sl::simulate(cluster, sl::Policy::kBackfill, jobs);
  EXPECT_DOUBLE_EQ(bf.jobs[3].start_time, 50.0);   // small backfills
  EXPECT_DOUBLE_EQ(bf.jobs[2].start_time, 100.0);  // head not delayed
  EXPECT_LT(bf.makespan, fifo.makespan);
}

TEST(Backfill, LongCandidateMustNotTouchReservedNodes) {
  // Same staggered layout, but the candidate is long (60s > shadow margin)
  // so starting it on the freed node would delay the head: it must wait.
  auto jobs = std::vector<sl::JobSpec>{
      job("runningA", 1, 32, 100.0),
      job("runningB", 1, 32, 50.0),
      job("head", 2, 32, 10.0, 0.0, false, 1.0),
      job("long", 1, 32, 60.0, 0.0, false, 2.0),
  };
  sl::ClusterSpec cluster{2, 32};
  auto bf = sl::simulate(cluster, sl::Policy::kBackfill, jobs);
  EXPECT_DOUBLE_EQ(bf.jobs[2].start_time, 100.0);
  EXPECT_GE(bf.jobs[3].start_time, 100.0);  // could not backfill
}

TEST(Scheduler, SubmitTimesAreHonoured) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("late", 1, 8, 10.0, 0.0, false, 42.0)});
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 42.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].wait_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 52.0);
}

TEST(Scheduler, UtilizationAccountsCoreSeconds) {
  sl::ClusterSpec cluster{1, 32};
  auto r = sl::simulate(cluster, sl::Policy::kFifo,
                        {job("half", 1, 16, 100.0)});
  EXPECT_NEAR(r.utilization(cluster), 0.5, 1e-9);
}

TEST(Scheduler, RejectsOversizedJobs) {
  sl::ClusterSpec cluster{1, 32};
  EXPECT_THROW(
      sl::simulate(cluster, sl::Policy::kFifo, {job("big", 2, 8, 1.0)}),
      dipdc::support::PreconditionError);
  EXPECT_THROW(
      sl::simulate(cluster, sl::Policy::kFifo, {job("wide", 1, 64, 1.0)}),
      dipdc::support::PreconditionError);
}

TEST(Scheduler, ManyJobsAllComplete) {
  sl::ClusterSpec cluster{4, 32};
  std::vector<sl::JobSpec> jobs;
  for (int i = 0; i < 40; ++i) {
    std::string name = "j";
    name += std::to_string(i);
    jobs.push_back(job(name, 1 + i % 3, 8 + (i % 4) * 8,
                       10.0 + i, 0.1 * (i % 9), i % 5 == 0,
                       static_cast<double>(i)));
  }
  for (const auto policy : {sl::Policy::kFifo, sl::Policy::kBackfill}) {
    auto r = sl::simulate(cluster, policy, jobs);
    for (const auto& sj : r.jobs) {
      EXPECT_GE(sj.start_time, sj.spec.submit_time);
      EXPECT_GT(sj.finish_time, sj.start_time);
      EXPECT_GE(sj.slowdown(), 1.0 - 1e-9);
    }
  }
}

TEST(Dependencies, ParseAfterok) {
  const sl::JobSpec j =
      sl::parse_sbatch("#SBATCH -J dep --dependency=afterok:2\n");
  EXPECT_EQ(j.depends_on, 2);
}

TEST(Dependencies, DependentJobWaitsEvenWithFreeResources) {
  sl::ClusterSpec cluster{2, 32};
  auto a = job("first", 1, 8, 100.0);
  auto b = job("second", 1, 8, 50.0);
  b.depends_on = 0;
  const auto r = sl::simulate(cluster, sl::Policy::kFifo, {a, b});
  // A whole node is free, but `second` must wait for `first`.
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].finish_time, 150.0);
}

TEST(Dependencies, ChainRunsInOrder) {
  sl::ClusterSpec cluster{4, 32};
  std::vector<sl::JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    auto j = job("stage" + std::to_string(i), 1, 8, 10.0);
    j.depends_on = i - 1;  // -1 for the first
    jobs.push_back(j);
  }
  const auto r = sl::simulate(cluster, sl::Policy::kBackfill, jobs);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(r.jobs[static_cast<std::size_t>(i)].start_time,
              r.jobs[static_cast<std::size_t>(i - 1)].finish_time);
  }
  EXPECT_DOUBLE_EQ(r.makespan, 40.0);
}

TEST(Dependencies, IndependentJobsOvertakeHeldOnes) {
  sl::ClusterSpec cluster{1, 32};
  auto a = job("long", 1, 32, 100.0);
  auto held = job("held", 1, 32, 10.0);
  held.depends_on = 0;
  auto c = job("free", 1, 32, 10.0);
  // Submit order: long, held, free.  Held cannot start until long ends;
  // free runs right after long without waiting behind held... actually the
  // held job becomes eligible at the same moment; FIFO order then applies.
  const auto r = sl::simulate(cluster, sl::Policy::kFifo, {a, held, c});
  EXPECT_DOUBLE_EQ(r.jobs[0].finish_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);  // eligible at 100, head
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 110.0);
}

TEST(Dependencies, HeldJobDoesNotBlockTheQueueWhileIneligible) {
  sl::ClusterSpec cluster{2, 32};
  auto a = job("long", 1, 32, 100.0);     // node 0 until t=100
  auto held = job("held", 2, 32, 10.0);   // needs both nodes AND long done
  held.depends_on = 0;
  auto c = job("free", 1, 32, 20.0);      // fits node 1 right now
  const auto r = sl::simulate(cluster, sl::Policy::kFifo, {a, held, c});
  // `free` must not wait behind the dependency-held 2-node job.
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
}

TEST(Dependencies, SelfDependencyRejected) {
  sl::ClusterSpec cluster{1, 32};
  auto a = job("narcissist", 1, 8, 10.0);
  a.depends_on = 0;
  EXPECT_THROW(sl::simulate(cluster, sl::Policy::kFifo, {a}),
               dipdc::support::PreconditionError);
}

TEST(Dependencies, CircularDependencyDetectedAsStall) {
  sl::ClusterSpec cluster{2, 32};
  auto a = job("a", 1, 8, 10.0);
  auto b = job("b", 1, 8, 10.0);
  a.depends_on = 1;
  b.depends_on = 0;
  EXPECT_THROW(sl::simulate(cluster, sl::Policy::kFifo, {a, b}),
               dipdc::support::PreconditionError);
}
