// Module 4 serving mode: deterministic workload generation, admission
// accounting, an independent match-count oracle, and bit-identity of the
// whole serving run across transport backends and kernel ISAs.
#include "modules/rangequery/serving.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "index/geometry.hpp"
#include "kernels/dispatch.hpp"
#include "support/rng.hpp"
#include "run_forced.hpp"

namespace m4 = dipdc::modules::rangequery;
namespace sp = dipdc::spatial;
namespace mpi = dipdc::minimpi;
namespace kn = dipdc::kernels;
using dipdc::testing::all_backends;
using dipdc::testing::forced;
using dipdc::testing::other_backends;
using dipdc::testing::run_forced;

namespace {

/// The fields that define a serving run's observable outcome; two runs
/// agreeing on all of them (including the simulated-time-derived ones,
/// exactly) are the same run.
void expect_same_result(const m4::ServeResult& a, const m4::ServeResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.total_matches, b.total_matches);
  EXPECT_EQ(a.entries_checked, b.entries_checked);
  EXPECT_EQ(a.makespan, b.makespan);          // bit-identical sim time
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.latency_us.count, b.latency_us.count);
  EXPECT_EQ(a.latency_us.sum, b.latency_us.sum);
  EXPECT_EQ(a.latency_us.buckets, b.latency_us.buckets);
}

m4::ServeConfig small_config() {
  m4::ServeConfig cfg;
  cfg.n_points = 4000;
  cfg.qps = 2000.0;
  cfg.duration = 0.25;
  cfg.batch = 8;
  return cfg;
}

}  // namespace

TEST(ServingStream, SameSeedSameStream) {
  m4::ServeConfig cfg;
  for (const m4::Mix mix :
       {m4::Mix::kUniform, m4::Mix::kHotspot, m4::Mix::kZipf}) {
    cfg.mix = mix;
    m4::QueryStream a(cfg, 8);
    m4::QueryStream b(cfg, 8);
    for (int i = 0; i < 500; ++i) {
      const sp::Rect ra = a.next();
      const sp::Rect rb = b.next();
      EXPECT_EQ(ra, rb) << m4::mix_name(mix) << " query " << i;
    }
  }
}

TEST(ServingStream, DifferentSeedsDiverge) {
  m4::ServeConfig a_cfg;
  m4::ServeConfig b_cfg;
  b_cfg.seed = a_cfg.seed + 7;
  m4::QueryStream a(a_cfg, 8);
  m4::QueryStream b(b_cfg, 8);
  int diffs = 0;
  for (int i = 0; i < 100; ++i) {
    if (!(a.next() == b.next())) ++diffs;
  }
  EXPECT_GT(diffs, 90);
}

TEST(ServingStream, WindowsStayInsideExtent) {
  m4::ServeConfig cfg;
  cfg.extent = 100.0;
  cfg.side = 8.0;
  for (const m4::Mix mix :
       {m4::Mix::kUniform, m4::Mix::kHotspot, m4::Mix::kZipf}) {
    cfg.mix = mix;
    m4::QueryStream stream(cfg, 8);
    for (int i = 0; i < 1000; ++i) {
      const sp::Rect r = stream.next();
      EXPECT_TRUE(r.valid());
      EXPECT_GE(r.xmin, 0.0);
      EXPECT_GE(r.ymin, 0.0);
      EXPECT_LE(r.xmax, cfg.extent);
      EXPECT_LE(r.ymax, cfg.extent);
      EXPECT_NEAR(r.xmax - r.xmin, cfg.side, 1e-9);
    }
  }
}

TEST(ServingStream, HotspotConcentrates) {
  m4::ServeConfig cfg;
  cfg.mix = m4::Mix::kHotspot;
  cfg.hot_fraction = 0.9;
  // The hot box is 10% of the extent per side (1% by area): 90% of
  // window corners landing inside a region the uniform mix would hit
  // ~1% of the time is only explainable by the hot box.
  m4::QueryStream stream(cfg, 8);
  sp::Rect bounds = sp::Rect::empty();
  std::vector<sp::Rect> windows;
  for (int i = 0; i < 2000; ++i) windows.push_back(stream.next());
  // Find the densest cluster: the median corner is inside the hot box.
  std::vector<double> x;
  std::vector<double> y;
  for (const sp::Rect& w : windows) {
    x.push_back(w.xmin);
    y.push_back(w.ymin);
  }
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  const double mx = x[x.size() / 2];
  const double my = y[y.size() / 2];
  const double hot_side = cfg.hot_extent_fraction * cfg.extent;
  int inside = 0;
  for (const sp::Rect& w : windows) {
    if (std::abs(w.xmin - mx) <= hot_side &&
        std::abs(w.ymin - my) <= hot_side) {
      ++inside;
    }
  }
  EXPECT_GT(inside, 2000 * 8 / 10);
  (void)bounds;
}

TEST(ServingGrid, DefaultSideCoversShards) {
  EXPECT_EQ(m4::default_grid_side(1), 2);
  EXPECT_EQ(m4::default_grid_side(4), 4);
  EXPECT_EQ(m4::default_grid_side(7), 6);
  for (int shards = 1; shards <= 64; ++shards) {
    const int g = m4::default_grid_side(shards);
    EXPECT_GE(g * g, 4 * shards);
    EXPECT_LT((g - 1) * (g - 1), 4 * shards);
  }
}

TEST(ServingParse, MixNamesRoundTrip) {
  for (const m4::Mix mix :
       {m4::Mix::kUniform, m4::Mix::kHotspot, m4::Mix::kZipf}) {
    EXPECT_EQ(m4::parse_mix(m4::mix_name(mix)), mix);
  }
  EXPECT_THROW((void)m4::parse_mix("bogus"),
               dipdc::support::PreconditionError);
}

// With no rejections (offered rate far below capacity), every generated
// query is answered, so total_matches must equal a serial brute-force
// count over the identical point set and query stream.
TEST(Serving, MatchesSerialOracle) {
  const m4::ServeConfig cfg = small_config();
  const auto r = run_forced(4, forced(mpi::BackendKind::kThreads),
                            [&](mpi::Comm& comm) {
                              return m4::serve(comm, cfg);
                            });
  ASSERT_EQ(r.rejected, 0u);
  ASSERT_EQ(r.completed, r.offered);

  // Serial oracle: same point stream, same query stream, Rect::contains.
  dipdc::support::Xoshiro256 rng(cfg.seed);
  std::vector<sp::Point2> points(cfg.n_points);
  for (auto& p : points) {
    p.x = rng.uniform(0.0, cfg.extent);
    p.y = rng.uniform(0.0, cfg.extent);
  }
  m4::QueryStream stream(cfg, r.grid_side);
  const auto offered = static_cast<std::uint64_t>(
      std::llround(cfg.qps * cfg.duration));
  std::uint64_t expected = 0;
  for (std::uint64_t q = 0; q < offered; ++q) {
    const sp::Rect w = stream.next();
    for (const sp::Point2& p : points) {
      if (w.contains(p)) ++expected;
    }
  }
  EXPECT_EQ(r.offered, offered);
  EXPECT_EQ(r.total_matches, expected);
}

TEST(Serving, OverloadRejectsButAnswersAdmitted) {
  m4::ServeConfig cfg = small_config();
  cfg.qps = 5e6;  // far past capacity
  cfg.duration = 0.002;
  cfg.queue_cap = 32;
  cfg.batch = 8;
  const auto r = run_forced(4, forced(mpi::BackendKind::kThreads),
                            [&](mpi::Comm& comm) {
                              return m4::serve(comm, cfg);
                            });
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.admitted + r.rejected, r.offered);
  EXPECT_EQ(r.completed, r.admitted);  // admitted work always finishes
  EXPECT_EQ(r.latency_us.count, r.completed);
}

// The serving loop's whole observable outcome — admission counts, match
// totals, latency histogram, simulated makespan — is bit-identical on
// every transport backend.
TEST(Serving, BitIdenticalAcrossBackends) {
  for (const m4::Mix mix :
       {m4::Mix::kUniform, m4::Mix::kHotspot, m4::Mix::kZipf}) {
    m4::ServeConfig cfg = small_config();
    cfg.mix = mix;
    const auto baseline =
        run_forced(4, forced(mpi::BackendKind::kThreads),
                   [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
    EXPECT_GT(baseline.total_matches, 0u);
    for (const mpi::BackendKind kind : other_backends()) {
      const auto other =
          run_forced(4, forced(kind),
                     [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
      expect_same_result(baseline, other);
    }
  }
}

// Kernel ISA is a performance knob, never a results knob: the scalar and
// SIMD filter paths produce the same counts, so the whole run agrees.
TEST(Serving, KernelIsaDoesNotChangeResults) {
  m4::ServeConfig cfg = small_config();
  cfg.kernel = kn::Policy::kScalar;
  const auto scalar =
      run_forced(4, forced(mpi::BackendKind::kThreads),
                 [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
  if (!kn::simd_supported()) GTEST_SKIP() << "no AVX2 on this host";
  cfg.kernel = kn::Policy::kSimd;
  const auto simd =
      run_forced(4, forced(mpi::BackendKind::kThreads),
                 [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
  expect_same_result(scalar, simd);
}

TEST(Serving, PipelineDepthPreservesAnswers) {
  // Deeper pipelining changes timing (that is its point) but must not
  // change which queries are answered or what they match.
  m4::ServeConfig cfg = small_config();
  cfg.pipeline = 1;
  const auto serial =
      run_forced(4, forced(mpi::BackendKind::kThreads),
                 [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
  cfg.pipeline = 4;
  const auto piped =
      run_forced(4, forced(mpi::BackendKind::kThreads),
                 [&](mpi::Comm& comm) { return m4::serve(comm, cfg); });
  ASSERT_EQ(serial.rejected, 0u);
  ASSERT_EQ(piped.rejected, 0u);
  EXPECT_EQ(serial.total_matches, piped.total_matches);
  EXPECT_EQ(serial.completed, piped.completed);
}

TEST(Serving, RequiresDriverAndShard) {
  EXPECT_THROW(
      run_forced(1, forced(mpi::BackendKind::kThreads),
                 [&](mpi::Comm& comm) {
                   return m4::serve(comm, m4::ServeConfig{});
                 }),
      dipdc::support::PreconditionError);
}
