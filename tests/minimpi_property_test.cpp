// Algorithm-equivalence properties for the collective implementations.
//
// Every algorithm selected by CollectiveOptions must be bit-identical to
// the classic (seed) implementation — on awkward world sizes (3, 5, 7,
// none a power of two) and on counts that do not divide by the rank count.
// These are the properties the mpifuzz oracle assumes when it predicts
// collective results without knowing which algorithm kAuto picked.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;

namespace {

std::vector<std::uint64_t> contribution(int rank, std::size_t n) {
  dipdc::support::Xoshiro256 rng =
      dipdc::support::make_stream(0xA11CEull, static_cast<std::uint64_t>(rank));
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t& x : v) x = rng();
  return v;
}

mpi::RuntimeOptions with_algorithm(
    mpi::CollectiveAlgorithm mpi::CollectiveOptions::* knob,
    mpi::CollectiveAlgorithm algo) {
  mpi::RuntimeOptions opts;
  opts.collectives.*knob = algo;
  return opts;
}

/// Runs `ranks` ranks of allreduce(sum) over `count` u64 and returns rank
/// 0's result buffer.
std::vector<std::uint64_t> allreduce_result(int ranks, std::size_t count,
                                            mpi::CollectiveAlgorithm algo) {
  std::vector<std::uint64_t> rank0;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const std::vector<std::uint64_t> in =
            contribution(comm.rank(), count);
        std::vector<std::uint64_t> out(count);
        comm.allreduce(std::span<const std::uint64_t>(in),
                       std::span<std::uint64_t>(out),
                       [](std::uint64_t a, std::uint64_t b) { return a + b; });
        if (comm.rank() == 0) rank0 = out;
      },
      with_algorithm(&mpi::CollectiveOptions::allreduce, algo));
  return rank0;
}

std::vector<std::uint64_t> allgather_result(int ranks, std::size_t count,
                                            mpi::CollectiveAlgorithm algo) {
  std::vector<std::uint64_t> rank0;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const std::vector<std::uint64_t> in =
            contribution(comm.rank(), count);
        std::vector<std::uint64_t> out(count *
                                       static_cast<std::size_t>(ranks));
        comm.allgather(std::span<const std::uint64_t>(in),
                       std::span<std::uint64_t>(out));
        if (comm.rank() == 0) rank0 = out;
      },
      with_algorithm(&mpi::CollectiveOptions::allgather, algo));
  return rank0;
}

/// Uneven scatterv (zero counts included); returns the concatenation of
/// every rank's received slice, in rank order.
std::vector<std::uint64_t> scatterv_result(int ranks,
                                           mpi::RuntimeOptions opts) {
  // Counts 0, 1, 2, ... with a deliberately empty rank 0 share.
  std::vector<std::size_t> counts(static_cast<std::size_t>(ranks));
  std::vector<std::size_t> displs(static_cast<std::size_t>(ranks));
  std::size_t total = 0;
  for (int r = 0; r < ranks; ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(r == 0 ? 0 : 2 * r + 1);
    displs[static_cast<std::size_t>(r)] = total;
    total += counts[static_cast<std::size_t>(r)];
  }
  const int root = ranks - 1;
  std::vector<std::vector<std::uint64_t>> got(
      static_cast<std::size_t>(ranks));
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        std::vector<std::uint64_t> send;
        if (comm.rank() == root) {
          send.resize(total);
          std::iota(send.begin(), send.end(), 1000u);
        }
        std::vector<std::uint64_t> recv(
            counts[static_cast<std::size_t>(comm.rank())]);
        comm.scatterv(std::span<const std::uint64_t>(send),
                      std::span<const std::size_t>(counts),
                      std::span<const std::size_t>(displs),
                      std::span<std::uint64_t>(recv), root);
        got[static_cast<std::size_t>(comm.rank())] = recv;
      },
      opts);
  std::vector<std::uint64_t> flat;
  for (const auto& g : got) flat.insert(flat.end(), g.begin(), g.end());
  return flat;
}

}  // namespace

TEST(CollectiveEquivalence, AllreduceAlgorithmsAreBitIdentical) {
  // 1003 does not divide by 3, 5 or 7, exercising the uneven chunking of
  // the ring (Rabenseifner) algorithm; non-power-of-two worlds exercise
  // recursive doubling's fold-in pre/post phases.
  for (int ranks : {3, 5, 7}) {
    const auto classic = allreduce_result(
        ranks, 1003, mpi::CollectiveAlgorithm::kClassic);
    ASSERT_EQ(classic.size(), 1003u);
    EXPECT_EQ(classic, allreduce_result(
                           ranks, 1003,
                           mpi::CollectiveAlgorithm::kRecursiveDoubling))
        << "recursive doubling diverges at " << ranks << " ranks";
    EXPECT_EQ(classic,
              allreduce_result(ranks, 1003, mpi::CollectiveAlgorithm::kRing))
        << "ring diverges at " << ranks << " ranks";
    EXPECT_EQ(classic,
              allreduce_result(ranks, 1003, mpi::CollectiveAlgorithm::kAuto))
        << "auto diverges at " << ranks << " ranks";
  }
}

TEST(CollectiveEquivalence, AllgatherRingMatchesClassic) {
  for (int ranks : {3, 5, 7}) {
    const auto classic =
        allgather_result(ranks, 257, mpi::CollectiveAlgorithm::kClassic);
    EXPECT_EQ(classic,
              allgather_result(ranks, 257, mpi::CollectiveAlgorithm::kRing))
        << "ring allgather diverges at " << ranks << " ranks";
    EXPECT_EQ(classic,
              allgather_result(ranks, 257, mpi::CollectiveAlgorithm::kAuto))
        << "auto allgather diverges at " << ranks << " ranks";
  }
}

TEST(CollectiveEquivalence, ScattervTreeMatchesClassicOnUnevenCounts) {
  for (int ranks : {3, 5, 7}) {
    mpi::RuntimeOptions classic;
    classic.collectives.scatter = mpi::CollectiveAlgorithm::kClassic;
    mpi::RuntimeOptions tree;
    tree.collectives.scatter = mpi::CollectiveAlgorithm::kTree;
    mpi::RuntimeOptions auto_small_tree;  // force kAuto onto the tree path
    auto_small_tree.collectives.scatter = mpi::CollectiveAlgorithm::kAuto;
    auto_small_tree.collectives.tree_rank_threshold = 2;

    const auto want = scatterv_result(ranks, classic);
    EXPECT_EQ(want, scatterv_result(ranks, tree))
        << "tree scatterv diverges at " << ranks << " ranks";
    EXPECT_EQ(want, scatterv_result(ranks, auto_small_tree))
        << "auto(tree) scatterv diverges at " << ranks << " ranks";
  }
}
