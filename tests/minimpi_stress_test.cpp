// Stress and property tests of the runtime: randomized message fuzzing
// across protocols, sub-communicator collective sweeps, and failure
// injection inside collectives.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;

namespace {

/// Payload whose contents are derived from (source, tag, length) so any
/// mismatched or corrupted delivery is detected on receipt.
std::vector<std::uint32_t> stamped_payload(int source, int tag,
                                           std::size_t len) {
  std::vector<std::uint32_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::uint32_t>(source) * 1000003u +
           static_cast<std::uint32_t>(tag) * 101u +
           static_cast<std::uint32_t>(i);
  }
  return v;
}

}  // namespace

class FuzzSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(FuzzSweep, RandomizedExchangesDeliverExactPayloads) {
  const auto [p, eager_threshold] = GetParam();
  mpi::RuntimeOptions opts;
  opts.eager_threshold = eager_threshold;

  mpi::run(
      p,
      [](mpi::Comm& comm) {
        const int rank = comm.rank();
        const int size = comm.size();
        auto rng = dipdc::support::make_stream(
            4242, static_cast<std::uint64_t>(rank));

        // Every rank plans a random batch of messages; plans are derived
        // from the same seeds so receivers know what to expect.
        auto plan_for = [size](int src) {
          auto r = dipdc::support::make_stream(
              999, static_cast<std::uint64_t>(src));
          std::vector<std::tuple<int, int, std::size_t>> plan;  // dst,tag,len
          const int count = static_cast<int>(r.uniform_index(12));
          for (int i = 0; i < count; ++i) {
            const int dst = static_cast<int>(
                r.uniform_index(static_cast<std::uint64_t>(size)));
            const int tag = static_cast<int>(r.uniform_index(5));
            const std::size_t len = 1 + r.uniform_index(3000);
            plan.emplace_back(dst, tag, len);
          }
          return plan;
        };

        // Fire all sends non-blockingly.
        std::vector<std::vector<std::uint32_t>> buffers;
        std::vector<mpi::Request> reqs;
        for (const auto& [dst, tag, len] : plan_for(rank)) {
          buffers.push_back(stamped_payload(rank, tag, len));
          reqs.push_back(comm.isend(
              std::span<const std::uint32_t>(buffers.back()), dst, tag));
        }
        (void)rng;

        // Receive exactly what every source's plan says comes to me.
        std::size_t expected = 0;
        for (int src = 0; src < size; ++src) {
          for (const auto& [dst, tag, len] : plan_for(src)) {
            if (dst == rank) ++expected;
          }
        }
        for (std::size_t i = 0; i < expected; ++i) {
          const mpi::Status st = comm.probe();
          const auto data = comm.recv_vector<std::uint32_t>(st.source,
                                                            st.tag);
          const auto want = stamped_payload(st.source, st.tag, data.size());
          ASSERT_EQ(data, want);
        }
        comm.wait_all(std::span<mpi::Request>(reqs));
        comm.barrier();
      },
      opts);
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndProtocols, FuzzSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(std::size_t{0}, std::size_t{512},
                                         std::size_t{1} << 20)));

class SplitCollectiveSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitCollectiveSweep, CollectivesWorkInEveryGroupShape) {
  const auto [p, colors] = GetParam();
  mpi::run(p, [colors](mpi::Comm& comm) {
    mpi::Comm sub = comm.split(comm.rank() % colors);
    // Allreduce within the group: sum of the group's world ranks.
    long long expect = 0;
    for (int r = comm.rank() % colors; r < comm.size(); r += colors) {
      expect += r;
    }
    const long long got = sub.allreduce_value(
        static_cast<long long>(comm.rank()), mpi::ops::Sum{});
    EXPECT_EQ(got, expect);

    // Gather in the group collects world ranks in group order.
    std::vector<int> all(static_cast<std::size_t>(sub.size()), -1);
    const int mine = comm.rank();
    sub.gather(std::span<const int>(&mine, 1), std::span<int>(all), 0);
    if (sub.rank() == 0) {
      for (int i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)],
                  comm.rank() % colors + i * colors);
      }
    }
    sub.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, SplitCollectiveSweep,
                         ::testing::Combine(::testing::Values(2, 4, 6, 12),
                                            ::testing::Values(1, 2, 3)));

TEST(FailureInjection, ExceptionDuringCollectiveUnblocksEveryone) {
  // One rank dies between two collectives; the others are inside a
  // barrier and must be released with an error instead of hanging.
  try {
    mpi::run(4, [](mpi::Comm& comm) {
      comm.barrier();
      if (comm.rank() == 2) throw std::runtime_error("boom in collective");
      comm.barrier();
      comm.barrier();
    });
    FAIL() << "expected propagated exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(FailureInjection, ExceptionWhileOthersWaitOnRendezvous) {
  mpi::RuntimeOptions opts;
  opts.eager_threshold = 0;
  EXPECT_THROW(
      mpi::run(
          3,
          [](mpi::Comm& comm) {
            if (comm.rank() == 0) {
              std::vector<int> big(1000, 1);
              comm.send(std::span<const int>(big), 1);  // blocks forever
            } else if (comm.rank() == 2) {
              throw std::logic_error("injected");
            } else {
              // Rank 1 never posts the receive; it waits on rank 2.
              (void)comm.recv_value<int>(2);
            }
          },
          opts),
      std::logic_error);
}

TEST(Stress, ManyRanksManyBarriers) {
  const auto result = mpi::run(24, [](mpi::Comm& comm) {
    for (int i = 0; i < 50; ++i) {
      const long long sum = comm.allreduce_value(
          static_cast<long long>(1), mpi::ops::Sum{});
      ASSERT_EQ(sum, comm.size());
    }
  });
  for (const auto& s : result.rank_stats) {
    EXPECT_EQ(s.calls_to(mpi::Primitive::kAllreduce), 50u);
  }
}

TEST(Stress, LargeAlltoallvRoundTrip) {
  const int p = 6;
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    const auto np = static_cast<std::size_t>(p);
    // Rank r sends (r+1)*(j+1)*97 ints to rank j.
    std::vector<std::size_t> send_counts(np), send_displs(np);
    std::size_t total = 0;
    for (int j = 0; j < p; ++j) {
      send_displs[static_cast<std::size_t>(j)] = total;
      send_counts[static_cast<std::size_t>(j)] =
          static_cast<std::size_t>((r + 1) * (j + 1) * 97);
      total += send_counts[static_cast<std::size_t>(j)];
    }
    std::vector<int> send(total);
    std::iota(send.begin(), send.end(), r * 100000);

    std::vector<std::size_t> recv_counts(np), recv_displs(np);
    std::size_t rtotal = 0;
    for (int j = 0; j < p; ++j) {
      recv_displs[static_cast<std::size_t>(j)] = rtotal;
      recv_counts[static_cast<std::size_t>(j)] =
          static_cast<std::size_t>((j + 1) * (r + 1) * 97);
      rtotal += recv_counts[static_cast<std::size_t>(j)];
    }
    std::vector<int> recv(rtotal, -1);
    comm.alltoallv(std::span<const int>(send),
                   std::span<const std::size_t>(send_counts),
                   std::span<const std::size_t>(send_displs),
                   std::span<int>(recv),
                   std::span<const std::size_t>(recv_counts),
                   std::span<const std::size_t>(recv_displs));
    // Verify each block's first element: source j's block for me starts at
    // j*100000 + displacement-of-me-within-j's-buffer.
    for (int j = 0; j < p; ++j) {
      std::size_t offset_in_j = 0;
      for (int k = 0; k < r; ++k) {
        offset_in_j += static_cast<std::size_t>((j + 1) * (k + 1) * 97);
      }
      EXPECT_EQ(recv[recv_displs[static_cast<std::size_t>(j)]],
                static_cast<int>(static_cast<std::size_t>(j) * 100000 +
                                 offset_in_j));
    }
  });
}
