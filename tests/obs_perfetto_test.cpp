// Perfetto trace_event export: deterministic bytes under simulated time,
// flow-arrow pairing, and a lossless parse_perfetto_json round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"
#include "obs/event.hpp"
#include "obs/perfetto.hpp"

namespace mpi = dipdc::minimpi;
namespace obs = dipdc::obs;

namespace {

/// A small mixed program: p2p with flow edges, a collective, named phases
/// and simulated compute — one of everything the exporter handles.
mpi::RunResult traced_run() {
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  return mpi::run(3, [](mpi::Comm& comm) {
    comm.phase_begin("setup");
    comm.barrier();
    comm.phase_end();
    if (comm.rank() == 0) {
      comm.send_value(41, 1, 7);
      comm.send_value(42, 2, 7);
    } else {
      comm.sim_compute(1000.0, 8000.0);
      (void)comm.recv_value<int>(0, 7);
    }
    (void)comm.allreduce_value(comm.rank(), mpi::ops::Sum{});
  }, opts);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(Perfetto, ExportIsBitIdenticalAcrossRuns) {
  const std::string a = obs::to_perfetto_json(mpi::make_trace(traced_run()));
  const std::string b = obs::to_perfetto_json(mpi::make_trace(traced_run()));
  EXPECT_EQ(a, b) << "simulated-time exports must not vary run to run";
}

TEST(Perfetto, FlowEventsComeInPairs) {
  const std::string json =
      obs::to_perfetto_json(mpi::make_trace(traced_run()));
  // Two sends matched by two receives: two "s" starts, two "f" finishes.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 2u);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(Perfetto, RoundTripPreservesEvents) {
  const obs::Trace before = mpi::make_trace(traced_run());
  const obs::Trace after =
      obs::parse_perfetto_json(obs::to_perfetto_json(before));

  EXPECT_EQ(after.nranks, before.nranks);
  ASSERT_EQ(after.events.size(), before.events.size());
  for (std::size_t i = 0; i < before.events.size(); ++i) {
    const obs::Event& x = before.events[i];
    const obs::Event& y = after.events[i];
    EXPECT_EQ(y.rank, x.rank);
    EXPECT_EQ(y.cat, x.cat);
    EXPECT_EQ(y.name, x.name);
    EXPECT_EQ(y.bytes, x.bytes);
    EXPECT_EQ(y.seq_out, x.seq_out);
    EXPECT_EQ(y.seq_in, x.seq_in);
    // Timestamps survive at the exporter's microsecond fixed-point
    // resolution (1e-9 s).
    EXPECT_NEAR(y.t_start, x.t_start, 1e-9);
    EXPECT_NEAR(y.t_end, x.t_end, 1e-9);
  }
}

TEST(Perfetto, WallClockOffByDefault) {
  const obs::Trace trace = mpi::make_trace(traced_run());
  for (const obs::Event& e : trace.events) {
    EXPECT_DOUBLE_EQ(e.wall_start, 0.0);
    EXPECT_DOUBLE_EQ(e.wall_end, 0.0);
  }
}

TEST(Perfetto, ParseRejectsGarbage) {
  EXPECT_THROW((void)obs::parse_perfetto_json("not json"),
               std::runtime_error);
  EXPECT_THROW((void)obs::parse_perfetto_json("{\"traceEvents\":42}"),
               std::runtime_error);
}
