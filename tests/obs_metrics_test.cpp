// The metrics registry: counters, gauges, histograms, reports and CSV.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace obs = dipdc::obs;

TEST(Histogram, BucketsByPowerOfTwo) {
  obs::Histogram h;
  h.observe(0.0);    // bucket 0
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 1: [1, 2)
  h.observe(3.0);    // bucket 2: [2, 4)
  h.observe(1024.0); // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.0 + 3.0 + 1024.0) / 5.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  const obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Registry, CountersSetAndAdd) {
  obs::Registry reg;
  reg.set_counter("a", 3);
  reg.add_counter("a", 2);
  reg.add_counter("b", 7);
  EXPECT_EQ(reg.counter("a"), 5u);
  EXPECT_EQ(reg.counter("b"), 7u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(Registry, GaugesAndHistograms) {
  obs::Registry reg;
  reg.set_gauge("t", 1.5, "s");
  reg.set_gauge("t", 2.5, "s");  // re-register updates in place
  EXPECT_DOUBLE_EQ(reg.gauge("t"), 2.5);
  reg.observe("sizes", 8.0);
  reg.observe("sizes", 24.0);
  const obs::Histogram* h = reg.histogram("sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 32.0);
  EXPECT_EQ(reg.histogram("missing"), nullptr);
}

TEST(Registry, TypeMismatchIsInvisible) {
  obs::Registry reg;
  reg.set_counter("x", 1);
  EXPECT_DOUBLE_EQ(reg.gauge("x"), 0.0);
  EXPECT_EQ(reg.histogram("x"), nullptr);
}

TEST(Registry, ReportKeepsInsertionOrder) {
  obs::Registry reg;
  reg.set_counter("zeta", 1);
  reg.set_gauge("alpha", 2.0, "s");
  const std::string report = reg.report();
  EXPECT_LT(report.find("zeta"), report.find("alpha"));
}

TEST(Registry, CsvHasHeaderAndOneRowPerEntry) {
  obs::Registry reg;
  reg.set_counter("c", 9);
  reg.set_gauge("g", 0.25);
  reg.observe("h", 100.0);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("name,type,value,count,sum,min,max\n", 0), 0u);
  EXPECT_NE(csv.find("c,counter,9"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,"), std::string::npos);
}

TEST(Histogram, QuantileEmptyAndSingle) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(100.0);
  // One observation: every quantile is clamped into [min, max] = [100].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileOrderedAndBounded) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  // Quantiles are monotone and stay inside the observed range.
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min);
    EXPECT_LE(v, h.max);
    prev = v;
  }
  // Log2 buckets bound the estimate by a factor of 2: the true p50 of
  // 1..1000 is 500, whose bucket is [256, 512).
  EXPECT_GE(h.quantile(0.5), 256.0);
  EXPECT_LE(h.quantile(0.5), 512.0);
  // p99 = 990 lives in [512, 1000] after the max clamp.
  EXPECT_GE(h.quantile(0.99), 512.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
}

TEST(Histogram, QuantileSkewedTail) {
  // 99 fast observations and one huge outlier: p50 stays in the fast
  // bucket, p100 is exactly the outlier.
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(2.5);
  h.observe(1e6);
  EXPECT_GE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e6);
}

TEST(Histogram, QuantileSubUnitBucket) {
  obs::Histogram h;
  h.observe(0.25);
  h.observe(0.5);
  h.observe(0.75);
  // All three live in bucket 0 (< 1); clamping keeps the estimate inside
  // [0.25, 0.75].
  EXPECT_GE(h.quantile(0.5), 0.25);
  EXPECT_LE(h.quantile(0.5), 0.75);
}
