// The metrics registry: counters, gauges, histograms, reports and CSV.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace obs = dipdc::obs;

TEST(Histogram, BucketsByPowerOfTwo) {
  obs::Histogram h;
  h.observe(0.0);    // bucket 0
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 1: [1, 2)
  h.observe(3.0);    // bucket 2: [2, 4)
  h.observe(1024.0); // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.0 + 3.0 + 1024.0) / 5.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  const obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Registry, CountersSetAndAdd) {
  obs::Registry reg;
  reg.set_counter("a", 3);
  reg.add_counter("a", 2);
  reg.add_counter("b", 7);
  EXPECT_EQ(reg.counter("a"), 5u);
  EXPECT_EQ(reg.counter("b"), 7u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(Registry, GaugesAndHistograms) {
  obs::Registry reg;
  reg.set_gauge("t", 1.5, "s");
  reg.set_gauge("t", 2.5, "s");  // re-register updates in place
  EXPECT_DOUBLE_EQ(reg.gauge("t"), 2.5);
  reg.observe("sizes", 8.0);
  reg.observe("sizes", 24.0);
  const obs::Histogram* h = reg.histogram("sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 32.0);
  EXPECT_EQ(reg.histogram("missing"), nullptr);
}

TEST(Registry, TypeMismatchIsInvisible) {
  obs::Registry reg;
  reg.set_counter("x", 1);
  EXPECT_DOUBLE_EQ(reg.gauge("x"), 0.0);
  EXPECT_EQ(reg.histogram("x"), nullptr);
}

TEST(Registry, ReportKeepsInsertionOrder) {
  obs::Registry reg;
  reg.set_counter("zeta", 1);
  reg.set_gauge("alpha", 2.0, "s");
  const std::string report = reg.report();
  EXPECT_LT(report.find("zeta"), report.find("alpha"));
}

TEST(Registry, CsvHasHeaderAndOneRowPerEntry) {
  obs::Registry reg;
  reg.set_counter("c", 9);
  reg.set_gauge("g", 0.25);
  reg.observe("h", 100.0);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("name,type,value,count,sum,min,max\n", 0), 0u);
  EXPECT_NE(csv.find("c,counter,9"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,"), std::string::npos);
}
