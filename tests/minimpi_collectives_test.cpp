// Collective semantics versus sequential oracles, swept over world sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(64, comm.rank() == root ? root + 1000 : -1);
      comm.bcast(std::span<int>(data), root);
      for (const int v : data) EXPECT_EQ(v, root + 1000);
    }
  });
}

TEST_P(CollectiveSweep, BcastValueConvenience) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    const double v = comm.bcast_value(comm.rank() == 0 ? 3.25 : 0.0, 0);
    EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST_P(CollectiveSweep, ScatterDistributesChunks) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const std::size_t chunk = 8;
    std::vector<int> send;
    if (comm.rank() == 0) {
      send.resize(chunk * static_cast<std::size_t>(p));
      std::iota(send.begin(), send.end(), 0);
    }
    std::vector<int> recv(chunk, -1);
    comm.scatter(std::span<const int>(send), std::span<int>(recv), 0);
    for (std::size_t i = 0; i < chunk; ++i) {
      EXPECT_EQ(recv[i], static_cast<int>(
                             static_cast<std::size_t>(comm.rank()) * chunk + i));
    }
  });
}

TEST_P(CollectiveSweep, GatherCollectsInRankOrder) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const std::size_t chunk = 4;
    std::vector<int> send(chunk, comm.rank());
    std::vector<int> recv;
    if (comm.rank() == 0) recv.resize(chunk * static_cast<std::size_t>(p));
    comm.gather(std::span<const int>(send), std::span<int>(recv), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < chunk; ++i) {
          EXPECT_EQ(recv[static_cast<std::size_t>(r) * chunk + i], r);
        }
      }
    }
  });
}

TEST_P(CollectiveSweep, ScatterGatherRoundTrip) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const std::size_t chunk = 16;
    std::vector<double> original;
    if (comm.rank() == 0) {
      auto rng = dipdc::support::Xoshiro256(7);
      original.resize(chunk * static_cast<std::size_t>(p));
      for (auto& v : original) v = rng.uniform();
    }
    std::vector<double> mine(chunk);
    comm.scatter(std::span<const double>(original), std::span<double>(mine),
                 0);
    for (auto& v : mine) v *= 2.0;
    std::vector<double> collected;
    if (comm.rank() == 0) {
      collected.resize(chunk * static_cast<std::size_t>(p));
    }
    comm.gather(std::span<const double>(mine), std::span<double>(collected),
                0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < collected.size(); ++i) {
        EXPECT_DOUBLE_EQ(collected[i], 2.0 * original[i]);
      }
    }
  });
}

TEST_P(CollectiveSweep, ScattervUnevenChunks) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    // Rank i receives i+1 elements.
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < p; ++i) {
      counts.push_back(static_cast<std::size_t>(i + 1));
      displs.push_back(total);
      total += static_cast<std::size_t>(i + 1);
    }
    std::vector<int> send;
    if (comm.rank() == 0) {
      send.resize(total);
      std::iota(send.begin(), send.end(), 0);
    }
    std::vector<int> recv(static_cast<std::size_t>(comm.rank() + 1), -1);
    comm.scatterv(std::span<const int>(send),
                  std::span<const std::size_t>(counts),
                  std::span<const std::size_t>(displs), std::span<int>(recv),
                  0);
    const int base =
        static_cast<int>(displs[static_cast<std::size_t>(comm.rank())]);
    for (std::size_t i = 0; i < recv.size(); ++i) {
      EXPECT_EQ(recv[i], base + static_cast<int>(i));
    }
  });
}

TEST_P(CollectiveSweep, GathervUnevenChunks) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < p; ++i) {
      counts.push_back(static_cast<std::size_t>(i + 1));
      displs.push_back(total);
      total += static_cast<std::size_t>(i + 1);
    }
    std::vector<int> send(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    std::vector<int> recv;
    if (comm.rank() == 0) recv.resize(total, -1);
    comm.gatherv(std::span<const int>(send),
                 std::span<const std::size_t>(counts),
                 std::span<const std::size_t>(displs), std::span<int>(recv),
                 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          EXPECT_EQ(recv[displs[static_cast<std::size_t>(r)] + i], r);
        }
      }
    }
  });
}

TEST_P(CollectiveSweep, AllgatherEveryoneSeesEverything) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const std::size_t chunk = 3;
    std::vector<int> send(chunk, comm.rank() * 10);
    std::vector<int> recv(chunk * static_cast<std::size_t>(p), -1);
    comm.allgather(std::span<const int>(send), std::span<int>(recv));
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < chunk; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(r) * chunk + i], r * 10);
      }
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumMatchesOracle) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    std::vector<long long> send(10);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = comm.rank() + static_cast<long long>(i);
    }
    std::vector<long long> recv(10, -1);
    comm.reduce(std::span<const long long>(send),
                std::span<long long>(recv), mpi::ops::Sum{}, 0);
    if (comm.rank() == 0) {
      const long long rank_sum =
          static_cast<long long>(p) * static_cast<long long>(p - 1) / 2;
      for (std::size_t i = 0; i < recv.size(); ++i) {
        EXPECT_EQ(recv[i], rank_sum + static_cast<long long>(i) * p);
      }
    }
  });
}

TEST_P(CollectiveSweep, ReduceMinMaxAtNonzeroRoot) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const int root = p - 1;
    double v = static_cast<double>(comm.rank());
    double vmin = -1.0, vmax = -1.0;
    comm.reduce(std::span<const double>(&v, 1), std::span<double>(&vmin, 1),
                mpi::ops::Min{}, root);
    comm.reduce(std::span<const double>(&v, 1), std::span<double>(&vmax, 1),
                mpi::ops::Max{}, root);
    if (comm.rank() == root) {
      EXPECT_DOUBLE_EQ(vmin, 0.0);
      EXPECT_DOUBLE_EQ(vmax, static_cast<double>(p - 1));
    }
  });
}

TEST_P(CollectiveSweep, AllreduceSumEverywhere) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const long long got = comm.allreduce_value(
        static_cast<long long>(comm.rank() + 1), mpi::ops::Sum{});
    EXPECT_EQ(got, static_cast<long long>(p) * (p + 1) / 2);
  });
}

TEST_P(CollectiveSweep, ScanComputesPrefixSums) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    const int r = comm.rank();
    long long in = r + 1;
    long long out = 0;
    comm.scan(std::span<const long long>(&in, 1),
              std::span<long long>(&out, 1), mpi::ops::Sum{});
    EXPECT_EQ(out, static_cast<long long>(r + 1) * (r + 2) / 2);
  });
}

TEST_P(CollectiveSweep, AlltoallTransposesChunks) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    std::vector<int> send(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      send[static_cast<std::size_t>(i)] = r * 100 + i;
    }
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 100 + r);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallvRandomCounts) {
  const int p = GetParam();
  mpi::run(p, [p](mpi::Comm& comm) {
    const int r = comm.rank();
    // send_counts[i] = (r + i) % 3 + 1 elements; the value encodes (src,dst).
    std::vector<std::size_t> send_counts, send_displs;
    std::size_t total_send = 0;
    for (int i = 0; i < p; ++i) {
      send_counts.push_back(static_cast<std::size_t>((r + i) % 3 + 1));
      send_displs.push_back(total_send);
      total_send += send_counts.back();
    }
    std::vector<int> send(total_send);
    for (int i = 0; i < p; ++i) {
      for (std::size_t k = 0; k < send_counts[static_cast<std::size_t>(i)];
           ++k) {
        send[send_displs[static_cast<std::size_t>(i)] + k] = r * 1000 + i;
      }
    }
    // recv_counts[j] = what rank j sends to us = (j + r) % 3 + 1.
    std::vector<std::size_t> recv_counts, recv_displs;
    std::size_t total_recv = 0;
    for (int j = 0; j < p; ++j) {
      recv_counts.push_back(static_cast<std::size_t>((j + r) % 3 + 1));
      recv_displs.push_back(total_recv);
      total_recv += recv_counts.back();
    }
    std::vector<int> recv(total_recv, -1);
    comm.alltoallv(std::span<const int>(send),
                   std::span<const std::size_t>(send_counts),
                   std::span<const std::size_t>(send_displs),
                   std::span<int>(recv),
                   std::span<const std::size_t>(recv_counts),
                   std::span<const std::size_t>(recv_displs));
    for (int j = 0; j < p; ++j) {
      for (std::size_t k = 0; k < recv_counts[static_cast<std::size_t>(j)];
           ++k) {
        EXPECT_EQ(recv[recv_displs[static_cast<std::size_t>(j)] + k],
                  j * 1000 + r);
      }
    }
  });
}

TEST_P(CollectiveSweep, BarrierCompletesAndCounts) {
  const int p = GetParam();
  const auto result = mpi::run(p, [](mpi::Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
  for (const auto& s : result.rank_stats) {
    EXPECT_EQ(s.calls_to(mpi::Primitive::kBarrier), 3u);
  }
}

TEST_P(CollectiveSweep, BackToBackCollectivesDoNotInterfere) {
  const int p = GetParam();
  mpi::run(p, [](mpi::Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const int root = round % comm.size();
      const int v = comm.bcast_value(comm.rank() == root ? round : -1, root);
      EXPECT_EQ(v, round);
      const long long total = comm.allreduce_value(
          static_cast<long long>(1), mpi::ops::Sum{});
      EXPECT_EQ(total, comm.size());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16));

TEST(Collectives, ScatterValidatesRootBufferSize) {
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 std::vector<int> send(3);  // not 2 * chunk
                 std::vector<int> recv(2);
                 comm.scatter(std::span<const int>(send),
                              std::span<int>(recv), 0);
               }),
      mpi::MpiError);
}

TEST(Collectives, ReduceValidatesElementSize) {
  EXPECT_THROW(
      mpi::run(2,
               [](mpi::Comm& comm) {
                 std::vector<int> v(2), out(3);
                 comm.reduce(std::span<const int>(v),
                             std::span<int>(out), mpi::ops::Sum{}, 0);
               }),
      mpi::MpiError);
}

TEST(Collectives, CollectiveBytesCountAsTransportNotP2P) {
  const auto result = mpi::run(4, [](mpi::Comm& comm) {
    std::vector<double> data(1024, 1.0);
    comm.bcast(std::span<double>(data), 0);
  });
  const auto total = result.total_stats();
  EXPECT_EQ(total.p2p_messages_sent, 0u);
  EXPECT_GT(total.transport_bytes_sent, 0u);
  // Binomial bcast moves exactly (p-1) copies of the payload in total.
  EXPECT_EQ(total.transport_bytes_sent, 3u * 1024u * sizeof(double));
}
