// Module 2: distance-matrix kernels, locality model, distributed driver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cachesim/cache.hpp"
#include "dataio/dataset.hpp"
#include "minimpi/runtime.hpp"
#include "modules/distmatrix/module2.hpp"

namespace mpi = dipdc::minimpi;
namespace m2 = dipdc::modules::distmatrix;
namespace cs = dipdc::cachesim;
namespace io = dipdc::dataio;

namespace {

std::vector<double> sequential_matrix(const io::Dataset& d) {
  const std::size_t n = d.size();
  std::vector<double> out(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < d.dim(); ++k) {
        const double diff = d.point(i)[k] - d.point(j)[k];
        acc += diff * diff;
      }
      out[i * n + j] = std::sqrt(acc);
    }
  }
  return out;
}

}  // namespace

TEST(Kernels, RowwiseMatchesOracle) {
  const auto d = io::generate_uniform(64, 8, 0.0, 1.0, 3);
  const auto oracle = sequential_matrix(d);
  std::vector<double> out(64 * 64);
  cs::NullTracer t;
  m2::distance_rows_rowwise(d.values(), d.dim(), d.size(), 0, 64,
                            std::span<double>(out), t);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], oracle[i]);
  }
}

TEST(Kernels, TiledMatchesRowwiseForEveryTileSize) {
  const auto d = io::generate_uniform(50, 7, -1.0, 1.0, 4);
  std::vector<double> rowwise(50 * 50), tiled(50 * 50);
  cs::NullTracer t;
  m2::distance_rows_rowwise(d.values(), d.dim(), d.size(), 0, 50,
                            std::span<double>(rowwise), t);
  for (const std::size_t tile : {1u, 3u, 7u, 16u, 50u, 64u}) {
    std::fill(tiled.begin(), tiled.end(), -1.0);
    m2::distance_rows_tiled(d.values(), d.dim(), d.size(), 0, 50, tile,
                            std::span<double>(tiled), t);
    for (std::size_t i = 0; i < tiled.size(); ++i) {
      ASSERT_DOUBLE_EQ(tiled[i], rowwise[i]) << "tile=" << tile;
    }
  }
}

TEST(Kernels, PartialRowBlocksCoverTheMatrix) {
  const auto d = io::generate_uniform(30, 4, 0.0, 1.0, 5);
  const auto oracle = sequential_matrix(d);
  cs::NullTracer t;
  std::vector<double> block(10 * 30);
  m2::distance_rows_rowwise(d.values(), d.dim(), d.size(), 10, 20,
                            std::span<double>(block), t);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 30; ++j) {
      ASSERT_DOUBLE_EQ(block[i * 30 + j], oracle[(i + 10) * 30 + j]);
    }
  }
}

TEST(CacheBehaviour, TilingReducesMeasuredMisses) {
  // The module's central observation, measured with the cache simulator:
  // for a dataset larger than the cache, the tiled kernel misses less.
  const std::size_t n = 512, dim = 16;  // 64 KiB dataset
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 6);
  std::vector<double> out(64 * n);
  const cs::CacheConfig cache{16 * 1024, 64, 8};

  cs::CacheHierarchy h_row({cache});
  cs::CacheTracer t_row(&h_row);
  m2::distance_rows_rowwise(d.values(), dim, n, 0, 64,
                            std::span<double>(out), t_row);

  cs::CacheHierarchy h_tile({cache});
  cs::CacheTracer t_tile(&h_tile);
  m2::distance_rows_tiled(d.values(), dim, n, 0, 64, /*tile=*/64,
                          std::span<double>(out), t_tile);

  EXPECT_LT(h_tile.memory_traffic_bytes() * 2, h_row.memory_traffic_bytes());
  EXPECT_LT(h_tile.level(0).miss_rate(), h_row.level(0).miss_rate());
}

TEST(CacheBehaviour, OversizedTilesDegradeToRowwise) {
  const std::size_t n = 512, dim = 16;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 6);
  std::vector<double> out(32 * n);
  const cs::CacheConfig cache{16 * 1024, 64, 8};

  auto traffic_for_tile = [&](std::size_t tile) {
    cs::CacheHierarchy h({cache});
    cs::CacheTracer t(&h);
    m2::distance_rows_tiled(d.values(), dim, n, 0, 32, tile,
                            std::span<double>(out), t);
    return h.memory_traffic_bytes();
  };
  // A tile that fits (64 pts = 8 KiB) beats one that thrashes (512 pts =
  // 64 KiB > 16 KiB cache): the module's small-vs-large tile trade-off.
  EXPECT_LT(traffic_for_tile(64) * 2, traffic_for_tile(512));
}

TEST(TrafficModel, AnalyticEstimateTracksSimulator) {
  // The analytic DRAM-traffic model used by the machine model must agree
  // with the cache simulator within a factor of two across regimes.
  const std::size_t n = 512, dim = 16, rows = 64;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 7);
  std::vector<double> out(rows * n);
  const cs::CacheConfig cache{16 * 1024, 64, 8};

  cs::CacheHierarchy h_row({cache});
  cs::CacheTracer t_row(&h_row);
  m2::distance_rows_rowwise(d.values(), dim, n, 0, rows,
                            std::span<double>(out), t_row);
  const double est_row =
      m2::estimated_traffic_rowwise(rows, n, dim, cache.size_bytes);
  const auto measured_row = static_cast<double>(h_row.memory_traffic_bytes());
  EXPECT_GT(est_row, measured_row / 2.0);
  EXPECT_LT(est_row, measured_row * 2.0);

  cs::CacheHierarchy h_tile({cache});
  cs::CacheTracer t_tile(&h_tile);
  m2::distance_rows_tiled(d.values(), dim, n, 0, rows, 64,
                          std::span<double>(out), t_tile);
  const double est_tile =
      m2::estimated_traffic_tiled(rows, n, dim, 64, cache.size_bytes);
  const auto measured_tile =
      static_cast<double>(h_tile.memory_traffic_bytes());
  EXPECT_GT(est_tile, measured_tile / 2.0);
  EXPECT_LT(est_tile, measured_tile * 2.0);
}

TEST(TrafficModel, TiledNeverExceedsRowwise) {
  for (const std::size_t tile : {8u, 32u, 128u, 1024u, 4096u}) {
    EXPECT_LE(m2::estimated_traffic_tiled(100, 4096, 16, tile, 256 * 1024),
              m2::estimated_traffic_rowwise(100, 4096, 16, 256 * 1024) *
                  1.001);
  }
}

class DistributedSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSweep, ChecksumIndependentOfRankCountAndTiling) {
  const int p = GetParam();
  const auto d = io::generate_uniform(96, 12, 0.0, 1.0, 8);

  // Sequential oracle checksum.
  const auto oracle = sequential_matrix(d);
  double expect = 0.0;
  for (const double v : oracle) expect += v;

  for (const std::size_t tile : {0u, 16u}) {
    m2::Config cfg;
    cfg.tile = tile;
    mpi::run(p, [&](mpi::Comm& comm) {
      const auto result = m2::run_distributed(
          comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
      EXPECT_NEAR(result.checksum, expect, 1e-6 * expect);
      EXPECT_EQ(result.n, 96u);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistributedSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Distributed, TiledIsFasterInSimulatedTime) {
  const auto d = io::generate_uniform(512, 16, 0.0, 1.0, 9);
  m2::Config rowwise;
  rowwise.cache = {16 * 1024, 64, 8};
  m2::Config tiled = rowwise;
  tiled.tile = 64;

  // A bandwidth-constrained node (many ranks sharing modest DRAM
  // bandwidth) is where locality pays: the row-wise kernel goes
  // memory-bound while the tiled one stays compute-bound.
  mpi::RuntimeOptions opts;
  opts.machine.node_mem_bandwidth = 10e9;

  double t_row = 0.0, t_tile = 0.0;
  mpi::run(
      4,
      [&](mpi::Comm& comm) {
        t_row = m2::run_distributed(
                    comm, comm.rank() == 0 ? d : io::Dataset{}, rowwise)
                    .sim_time;
      },
      opts);
  mpi::run(
      4,
      [&](mpi::Comm& comm) {
        t_tile = m2::run_distributed(
                     comm, comm.rank() == 0 ? d : io::Dataset{}, tiled)
                     .sim_time;
      },
      opts);
  EXPECT_LT(t_tile, t_row);
}

TEST(Distributed, TracedRunReportsMissRate) {
  const auto d = io::generate_uniform(128, 8, 0.0, 1.0, 10);
  m2::Config cfg;
  cfg.trace_cache = true;
  cfg.cache = {8 * 1024, 64, 8};
  mpi::run(2, [&](mpi::Comm& comm) {
    const auto result = m2::run_distributed(
        comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
    EXPECT_GT(result.miss_rate, 0.0);
    EXPECT_GT(result.dram_bytes, 0.0);
  });
}

TEST(Distributed, ComputeBoundScalesWell) {
  // Strong scaling with a tiled (compute-bound) configuration: simulated
  // time at 8 ranks is at least 6x better than at 1 rank.
  const auto d = io::generate_uniform(512, 16, 0.0, 1.0, 11);
  m2::Config cfg;
  cfg.tile = 64;
  auto time_at = [&](int p) {
    double t = 0.0;
    mpi::run(p, [&](mpi::Comm& comm) {
      t = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{},
                              cfg)
              .sim_time;
    });
    return t;
  };
  const double t1 = time_at(1);
  const double t8 = time_at(8);
  EXPECT_GT(t1 / t8, 6.0);
}

// ---- Extension: symmetric triangle + cyclic rows (outcome 15) -------------

TEST(Symmetric, ChecksumMatchesFullComputation) {
  const auto d = io::generate_uniform(96, 12, 0.0, 1.0, 8);
  m2::Config full;
  double expect = 0.0;
  mpi::run(4, [&](mpi::Comm& comm) {
    expect = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{},
                                 full)
                 .checksum;
  });
  for (const bool symmetric : {true}) {
    for (const auto dist :
         {m2::RowDistribution::kBlock, m2::RowDistribution::kCyclic}) {
      for (const int p : {1, 3, 4, 8}) {
        m2::Config cfg;
        cfg.symmetric = symmetric;
        cfg.distribution = dist;
        mpi::run(p, [&](mpi::Comm& comm) {
          const auto r = m2::run_distributed(
              comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
          EXPECT_NEAR(r.checksum, expect, 1e-6 * expect);
        });
      }
    }
  }
}

TEST(Symmetric, CyclicFullChecksumAlsoMatches) {
  const auto d = io::generate_uniform(64, 8, 0.0, 1.0, 12);
  m2::Config full, cyclic_full;
  cyclic_full.distribution = m2::RowDistribution::kCyclic;
  double a = 0.0, b = 0.0;
  mpi::run(4, [&](mpi::Comm& comm) {
    a = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{}, full)
            .checksum;
    b = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{},
                            cyclic_full)
            .checksum;
  });
  EXPECT_NEAR(a, b, 1e-9 * a);
}

TEST(Symmetric, BlockRowsAreImbalancedCyclicRowsAreNot) {
  const auto d = io::generate_uniform(512, 8, 0.0, 1.0, 13);
  m2::Config block, cyclic;
  block.symmetric = cyclic.symmetric = true;
  block.distribution = m2::RowDistribution::kBlock;
  cyclic.distribution = m2::RowDistribution::kCyclic;
  double imb_block = 0.0, imb_cyclic = 0.0;
  mpi::run(8, [&](mpi::Comm& comm) {
    imb_block = m2::run_distributed(
                    comm, comm.rank() == 0 ? d : io::Dataset{}, block)
                    .compute_imbalance;
    imb_cyclic = m2::run_distributed(
                     comm, comm.rank() == 0 ? d : io::Dataset{}, cyclic)
                     .compute_imbalance;
  });
  // Rank 0's block holds the longest triangle rows: it does ~(2 - 1/p)x the
  // average work.  Cyclic interleaving is near-perfect.
  EXPECT_GT(imb_block, 1.5);
  EXPECT_LT(imb_cyclic, 1.05);
}

TEST(Symmetric, CyclicTriangleBeatsFullMatrixInSimulatedTime) {
  const auto d = io::generate_uniform(512, 16, 0.0, 1.0, 14);
  m2::Config full, tri;
  tri.symmetric = true;
  tri.distribution = m2::RowDistribution::kCyclic;
  double t_full = 0.0, t_tri = 0.0;
  mpi::run(8, [&](mpi::Comm& comm) {
    t_full = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{},
                                 full)
                 .sim_time;
    t_tri = m2::run_distributed(comm, comm.rank() == 0 ? d : io::Dataset{},
                                tri)
                .sim_time;
  });
  // Half the arithmetic, balanced: clearly faster (compute dominates here).
  EXPECT_LT(t_tri, t_full * 0.75);
}

TEST(Symmetric, ListKernelAgreesWithBlockKernel) {
  const auto d = io::generate_uniform(40, 6, 0.0, 1.0, 15);
  std::vector<double> expect(40 * 40);
  cs::NullTracer t;
  m2::distance_rows_rowwise(d.values(), 6, 40, 0, 40,
                            std::span<double>(expect), t);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 40; i += 3) rows.push_back(i);
  std::vector<double> got(rows.size() * 40, -1.0);
  m2::distance_rows_list(d.values(), 6, 40,
                         std::span<const std::size_t>(rows),
                         /*symmetric=*/false, /*tile=*/8,
                         std::span<double>(got), t);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t j = 0; j < 40; ++j) {
      ASSERT_DOUBLE_EQ(got[r * 40 + j], expect[rows[r] * 40 + j]);
    }
  }
}
