// Unit tests for the mpifuzz library itself: generator determinism and
// validity invariants, oracle agreement on real executions, event
// filtering with communicator dependency closure, ddmin shrinking on a
// synthetic predicate, and seed-file round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fuzz/check.hpp"
#include "fuzz/execute.hpp"
#include "fuzz/generate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/program.hpp"
#include "fuzz/seedfile.hpp"
#include "fuzz/shrink.hpp"
#include "support/error.hpp"

namespace fz = dipdc::fuzz;

namespace {

fz::GenConfig small_config() {
  fz::GenConfig cfg;
  cfg.max_ranks = 6;
  cfg.target_events = 24;
  cfg.max_bytes = 512;
  cfg.fault_spec.clear();  // fault-free unless a test opts in
  return cfg;
}

}  // namespace

TEST(FuzzGenerate, SameSeedSameProgram) {
  const fz::GenConfig cfg = small_config();
  for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    const fz::Program a = fz::generate(seed, cfg);
    const fz::Program b = fz::generate(seed, cfg);
    EXPECT_EQ(fz::describe(a), fz::describe(b)) << "seed " << seed;
    EXPECT_EQ(a.nranks, b.nranks);
    EXPECT_EQ(a.fault_spec, b.fault_spec);
    EXPECT_EQ(a.options.eager_threshold, b.options.eager_threshold);
  }
}

TEST(FuzzGenerate, DifferentSeedsDiffer) {
  const fz::GenConfig cfg = small_config();
  EXPECT_NE(fz::describe(fz::generate(1, cfg)),
            fz::describe(fz::generate(2, cfg)));
}

TEST(FuzzGenerate, EventIdsAscendPerRank) {
  // Non-deferred ops must follow the global event order on every rank;
  // deferred waits keep their original event id but may appear later.
  // Checking the weaker invariant that holds for all ops: each rank's
  // op list never references an event id >= num_events, and per-rank
  // non-wait ops are ascending.
  const fz::Program p = fz::generate(42, small_config());
  for (const auto& rank_ops : p.ops) {
    std::uint32_t last = 0;
    for (const fz::Op& op : rank_ops) {
      ASSERT_LT(op.event, p.num_events);
      if (op.kind == fz::OpKind::kWait || op.kind == fz::OpKind::kWaitAll) {
        continue;  // deferred completions may appear out of order
      }
      EXPECT_GE(op.event, last);
      last = op.event;
    }
  }
}

TEST(FuzzGenerate, LossyPlansOnlyUseReliableP2p) {
  // When the drawn plan can drop or duplicate, the generator must route
  // every p2p op through the reliable layer and avoid sendrecv/probe.
  fz::GenConfig cfg = small_config();
  cfg.fault_spec = "drop=0.2,retries=64,timeout=0.001";
  const fz::Program p = fz::generate(9, cfg);
  for (const auto& rank_ops : p.ops) {
    for (const fz::Op& op : rank_ops) {
      EXPECT_NE(op.kind, fz::OpKind::kSend);
      EXPECT_NE(op.kind, fz::OpKind::kRecv);
      EXPECT_NE(op.kind, fz::OpKind::kIsend);
      EXPECT_NE(op.kind, fz::OpKind::kIrecv);
      EXPECT_NE(op.kind, fz::OpKind::kSendrecv);
      EXPECT_NE(op.kind, fz::OpKind::kProbeRecv);
      if (op.kind == fz::OpKind::kRecvReliable && !op.wsources.empty()) {
        EXPECT_EQ(op.peer, dipdc::minimpi::kAnySource)
            << "lossy-plan windows must filter by exact tag, not wildcard";
      }
    }
  }
}

TEST(FuzzOracle, AgreesWithExecutionAcrossSeeds) {
  // The core property: real threaded runs match the sequential oracle.
  // Mix of fault-free and auto-drawn fault plans, ~30 programs total.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    {
      const fz::Program p = fz::generate(seed, small_config());
      const fz::CheckResult r = fz::check(p, fz::execute(p));
      EXPECT_TRUE(r.ok) << "fault-free seed " << seed << "\n" << r.summary();
    }
    {
      fz::GenConfig cfg = small_config();
      cfg.fault_spec = "auto";
      const fz::Program p = fz::generate(seed, cfg);
      const fz::CheckResult r = fz::check(p, fz::execute(p));
      EXPECT_TRUE(r.ok) << "auto-fault seed " << seed << " (plan "
                        << p.fault_spec << ")\n"
                        << r.summary();
    }
  }
}

TEST(FuzzOracle, ContainerProgramsAgreeWithExecutionAcrossSeeds) {
  // Elastic-container events (create / set_weight / repartition) woven into
  // otherwise ordinary programs: the oracle's sequential replay of the
  // weight evolution must predict the exact primitive footprint of every
  // repartition (allgather + allreduce, alltoallv x2 iff the cuts moved)
  // and the post-exchange cut/slab digests.
  fz::GenConfig cfg = small_config();
  cfg.container_ops = true;
  std::size_t reparts = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const fz::Program p = fz::generate(seed, cfg);
    for (const auto& rank_ops : p.ops) {
      for (const fz::Op& op : rank_ops) {
        if (op.kind == fz::OpKind::kContainerRepartition) ++reparts;
      }
    }
    const fz::CheckResult r = fz::check(p, fz::execute(p));
    EXPECT_TRUE(r.ok) << "container seed " << seed << "\n" << r.summary();
  }
  EXPECT_GT(reparts, 0u) << "no seed in [1,12] generated a repartition";
}

TEST(FuzzOracle, IcollectiveProgramsAgreeWithExecutionAcrossSeeds) {
  // Nonblocking collectives (issue + deferred wait) woven into ordinary
  // programs: the oracle must predict the issue-time primitive counts, the
  // kWait counts, and the exact bytes every member's completed buffer
  // holds at wait time — under fault-free and auto-drawn fault plans.
  fz::GenConfig cfg = small_config();
  cfg.icollective_ops = true;
  std::size_t issues = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    fz::GenConfig c = cfg;
    if (seed % 3 == 0) c.fault_spec = "auto";
    const fz::Program p = fz::generate(seed, c);
    for (const auto& rank_ops : p.ops) {
      for (const fz::Op& op : rank_ops) {
        if (op.kind == fz::OpKind::kIbcast ||
            op.kind == fz::OpKind::kIreduce ||
            op.kind == fz::OpKind::kIallreduce ||
            op.kind == fz::OpKind::kIallgatherv) {
          ++issues;
        }
      }
    }
    const fz::CheckResult r = fz::check(p, fz::execute(p));
    EXPECT_TRUE(r.ok) << "icollective seed " << seed << "\n" << r.summary();
  }
  EXPECT_GT(issues, 0u) << "no seed in [1,12] generated an icollective";
}

TEST(FuzzOracle, IcollectiveOpsOffRegeneratesLegacyProgramsUnchanged) {
  // Like the container roll, the icollective roll must consume generator
  // randomness only when the feature is on, so pre-icollective corpus
  // seeds keep regenerating bit-identically.
  const fz::GenConfig off = small_config();
  fz::GenConfig defaulted = small_config();
  defaulted.icollective_ops = false;
  for (std::uint64_t seed : {3ull, 19ull, 44ull}) {
    EXPECT_EQ(fz::describe(fz::generate(seed, off)),
              fz::describe(fz::generate(seed, defaulted)));
    const std::string d = fz::describe(fz::generate(seed, off));
    EXPECT_EQ(d.find("ibcast"), std::string::npos);
    EXPECT_EQ(d.find("ireduce"), std::string::npos);
    EXPECT_EQ(d.find("iallreduce"), std::string::npos);
    EXPECT_EQ(d.find("iallgatherv"), std::string::npos);
  }
}

TEST(FuzzGenerate, IallreduceRootWaitIsPinnedToNextFlush) {
  // iallreduce completions on non-roots depend on comm rank 0 executing
  // its wait (the fan-out happens there), so the generator must never
  // schedule another blocking op for comm rank 0 between its issue and
  // its wait — the deferred wait is pinned to the very next event.
  fz::GenConfig cfg = small_config();
  cfg.icollective_ops = true;
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const fz::Program p = fz::generate(seed, cfg);
    for (const auto& rank_ops : p.ops) {
      for (std::size_t i = 0; i < rank_ops.size(); ++i) {
        const fz::Op& op = rank_ops[i];
        if (op.kind != fz::OpKind::kIallreduce) continue;
        const auto& members = p.comm_info(op.comm).members;
        const int world = members.front();  // comm rank 0
        if (&rank_ops != &p.ops[static_cast<std::size_t>(world)]) continue;
        // Only other deferred waits (all on earlier requests, which
        // cannot block on this rank's future ops) may precede the
        // matching wait in comm rank 0's op list.
        bool found = false;
        for (std::size_t j = i + 1; j < rank_ops.size(); ++j) {
          const fz::Op& next = rank_ops[j];
          ASSERT_EQ(next.kind, fz::OpKind::kWait)
              << "blocking op before comm rank 0's iallreduce wait";
          if (next.event == op.event && next.req == op.req) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u) << "no seed in [1,20] generated an iallreduce";
}

TEST(FuzzOracle, ContainerOpsOffRegeneratesLegacyProgramsUnchanged) {
  // The container roll must consume generator randomness only when the
  // feature is on, or every checked-in corpus seed would silently describe
  // a different program.
  const fz::GenConfig off = small_config();
  fz::GenConfig defaulted = small_config();
  defaulted.container_ops = false;
  for (std::uint64_t seed : {3ull, 19ull, 44ull}) {
    EXPECT_EQ(fz::describe(fz::generate(seed, off)),
              fz::describe(fz::generate(seed, defaulted)));
    const std::string d = fz::describe(fz::generate(seed, off));
    EXPECT_EQ(d.find("container_"), std::string::npos);
  }
}

TEST(FuzzFilter, ClosureRestoresContainerCreateOfKeptEvents) {
  // Dropping only a container's create event while keeping a set_weight or
  // repartition on it must pull the create back in, exactly like the split
  // chain closure.
  fz::GenConfig cfg = small_config();
  cfg.container_ops = true;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fz::Program p = fz::generate(seed, cfg);
    std::uint32_t create_event = 0;
    int cid = -1;
    bool has_dependent = false;
    for (const auto& rank_ops : p.ops) {
      for (const fz::Op& op : rank_ops) {
        if (op.kind == fz::OpKind::kContainerCreate && cid < 0) {
          create_event = op.event;
          cid = op.color;
        } else if (cid >= 0 && op.color == cid &&
                   (op.kind == fz::OpKind::kContainerSetWeight ||
                    op.kind == fz::OpKind::kContainerRepartition)) {
          has_dependent = true;
        }
      }
    }
    if (cid < 0 || !has_dependent) continue;
    std::vector<std::uint32_t> all_but_create;
    for (std::uint32_t e = 0; e < p.num_events; ++e) {
      if (e != create_event) all_but_create.push_back(e);
    }
    const fz::Program f = fz::filter_events(p, all_but_create);
    EXPECT_TRUE(std::find(f.kept_events.begin(), f.kept_events.end(),
                          create_event) != f.kept_events.end())
        << "closure did not restore the creating event (seed " << seed << ")";
    // The filtered program must still execute and check clean.
    const fz::CheckResult r = fz::check(f, fz::execute(f));
    EXPECT_TRUE(r.ok) << r.summary();
    return;
  }
  GTEST_FAIL() << "no seed in [1,50] produced a dependent container op";
}

TEST(FuzzSeedfile, IcollectiveFlagSurvivesRoundTrip) {
  fz::GenConfig cfg = small_config();
  cfg.icollective_ops = true;
  const fz::Program p = fz::generate(8, cfg);
  const fz::SeedSpec parsed = fz::parse_seed(
      fz::format_seed(fz::to_seed_spec(p, cfg, /*faults_disabled=*/false)));
  EXPECT_TRUE(parsed.cfg.icollective_ops);
  EXPECT_EQ(fz::describe(p), fz::describe(parsed.materialize()));
}

TEST(FuzzSeedfile, ContainerFlagSurvivesRoundTrip) {
  fz::GenConfig cfg = small_config();
  cfg.container_ops = true;
  const fz::Program p = fz::generate(8, cfg);
  const fz::SeedSpec parsed = fz::parse_seed(
      fz::format_seed(fz::to_seed_spec(p, cfg, /*faults_disabled=*/false)));
  EXPECT_TRUE(parsed.cfg.container_ops);
  EXPECT_EQ(fz::describe(p), fz::describe(parsed.materialize()));
}

TEST(FuzzFilter, ClosureRestoresCreatingSplitOfKeptEvents) {
  // Find a seed whose program splits the world, then drop only the split
  // event while keeping events on the child comm: the dependency closure
  // must pull the creating split back in so the candidate stays valid.
  // Conversely, dropping the split AND every child-comm event must leave a
  // program that never touches a subcomm.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fz::Program p = fz::generate(seed, small_config());
    std::uint32_t split_event = 0;
    bool has_split = false;
    bool has_child_op = false;  // non-split op on a subcomm
    for (const auto& rank_ops : p.ops) {
      for (const fz::Op& op : rank_ops) {
        if (op.kind == fz::OpKind::kSplit) {
          split_event = op.event;
          has_split = true;
        } else if (op.comm != 0) {
          has_child_op = true;
        }
      }
    }
    if (!has_split || !has_child_op) continue;

    std::vector<std::uint32_t> all_but_split;
    for (std::uint32_t e = 0; e < p.num_events; ++e) {
      if (e != split_event) all_but_split.push_back(e);
    }
    const fz::Program f = fz::filter_events(p, all_but_split);
    EXPECT_TRUE(std::find(f.kept_events.begin(), f.kept_events.end(),
                          split_event) != f.kept_events.end())
        << "closure did not restore the creating split";

    // Drop the split and its dependents: keep only world-comm events.
    std::set<std::uint32_t> child_events{split_event};
    for (const auto& rank_ops : p.ops) {
      for (const fz::Op& op : rank_ops) {
        if (op.comm != 0) child_events.insert(op.event);
      }
    }
    std::vector<std::uint32_t> world_only;
    for (std::uint32_t e = 0; e < p.num_events; ++e) {
      if (!child_events.count(e)) world_only.push_back(e);
    }
    const fz::Program w = fz::filter_events(p, world_only);
    for (const auto& rank_ops : w.ops) {
      for (const fz::Op& op : rank_ops) {
        EXPECT_EQ(op.comm, 0);
        EXPECT_NE(op.kind, fz::OpKind::kSplit);
      }
    }
    return;  // one splitting program is enough
  }
  GTEST_FAIL() << "no seed in [1,50] produced subcomm traffic";
}

TEST(FuzzFilter, FilteredProgramStillChecksClean) {
  const fz::Program p = fz::generate(11, small_config());
  // Keep roughly every other event.
  std::vector<std::uint32_t> keep;
  for (std::uint32_t e = 0; e < p.num_events; e += 2) keep.push_back(e);
  const fz::Program f = fz::filter_events(p, keep);
  const fz::CheckResult r = fz::check(f, fz::execute(f));
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(FuzzShrink, SyntheticPredicateReachesMinimalClosure) {
  // Predicate: "fails" iff a chosen target event is present.  ddmin must
  // reduce to exactly that event plus its communicator dependency closure
  // (the creating split, if the event lives on a subcomm).
  const fz::Program full = fz::generate(23, small_config());
  ASSERT_GT(full.num_events, 4u);
  const std::uint32_t target = full.num_events / 2;
  const auto has_target = [target](const fz::Program& c) {
    return std::find(c.kept_events.begin(), c.kept_events.end(), target) !=
               c.kept_events.end() ||
           c.kept_events.empty();  // unshrunk = everything present
  };
  const fz::ShrinkResult res = fz::shrink(full, has_target);
  EXPECT_TRUE(has_target(res.program));
  // 1-minimality: target plus at most its chain of creating splits.
  EXPECT_LE(res.program.kept_events.size(), 3u)
      << "kept more than the dependency closure";
  EXPECT_GT(res.evaluations, 0);
}

TEST(FuzzSeedfile, RoundTripReproducesProgram) {
  fz::GenConfig cfg = small_config();
  cfg.fault_spec = "auto";
  const fz::Program p = fz::generate(77, cfg);

  const fz::SeedSpec spec = fz::to_seed_spec(p, cfg, /*faults_disabled=*/false);
  const fz::SeedSpec parsed = fz::parse_seed(fz::format_seed(spec));
  const fz::Program q = parsed.materialize();

  EXPECT_EQ(fz::describe(p), fz::describe(q));
  EXPECT_EQ(p.fault_seed, q.fault_seed);
  EXPECT_EQ(p.fault_spec, q.fault_spec);
}

TEST(FuzzSeedfile, RoundTripPreservesShrunkSubsetAndDroppedFaults) {
  fz::GenConfig cfg = small_config();
  cfg.fault_spec = "auto";
  const fz::Program p = fz::generate(31, cfg);
  std::vector<std::uint32_t> keep;
  for (std::uint32_t e = 0; e < p.num_events; e += 3) keep.push_back(e);
  const fz::Program f = fz::filter_events(p, keep);

  const fz::SeedSpec spec = fz::to_seed_spec(f, cfg, /*faults_disabled=*/true);
  const fz::SeedSpec parsed = fz::parse_seed(fz::format_seed(spec));
  EXPECT_TRUE(parsed.faults_disabled);
  const fz::Program q = parsed.materialize();

  // materialize() strips the fault plan (faults_disabled); the ops must
  // match the filtered program exactly.
  fz::Program f_nofaults = f;
  f_nofaults.options.faults = dipdc::minimpi::FaultOptions{};
  f_nofaults.fault_spec.clear();
  EXPECT_EQ(fz::describe(f_nofaults), fz::describe(q));
  EXPECT_TRUE(q.fault_spec.empty());
  EXPECT_EQ(q.options.faults.drop_prob, 0.0);
}

TEST(FuzzSeedfile, FaultFreeConfigSurvivesRoundTrip) {
  // format_seed must write the fault_spec line even when it is empty:
  // parse_seed starts from GenConfig's default ("auto"), and omitting the
  // line would silently turn a fault-free repro into a faulty one.
  fz::GenConfig cfg = small_config();
  ASSERT_TRUE(cfg.fault_spec.empty());
  const fz::Program p = fz::generate(3, cfg);
  const fz::SeedSpec parsed = fz::parse_seed(
      fz::format_seed(fz::to_seed_spec(p, cfg, /*faults_disabled=*/false)));
  EXPECT_TRUE(parsed.cfg.fault_spec.empty());
  EXPECT_EQ(fz::describe(p), fz::describe(parsed.materialize()));
}

TEST(FuzzSeedfile, MalformedInputThrows) {
  EXPECT_THROW((void)fz::parse_seed("seed=notanumber\n"),
               dipdc::support::Error);
  EXPECT_THROW((void)fz::parse_seed("no_equals_sign\n"),
               dipdc::support::Error);
  EXPECT_THROW((void)fz::parse_seed("unknown_key=1\n"),
               dipdc::support::Error);
}

TEST(FuzzProgram, ToCppMentionsEveryRankAndOptions) {
  fz::GenConfig cfg = small_config();
  cfg.fault_spec = "auto";
  const fz::Program p = fz::generate(5, cfg);
  const std::string cpp = fz::to_cpp(p);
  EXPECT_NE(cpp.find("int main"), std::string::npos);
  EXPECT_NE(cpp.find("minimpi::run"), std::string::npos);
  EXPECT_NE(cpp.find("eager_threshold"), std::string::npos);
  for (int r = 0; r < p.nranks; ++r) {
    EXPECT_NE(cpp.find("case " + std::to_string(r) + ":"), std::string::npos)
        << "rank " << r << " missing from emitted repro";
  }
}

TEST(FuzzProgram, RacyIrecvWindowDetection) {
  // The digest drops simulated clocks for programs where a posted irecv
  // overlaps other receive-side communication on the same rank: the link
  // accounting for the posted receive happens at sender-timed delivery,
  // so the clock depends on the real schedule.
  auto make = [](std::initializer_list<fz::OpKind> kinds) {
    fz::Program p;
    p.nranks = 1;
    p.ops.resize(1);
    int next_req = 0;
    for (const fz::OpKind k : kinds) {
      fz::Op op;
      op.kind = k;
      if (k == fz::OpKind::kIrecv) op.req = next_req++;
      if (k == fz::OpKind::kWait) op.req = --next_req;
      p.ops[0].push_back(op);
    }
    return p;
  };
  using K = fz::OpKind;
  // Stable: the lone posted receive overlaps only local / sender-side ops.
  EXPECT_FALSE(make({K::kIrecv, K::kWait}).has_racy_irecv_window());
  EXPECT_FALSE(make({K::kIrecv, K::kSend, K::kSimCompute, K::kWait})
                   .has_racy_irecv_window());
  EXPECT_FALSE(make({K::kIrecv, K::kContainerSetWeight, K::kWait})
                   .has_racy_irecv_window());
  EXPECT_FALSE(make({K::kRecv, K::kBarrier}).has_racy_irecv_window());
  // Racy: a blocking receive, collective, or repartition inside the
  // window, or two receives posted at once.
  EXPECT_TRUE(make({K::kIrecv, K::kRecv, K::kWait}).has_racy_irecv_window());
  EXPECT_TRUE(
      make({K::kIrecv, K::kBarrier, K::kWait}).has_racy_irecv_window());
  EXPECT_TRUE(make({K::kIrecv, K::kContainerRepartition, K::kWait})
                  .has_racy_irecv_window());
  EXPECT_TRUE(make({K::kIrecv, K::kIrecv, K::kWait, K::kWait})
                  .has_racy_irecv_window());
}

TEST(FuzzDigest, StableAcrossRunsForFaultFreePrograms) {
  // Fault-free programs (even with any-source windows) must digest
  // identically across independent executions — the corpus test relies
  // on this for bit-identical replay checks.
  for (std::uint64_t seed : {2ull, 13ull, 29ull}) {
    const fz::Program p = fz::generate(seed, small_config());
    const fz::Expectation e = fz::oracle(p);
    const std::string d1 = fz::digest(p, e, fz::execute(p));
    const std::string d2 = fz::digest(p, e, fz::execute(p));
    EXPECT_EQ(d1, d2) << "seed " << seed;
  }
}
