// Shared backend-forcing boilerplate for tests that run the same module
// program across transport backends (threads / shm / tcp) and compare the
// rank-0 results.  Used by module_determinism_test and
// container_faults_test; add new backend-matrix suites here instead of
// copying the helpers again.
#pragma once

#include <utility>
#include <vector>

#include "minimpi/backend.hpp"
#include "minimpi/runtime.hpp"

// The shm backend forks a router process, which ThreadSanitizer does not
// support; its legs are skipped under TSan (threads and tcp still run).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DIPDC_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define DIPDC_TSAN 1
#endif

namespace dipdc::testing {

namespace mpi = dipdc::minimpi;

/// Backends to compare against the default (threads) run.
inline std::vector<mpi::BackendKind> other_backends() {
  std::vector<mpi::BackendKind> kinds;
#ifndef DIPDC_TSAN
  kinds.push_back(mpi::BackendKind::kShm);
#endif
  kinds.push_back(mpi::BackendKind::kTcp);
  return kinds;
}

/// All backends worth exercising on this build, default first.
inline std::vector<mpi::BackendKind> all_backends() {
  std::vector<mpi::BackendKind> kinds = {mpi::BackendKind::kThreads};
  for (const mpi::BackendKind kind : other_backends()) kinds.push_back(kind);
  return kinds;
}

/// Options forcing one backend, everything else default.
inline mpi::RuntimeOptions forced(mpi::BackendKind kind) {
  mpi::RuntimeOptions opts;
  opts.backend.kind = kind;
  return opts;
}

/// Runs `fn(comm)` on `ranks` ranks under `opts` and returns the value it
/// produced on rank 0 — the capture-at-root pattern every backend-matrix
/// test used to hand-roll.
template <typename Fn>
auto run_forced(int ranks, const mpi::RuntimeOptions& opts, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, mpi::Comm&>;
  R at_root{};
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        R r = fn(comm);
        if (comm.rank() == 0) at_root = std::move(r);
      },
      opts);
  return at_root;
}

}  // namespace dipdc::testing
