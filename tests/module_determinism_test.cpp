// The transport fast path and the collective-algorithm dispatch are
// real-world optimizations only: the modules' simulated experiments must be
// bit-identical with every fast-path feature disabled and with every
// collective forced onto the classic (seed) algorithm.  This pins the
// "before/after the transport rewrite" contract for Module 2 (distance
// matrix) and Module 5 (k-means).
// Since the SIMD kernel dispatch (src/kernels) the same contract covers
// the compute ISA: forcing --kernel=scalar and --kernel=simd must produce
// bit-identical module results (the canonical accumulation contract).
// The backend-forcing boilerplate lives in run_forced.hpp, shared with
// container_faults_test.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "dataio/chunk.hpp"
#include "dataio/dataset.hpp"
#include "kernels/dispatch.hpp"
#include "minimpi/backend.hpp"
#include "minimpi/runtime.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/kmeans/module5.hpp"
#include "modules/sort/module3.hpp"
#include "run_forced.hpp"

namespace mpi = dipdc::minimpi;
namespace io = dipdc::dataio;
namespace m2 = dipdc::modules::distmatrix;
namespace m3 = dipdc::modules::distsort;
namespace m5 = dipdc::modules::kmeans;
namespace ker = dipdc::kernels;
using dipdc::testing::forced;
using dipdc::testing::other_backends;
using dipdc::testing::run_forced;

namespace {

/// Scalar always; simd too when this host can run it.
std::vector<ker::Policy> kernel_policies() {
  std::vector<ker::Policy> policies = {ker::Policy::kScalar};
  if (ker::simd_supported()) policies.push_back(ker::Policy::kSimd);
  return policies;
}

/// The seed's behaviour: no pooling, no zero-copy, no inline storage, and
/// every collective on its classic algorithm.
mpi::RuntimeOptions seed_equivalent() {
  mpi::RuntimeOptions opts;
  opts.transport.pooling = false;
  opts.transport.zero_copy = false;
  opts.transport.inline_threshold = 0;
  opts.collectives.scatter = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.gather = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.allreduce = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.allgather = mpi::CollectiveAlgorithm::kClassic;
  return opts;
}

std::vector<mpi::RuntimeOptions> transport_variants() {
  std::vector<mpi::RuntimeOptions> variants;
  variants.push_back({});  // defaults: full fast path, kAuto collectives
  variants.push_back(seed_equivalent());
  mpi::RuntimeOptions pool_only;
  pool_only.transport.zero_copy = false;
  variants.push_back(pool_only);
  mpi::RuntimeOptions share_only;
  share_only.transport.pooling = false;
  variants.push_back(share_only);
  return variants;
}

}  // namespace

TEST(Determinism, Module2ResultsAreBackendInvariant) {
  // The transport backend moves real bytes differently (in-process
  // mailboxes, a forked shm router, kernel loopback sockets) but the
  // simulated experiment must not notice: checksum, sim clock, and
  // byte counters are bit-identical on every backend.
  const auto d = io::generate_uniform(96, 16, 0.0, 1.0, 11);
  m2::Config cfg;
  cfg.tile = 24;

  auto body = [&](mpi::Comm& comm) { return m2::run_distributed(comm, d, cfg); };

  const m2::Result reference = run_forced(4, {}, body);
  for (const auto kind : other_backends()) {
    const m2::Result r = run_forced(4, forced(kind), body);
    const std::string label = mpi::to_string(kind);
    EXPECT_EQ(r.checksum, reference.checksum) << label;
    EXPECT_EQ(r.sim_time, reference.sim_time) << label;
    EXPECT_EQ(r.compute_time, reference.compute_time) << label;
    EXPECT_EQ(r.comm_time, reference.comm_time) << label;
  }
}

TEST(Determinism, Module5ResultsAreBackendInvariant) {
  const auto d = io::generate_clusters(1500, 2, 4, 0.3, 0.0, 50.0, 17);
  m5::Config cfg;
  cfg.k = 4;
  cfg.strategy = m5::Strategy::kWeightedMeans;

  auto body = [&](mpi::Comm& comm) {
    return m5::distributed(comm, comm.rank() == 0 ? d.data : io::Dataset{},
                           cfg);
  };

  const m5::Result reference = run_forced(5, {}, body);
  for (const auto kind : other_backends()) {
    const m5::Result r = run_forced(5, forced(kind), body);
    const std::string label = mpi::to_string(kind);
    EXPECT_EQ(r.centroids, reference.centroids) << label;
    EXPECT_EQ(r.inertia, reference.inertia) << label;
    EXPECT_EQ(r.iterations, reference.iterations) << label;
    EXPECT_EQ(r.sim_time, reference.sim_time) << label;
    EXPECT_EQ(r.comm_bytes, reference.comm_bytes) << label;
  }
}

TEST(Determinism, Module3ElasticResultsAreBackendInvariant) {
  // The elastic container adds weight-driven alltoallv exchanges and ring
  // checkpoints on top of the plain bucket sort; the sorted array and the
  // load-balance metrics must still be bit-identical on every backend.
  m3::Config cfg;
  cfg.policy = m3::SplitterPolicy::kHistogram;

  auto body = [&](mpi::Comm& comm) {
    std::vector<double> local(200);
    for (std::size_t i = 0; i < local.size(); ++i) {
      const auto h = (static_cast<std::uint64_t>(comm.rank()) * 7919 + i + 1) *
                     2654435761ULL;
      local[i] = static_cast<double>(h % 999983) / 999983.0;
    }
    std::vector<double> sorted;
    const m3::Result r = m3::elastic_bucket_sort(comm, std::move(local), cfg,
                                                 {}, &sorted);
    return std::make_pair(r, sorted);
  };

  const auto reference = run_forced(4, {}, body);
  ASSERT_TRUE(reference.first.globally_sorted);
  ASSERT_EQ(reference.second.size(), 200u * 4u);
  for (const auto kind : other_backends()) {
    const auto r = run_forced(4, forced(kind), body);
    const std::string label = mpi::to_string(kind);
    EXPECT_EQ(r.second, reference.second) << label;
    EXPECT_EQ(r.first.local_elements, reference.first.local_elements)
        << label;
    EXPECT_EQ(r.first.imbalance, reference.first.imbalance) << label;
  }
}

TEST(Determinism, Module5ElasticResultsAreBackendInvariant) {
  // No faults here — just the container-backed iteration with churn-weight
  // rebalancing: centroids, iterations, and inertia are bit-identical
  // across backends at a fixed rank count.
  const auto d = io::generate_clusters(900, 2, 4, 0.35, 0.0, 40.0, 31);
  m5::Config cfg;
  cfg.k = 4;

  auto body = [&](mpi::Comm& comm) {
    return m5::elastic(comm, comm.rank() == 0 ? d.data : io::Dataset{}, cfg);
  };

  const m5::Result reference = run_forced(4, {}, body);
  ASSERT_TRUE(reference.converged);
  for (const auto kind : other_backends()) {
    const m5::Result r = run_forced(4, forced(kind), body);
    const std::string label = mpi::to_string(kind);
    EXPECT_EQ(r.centroids, reference.centroids) << label;
    EXPECT_EQ(r.inertia, reference.inertia) << label;
    EXPECT_EQ(r.iterations, reference.iterations) << label;
  }
}

TEST(Determinism, Module2SimTimeAndChecksumAreTransportInvariant) {
  const auto d = io::generate_uniform(96, 16, 0.0, 1.0, 11);
  m2::Config cfg;
  cfg.tile = 24;

  auto body = [&](mpi::Comm& comm) { return m2::run_distributed(comm, d, cfg); };

  std::vector<m2::Result> results;
  for (const auto& opts : transport_variants()) {
    results.push_back(run_forced(4, opts, body));
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    // Bit-identical, hence EXPECT_EQ on doubles, not EXPECT_NEAR.
    EXPECT_EQ(results[i].checksum, results[0].checksum) << "variant " << i;
    EXPECT_EQ(results[i].sim_time, results[0].sim_time) << "variant " << i;
    EXPECT_EQ(results[i].compute_time, results[0].compute_time)
        << "variant " << i;
    EXPECT_EQ(results[i].comm_time, results[0].comm_time) << "variant " << i;
  }
}

TEST(Determinism, Module5SimTimeAndInertiaAreTransportInvariant) {
  const auto d = io::generate_clusters(1500, 2, 4, 0.3, 0.0, 50.0, 17);

  for (const auto strategy : {m5::Strategy::kWeightedMeans,
                              m5::Strategy::kExplicitAssignments}) {
    m5::Config cfg;
    cfg.k = 4;
    cfg.strategy = strategy;

    auto body = [&](mpi::Comm& comm) {
      return m5::distributed(comm, comm.rank() == 0 ? d.data : io::Dataset{},
                             cfg);
    };

    std::vector<m5::Result> results;
    for (const auto& opts : transport_variants()) {
      results.push_back(run_forced(5, opts, body));
    }

    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].centroids, results[0].centroids)
          << "variant " << i;
      EXPECT_EQ(results[i].inertia, results[0].inertia) << "variant " << i;
      EXPECT_EQ(results[i].iterations, results[0].iterations)
          << "variant " << i;
      EXPECT_EQ(results[i].sim_time, results[0].sim_time) << "variant " << i;
      EXPECT_EQ(results[i].comm_bytes, results[0].comm_bytes)
          << "variant " << i;
    }
  }
}

TEST(Determinism, Module2ResultsAreKernelIsaInvariant) {
  // dim % 4 != 0 so the sequential tail runs; one row-wise and one tiled
  // configuration, plus the symmetric/cyclic extension path.
  const auto d = io::generate_uniform(97, 17, 0.0, 1.0, 13);
  struct Shape {
    std::size_t tile;
    bool symmetric;
    m2::RowDistribution dist;
  };
  const Shape shapes[] = {
      {0, false, m2::RowDistribution::kBlock},
      {24, false, m2::RowDistribution::kBlock},
      {16, true, m2::RowDistribution::kCyclic},
  };
  for (const auto& shape : shapes) {
    std::vector<m2::Result> results;
    for (const auto policy : kernel_policies()) {
      m2::Config cfg;
      cfg.tile = shape.tile;
      cfg.symmetric = shape.symmetric;
      cfg.distribution = shape.dist;
      cfg.kernel = policy;
      results.push_back(run_forced(4, {}, [&](mpi::Comm& comm) {
        return m2::run_distributed(comm, d, cfg);
      }));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].checksum, results[0].checksum)
          << "tile " << shape.tile;
      EXPECT_EQ(results[i].sim_time, results[0].sim_time)
          << "tile " << shape.tile;
    }
  }
}

TEST(Determinism, Module2TracedChecksumMatchesDispatchedKernel) {
  // The cachesim-traced loop nests and the untraced dispatched kernel
  // follow the same canonical accumulation, so the checksum is identical
  // (sim_time legitimately differs: tracing measures traffic instead of
  // estimating it).
  const auto d = io::generate_uniform(80, 30, 0.0, 1.0, 19);
  for (const std::size_t tile : {std::size_t{0}, std::size_t{32}}) {
    double checksum[2] = {0.0, 0.0};
    for (const bool traced : {false, true}) {
      m2::Config cfg;
      cfg.tile = tile;
      cfg.trace_cache = traced;
      const m2::Result at_root = run_forced(3, {}, [&](mpi::Comm& comm) {
        return m2::run_distributed(comm, d, cfg);
      });
      checksum[traced ? 1 : 0] = at_root.checksum;
    }
    EXPECT_EQ(checksum[0], checksum[1]) << "tile " << tile;
  }
}

TEST(Determinism, Module5ResultsAreKernelIsaInvariant) {
  const auto d = io::generate_clusters(1200, 3, 5, 0.4, 0.0, 40.0, 23);
  for (const auto strategy : {m5::Strategy::kWeightedMeans,
                              m5::Strategy::kExplicitAssignments}) {
    for (const auto init : {m5::Init::kFirstK, m5::Init::kPlusPlus}) {
      std::vector<m5::Result> results;
      for (const auto policy : kernel_policies()) {
        m5::Config cfg;
        cfg.k = 5;
        cfg.strategy = strategy;
        cfg.init = init;
        cfg.kernel = policy;
        results.push_back(run_forced(4, {}, [&](mpi::Comm& comm) {
          return m5::distributed(
              comm, comm.rank() == 0 ? d.data : io::Dataset{}, cfg);
        }));
      }
      for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].centroids, results[0].centroids);
        EXPECT_EQ(results[i].inertia, results[0].inertia);
        EXPECT_EQ(results[i].iterations, results[0].iterations);
        EXPECT_EQ(results[i].sim_time, results[0].sim_time);
      }
    }
  }
}

// ---- Streamed (out-of-core) pipelines --------------------------------------
//
// The streamed variants move the dataset chunk-by-chunk through
// nonblocking broadcasts with the disk read and the compute overlapped.
// The contract: identical *results* to the in-core runs (checksums,
// sorted buckets), and identical results AND simulated clocks across
// backends and across overlap on/off.  Datasets are >= 4x the chunk
// budget so the rotation actually cycles.

namespace {

/// Temp-file path that cleans up after itself.
struct TempPath {
  explicit TempPath(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

}  // namespace

TEST(Streaming, Module2StreamedChecksumMatchesInCore) {
  const auto d = io::generate_uniform(97, 16, 0.0, 1.0, 11);  // 5 chunks
  TempPath chunks("dipdc_m2_stream_incore.bin");
  io::dataset_to_chunks(d, chunks.path, /*chunk_rows=*/20);

  const m2::Config cfg;  // base configuration: block rows, row-wise
  const m2::Result incore = run_forced(4, {}, [&](mpi::Comm& comm) {
    return m2::run_distributed(comm, d, cfg);
  });
  for (const bool overlap : {true, false}) {
    const m2::Result streamed = run_forced(4, {}, [&](mpi::Comm& comm) {
      return m2::run_streamed(comm, chunks.path, cfg, {overlap});
    });
    EXPECT_EQ(streamed.checksum, incore.checksum) << "overlap=" << overlap;
    EXPECT_EQ(streamed.n, incore.n);
    EXPECT_EQ(streamed.dim, incore.dim);
  }
}

TEST(Streaming, Module2StreamedResultsAreBackendInvariant) {
  const auto d = io::generate_uniform(96, 8, -1.0, 1.0, 29);
  TempPath chunks("dipdc_m2_stream_backend.bin");
  io::dataset_to_chunks(d, chunks.path, /*chunk_rows=*/16);  // 6 chunks
  const m2::Config cfg;

  for (const bool overlap : {true, false}) {
    auto body = [&](mpi::Comm& comm) {
      return m2::run_streamed(comm, chunks.path, cfg, {overlap});
    };
    const m2::Result reference = run_forced(4, {}, body);
    EXPECT_GT(reference.sim_time, 0.0);
    for (const auto kind : other_backends()) {
      const m2::Result r = run_forced(4, forced(kind), body);
      const std::string label =
          std::string(mpi::to_string(kind)) +
          (overlap ? "/overlap" : "/no-overlap");
      EXPECT_EQ(r.checksum, reference.checksum) << label;
      EXPECT_EQ(r.sim_time, reference.sim_time) << label;
      EXPECT_EQ(r.compute_time, reference.compute_time) << label;
      EXPECT_EQ(r.comm_time, reference.comm_time) << label;
    }
  }
}

TEST(Streaming, Module2OverlapDoesNotChangeSimResults) {
  // Overlap hides transfers behind compute, so sim_time may legitimately
  // drop — but the computed matrix (checksum) must not move at all.
  const auto d = io::generate_uniform(80, 8, 0.0, 2.0, 31);
  TempPath chunks("dipdc_m2_stream_overlap.bin");
  io::dataset_to_chunks(d, chunks.path, /*chunk_rows=*/16);
  const m2::Config cfg;
  const m2::Result with = run_forced(3, {}, [&](mpi::Comm& comm) {
    return m2::run_streamed(comm, chunks.path, cfg, {true});
  });
  const m2::Result without = run_forced(3, {}, [&](mpi::Comm& comm) {
    return m2::run_streamed(comm, chunks.path, cfg, {false});
  });
  EXPECT_EQ(with.checksum, without.checksum);
  EXPECT_LE(with.sim_time, without.sim_time);
}

TEST(Streaming, Module3StreamedBucketsMatchInCore) {
  const auto keys = io::generate_uniform(4003, 1, 0.0, 1.0, 7);
  TempPath chunks("dipdc_m3_stream_incore.bin");
  io::dataset_to_chunks(keys, chunks.path, /*chunk_rows=*/512);  // 8 chunks

  m3::Config cfg;  // kEqualWidth over [0, 1)
  struct Capture {
    std::vector<double> gathered;  // rank-0 gatherv of all sorted buckets
    bool sorted = false;
    bool operator==(const Capture&) const = default;
  };
  // In-core reference: the same keys, block-scattered across ranks as
  // their "already distributed" local shards.
  auto gather_sorted = [](mpi::Comm& comm, std::vector<double>& mine,
                          bool ok) {
    Capture out;
    out.sorted = ok;
    const auto np = static_cast<std::size_t>(comm.size());
    const auto count = static_cast<std::size_t>(mine.size());
    std::vector<std::size_t> counts(np);
    comm.allgather(std::span<const std::size_t>(&count, 1),
                   std::span<std::size_t>(counts));
    std::vector<std::size_t> displs(np, 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < np; ++i) {
      displs[i] = total;
      total += counts[i];
    }
    out.gathered.resize(comm.rank() == 0 ? total : 0);
    comm.gatherv(std::span<const double>(mine),
                 std::span<const std::size_t>(counts),
                 std::span<const std::size_t>(displs),
                 std::span<double>(out.gathered), 0);
    return out;
  };
  const Capture incore = run_forced(4, {}, [&](mpi::Comm& comm) {
    const auto parts = io::block_partition(
        keys.size(), static_cast<std::size_t>(comm.size()));
    const auto [b, e] = parts[static_cast<std::size_t>(comm.rank())];
    std::vector<double> local(keys.values().begin() + static_cast<std::ptrdiff_t>(b * 1),
                              keys.values().begin() + static_cast<std::ptrdiff_t>(e * 1));
    const m3::Result res = m3::distributed_bucket_sort(comm, local, cfg);
    return gather_sorted(comm, local, res.globally_sorted);
  });
  ASSERT_TRUE(incore.sorted);

  for (const bool overlap : {true, false}) {
    const Capture streamed = run_forced(4, {}, [&](mpi::Comm& comm) {
      std::vector<double> mine;
      const m3::Result res =
          m3::streamed_bucket_sort(comm, chunks.path, cfg, mine, {overlap});
      return gather_sorted(comm, mine, res.globally_sorted);
    });
    EXPECT_TRUE(streamed.sorted) << "overlap=" << overlap;
    EXPECT_TRUE(streamed == incore) << "overlap=" << overlap;
  }
}

TEST(Streaming, Module3StreamedResultsAreBackendInvariant) {
  const auto keys = io::generate_exponential(3000, 1, 2.0, 13);
  TempPath chunks("dipdc_m3_stream_backend.bin");
  io::dataset_to_chunks(keys, chunks.path, /*chunk_rows=*/400);
  m3::Config cfg;
  cfg.hi = 8.0;  // clamp the exponential tail into the top bucket

  for (const bool overlap : {true, false}) {
    auto body = [&](mpi::Comm& comm) {
      std::vector<double> mine;
      m3::Result res =
          m3::streamed_bucket_sort(comm, chunks.path, cfg, mine, {overlap});
      return res;
    };
    const m3::Result reference = run_forced(4, {}, body);
    EXPECT_TRUE(reference.globally_sorted);
    EXPECT_GT(reference.sim_time, 0.0);
    for (const auto kind : other_backends()) {
      const m3::Result r = run_forced(4, forced(kind), body);
      const std::string label =
          std::string(mpi::to_string(kind)) +
          (overlap ? "/overlap" : "/no-overlap");
      EXPECT_EQ(r.sim_time, reference.sim_time) << label;
      EXPECT_EQ(r.local_elements, reference.local_elements) << label;
      EXPECT_EQ(r.imbalance, reference.imbalance) << label;
      EXPECT_EQ(r.exchange_time, reference.exchange_time) << label;
      EXPECT_EQ(r.sort_time, reference.sort_time) << label;
    }
  }
}
