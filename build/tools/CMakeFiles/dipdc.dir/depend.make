# Empty dependencies file for dipdc.
# This may be replaced when dependencies are built.
