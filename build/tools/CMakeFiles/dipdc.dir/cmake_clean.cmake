file(REMOVE_RECURSE
  "CMakeFiles/dipdc.dir/dipdc.cpp.o"
  "CMakeFiles/dipdc.dir/dipdc.cpp.o.d"
  "dipdc"
  "dipdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dipdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
