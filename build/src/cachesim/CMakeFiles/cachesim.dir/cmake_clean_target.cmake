file(REMOVE_RECURSE
  "libcachesim.a"
)
