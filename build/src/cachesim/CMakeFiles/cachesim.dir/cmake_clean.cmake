file(REMOVE_RECURSE
  "CMakeFiles/cachesim.dir/cache.cpp.o"
  "CMakeFiles/cachesim.dir/cache.cpp.o.d"
  "libcachesim.a"
  "libcachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
