# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("perfmodel")
subdirs("minimpi")
subdirs("cachesim")
subdirs("dataio")
subdirs("index")
subdirs("slurmsim")
subdirs("modules/comm")
subdirs("modules/distmatrix")
subdirs("modules/sort")
subdirs("modules/rangequery")
subdirs("modules/kmeans")
subdirs("modules/stencil")
subdirs("modules/mapreduce")
subdirs("modules/warmup")
subdirs("eval")
