file(REMOVE_RECURSE
  "libindex.a"
)
