# Empty compiler generated dependencies file for index.
# This may be replaced when dependencies are built.
