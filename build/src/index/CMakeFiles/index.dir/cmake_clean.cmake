file(REMOVE_RECURSE
  "CMakeFiles/index.dir/kdtree.cpp.o"
  "CMakeFiles/index.dir/kdtree.cpp.o.d"
  "CMakeFiles/index.dir/quadtree.cpp.o"
  "CMakeFiles/index.dir/quadtree.cpp.o.d"
  "CMakeFiles/index.dir/rtree.cpp.o"
  "CMakeFiles/index.dir/rtree.cpp.o.d"
  "libindex.a"
  "libindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
