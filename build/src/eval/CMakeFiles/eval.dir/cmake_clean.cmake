file(REMOVE_RECURSE
  "CMakeFiles/eval.dir/quizdata.cpp.o"
  "CMakeFiles/eval.dir/quizdata.cpp.o.d"
  "CMakeFiles/eval.dir/quizstats.cpp.o"
  "CMakeFiles/eval.dir/quizstats.cpp.o.d"
  "CMakeFiles/eval.dir/survey.cpp.o"
  "CMakeFiles/eval.dir/survey.cpp.o.d"
  "CMakeFiles/eval.dir/tables.cpp.o"
  "CMakeFiles/eval.dir/tables.cpp.o.d"
  "libeval.a"
  "libeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
