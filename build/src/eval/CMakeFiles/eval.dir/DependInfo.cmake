
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/quizdata.cpp" "src/eval/CMakeFiles/eval.dir/quizdata.cpp.o" "gcc" "src/eval/CMakeFiles/eval.dir/quizdata.cpp.o.d"
  "/root/repo/src/eval/quizstats.cpp" "src/eval/CMakeFiles/eval.dir/quizstats.cpp.o" "gcc" "src/eval/CMakeFiles/eval.dir/quizstats.cpp.o.d"
  "/root/repo/src/eval/survey.cpp" "src/eval/CMakeFiles/eval.dir/survey.cpp.o" "gcc" "src/eval/CMakeFiles/eval.dir/survey.cpp.o.d"
  "/root/repo/src/eval/tables.cpp" "src/eval/CMakeFiles/eval.dir/tables.cpp.o" "gcc" "src/eval/CMakeFiles/eval.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
