
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/collectives.cpp" "src/minimpi/CMakeFiles/minimpi.dir/collectives.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/collectives.cpp.o.d"
  "/root/repo/src/minimpi/comm.cpp" "src/minimpi/CMakeFiles/minimpi.dir/comm.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/comm.cpp.o.d"
  "/root/repo/src/minimpi/runtime.cpp" "src/minimpi/CMakeFiles/minimpi.dir/runtime.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/runtime.cpp.o.d"
  "/root/repo/src/minimpi/stats.cpp" "src/minimpi/CMakeFiles/minimpi.dir/stats.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/stats.cpp.o.d"
  "/root/repo/src/minimpi/trace.cpp" "src/minimpi/CMakeFiles/minimpi.dir/trace.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/trace.cpp.o.d"
  "/root/repo/src/minimpi/types.cpp" "src/minimpi/CMakeFiles/minimpi.dir/types.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
