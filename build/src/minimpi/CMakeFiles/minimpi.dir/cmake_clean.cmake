file(REMOVE_RECURSE
  "CMakeFiles/minimpi.dir/collectives.cpp.o"
  "CMakeFiles/minimpi.dir/collectives.cpp.o.d"
  "CMakeFiles/minimpi.dir/comm.cpp.o"
  "CMakeFiles/minimpi.dir/comm.cpp.o.d"
  "CMakeFiles/minimpi.dir/runtime.cpp.o"
  "CMakeFiles/minimpi.dir/runtime.cpp.o.d"
  "CMakeFiles/minimpi.dir/stats.cpp.o"
  "CMakeFiles/minimpi.dir/stats.cpp.o.d"
  "CMakeFiles/minimpi.dir/trace.cpp.o"
  "CMakeFiles/minimpi.dir/trace.cpp.o.d"
  "CMakeFiles/minimpi.dir/types.cpp.o"
  "CMakeFiles/minimpi.dir/types.cpp.o.d"
  "libminimpi.a"
  "libminimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
