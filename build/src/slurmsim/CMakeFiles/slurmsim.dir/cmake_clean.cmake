file(REMOVE_RECURSE
  "CMakeFiles/slurmsim.dir/slurmsim.cpp.o"
  "CMakeFiles/slurmsim.dir/slurmsim.cpp.o.d"
  "libslurmsim.a"
  "libslurmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
