# Empty compiler generated dependencies file for slurmsim.
# This may be replaced when dependencies are built.
