file(REMOVE_RECURSE
  "libslurmsim.a"
)
