file(REMOVE_RECURSE
  "CMakeFiles/support.dir/args.cpp.o"
  "CMakeFiles/support.dir/args.cpp.o.d"
  "CMakeFiles/support.dir/ascii_chart.cpp.o"
  "CMakeFiles/support.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/support.dir/error.cpp.o"
  "CMakeFiles/support.dir/error.cpp.o.d"
  "CMakeFiles/support.dir/format.cpp.o"
  "CMakeFiles/support.dir/format.cpp.o.d"
  "CMakeFiles/support.dir/table.cpp.o"
  "CMakeFiles/support.dir/table.cpp.o.d"
  "libsupport.a"
  "libsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
