# Empty dependencies file for support.
# This may be replaced when dependencies are built.
