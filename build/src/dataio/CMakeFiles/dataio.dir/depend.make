# Empty dependencies file for dataio.
# This may be replaced when dependencies are built.
