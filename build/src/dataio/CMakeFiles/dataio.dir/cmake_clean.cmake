file(REMOVE_RECURSE
  "CMakeFiles/dataio.dir/dataset.cpp.o"
  "CMakeFiles/dataio.dir/dataset.cpp.o.d"
  "libdataio.a"
  "libdataio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
