file(REMOVE_RECURSE
  "libdataio.a"
)
