file(REMOVE_RECURSE
  "libmodule7_mapreduce.a"
)
