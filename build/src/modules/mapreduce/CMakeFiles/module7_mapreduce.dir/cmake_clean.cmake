file(REMOVE_RECURSE
  "CMakeFiles/module7_mapreduce.dir/module7.cpp.o"
  "CMakeFiles/module7_mapreduce.dir/module7.cpp.o.d"
  "libmodule7_mapreduce.a"
  "libmodule7_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module7_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
