# Empty dependencies file for module7_mapreduce.
# This may be replaced when dependencies are built.
