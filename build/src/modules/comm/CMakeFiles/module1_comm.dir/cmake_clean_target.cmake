file(REMOVE_RECURSE
  "libmodule1_comm.a"
)
