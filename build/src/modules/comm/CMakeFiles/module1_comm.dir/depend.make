# Empty dependencies file for module1_comm.
# This may be replaced when dependencies are built.
