file(REMOVE_RECURSE
  "CMakeFiles/module1_comm.dir/module1.cpp.o"
  "CMakeFiles/module1_comm.dir/module1.cpp.o.d"
  "libmodule1_comm.a"
  "libmodule1_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module1_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
