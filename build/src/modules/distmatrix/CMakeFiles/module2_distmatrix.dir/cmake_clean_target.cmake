file(REMOVE_RECURSE
  "libmodule2_distmatrix.a"
)
