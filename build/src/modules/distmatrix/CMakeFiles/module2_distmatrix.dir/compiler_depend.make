# Empty compiler generated dependencies file for module2_distmatrix.
# This may be replaced when dependencies are built.
