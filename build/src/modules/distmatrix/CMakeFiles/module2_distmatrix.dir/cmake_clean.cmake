file(REMOVE_RECURSE
  "CMakeFiles/module2_distmatrix.dir/module2.cpp.o"
  "CMakeFiles/module2_distmatrix.dir/module2.cpp.o.d"
  "libmodule2_distmatrix.a"
  "libmodule2_distmatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module2_distmatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
