# CMake generated Testfile for 
# Source directory: /root/repo/src/modules/distmatrix
# Build directory: /root/repo/build/src/modules/distmatrix
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
