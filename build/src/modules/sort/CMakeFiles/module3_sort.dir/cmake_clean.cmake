file(REMOVE_RECURSE
  "CMakeFiles/module3_sort.dir/module3.cpp.o"
  "CMakeFiles/module3_sort.dir/module3.cpp.o.d"
  "libmodule3_sort.a"
  "libmodule3_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module3_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
