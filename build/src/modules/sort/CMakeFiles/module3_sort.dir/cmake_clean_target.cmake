file(REMOVE_RECURSE
  "libmodule3_sort.a"
)
