# Empty dependencies file for module3_sort.
# This may be replaced when dependencies are built.
