# Empty compiler generated dependencies file for module4_rangequery.
# This may be replaced when dependencies are built.
