file(REMOVE_RECURSE
  "libmodule4_rangequery.a"
)
