file(REMOVE_RECURSE
  "CMakeFiles/module4_rangequery.dir/module4.cpp.o"
  "CMakeFiles/module4_rangequery.dir/module4.cpp.o.d"
  "libmodule4_rangequery.a"
  "libmodule4_rangequery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module4_rangequery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
