# Empty compiler generated dependencies file for module5_kmeans.
# This may be replaced when dependencies are built.
