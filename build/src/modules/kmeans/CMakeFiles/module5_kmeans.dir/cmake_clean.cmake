file(REMOVE_RECURSE
  "CMakeFiles/module5_kmeans.dir/module5.cpp.o"
  "CMakeFiles/module5_kmeans.dir/module5.cpp.o.d"
  "libmodule5_kmeans.a"
  "libmodule5_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module5_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
