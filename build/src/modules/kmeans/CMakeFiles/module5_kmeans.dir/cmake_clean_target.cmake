file(REMOVE_RECURSE
  "libmodule5_kmeans.a"
)
