file(REMOVE_RECURSE
  "CMakeFiles/warmup.dir/warmup.cpp.o"
  "CMakeFiles/warmup.dir/warmup.cpp.o.d"
  "libwarmup.a"
  "libwarmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
