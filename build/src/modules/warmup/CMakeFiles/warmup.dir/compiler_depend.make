# Empty compiler generated dependencies file for warmup.
# This may be replaced when dependencies are built.
