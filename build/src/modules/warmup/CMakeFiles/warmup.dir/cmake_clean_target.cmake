file(REMOVE_RECURSE
  "libwarmup.a"
)
