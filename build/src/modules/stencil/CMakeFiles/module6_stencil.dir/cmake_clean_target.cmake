file(REMOVE_RECURSE
  "libmodule6_stencil.a"
)
