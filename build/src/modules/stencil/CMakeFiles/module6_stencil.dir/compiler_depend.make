# Empty compiler generated dependencies file for module6_stencil.
# This may be replaced when dependencies are built.
