file(REMOVE_RECURSE
  "CMakeFiles/module6_stencil.dir/module6.cpp.o"
  "CMakeFiles/module6_stencil.dir/module6.cpp.o.d"
  "libmodule6_stencil.a"
  "libmodule6_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module6_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
