file(REMOVE_RECURSE
  "CMakeFiles/warmup_exercises.dir/warmup_exercises.cpp.o"
  "CMakeFiles/warmup_exercises.dir/warmup_exercises.cpp.o.d"
  "warmup_exercises"
  "warmup_exercises.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_exercises.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
