# Empty dependencies file for warmup_exercises.
# This may be replaced when dependencies are built.
