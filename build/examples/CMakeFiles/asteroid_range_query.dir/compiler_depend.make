# Empty compiler generated dependencies file for asteroid_range_query.
# This may be replaced when dependencies are built.
