file(REMOVE_RECURSE
  "CMakeFiles/asteroid_range_query.dir/asteroid_range_query.cpp.o"
  "CMakeFiles/asteroid_range_query.dir/asteroid_range_query.cpp.o.d"
  "asteroid_range_query"
  "asteroid_range_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asteroid_range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
