file(REMOVE_RECURSE
  "CMakeFiles/sbatch_playground.dir/sbatch_playground.cpp.o"
  "CMakeFiles/sbatch_playground.dir/sbatch_playground.cpp.o.d"
  "sbatch_playground"
  "sbatch_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbatch_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
