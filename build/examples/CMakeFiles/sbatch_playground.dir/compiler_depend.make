# Empty compiler generated dependencies file for sbatch_playground.
# This may be replaced when dependencies are built.
