file(REMOVE_RECURSE
  "CMakeFiles/communication_timeline.dir/communication_timeline.cpp.o"
  "CMakeFiles/communication_timeline.dir/communication_timeline.cpp.o.d"
  "communication_timeline"
  "communication_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communication_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
