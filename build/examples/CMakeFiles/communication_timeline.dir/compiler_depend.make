# Empty compiler generated dependencies file for communication_timeline.
# This may be replaced when dependencies are built.
