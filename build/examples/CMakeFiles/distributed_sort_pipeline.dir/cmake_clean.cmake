file(REMOVE_RECURSE
  "CMakeFiles/distributed_sort_pipeline.dir/distributed_sort_pipeline.cpp.o"
  "CMakeFiles/distributed_sort_pipeline.dir/distributed_sort_pipeline.cpp.o.d"
  "distributed_sort_pipeline"
  "distributed_sort_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sort_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
