# Empty compiler generated dependencies file for distributed_sort_pipeline.
# This may be replaced when dependencies are built.
