# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_p2p_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_simtime_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/dataio_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/slurmsim_test[1]_include.cmake")
include("/root/repo/build/tests/module1_comm_test[1]_include.cmake")
include("/root/repo/build/tests/module2_distmatrix_test[1]_include.cmake")
include("/root/repo/build/tests/module3_sort_test[1]_include.cmake")
include("/root/repo/build/tests/module4_rangequery_test[1]_include.cmake")
include("/root/repo/build/tests/module5_kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_subcomm_test[1]_include.cmake")
include("/root/repo/build/tests/module6_stencil_test[1]_include.cmake")
include("/root/repo/build/tests/module7_mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/warmup_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_trace_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_stress_test[1]_include.cmake")
