file(REMOVE_RECURSE
  "CMakeFiles/dataio_test.dir/dataio_test.cpp.o"
  "CMakeFiles/dataio_test.dir/dataio_test.cpp.o.d"
  "dataio_test"
  "dataio_test.pdb"
  "dataio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
