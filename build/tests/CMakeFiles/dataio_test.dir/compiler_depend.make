# Empty compiler generated dependencies file for dataio_test.
# This may be replaced when dependencies are built.
