file(REMOVE_RECURSE
  "CMakeFiles/module7_mapreduce_test.dir/module7_mapreduce_test.cpp.o"
  "CMakeFiles/module7_mapreduce_test.dir/module7_mapreduce_test.cpp.o.d"
  "module7_mapreduce_test"
  "module7_mapreduce_test.pdb"
  "module7_mapreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module7_mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
