# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for module7_mapreduce_test.
