# Empty dependencies file for module7_mapreduce_test.
# This may be replaced when dependencies are built.
