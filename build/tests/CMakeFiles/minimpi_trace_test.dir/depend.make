# Empty dependencies file for minimpi_trace_test.
# This may be replaced when dependencies are built.
