file(REMOVE_RECURSE
  "CMakeFiles/minimpi_trace_test.dir/minimpi_trace_test.cpp.o"
  "CMakeFiles/minimpi_trace_test.dir/minimpi_trace_test.cpp.o.d"
  "minimpi_trace_test"
  "minimpi_trace_test.pdb"
  "minimpi_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
