file(REMOVE_RECURSE
  "CMakeFiles/module6_stencil_test.dir/module6_stencil_test.cpp.o"
  "CMakeFiles/module6_stencil_test.dir/module6_stencil_test.cpp.o.d"
  "module6_stencil_test"
  "module6_stencil_test.pdb"
  "module6_stencil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module6_stencil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
