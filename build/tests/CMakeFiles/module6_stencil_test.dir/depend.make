# Empty dependencies file for module6_stencil_test.
# This may be replaced when dependencies are built.
