# Empty dependencies file for slurmsim_test.
# This may be replaced when dependencies are built.
