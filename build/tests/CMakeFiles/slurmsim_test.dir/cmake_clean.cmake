file(REMOVE_RECURSE
  "CMakeFiles/slurmsim_test.dir/slurmsim_test.cpp.o"
  "CMakeFiles/slurmsim_test.dir/slurmsim_test.cpp.o.d"
  "slurmsim_test"
  "slurmsim_test.pdb"
  "slurmsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
