# Empty dependencies file for module2_distmatrix_test.
# This may be replaced when dependencies are built.
