file(REMOVE_RECURSE
  "CMakeFiles/module2_distmatrix_test.dir/module2_distmatrix_test.cpp.o"
  "CMakeFiles/module2_distmatrix_test.dir/module2_distmatrix_test.cpp.o.d"
  "module2_distmatrix_test"
  "module2_distmatrix_test.pdb"
  "module2_distmatrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module2_distmatrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
