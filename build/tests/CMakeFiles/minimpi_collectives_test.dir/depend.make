# Empty dependencies file for minimpi_collectives_test.
# This may be replaced when dependencies are built.
