file(REMOVE_RECURSE
  "CMakeFiles/minimpi_collectives_test.dir/minimpi_collectives_test.cpp.o"
  "CMakeFiles/minimpi_collectives_test.dir/minimpi_collectives_test.cpp.o.d"
  "minimpi_collectives_test"
  "minimpi_collectives_test.pdb"
  "minimpi_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
