# Empty compiler generated dependencies file for module1_comm_test.
# This may be replaced when dependencies are built.
