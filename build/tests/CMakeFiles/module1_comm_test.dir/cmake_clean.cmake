file(REMOVE_RECURSE
  "CMakeFiles/module1_comm_test.dir/module1_comm_test.cpp.o"
  "CMakeFiles/module1_comm_test.dir/module1_comm_test.cpp.o.d"
  "module1_comm_test"
  "module1_comm_test.pdb"
  "module1_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module1_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
