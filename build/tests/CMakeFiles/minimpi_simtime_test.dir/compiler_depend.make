# Empty compiler generated dependencies file for minimpi_simtime_test.
# This may be replaced when dependencies are built.
