file(REMOVE_RECURSE
  "CMakeFiles/minimpi_simtime_test.dir/minimpi_simtime_test.cpp.o"
  "CMakeFiles/minimpi_simtime_test.dir/minimpi_simtime_test.cpp.o.d"
  "minimpi_simtime_test"
  "minimpi_simtime_test.pdb"
  "minimpi_simtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_simtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
