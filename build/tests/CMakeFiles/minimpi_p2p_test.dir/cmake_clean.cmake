file(REMOVE_RECURSE
  "CMakeFiles/minimpi_p2p_test.dir/minimpi_p2p_test.cpp.o"
  "CMakeFiles/minimpi_p2p_test.dir/minimpi_p2p_test.cpp.o.d"
  "minimpi_p2p_test"
  "minimpi_p2p_test.pdb"
  "minimpi_p2p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
