# Empty compiler generated dependencies file for module5_kmeans_test.
# This may be replaced when dependencies are built.
