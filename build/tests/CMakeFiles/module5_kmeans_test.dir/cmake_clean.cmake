file(REMOVE_RECURSE
  "CMakeFiles/module5_kmeans_test.dir/module5_kmeans_test.cpp.o"
  "CMakeFiles/module5_kmeans_test.dir/module5_kmeans_test.cpp.o.d"
  "module5_kmeans_test"
  "module5_kmeans_test.pdb"
  "module5_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module5_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
