file(REMOVE_RECURSE
  "CMakeFiles/minimpi_subcomm_test.dir/minimpi_subcomm_test.cpp.o"
  "CMakeFiles/minimpi_subcomm_test.dir/minimpi_subcomm_test.cpp.o.d"
  "minimpi_subcomm_test"
  "minimpi_subcomm_test.pdb"
  "minimpi_subcomm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_subcomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
