# Empty dependencies file for minimpi_subcomm_test.
# This may be replaced when dependencies are built.
