file(REMOVE_RECURSE
  "CMakeFiles/minimpi_deadlock_test.dir/minimpi_deadlock_test.cpp.o"
  "CMakeFiles/minimpi_deadlock_test.dir/minimpi_deadlock_test.cpp.o.d"
  "minimpi_deadlock_test"
  "minimpi_deadlock_test.pdb"
  "minimpi_deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
