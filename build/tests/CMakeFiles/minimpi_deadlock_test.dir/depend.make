# Empty dependencies file for minimpi_deadlock_test.
# This may be replaced when dependencies are built.
