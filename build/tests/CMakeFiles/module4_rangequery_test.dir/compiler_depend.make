# Empty compiler generated dependencies file for module4_rangequery_test.
# This may be replaced when dependencies are built.
