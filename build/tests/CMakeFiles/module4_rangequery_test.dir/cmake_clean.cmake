file(REMOVE_RECURSE
  "CMakeFiles/module4_rangequery_test.dir/module4_rangequery_test.cpp.o"
  "CMakeFiles/module4_rangequery_test.dir/module4_rangequery_test.cpp.o.d"
  "module4_rangequery_test"
  "module4_rangequery_test.pdb"
  "module4_rangequery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module4_rangequery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
