# Empty compiler generated dependencies file for module3_sort_test.
# This may be replaced when dependencies are built.
