file(REMOVE_RECURSE
  "CMakeFiles/module3_sort_test.dir/module3_sort_test.cpp.o"
  "CMakeFiles/module3_sort_test.dir/module3_sort_test.cpp.o.d"
  "module3_sort_test"
  "module3_sort_test.pdb"
  "module3_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module3_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
