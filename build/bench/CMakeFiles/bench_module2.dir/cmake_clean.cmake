file(REMOVE_RECURSE
  "CMakeFiles/bench_module2.dir/bench_module2.cpp.o"
  "CMakeFiles/bench_module2.dir/bench_module2.cpp.o.d"
  "bench_module2"
  "bench_module2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
