# Empty compiler generated dependencies file for bench_module2.
# This may be replaced when dependencies are built.
