# Empty dependencies file for bench_module5.
# This may be replaced when dependencies are built.
