file(REMOVE_RECURSE
  "CMakeFiles/bench_module5.dir/bench_module5.cpp.o"
  "CMakeFiles/bench_module5.dir/bench_module5.cpp.o.d"
  "bench_module5"
  "bench_module5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
