file(REMOVE_RECURSE
  "CMakeFiles/bench_slurm.dir/bench_slurm.cpp.o"
  "CMakeFiles/bench_slurm.dir/bench_slurm.cpp.o.d"
  "bench_slurm"
  "bench_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
