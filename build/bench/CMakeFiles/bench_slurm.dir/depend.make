# Empty dependencies file for bench_slurm.
# This may be replaced when dependencies are built.
