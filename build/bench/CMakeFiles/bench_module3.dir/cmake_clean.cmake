file(REMOVE_RECURSE
  "CMakeFiles/bench_module3.dir/bench_module3.cpp.o"
  "CMakeFiles/bench_module3.dir/bench_module3.cpp.o.d"
  "bench_module3"
  "bench_module3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
