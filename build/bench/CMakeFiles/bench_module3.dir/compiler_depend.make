# Empty compiler generated dependencies file for bench_module3.
# This may be replaced when dependencies are built.
