# Empty dependencies file for bench_module4.
# This may be replaced when dependencies are built.
