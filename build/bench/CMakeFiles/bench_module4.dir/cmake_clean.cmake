file(REMOVE_RECURSE
  "CMakeFiles/bench_module4.dir/bench_module4.cpp.o"
  "CMakeFiles/bench_module4.dir/bench_module4.cpp.o.d"
  "bench_module4"
  "bench_module4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
