file(REMOVE_RECURSE
  "CMakeFiles/bench_module7.dir/bench_module7.cpp.o"
  "CMakeFiles/bench_module7.dir/bench_module7.cpp.o.d"
  "bench_module7"
  "bench_module7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
