# Empty compiler generated dependencies file for bench_module7.
# This may be replaced when dependencies are built.
