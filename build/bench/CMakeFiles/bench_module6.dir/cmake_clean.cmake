file(REMOVE_RECURSE
  "CMakeFiles/bench_module6.dir/bench_module6.cpp.o"
  "CMakeFiles/bench_module6.dir/bench_module6.cpp.o.d"
  "bench_module6"
  "bench_module6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
