# Empty dependencies file for bench_module6.
# This may be replaced when dependencies are built.
