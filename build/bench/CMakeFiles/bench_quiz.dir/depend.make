# Empty dependencies file for bench_quiz.
# This may be replaced when dependencies are built.
