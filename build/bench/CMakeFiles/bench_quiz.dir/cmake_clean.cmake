file(REMOVE_RECURSE
  "CMakeFiles/bench_quiz.dir/bench_quiz.cpp.o"
  "CMakeFiles/bench_quiz.dir/bench_quiz.cpp.o.d"
  "bench_quiz"
  "bench_quiz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quiz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
