# Empty dependencies file for bench_module1.
# This may be replaced when dependencies are built.
