file(REMOVE_RECURSE
  "CMakeFiles/bench_module1.dir/bench_module1.cpp.o"
  "CMakeFiles/bench_module1.dir/bench_module1.cpp.o.d"
  "bench_module1"
  "bench_module1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_module1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
