// Statistical analysis of the pre/post quiz scores — the computations
// behind the paper's Table IV.
//
// On the relative-change formula: the paper writes the mean relative
// increase/decrease as (1/i) * sum |a_j - b_j| / b_j "where a_j and b_j
// refer to pre and post quiz scores".  Read literally that normalizes by
// the *post* score, but that direction is provably inconsistent with the
// published per-quiz means (the quiz-3 mean gap bounds the achievable
// ratio sum below 47.86%), so the intended statistic must be the
// conventional one — change relative to the *pre* (baseline) score.  We
// implement both; `relative_to_pre` reproduces the published 47.86%/27.30%
// and is what Table IV reports.
#pragma once

#include <vector>

#include "eval/quizdata.hpp"

namespace dipdc::eval {

enum class Direction { kEqual, kIncrease, kDecrease };

Direction classify(const QuizPair& pair);

struct PairCounts {
  int total = 0;
  int equal = 0;
  int increased = 0;
  int decreased = 0;
};

PairCounts count_pairs(const std::vector<ScoredPair>& pairs);

struct RelativeChange {
  /// Mean of |pre-post|/pre over the selected pairs (the paper's numbers).
  double relative_to_pre = 0.0;
  /// Mean of |pre-post|/post (the formula's literal reading; reported for
  /// the ambiguity discussion).
  double relative_to_post = 0.0;
  int pairs = 0;
};

/// Mean relative change over pairs moving in `direction`.
RelativeChange mean_relative_change(const std::vector<ScoredPair>& pairs,
                                    Direction direction);

struct QuizMeans {
  double pre = 0.0;
  double post = 0.0;
  int students = 0;
};

/// Per-quiz pre/post means (quiz is 0-based).
QuizMeans quiz_means(const std::vector<ScoredPair>& pairs, int quiz);

/// Students (0-based) with at least one decreasing pair.
std::vector<int> students_with_decrease(const std::vector<ScoredPair>& pairs);

}  // namespace dipdc::eval
