#include "eval/quizdata.hpp"

#include "support/error.hpp"

namespace dipdc::eval {

namespace {

constexpr double kAbsent = -1.0;

// Scores are stored in quiz points and converted to percentages on access,
// so point-granular quizzes keep full precision (5/6 = 83.333...%).
// Quiz maxima: Q1 out of 6, Q2 out of 5, Q3 recorded directly as percent
// (one decimal), Q4 out of 4, Q5 out of 12.
constexpr double kQuizMax[kQuizzes] = {6.0, 5.0, 100.0, 4.0, 12.0};

// Participation: students 1-7 completed everything; student 8 missed
// quizzes 1 and 4; student 9 missed 2, 4 and 5; student 10 missed 3, 4, 5.
constexpr double kPre[kStudents][kQuizzes] = {
    {6, 5, 74.3, 4, 10},            // student 1
    {6, 5, 31.8, 1, 9},             // student 2
    {6, 5, 45.0, 1, 12},            // student 3
    {6, 5, 79.9, 3, 9},             // student 4
    {6, 3, 80.0, 2, 9},             // student 5
    {6, 4, 81.7, 3, 11},            // student 6
    {6, 5, 70.3, 3, 9},             // student 7
    {kAbsent, 2, 81.8, kAbsent, 8},  // student 8
    {3, kAbsent, 80.7, kAbsent, kAbsent},   // student 9
    {3, 3, kAbsent, kAbsent, kAbsent},      // student 10
};

constexpr double kPost[kStudents][kQuizzes] = {
    {5, 5, 59.2, 4, 10},            // student 1
    {6, 5, 90.0, 2, 10},            // student 2
    {6, 5, 75.0, 2, 8},             // student 3
    {6, 4, 86.0, 3, 9},             // student 4
    {6, 4, 86.0, 3, 10},            // student 5
    {6, 5, 88.0, 3, 12},            // student 6
    {6, 5, 42.1, 2, 9},             // student 7
    {kAbsent, 3, 88.0, kAbsent, 8},  // student 8
    {6, kAbsent, 85.7, kAbsent, kAbsent},   // student 9
    {6, 4, kAbsent, kAbsent, kAbsent},      // student 10
};

}  // namespace

std::optional<QuizPair> quiz_score(int student, int quiz) {
  DIPDC_REQUIRE(student >= 0 && student < kStudents, "student out of range");
  DIPDC_REQUIRE(quiz >= 0 && quiz < kQuizzes, "quiz out of range");
  const double pre = kPre[student][quiz];
  const double post = kPost[student][quiz];
  if (pre < 0.0 || post < 0.0) return std::nullopt;
  const double scale = 100.0 / kQuizMax[quiz];
  return QuizPair{pre * scale, post * scale};
}

std::vector<ScoredPair> all_pairs() {
  std::vector<ScoredPair> out;
  out.reserve(42);
  for (int s = 0; s < kStudents; ++s) {
    for (int q = 0; q < kQuizzes; ++q) {
      if (const auto p = quiz_score(s, q)) {
        out.push_back(ScoredPair{s, q, *p});
      }
    }
  }
  return out;
}

const std::array<DemographicRow, 5>& demographics() {
  static const std::array<DemographicRow, 5> rows = {{
      {"Computer Science (BS)", 1, ""},
      {"Computer Science (MS)", 1, ""},
      {"Electrical Engineering (MS)", 2, ""},
      {"Astronomy & Planetary Science (PhD)", 1, ""},
      {"Informatics & Computing (PhD)", 5,
       "1x bioinformatics, 1x CS, 1x ecoinformatics, 2x EE"},
  }};
  return rows;
}

}  // namespace dipdc::eval
