#include "eval/quizstats.hpp"

#include <algorithm>
#include <cmath>

namespace dipdc::eval {

Direction classify(const QuizPair& pair) {
  if (pair.post > pair.pre) return Direction::kIncrease;
  if (pair.post < pair.pre) return Direction::kDecrease;
  return Direction::kEqual;
}

PairCounts count_pairs(const std::vector<ScoredPair>& pairs) {
  PairCounts counts;
  counts.total = static_cast<int>(pairs.size());
  for (const ScoredPair& sp : pairs) {
    switch (classify(sp.pair)) {
      case Direction::kEqual: ++counts.equal; break;
      case Direction::kIncrease: ++counts.increased; break;
      case Direction::kDecrease: ++counts.decreased; break;
    }
  }
  return counts;
}

RelativeChange mean_relative_change(const std::vector<ScoredPair>& pairs,
                                    Direction direction) {
  RelativeChange out;
  double sum_pre = 0.0;
  double sum_post = 0.0;
  for (const ScoredPair& sp : pairs) {
    if (classify(sp.pair) != direction) continue;
    const double delta = std::fabs(sp.pair.pre - sp.pair.post);
    if (sp.pair.pre > 0.0) sum_pre += delta / sp.pair.pre;
    if (sp.pair.post > 0.0) sum_post += delta / sp.pair.post;
    ++out.pairs;
  }
  if (out.pairs > 0) {
    out.relative_to_pre = sum_pre / out.pairs;
    out.relative_to_post = sum_post / out.pairs;
  }
  return out;
}

QuizMeans quiz_means(const std::vector<ScoredPair>& pairs, int quiz) {
  QuizMeans means;
  for (const ScoredPair& sp : pairs) {
    if (sp.quiz != quiz) continue;
    means.pre += sp.pair.pre;
    means.post += sp.pair.post;
    ++means.students;
  }
  if (means.students > 0) {
    means.pre /= means.students;
    means.post /= means.students;
  }
  return means;
}

std::vector<int> students_with_decrease(
    const std::vector<ScoredPair>& pairs) {
  std::vector<int> out;
  for (const ScoredPair& sp : pairs) {
    if (classify(sp.pair) == Direction::kDecrease) {
      if (std::find(out.begin(), out.end(), sp.student) == out.end()) {
        out.push_back(sp.student);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dipdc::eval
