// The paper's evaluation data (Section IV).
//
// The paper publishes per-student pre/post quiz scores only as bar charts
// (Figure 2) plus aggregate statistics (Table IV).  The dataset embedded
// here was *reconstructed* by constraint solving so that it satisfies every
// published statistic simultaneously:
//
//   * 10 students, 5 quizzes; 42 usable pre/post pairs (8 excluded because
//     a student skipped the pre or post quiz; 7 of 10 students completed
//     everything);
//   * 17 pairs equal, 19 increased, 6 decreased;
//   * exactly students #1, #3, #4 and #7 have at least one decrease, and
//     students #2, #5, #6, #8, #9, #10 never decrease (paper §IV-C);
//   * per-quiz pre/post means match Table IV to two decimals
//     (88.89/98.15, 82.22/88.89, 69.50/77.78, 60.71/67.86, 80.21/79.17);
//   * mean relative increase 47.86% and decrease 27.30% under the paper's
//     formula (see quizstats.hpp for the formula-direction discussion).
//
// Quizzes 1, 2, 4 and 5 use point-granular scores (6-, 5-, 4- and 12-point
// quizzes); quiz 3 uses percentage scores with one decimal.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

namespace dipdc::eval {

inline constexpr int kStudents = 10;
inline constexpr int kQuizzes = 5;

/// One pre/post pair (percentages in [0, 100]); absent when the student
/// did not complete both quizzes for that module.
struct QuizPair {
  double pre = 0.0;
  double post = 0.0;
};

/// score(student 0..9, quiz 0..4); nullopt = excluded pair.
std::optional<QuizPair> quiz_score(int student, int quiz);

/// All present pairs in (student, quiz) order.
struct ScoredPair {
  int student;  // 0-based
  int quiz;     // 0-based
  QuizPair pair;
};
std::vector<ScoredPair> all_pairs();

/// Table III: the cohort's degree programs.
struct DemographicRow {
  std::string_view program;
  int count;
  std::string_view detail;
};
const std::array<DemographicRow, 5>& demographics();

}  // namespace dipdc::eval
