#include "eval/tables.hpp"

namespace dipdc::eval {

namespace {

constexpr Bloom A = Bloom::kApply;
constexpr Bloom E = Bloom::kEvaluate;
constexpr Bloom C = Bloom::kCreate;
constexpr Bloom N = Bloom::kNone;

constexpr Usage R_ = Usage::kRequired;
constexpr Usage N_ = Usage::kOptional;
constexpr Usage U_ = Usage::kUnused;

using P = minimpi::Primitive;
constexpr P kEnd = P::kCount;

}  // namespace

const std::array<OutcomeRow, 15>& learning_outcomes() {
  static const std::array<OutcomeRow, 15> rows = {{
      {"Implement several canonical MPI communication patterns.",
       {A, N, N, N, N}},
      {"Understand blocking and non-blocking message passing.",
       {A, N, N, N, N}},
      {"Examine how blocking message passing may lead to deadlock.",
       {A, N, N, N, N}},
      {"Understand MPI collective communication primitives.",
       {N, A, E, E, E}},
      {"Understand how data locality can be exploited to improve "
       "performance through the use of tiling.",
       {N, E, N, N, N}},
      {"Understand the performance trade-offs between small and large tile "
       "sizes.",
       {N, E, N, N, N}},
      {"Utilize a performance tool to measure cache misses.",
       {N, A, N, N, N}},
      {"Understand how various algorithm components scale as a function of "
       "the number of process ranks.",
       {N, E, E, E, C}},
      {"Understand how different input data distributions may impact load "
       "balancing.",
       {N, N, E, N, N}},
      {"Discover how compute-bound and memory-bound algorithms vary in "
       "their scalability.",
       {N, E, E, E, E}},
      {"Understand common patterns in distributed-memory programs (e.g., "
       "alternating phases of computation and communication).",
       {A, A, E, A, C}},
      {"Reason about performance based on algorithm characteristics (i.e., "
       "beyond asymptotic performance).",
       {N, N, E, E, E}},
      {"Reason about performance based on communication patterns and "
       "volumes.",
       {N, N, E, N, E}},
      {"Reason about resource allocation alternatives.", {N, N, A, E, C}},
      {"Reason about how the algorithms can be improved beyond the scope "
       "of the module.",
       {N, N, C, C, C}},
  }};
  return rows;
}

const std::array<PrimitiveRow, 10>& primitive_usage() {
  static const std::array<PrimitiveRow, 10> rows = {{
      {"MPI_Send", {P::kSend, kEnd, kEnd, kEnd}, {R_, U_, N_, U_, U_}},
      {"MPI_Recv", {P::kRecv, kEnd, kEnd, kEnd}, {R_, U_, N_, U_, U_}},
      {"MPI_Isend", {P::kIsend, kEnd, kEnd, kEnd}, {R_, U_, U_, U_, U_}},
      {"MPI_Wait", {P::kWait, kEnd, kEnd, kEnd}, {R_, U_, U_, U_, U_}},
      {"MPI_Bcast", {P::kBcast, kEnd, kEnd, kEnd}, {N_, U_, U_, U_, U_}},
      {"MPI_Send and MPI_Recv variants",
       {P::kIrecv, P::kSendrecv, P::kAlltoall, P::kAlltoallv},
       {N_, U_, N_, U_, U_}},
      {"MPI_Scatter",
       {P::kScatter, P::kScatterv, kEnd, kEnd},
       {U_, R_, U_, U_, N_}},
      {"MPI_Reduce",
       {P::kReduce, kEnd, kEnd, kEnd},
       {U_, R_, R_, R_, U_}},
      {"MPI_Get_count",
       {P::kProbe, kEnd, kEnd, kEnd},
       {U_, U_, N_, U_, U_}},
      {"MPI_Allreduce",
       {P::kAllreduce, kEnd, kEnd, kEnd},
       {U_, U_, U_, U_, N_}},
  }};
  return rows;
}

std::uint64_t family_calls(const PrimitiveRow& row,
                           const minimpi::CommStats& stats) {
  std::uint64_t total = 0;
  for (const P p : row.family) {
    if (p == kEnd) break;
    total += stats.calls_to(p);
  }
  return total;
}

bool required_primitives_used(int module_index,
                              const minimpi::CommStats& stats) {
  for (const PrimitiveRow& row : primitive_usage()) {
    if (row.usage[static_cast<std::size_t>(module_index)] != Usage::kRequired) {
      continue;
    }
    if (family_calls(row, stats) == 0) return false;
  }
  return true;
}

}  // namespace dipdc::eval
