// Metadata for the paper's Table I (student learning outcomes x modules,
// with Bloom levels) and Table II (MPI primitive usage x modules), plus the
// machinery that *verifies* Table II against what the instrumented
// reference solutions actually call.
#pragma once

#include <array>
#include <string_view>

#include "minimpi/stats.hpp"

namespace dipdc::eval {

inline constexpr int kModules = 5;

/// Bloom taxonomy level assigned to an outcome within a module.
enum class Bloom : char {
  kNone = '-',
  kApply = 'A',
  kEvaluate = 'E',
  kCreate = 'C',
};

struct OutcomeRow {
  std::string_view description;
  std::array<Bloom, kModules> levels;
};

/// The 15 rows of Table I.
const std::array<OutcomeRow, 15>& learning_outcomes();

/// Table II cell: Required, Not-required-but-may-be-used, or unused.
enum class Usage : char {
  kUnused = '-',
  kRequired = 'R',
  kOptional = 'N',
};

/// A row of Table II groups related primitives into a family so that the
/// measured counters (which distinguish e.g. Scatter from Scatterv) can be
/// compared against the paper's coarser rows.
struct PrimitiveRow {
  std::string_view label;  // as printed in the paper
  /// Primitives whose calls count toward this row (terminated by kCount).
  std::array<minimpi::Primitive, 4> family;
  std::array<Usage, kModules> usage;
};

const std::array<PrimitiveRow, 10>& primitive_usage();

/// Calls observed for `row` in `stats`.
std::uint64_t family_calls(const PrimitiveRow& row,
                           const minimpi::CommStats& stats);

/// True when every R-marked primitive family of `module_index` (0-based)
/// has at least one observed call in `stats`.
bool required_primitives_used(int module_index,
                              const minimpi::CommStats& stats);

}  // namespace dipdc::eval
