// The anonymous free-response survey results of paper §IV-D, as structured
// metadata: reported difficulty, favorite/least-favorite/most-challenging
// module counts, and the quoted free responses.
#pragma once

#include <array>
#include <string_view>
#include <vector>

namespace dipdc::eval {

struct DifficultyReport {
  std::string_view level;
  int students;
};

/// "Students were asked if they found the course easier or more difficult
/// than other graduate level courses."
const std::array<DifficultyReport, 3>& difficulty_reports();

struct ModuleVotes {
  /// votes[m] = students naming module m+1.
  std::array<int, 5> votes;
  int total() const;
};

/// Four students named Module 5 (k-means) their favorite.
const ModuleVotes& favorite_module_votes();
/// Least-favorite votes were inconsistent: 2,1,1,2,1.
const ModuleVotes& least_favorite_votes();
/// Four students found Module 2 the most challenging.
const ModuleVotes& most_challenging_votes();

/// Selected quoted responses (edited in the paper for spelling/brevity).
const std::vector<std::string_view>& quoted_responses();

}  // namespace dipdc::eval
