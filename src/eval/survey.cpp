#include "eval/survey.hpp"

namespace dipdc::eval {

const std::array<DifficultyReport, 3>& difficulty_reports() {
  static const std::array<DifficultyReport, 3> reports = {{
      {"easier", 1},
      {"more difficult", 5},
      {"much more difficult", 4},
  }};
  return reports;
}

int ModuleVotes::total() const {
  int t = 0;
  for (const int v : votes) t += v;
  return t;
}

const ModuleVotes& favorite_module_votes() {
  // "Four students reported that they liked Module 5 (k-means)."  The
  // paper names no other favorites explicitly.
  static const ModuleVotes votes{{0, 0, 0, 0, 4}};
  return votes;
}

const ModuleVotes& least_favorite_votes() {
  // "2, 1, 1, 2, and 1 students found that modules 1, 2, 3, 4, and 5 were
  // their least favorite, respectively."
  static const ModuleVotes votes{{2, 1, 1, 2, 1}};
  return votes;
}

const ModuleVotes& most_challenging_votes() {
  // "Four students reported that Module 2 was the most difficult."
  static const ModuleVotes votes{{0, 4, 0, 0, 0}};
  return votes;
}

const std::vector<std::string_view>& quoted_responses() {
  static const std::vector<std::string_view> quotes = {
      "Building a coding environment on my laptop and dealing with how the "
      "cluster works took more effort than I thought.",
      "... designing a parallel algorithm and working with the cluster were "
      "challenging.",
      "I was a bit overwhelmed in the beginning with trying new code and "
      "dealing with the cluster.",
      "It was a great course, which taught me a new skill.",
      "Of my classes this seemed like the most practical... And learning "
      "how to use Monsoon will help me in other courses. HPC will only "
      "grow in importance.",
      "... it is really good to be able to apply parallel programming "
      "approaches to speedup an algorithm... This knowledge will really "
      "help us in our academic life.",
      "I like that all of the examples span a broad number of subjects and "
      "topics.",
  };
  return quotes;
}

}  // namespace dipdc::eval
