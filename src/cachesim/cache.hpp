// A from-scratch CPU cache simulator.
//
// Module 2 asks students to "utilize a performance tool to measure cache
// misses" (learning outcome 7) when comparing the row-wise and tiled
// distance-matrix kernels.  Hardware performance counters are not portable
// (and unavailable in this environment), so this library provides the
// substitute: a set-associative LRU cache model the kernels can run
// through.  The kernels are templated on a tracer, so the exact same loop
// nest executes natively (NullTracer, zero overhead) or traced
// (CacheTracer, every load recorded).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dipdc::cachesim {

/// Geometry of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 8;

  /// Number of sets implied by the geometry.
  [[nodiscard]] std::size_t sets() const {
    return size_bytes / (line_bytes * associativity);
  }
};

/// One set-associative, true-LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config);

  /// Looks up the line containing `addr`, installing it on miss.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return accesses_ - hits_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses()) / static_cast<double>(accesses_);
  }

  void reset();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t nsets_;
  std::vector<Way> ways_;  // nsets_ * associativity, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
};

/// An inclusive multi-level hierarchy: an access probes L1, then L2, ...;
/// a miss in the last level is a DRAM access.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  /// A conventional two-level (L1 32 KiB / L2 1 MiB) configuration.
  static CacheHierarchy typical();

  /// Accesses one byte address.
  void access(std::uint64_t addr);
  /// Accesses every cache line in [addr, addr + bytes).
  void access_range(std::uint64_t addr, std::size_t bytes);

  [[nodiscard]] std::size_t levels() const { return levels_.size(); }
  [[nodiscard]] const CacheLevel& level(std::size_t i) const {
    return levels_[i];
  }

  /// Total DRAM traffic: last-level misses times the line size.
  [[nodiscard]] std::uint64_t memory_traffic_bytes() const;
  /// Accesses that missed every level.
  [[nodiscard]] std::uint64_t memory_accesses() const {
    return levels_.back().misses();
  }
  [[nodiscard]] std::uint64_t total_accesses() const {
    return levels_.front().accesses();
  }

  void reset();

 private:
  std::vector<CacheLevel> levels_;
};

/// Tracer plugged into computational kernels.  NullTracer compiles to
/// nothing; CacheTracer feeds the hierarchy.
struct NullTracer {
  static constexpr bool kEnabled = false;
  void touch(const void* /*ptr*/, std::size_t /*bytes*/) const {}
};

class CacheTracer {
 public:
  static constexpr bool kEnabled = true;

  explicit CacheTracer(CacheHierarchy* hierarchy) : hierarchy_(hierarchy) {}

  void touch(const void* ptr, std::size_t bytes) const {
    hierarchy_->access_range(reinterpret_cast<std::uintptr_t>(ptr), bytes);
  }

  [[nodiscard]] CacheHierarchy& hierarchy() const { return *hierarchy_; }

 private:
  CacheHierarchy* hierarchy_;
};

}  // namespace dipdc::cachesim
