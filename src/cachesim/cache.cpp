#include "cachesim/cache.hpp"

#include "support/error.hpp"

namespace dipdc::cachesim {

CacheLevel::CacheLevel(CacheConfig config) : config_(config) {
  DIPDC_REQUIRE(config.line_bytes > 0, "cache line size must be positive");
  DIPDC_REQUIRE(config.associativity > 0,
                "cache associativity must be positive");
  DIPDC_REQUIRE(
      config.size_bytes % (config.line_bytes * config.associativity) == 0,
      "cache size must be a whole number of sets");
  nsets_ = config.sets();
  DIPDC_REQUIRE(nsets_ > 0, "cache must have at least one set");
  ways_.assign(nsets_ * config.associativity, Way{});
}

bool CacheLevel::access(std::uint64_t addr) {
  ++accesses_;
  ++tick_;
  const std::uint64_t line = addr / config_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(line % nsets_);
  const std::uint64_t tag = line / nsets_;

  Way* base = &ways_[set * config_.associativity];
  Way* victim = base;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  return false;
}

void CacheLevel::reset() {
  ways_.assign(nsets_ * config_.associativity, Way{});
  tick_ = 0;
  accesses_ = 0;
  hits_ = 0;
}

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  DIPDC_REQUIRE(!levels.empty(), "hierarchy needs at least one level");
  levels_.reserve(levels.size());
  for (const CacheConfig& cfg : levels) {
    levels_.emplace_back(cfg);
  }
}

CacheHierarchy CacheHierarchy::typical() {
  return CacheHierarchy({
      CacheConfig{32 * 1024, 64, 8},
      CacheConfig{1024 * 1024, 64, 16},
  });
}

void CacheHierarchy::access(std::uint64_t addr) {
  for (CacheLevel& level : levels_) {
    if (level.access(addr)) return;
  }
}

void CacheHierarchy::access_range(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::size_t line = levels_.front().config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    access(l * line);
  }
}

std::uint64_t CacheHierarchy::memory_traffic_bytes() const {
  return levels_.back().misses() * levels_.back().config().line_bytes;
}

void CacheHierarchy::reset() {
  for (CacheLevel& level : levels_) level.reset();
}

}  // namespace dipdc::cachesim
