#include "support/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dipdc::support {

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

std::string bytes(std::uint64_t n) {
  constexpr std::array<const char*, 5> units = {"B", "KiB", "MiB", "GiB",
                                                "TiB"};
  double v = static_cast<double>(n);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return std::to_string(n) + " B";
  return fixed(v, 2) + " " + units[u];
}

std::string seconds(double s) {
  if (s == 0.0) return "0 s";
  const double a = std::fabs(s);
  if (a >= 1.0) return fixed(s, 3) + " s";
  if (a >= 1e-3) return fixed(s * 1e3, 3) + " ms";
  if (a >= 1e-6) return fixed(s * 1e6, 3) + " us";
  return fixed(s * 1e9, 1) + " ns";
}

std::string count(std::uint64_t n) {
  if (n < 1000000) return std::to_string(n);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2e", static_cast<double>(n));
  return buf;
}

}  // namespace dipdc::support
