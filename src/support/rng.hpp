// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository draws from the generators in
// this header so that experiments, tests, and benchmarks are reproducible
// bit-for-bit across runs and platforms.  We implement xoshiro256** seeded
// via SplitMix64 (the construction recommended by the xoshiro authors)
// rather than relying on std::mt19937 so that the stream is identical across
// standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace dipdc::support {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used alone; here it only seeds xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be positive: an empty range has no
  /// valid draw (returning 0 would silently index past an empty container).
  std::uint64_t uniform_index(std::uint64_t n) {
    DIPDC_REQUIRE(n > 0, "uniform_index: empty range [0, 0)");
    // Lemire's nearly-divisionless bounded generation (without the
    // rejection refinement; bias is < 2^-40 for the n used here).
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Exponentially distributed double with the given rate parameter
  /// (mean = 1/rate) via inverse-CDF sampling.
  double exponential(double rate) noexcept {
    // 1 - uniform() is in (0, 1], so the log argument is never zero.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Standard normal via Box-Muller (one value per call; the twin is cached).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 == 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    cached_ = r * std::sin(kTwoPi * u2);
    has_cached_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Derives an independent stream for (seed, stream_id) pairs, e.g. one
/// generator per MPI rank from a single experiment seed.
inline Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream_id) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  return Xoshiro256(sm.next());
}

}  // namespace dipdc::support
