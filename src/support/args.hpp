// A small command-line argument parser for the example/driver binaries:
// supports "--key=value", "--key value" and boolean "--flag" forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dipdc::support {

class ArgParser {
 public:
  /// Parses argv[1..); the first non-option token becomes the command.
  ArgParser(int argc, const char* const* argv);

  /// The leading positional token ("module3" in `prog module3 --ranks=4`).
  [[nodiscard]] const std::string& command() const { return command_; }
  /// Positional tokens after the command.
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// True for "--flag" and "--flag=true/1/yes"; false for "=false/0/no".
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const;

  /// Options that were parsed but never queried (typo detection).
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Names of every option present on the command line (sorted); lets
  /// drivers validate against their known-option list before running.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

/// The candidate closest to `word` by edit distance, for "did you mean"
/// hints.  Returns empty when nothing is within distance 3.
[[nodiscard]] std::string closest_match(
    const std::string& word, const std::vector<std::string>& candidates);

}  // namespace dipdc::support
