#include "support/table.hpp"

#include <algorithm>
#include <sstream>

namespace dipdc::support {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::render() const {
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      width[c] = std::max(width[c], cells[c].size());
    }
  };
  widen(header_);
  for (const Row& r : rows_) widen(r.cells);

  auto align_of = [&](std::size_t c) {
    return c < alignment_.size() ? alignment_[c] : Align::kRight;
  };

  std::ostringstream os;
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      os << ' ';
      if (align_of(c) == Align::kRight) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const Row& r : rows_) {
    if (r.rule_before) emit_rule();
    emit_row(r.cells);
  }
  emit_rule();
  return os.str();
}

}  // namespace dipdc::support
