#include "support/args.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dipdc::support {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t.rfind("--", 0) == 0) {
      const auto eq = t.find('=');
      if (eq != std::string::npos) {
        options_[t.substr(2, eq - 2)] = t.substr(eq + 1);
      } else if (i + 1 < tokens.size() &&
                 tokens[i + 1].rfind("--", 0) != 0) {
        options_[t.substr(2)] = tokens[++i];
      } else {
        options_[t.substr(2)] = "true";  // bare flag
      }
    } else if (command_.empty()) {
      command_ = t;
    } else {
      positionals_.push_back(t);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long ArgParser::get_int(const std::string& key, long fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    throw PreconditionError("option --" + key +
                            " expects an integer, got '" + v + "'");
  }
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw PreconditionError("option --" + key + " expects a number, got '" +
                            v + "'");
  }
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  std::string v = get(key);
  if (v.empty()) return fallback;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(
                       std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw PreconditionError("option --" + key + " expects a boolean, got '" +
                          v + "'");
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace dipdc::support
