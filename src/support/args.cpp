#include "support/args.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dipdc::support {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t.rfind("--", 0) == 0) {
      const auto eq = t.find('=');
      if (eq != std::string::npos) {
        options_[t.substr(2, eq - 2)] = t.substr(eq + 1);
      } else if (i + 1 < tokens.size() &&
                 tokens[i + 1].rfind("--", 0) != 0) {
        options_[t.substr(2)] = tokens[++i];
      } else {
        options_[t.substr(2)] = "true";  // bare flag
      }
    } else if (command_.empty()) {
      command_ = t;
    } else {
      positionals_.push_back(t);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long ArgParser::get_int(const std::string& key, long fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  try {
    // Require the whole token to parse: stol("8x") would silently yield 8
    // and hide the typo.
    std::size_t pos = 0;
    const long value = std::stol(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return value;
  } catch (const std::exception&) {
    throw PreconditionError("option --" + key +
                            " expects an integer, got '" + v + "'");
  }
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return value;
  } catch (const std::exception&) {
    throw PreconditionError("option --" + key + " expects a number, got '" +
                            v + "'");
  }
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  std::string v = get(key);
  if (v.empty()) return fallback;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(
                       std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw PreconditionError("option --" + key + " expects a boolean, got '" +
                          v + "'");
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

std::vector<std::string> ArgParser::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [key, value] : options_) {
    (void)value;
    out.push_back(key);  // std::map iterates in sorted order
  }
  return out;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

std::string closest_match(const std::string& word,
                          const std::vector<std::string>& candidates) {
  constexpr std::size_t kMaxDistance = 3;
  std::string best;
  std::size_t best_distance = kMaxDistance + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(word, c);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

}  // namespace dipdc::support
