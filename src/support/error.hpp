// Error-handling primitives shared by every subsystem.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dipdc::support {

/// Base class for all errors thrown by this project.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a DIPDC_REQUIRE precondition fails.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] void throw_precondition_failure(
    const char* expr, const std::string& message,
    std::source_location loc = std::source_location::current());

}  // namespace dipdc::support

/// Precondition check that is always on (library-boundary validation, not an
/// assert): throws PreconditionError with file/line context on failure.
#define DIPDC_REQUIRE(expr, message)                                      \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::dipdc::support::throw_precondition_failure(#expr, (message));     \
    }                                                                     \
  } while (false)
