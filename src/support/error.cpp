#include "support/error.hpp"

#include <sstream>

namespace dipdc::support {

void throw_precondition_failure(const char* expr, const std::string& message,
                                std::source_location loc) {
  std::ostringstream os;
  os << "precondition failed: " << message << " [" << expr << "] at "
     << loc.file_name() << ":" << loc.line();
  throw PreconditionError(os.str());
}

}  // namespace dipdc::support
