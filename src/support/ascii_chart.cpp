#include "support/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/format.hpp"

namespace dipdc::support {

std::string bar_chart(const std::vector<Bar>& bars, double vmax,
                      int max_width) {
  if (vmax <= 0.0) {
    for (const Bar& b : bars) vmax = std::max(vmax, b.value);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::size_t label_width = 0;
  for (const Bar& b : bars) label_width = std::max(label_width, b.label.size());

  std::ostringstream os;
  for (const Bar& b : bars) {
    const int n = static_cast<int>(
        std::lround(b.value / vmax * static_cast<double>(max_width)));
    os << b.label << std::string(label_width - b.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(std::max(0, n)), b.glyph) << ' '
       << fixed(b.value, 2) << '\n';
  }
  return os.str();
}

std::string line_chart(const std::vector<Series>& series, int width,
                       int height) {
  double xmin = 0.0, xmax = 1.0, ymin = 0.0, ymax = 1.0;
  bool first = true;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (first) {
        xmin = xmax = s.x[i];
        ymin = ymax = s.y[i];
        first = false;
      } else {
        xmin = std::min(xmin, s.x[i]);
        xmax = std::max(xmax, s.x[i]);
        ymin = std::min(ymin, s.y[i]);
        ymax = std::max(ymax, s.y[i]);
      }
    }
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double fx = (s.x[i] - xmin) / (xmax - xmin);
      const double fy = (s.y[i] - ymin) / (ymax - ymin);
      const int cx = std::min(
          width - 1, static_cast<int>(std::lround(fx * (width - 1))));
      const int cy = std::min(
          height - 1, static_cast<int>(std::lround(fy * (height - 1))));
      grid[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::ostringstream os;
  os << fixed(ymax, 2) << " +" << '\n';
  for (const std::string& row : grid) {
    os << std::string(fixed(ymax, 2).size(), ' ') << " |" << row << '\n';
  }
  os << fixed(ymin, 2) << " +" << std::string(static_cast<std::size_t>(width), '-')
     << '\n';
  os << "   x: [" << fixed(xmin, 2) << ", " << fixed(xmax, 2) << "]   ";
  for (const Series& s : series) {
    os << s.glyph << "=" << s.name << "  ";
  }
  os << '\n';
  return os.str();
}

}  // namespace dipdc::support
