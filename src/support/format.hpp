// Numeric formatting helpers for benchmark and example output.
#pragma once

#include <cstdint>
#include <string>

namespace dipdc::support {

/// Fixed-point decimal with the given number of fractional digits.
std::string fixed(double value, int digits = 2);

/// Value rendered as a percentage ("47.86%") with the given digits.
std::string percent(double fraction, int digits = 2);

/// Human-readable byte count ("1.50 MiB").
std::string bytes(std::uint64_t n);

/// Human-readable duration from seconds ("1.23 ms").
std::string seconds(double s);

/// Scientific-ish compact count ("1.2e+06" style for large values,
/// plain integers below 1e6).
std::string count(std::uint64_t n);

}  // namespace dipdc::support
