// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables and per-experiment result grids.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dipdc::support {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set a header, append rows, render.
/// Cells are strings; numeric formatting is the caller's concern (see
/// format.hpp for helpers).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  /// Per-column alignment; columns without an entry default to right-aligned.
  void set_alignment(std::vector<Align> alignment);
  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace dipdc::support
