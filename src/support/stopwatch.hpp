// Wall-clock stopwatch for real-time measurements (benchmarks use simulated
// time from perfmodel for scaling results; the stopwatch exists for sanity
// checks and for native kernel timing in google-benchmark loops).
#pragma once

#include <chrono>

namespace dipdc::support {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dipdc::support
