// Minimal ASCII charts: horizontal bar charts (used to render the paper's
// Figure 2 quiz bars) and x/y line charts (used for the Figure 1 speedup
// curves and the per-module scaling plots).
#pragma once

#include <string>
#include <vector>

namespace dipdc::support {

/// One labelled bar; several groups can share a label (e.g. pre/post bars).
struct Bar {
  std::string label;
  double value = 0.0;
  char glyph = '#';
};

/// Renders labelled horizontal bars scaled to `max_width` columns.
/// `vmax` of 0 auto-scales to the largest value.
std::string bar_chart(const std::vector<Bar>& bars, double vmax = 0.0,
                      int max_width = 50);

/// One named series of (x, y) samples for a line chart.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Renders series on a shared grid of `width` x `height` characters with
/// simple axis annotations.  Intended for quick visual confirmation of curve
/// shapes (linear vs. saturating speedup etc.), not for publication.
std::string line_chart(const std::vector<Series>& series, int width = 64,
                       int height = 20);

}  // namespace dipdc::support
