#include "modules/rangequery/serving.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>

#include "container/partitioning.hpp"
#include "kernels/filter.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"

namespace dipdc::modules::rangequery {

namespace mpi = minimpi;
namespace sp = spatial;

namespace {

// Message tags of the serving protocol (driver <-> shard p2p).
constexpr int kTagHeader = 41;
constexpr int kTagQueries = 42;
constexpr int kTagReply = 43;

/// Per-batch, per-shard frame header.  done=1 is the shutdown signal
/// (sent once per shard after the last batch drained).
struct BatchHeader {
  std::uint64_t batch_id = 0;
  std::uint32_t nqueries = 0;
  std::uint32_t done = 0;
};
static_assert(std::is_trivially_copyable_v<BatchHeader>);

/// Row-major grid cell of a point (coordinates clamped into the grid so
/// boundary values at `extent` land in the last cell).
std::size_t cell_of(double x, double y, double cell_side, int g) {
  const auto clamp_cell = [&](double v) {
    const auto c = static_cast<long long>(v / cell_side);
    return static_cast<std::size_t>(
        std::clamp<long long>(c, 0, static_cast<long long>(g) - 1));
  };
  return clamp_cell(y) * static_cast<std::size_t>(g) + clamp_cell(x);
}

/// Shards (0-based shard indices) whose cell ranges intersect `window`:
/// walks the covered cell rows and marks the owners of each contiguous
/// row-major id run (the cuts are monotone, so a run's owners are a
/// consecutive shard range).
void route_query(const sp::Rect& window, double cell_side, int g,
                 const container::Partitioning& cells,
                 std::vector<std::uint8_t>& routed) {
  const auto clamp_cell = [&](double v) {
    const auto c = static_cast<long long>(v / cell_side);
    return static_cast<std::size_t>(
        std::clamp<long long>(c, 0, static_cast<long long>(g) - 1));
  };
  const std::size_t cx0 = clamp_cell(window.xmin);
  const std::size_t cx1 = clamp_cell(window.xmax);
  const std::size_t cy0 = clamp_cell(window.ymin);
  const std::size_t cy1 = clamp_cell(window.ymax);
  for (std::size_t cy = cy0; cy <= cy1; ++cy) {
    const std::size_t a = cy * static_cast<std::size_t>(g) + cx0;
    const std::size_t b = cy * static_cast<std::size_t>(g) + cx1;
    for (int s = cells.owner(a); s <= cells.owner(b); ++s) {
      routed[static_cast<std::size_t>(s)] = 1;
    }
  }
}

/// A dispatched batch the driver is still waiting on.
struct InFlight {
  std::uint64_t id = 0;
  std::vector<double> arrival;             // per-query arrival times
  std::vector<std::uint64_t> matches;      // per-query merged counts
  std::vector<std::vector<std::uint32_t>> routed_local;  // shard -> positions
  std::vector<mpi::Request> sends;         // scatter isends to drain
};

}  // namespace

int default_grid_side(int shards) {
  int g = 1;
  while (g * g < 4 * shards) ++g;
  return g;
}

Mix parse_mix(std::string_view text) {
  if (text == "uniform") return Mix::kUniform;
  if (text == "hotspot") return Mix::kHotspot;
  if (text == "zipf") return Mix::kZipf;
  throw support::PreconditionError("unknown mix '" + std::string(text) +
                                   "' (uniform|hotspot|zipf)");
}

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kUniform: return "uniform";
    case Mix::kHotspot: return "hotspot";
    case Mix::kZipf: return "zipf";
  }
  return "?";
}

QueryStream::QueryStream(const ServeConfig& config, int grid_side)
    : extent_(config.extent),
      side_(std::min(config.side, config.extent)),
      mix_(config.mix),
      hot_fraction_(config.hot_fraction),
      hot_side_(config.hot_extent_fraction * config.extent),
      cell_side_(config.extent / static_cast<double>(grid_side)),
      grid_side_(grid_side),
      rng_(config.seed + 1) {
  DIPDC_REQUIRE(config.extent > 0.0 && config.side >= 0.0,
                "bad workload geometry");
  // The hot box corner is part of the stream's identity: drawn first,
  // once, so every consumer of (seed, mix) sees the same hot region.
  const double span = std::max(extent_ - hot_side_, 0.0);
  hot_corner_.x = rng_.uniform(0.0, std::max(span, 1e-300));
  hot_corner_.y = rng_.uniform(0.0, std::max(span, 1e-300));
  if (mix_ == Mix::kZipf) {
    // Popularity rank r -> weight (r+1)^-s over a seeded shuffle of the
    // cell ids, so the hot cells are scattered over the grid (and hence
    // over the shards) instead of always being the low ids.
    const auto ncells =
        static_cast<std::size_t>(grid_side_) * static_cast<std::size_t>(grid_side_);
    zipf_cells_.resize(ncells);
    for (std::size_t c = 0; c < ncells; ++c) {
      zipf_cells_[c] = static_cast<std::uint32_t>(c);
    }
    for (std::size_t c = ncells - 1; c > 0; --c) {
      std::swap(zipf_cells_[c], zipf_cells_[rng_.uniform_index(c + 1)]);
    }
    zipf_cdf_.resize(ncells);
    double acc = 0.0;
    for (std::size_t r = 0; r < ncells; ++r) {
      acc += std::pow(static_cast<double>(r + 1), -config.zipf_s);
      zipf_cdf_[r] = acc;
    }
    for (double& v : zipf_cdf_) v /= acc;
  }
}

sp::Rect QueryStream::next() {
  const double span = std::max(extent_ - side_, 0.0);
  double x = 0.0;
  double y = 0.0;
  switch (mix_) {
    case Mix::kUniform:
      x = rng_.uniform(0.0, extent_);
      y = rng_.uniform(0.0, extent_);
      break;
    case Mix::kHotspot:
      if (rng_.uniform() < hot_fraction_) {
        x = hot_corner_.x + rng_.uniform(0.0, std::max(hot_side_, 1e-300));
        y = hot_corner_.y + rng_.uniform(0.0, std::max(hot_side_, 1e-300));
      } else {
        x = rng_.uniform(0.0, extent_);
        y = rng_.uniform(0.0, extent_);
      }
      break;
    case Mix::kZipf: {
      const double u = rng_.uniform();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      const std::size_t rank = it == zipf_cdf_.end()
                                   ? zipf_cdf_.size() - 1
                                   : static_cast<std::size_t>(
                                         it - zipf_cdf_.begin());
      const std::uint32_t cell = zipf_cells_[rank];
      const auto cx = static_cast<double>(cell % static_cast<std::uint32_t>(
                                                     grid_side_));
      const auto cy = static_cast<double>(cell / static_cast<std::uint32_t>(
                                                     grid_side_));
      x = cx * cell_side_ + rng_.uniform(0.0, cell_side_);
      y = cy * cell_side_ + rng_.uniform(0.0, cell_side_);
      break;
    }
  }
  x = std::min(x, span);
  y = std::min(y, span);
  return {x, y, x + side_, y + side_};
}

ServeResult serve(mpi::Comm& comm, const ServeConfig& config) {
  DIPDC_REQUIRE(comm.size() >= 2,
                "serving needs at least 2 ranks (driver + 1 shard)");
  DIPDC_REQUIRE(config.qps > 0.0 && config.duration >= 0.0,
                "bad open-loop rate/duration");
  DIPDC_REQUIRE(config.batch >= 1 && config.batch <= config.queue_cap,
                "admission batch must fit the bounded queue");
  DIPDC_REQUIRE(config.pipeline >= 1, "pipeline depth must be >= 1");

  const int shards = comm.size() - 1;
  const int g = config.grid == 0 ? default_grid_side(shards)
                                 : static_cast<int>(config.grid);
  DIPDC_REQUIRE(g >= 1, "grid side must be >= 1");
  const double cell_side = config.extent / static_cast<double>(g);
  const auto ncells =
      static_cast<std::size_t>(g) * static_cast<std::size_t>(g);
  // The shard map: row-major cell ids block-partitioned over the shards
  // (the elastic containers' deterministic cut machinery, reused).
  const auto cells = container::Partitioning::block(ncells, shards);
  const kernels::Isa isa = kernels::resolve(config.kernel);

  ServeResult result;
  result.shards = shards;
  result.grid_side = g;

  std::uint64_t local_entries = 0;  // this shard's scanned points

  if (comm.rank() == 0) {
    // ---- Driver: open-loop admission, routing, pipelined scatter/gather.
    QueryStream stream(config, g);
    const auto offered = static_cast<std::uint64_t>(
        std::llround(config.qps * config.duration));
    const auto arrival = [&](std::uint64_t i) {
      return static_cast<double>(i + 1) / config.qps;
    };

    struct Queued {
      sp::Rect window;
      double arrival = 0.0;
    };
    std::deque<Queued> queue;
    std::deque<InFlight> inflight;
    std::uint64_t generated = 0;  // arrivals materialized from the stream
    std::uint64_t next_batch_id = 0;

    // Absorbs every arrival with time <= now: into the queue while it has
    // room, counted as rejected otherwise (the bounded-queue drop).
    const auto absorb = [&](double now) {
      while (generated < offered && arrival(generated) <= now) {
        const sp::Rect w = stream.next();
        if (queue.size() < config.queue_cap) {
          queue.push_back({w, arrival(generated)});
          ++result.admitted;
        } else {
          ++result.rejected;
        }
        ++generated;
      }
    };

    // Scatters the front `n` queued queries as one batch: routes each
    // window to its intersecting shards, isends per-shard headers and
    // query payloads (non-blocking, so batch k+1 leaves while batch k is
    // still executing), and parks the batch on the in-flight queue.
    std::vector<std::uint8_t> routed(static_cast<std::size_t>(shards));
    const auto dispatch = [&](std::size_t n) {
      mpi::Comm::Phase phase(comm, "serve.scatter");
      InFlight batch;
      batch.id = next_batch_id++;
      batch.matches.assign(n, 0);
      batch.routed_local.resize(static_cast<std::size_t>(shards));
      std::vector<std::vector<sp::Rect>> per_shard(
          static_cast<std::size_t>(shards));
      for (std::size_t i = 0; i < n; ++i) {
        const Queued& q = queue.front();
        std::fill(routed.begin(), routed.end(), 0);
        route_query(q.window, cell_side, g, cells, routed);
        for (int s = 0; s < shards; ++s) {
          if (routed[static_cast<std::size_t>(s)] == 0) continue;
          per_shard[static_cast<std::size_t>(s)].push_back(q.window);
          batch.routed_local[static_cast<std::size_t>(s)].push_back(
              static_cast<std::uint32_t>(i));
        }
        batch.arrival.push_back(q.arrival);
        queue.pop_front();
      }
      for (int s = 0; s < shards; ++s) {
        const auto& qs = per_shard[static_cast<std::size_t>(s)];
        BatchHeader header;
        header.batch_id = batch.id;
        header.nqueries = static_cast<std::uint32_t>(qs.size());
        batch.sends.push_back(
            comm.isend_value(header, /*dest=*/s + 1, kTagHeader));
        if (!qs.empty()) {
          batch.sends.push_back(comm.isend(
              std::span<const sp::Rect>(qs), s + 1, kTagQueries));
        }
      }
      ++result.batches;
      inflight.push_back(std::move(batch));
    };

    // Gathers the oldest in-flight batch: per-shard count vectors merged
    // into per-query totals; the batch's queries all complete when the
    // last reply lands, and each latency (completion - arrival) goes
    // into the log2 histogram in microseconds.
    std::vector<std::uint64_t> reply;
    const auto complete_oldest = [&]() {
      mpi::Comm::Phase phase(comm, "serve.gather");
      InFlight batch = std::move(inflight.front());
      inflight.pop_front();
      for (int s = 0; s < shards; ++s) {
        const auto& local = batch.routed_local[static_cast<std::size_t>(s)];
        if (local.empty()) continue;
        reply.assign(local.size(), 0);
        comm.recv(std::span<std::uint64_t>(reply), s + 1, kTagReply);
        for (std::size_t i = 0; i < local.size(); ++i) {
          batch.matches[local[i]] += reply[i];
        }
      }
      comm.wait_all(std::span<mpi::Request>(batch.sends));
      const double now = comm.wtime();
      for (std::size_t i = 0; i < batch.arrival.size(); ++i) {
        const double latency = now - batch.arrival[i];
        result.latency_us.observe(latency * 1e6);
        result.total_matches += batch.matches[i];
      }
      result.completed += batch.arrival.size();
      result.makespan = now;
    };

    while (true) {
      absorb(comm.wtime());
      const bool drained =
          generated == offered && queue.empty() && inflight.empty();
      if (drained) break;
      // Scatter first (fills the pipeline), gather second, idle last.
      if (inflight.size() < config.pipeline &&
          (queue.size() >= config.batch ||
           (generated == offered && !queue.empty()))) {
        dispatch(std::min(queue.size(), config.batch));
        continue;
      }
      if (!inflight.empty()) {
        complete_oldest();
        continue;
      }
      // Nothing in flight and no closable batch: idle-wait for the
      // arrival that fills the batch (or the last arrival of the run).
      const std::uint64_t fill =
          std::min(generated + (config.batch - queue.size()) - 1,
                   offered - 1);
      const double wake = arrival(fill);
      if (wake > comm.wtime()) comm.sim_advance(wake - comm.wtime());
    }
    result.offered = offered;
    result.achieved_qps = result.makespan > 0.0
                              ? static_cast<double>(result.completed) /
                                    result.makespan
                              : 0.0;
    result.mean_latency = result.latency_us.mean() * 1e-6;
    result.max_latency = result.latency_us.max * 1e-6;
    result.p50_latency = result.latency_us.quantile(0.50) * 1e-6;
    result.p99_latency = result.latency_us.quantile(0.99) * 1e-6;

    // Shutdown: one done-header per shard.
    for (int s = 0; s < shards; ++s) {
      BatchHeader header;
      header.done = 1;
      comm.send_value(header, s + 1, kTagHeader);
    }
  } else {
    // ---- Shard: materialize owned points, then serve batches until done.
    const int me = comm.rank() - 1;
    std::vector<double> xs;
    std::vector<double> ys;
    {
      // Every shard walks the same seeded point stream and keeps its own
      // cells' points: sharding without ever materializing the global
      // array (the stream is O(1) transient state).
      support::Xoshiro256 rng(config.seed);
      for (std::size_t i = 0; i < config.n_points; ++i) {
        const double x = rng.uniform(0.0, config.extent);
        const double y = rng.uniform(0.0, config.extent);
        if (cells.owner(cell_of(x, y, cell_side, g)) != me) continue;
        xs.push_back(x);
        ys.push_back(y);
      }
    }
    // Building the local shard costs one pass over the global stream
    // (generation) plus the owned points' storage traffic.
    comm.sim_compute(8.0 * static_cast<double>(config.n_points),
                     16.0 * static_cast<double>(xs.size()));

    std::vector<sp::Rect> queries;
    std::vector<std::uint64_t> counts;
    while (true) {
      const auto header = comm.recv_value<BatchHeader>(0, kTagHeader);
      if (header.done != 0) break;
      if (header.nqueries == 0) continue;
      queries.resize(header.nqueries);
      comm.recv(std::span<sp::Rect>(queries), 0, kTagQueries);
      mpi::Comm::Phase phase(comm, "serve.execute");
      counts.resize(header.nqueries);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        counts[i] = kernels::count_in_rect(isa, xs.data(), ys.data(),
                                           xs.size(), queries[i].xmin,
                                           queries[i].ymin, queries[i].xmax,
                                           queries[i].ymax);
      }
      const double scanned = static_cast<double>(queries.size()) *
                             static_cast<double>(xs.size());
      local_entries += static_cast<std::uint64_t>(queries.size()) * xs.size();
      comm.sim_compute(config.costs.flops_per_entry * scanned,
                       config.costs.bytes_per_entry_scan * scanned);
      comm.send(std::span<const std::uint64_t>(counts), 0, kTagReply);
    }
  }

  // ---- Shared aggregates (collective over the full communicator).
  const auto entries = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<long long>(local_entries), mpi::ops::Sum{}));
  const auto max_entries = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<long long>(local_entries), mpi::ops::Max{}));
  result.entries_checked = entries;
  const double mean_entries =
      static_cast<double>(entries) / static_cast<double>(shards);
  result.shard_imbalance =
      mean_entries > 0.0 ? static_cast<double>(max_entries) / mean_entries
                         : 0.0;
  return result;
}

}  // namespace dipdc::modules::rangequery
