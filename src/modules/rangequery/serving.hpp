// Module 4, serving mode — a sharded range-query *service* under
// sustained load (ROADMAP item 2: the "millions of users" scenario the
// batch module can only gesture at).
//
// The batch module (module4.hpp) replicates the points on every rank,
// answers one fixed query set, and exits.  Serving mode changes all
// three premises:
//
//   * **Sharded data.**  The extent is cut into a g x g spatial grid and
//     the row-major cell ids are block-partitioned over the shard ranks
//     (container::Partitioning — the same deterministic cut machinery
//     the elastic containers use).  Each shard materializes only its own
//     points, stored as coordinate arrays (SoA) for the SIMD filter
//     kernel; no rank holds the whole dataset.
//   * **Open-loop load.**  Rank 0 is a driver generating a sustained
//     query stream at a fixed offered rate: arrival i happens at
//     (i+1)/qps whether or not the system has kept up (open loop — the
//     defining property that lets saturation actually hurt).  Queries
//     are admitted into a bounded queue (arrivals beyond the cap are
//     rejected and counted), closed into fixed-size admission batches,
//     and each batch is routed to exactly the shards whose cell ranges
//     intersect each query window.
//   * **Pipelined execution.**  Up to `pipeline` batches are in flight:
//     the driver scatters batch k+1 while the shards still execute
//     batch k, then gathers per-query match counts and records each
//     query's latency (completion minus arrival) into an obs log2
//     histogram.  p50/p99 and achieved queries/sec come out of that
//     histogram — the serving numbers the handbook chapter reads.
//
// Everything runs in simulated time on the minimpi machine model, so a
// fixed configuration is bit-identical across transport backends and
// kernel ISAs: the same queries are admitted, dropped, and answered,
// with the same latencies, on threads, shm, and tcp.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "kernels/dispatch.hpp"
#include "minimpi/comm.hpp"
#include "modules/rangequery/module4.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace dipdc::modules::rangequery {

/// Spatial mix of the open-loop query stream.
enum class Mix {
  kUniform,  // windows uniformly placed over the whole extent
  kHotspot,  // `hot_fraction` of windows inside one small hot box
  kZipf,     // window placement by Zipf-ranked grid-cell popularity
};

/// Parses "uniform" | "hotspot" | "zipf" (throws support::
/// PreconditionError on anything else).
Mix parse_mix(std::string_view text);
const char* mix_name(Mix mix);

struct ServeConfig {
  // Dataset: n_points uniform in [0, extent)^2, sharded by grid cell.
  std::size_t n_points = 50000;
  double extent = 100.0;
  /// Query window side (windows are placed corner-first and kept inside
  /// the extent).
  double side = 4.0;

  // Open-loop workload.
  double qps = 4000.0;    // offered arrival rate (queries per simulated second)
  double duration = 1.0;  // seconds of arrivals (offered = round(qps*duration))
  Mix mix = Mix::kUniform;
  double hot_fraction = 0.9;         // hotspot: share of queries in the hot box
  double hot_extent_fraction = 0.1;  // hotspot: hot box side / extent
  double zipf_s = 1.1;               // zipf: popularity exponent

  // Admission and pipeline.
  std::size_t batch = 16;       // admission batch size (queries per batch)
  std::size_t queue_cap = 256;  // bounded queue: arrivals beyond this drop
  std::size_t pipeline = 2;     // max batches in flight (1 = no overlap)

  /// Grid cells per side; 0 = smallest g with g*g >= 4 * shards.
  std::size_t grid = 0;

  std::uint64_t seed = 1;  // points draw from seed, the stream from seed+1
  kernels::Policy kernel = kernels::Policy::kAuto;
  CostConstants costs{};
};

struct ServeResult {
  // Admission accounting (driver).
  std::uint64_t offered = 0;    // open-loop arrivals generated
  std::uint64_t admitted = 0;   // entered the bounded queue
  std::uint64_t rejected = 0;   // dropped at the full queue
  std::uint64_t completed = 0;  // answered (== admitted: admitted work finishes)
  std::uint64_t batches = 0;

  std::uint64_t total_matches = 0;    // sum of per-query match counts
  std::uint64_t entries_checked = 0;  // points scanned over all shards
  /// max / mean of per-shard scanned entries (1.0 = perfectly balanced).
  double shard_imbalance = 0.0;

  double makespan = 0.0;      // driver clock when the last batch completed
  double achieved_qps = 0.0;  // completed / makespan
  double p50_latency = 0.0;   // seconds, from the log2 histogram
  double p99_latency = 0.0;
  double mean_latency = 0.0;
  double max_latency = 0.0;

  /// Per-query latency in microseconds, log2-bucketed (driver only).
  obs::Histogram latency_us;

  int shards = 0;
  int grid_side = 0;
};

/// Runs the serving loop on `comm`: rank 0 drives, ranks 1..size-1 hold
/// shards.  Requires comm.size() >= 2.  The full result is produced on
/// rank 0 (shards return the shared aggregates only).
ServeResult serve(minimpi::Comm& comm, const ServeConfig& config);

/// The deterministic open-loop query generator (exposed for tests and
/// the bench): produces the exact stream `serve` consumes, as a pure
/// function of the config's workload parameters and seed.
class QueryStream {
 public:
  QueryStream(const ServeConfig& config, int grid_side);

  /// Next query window (corner-placed, clamped inside the extent).
  spatial::Rect next();

 private:
  double extent_;
  double side_;
  Mix mix_;
  double hot_fraction_;
  spatial::Point2 hot_corner_;  // hot box corner (hotspot mix)
  double hot_side_;
  double cell_side_;                // zipf mix: grid geometry
  int grid_side_;
  std::vector<double> zipf_cdf_;    // cumulative cell popularity
  std::vector<std::uint32_t> zipf_cells_;  // popularity rank -> cell id
  support::Xoshiro256 rng_;
};

/// Smallest grid side g with g*g >= 4 * shards (the default used when
/// ServeConfig::grid == 0).
int default_grid_side(int shards);

}  // namespace dipdc::modules::rangequery
