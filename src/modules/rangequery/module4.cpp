#include "modules/rangequery/module4.hpp"

#include <algorithm>

#include "dataio/dataset.hpp"
#include "index/kdtree.hpp"
#include "index/quadtree.hpp"
#include "index/rtree.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dipdc::modules::rangequery {

namespace mpi = minimpi;
namespace sp = spatial;

namespace {

/// Reduce to the root then broadcast (the module prescribes MPI_Reduce).
template <typename T, typename Op>
T reduce_to_all(mpi::Comm& comm, T value, Op op) {
  T out{};
  comm.reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, 0);
  return comm.bcast_value(out, 0);
}

}  // namespace

std::vector<sp::Rect> make_query_workload(std::size_t count, double extent,
                                          double side, std::uint64_t seed) {
  DIPDC_REQUIRE(extent > 0.0 && side >= 0.0, "bad workload geometry");
  support::Xoshiro256 rng(seed);
  std::vector<sp::Rect> queries(count);
  for (auto& q : queries) {
    const double x = rng.uniform(0.0, extent);
    const double y = rng.uniform(0.0, extent);
    q = {x, y, x + side, y + side};
  }
  return queries;
}

Result run_distributed(mpi::Comm& comm,
                       std::span<const sp::Point2> points,
                       std::span<const sp::Rect> queries,
                       const Config& config) {
  const int p = comm.size();
  const int r = comm.rank();
  Result result;

  const double t0 = comm.wtime();

  // Build the index (replicated on every rank, like the data).  The build
  // cost is charged per point: an insert descends ~height nodes.
  sp::RTree rtree(config.index_fanout);
  sp::Rect bounds = sp::Rect::empty();
  for (const auto& pt : points) bounds = bounds.united(sp::Rect::of_point(pt));
  sp::QuadTree qtree(bounds.valid() ? bounds : sp::Rect{0, 0, 1, 1},
                     config.index_fanout);
  sp::KdTree kdtree;
  if (config.engine == Engine::kRTree) {
    rtree = sp::RTree::bulk_load(points, config.index_fanout);
    comm.sim_compute(
        16.0 * static_cast<double>(points.size()),
        static_cast<double>(points.size()) * config.costs.bytes_per_entry_index);
  } else if (config.engine == Engine::kKdTree) {
    kdtree = sp::KdTree::build(points);
    comm.sim_compute(
        16.0 * static_cast<double>(points.size()),
        static_cast<double>(points.size()) * config.costs.bytes_per_entry_index);
  } else if (config.engine == Engine::kQuadTree) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      qtree.insert(points[i], static_cast<std::uint32_t>(i));
    }
    comm.sim_compute(
        16.0 * static_cast<double>(points.size()),
        static_cast<double>(points.size()) * config.costs.bytes_per_entry_index);
  }
  const double t_built = comm.wtime();

  // Answer this rank's share of the queries.
  const auto parts =
      dataio::block_partition(queries.size(), static_cast<std::size_t>(p));
  const auto [q_begin, q_end] = parts[static_cast<std::size_t>(r)];

  std::uint64_t local_matches = 0;
  sp::QueryStats stats;
  std::vector<std::uint32_t> hits;
  for (std::size_t q = q_begin; q < q_end; ++q) {
    hits.clear();
    switch (config.engine) {
      case Engine::kBruteForce:
        sp::brute_force_query(points, queries[q], hits, &stats);
        break;
      case Engine::kRTree:
        rtree.query(queries[q], hits, &stats);
        break;
      case Engine::kQuadTree:
        qtree.query(queries[q], hits, &stats);
        break;
      case Engine::kKdTree:
        kdtree.query(queries[q], hits, &stats);
        break;
    }
    local_matches += hits.size();
  }

  // Charge the machine model from the measured structural counts.
  const auto checked = static_cast<double>(stats.entries_checked);
  const auto visited = static_cast<double>(stats.nodes_visited);
  const bool indexed = config.engine != Engine::kBruteForce;
  const double flops = config.costs.flops_per_entry * checked;
  const double bytes =
      indexed ? config.costs.bytes_per_entry_index * checked +
                    config.costs.bytes_per_node_visit * visited
              : config.costs.bytes_per_entry_scan * checked;
  comm.sim_compute(flops, bytes);
  const double t_queried = comm.wtime();

  // Combine results on the root (the module's MPI_Reduce step) and share.
  const auto lm = static_cast<long long>(local_matches);
  std::uint64_t total =
      static_cast<std::uint64_t>(reduce_to_all(comm, lm, mpi::ops::Sum{}));
  result.total_matches = total;
  result.entries_checked = static_cast<std::uint64_t>(reduce_to_all(
      comm, static_cast<long long>(stats.entries_checked), mpi::ops::Sum{}));
  result.nodes_visited = static_cast<std::uint64_t>(reduce_to_all(
      comm, static_cast<long long>(stats.nodes_visited), mpi::ops::Sum{}));

  const double my_total = comm.wtime() - t0;
  result.sim_time = reduce_to_all(comm, my_total, mpi::ops::Max{});
  result.build_time = t_built - t0;
  result.query_time = t_queried - t_built;
  return result;
}

}  // namespace dipdc::modules::rangequery
