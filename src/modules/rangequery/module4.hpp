// Module 4 — Range Queries (paper §III-E).
//
// The input dataset and query set are stored on every rank before
// processing begins (the module's premise); each rank answers its assigned
// share of the queries; a Reduce combines the match counts and the slowest
// rank's time.  Two engines:
//
//   * brute force — scans all points per query.  Sequential streaming with
//     high arithmetic intensity per byte: inherently compute-bound, scales
//     almost linearly (the module's activity 1).
//   * R-tree — the supplied index (built from scratch in src/index).  Far
//     fewer comparisons per query, but each one is a dependent pointer
//     chase with poor locality: a much higher memory-access to
//     distance-calculation ratio, so it is memory-bound and scales worse
//     while being absolutely much faster (activity 2).
//
// The machine-model cost of each engine is derived from the *measured*
// structural counts (entries checked, nodes visited) times per-operation
// constants that encode those access characters; the constants are
// documented below and exercised by the ablation bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/geometry.hpp"
#include "minimpi/comm.hpp"

namespace dipdc::modules::rangequery {

enum class Engine { kBruteForce, kRTree, kQuadTree, kKdTree };

/// Cost-model constants (flops and DRAM bytes per structural event).
/// Brute force: 8 flop-equivalents per point (4 compares + loop overhead)
/// against 4 bytes of effective traffic (sequential, prefetched, line
/// reuse across the 16-byte points).  Index engines: the same comparisons
/// but ~48 bytes per entry touched plus 64 per node visited (pointer-chased
/// node memory with no spatial reuse).
struct CostConstants {
  double flops_per_entry = 8.0;
  double bytes_per_entry_scan = 4.0;
  double bytes_per_entry_index = 48.0;
  double bytes_per_node_visit = 64.0;
};

struct Config {
  Engine engine = Engine::kBruteForce;
  /// R-tree fan-out / quad-tree node capacity.
  std::size_t index_fanout = 16;
  CostConstants costs{};
};

struct Result {
  /// Total matches over all queries (order-independent correctness check).
  std::uint64_t total_matches = 0;
  /// Structural counts summed over all ranks.
  std::uint64_t entries_checked = 0;
  std::uint64_t nodes_visited = 0;
  /// Slowest rank's simulated time: build + query phases.
  double sim_time = 0.0;
  double build_time = 0.0;
  double query_time = 0.0;
};

/// Runs the distributed range-query workload.  `points` and `queries` must
/// be identical on every rank (replicated input, per the module).  Queries
/// are block-partitioned over ranks.
Result run_distributed(minimpi::Comm& comm,
                       std::span<const spatial::Point2> points,
                       std::span<const spatial::Rect> queries,
                       const Config& config);

/// Deterministic query workload: windows with side `side` uniformly placed
/// in [0, extent)^2.
std::vector<spatial::Rect> make_query_workload(std::size_t count,
                                               double extent, double side,
                                               std::uint64_t seed);

}  // namespace dipdc::modules::rangequery
