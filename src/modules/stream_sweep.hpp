// The three-stage out-of-core rotation shared by the streamed module
// pipelines (modules 2 and 3).
//
// The dataset lives in a chunk file (dataio/chunk.hpp) that only rank 0
// opens.  chunk_sweep() moves it past every rank, chunk by chunk, with
// the stages overlapped:
//
//   read       rank 0's ChunkReader::next() hands over chunk k while its
//              background thread is already reading k+1 from disk;
//   communicate chunk k+1 is broadcast with minimpi's nonblocking ibcast,
//              issued *before* the chunk-k consume runs;
//   compute    consume(k, values) runs while the k+1 transfer is in
//              flight; the wait afterwards usually finds it complete.
//
// With overlap=false the same chunks move through the same collectives,
// but each broadcast is waited before the consume and the root reads
// without read-ahead — the baseline the benches and the `--no-overlap`
// CLI flag compare against.  The consumed values are identical either
// way; only the timing differs.
//
// Determinism: the steady loop performs exactly one collective (ibcast)
// per chunk, so a non-root rank has at most one outstanding posted
// receive at any time and no other receive-side traffic in the window.
// Its completion time is then schedule-independent, which keeps simulated
// clocks — not just results — bit-identical across backends.
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "dataio/chunk.hpp"
#include "minimpi/comm.hpp"
#include "support/error.hpp"

namespace dipdc::modules::streaming {

/// Broadcast-shape handshake: rank 0 reads the chunk-file header, every
/// rank returns the same geometry.  `reader` is non-null on rank 0 only.
inline dataio::ChunkFileInfo bcast_geometry(minimpi::Comm& comm,
                                            const dataio::ChunkReader* reader) {
  std::size_t shape[3] = {0, 0, 0};
  if (comm.rank() == 0) {
    DIPDC_REQUIRE(reader != nullptr, "rank 0 must open the chunk file");
    shape[0] = reader->dim();
    shape[1] = reader->total_rows();
    shape[2] = reader->info().chunk_rows;
  }
  comm.bcast(std::span<std::size_t>(shape, 3), 0);
  return {shape[0], shape[1], shape[2]};
}

/// Runs `consume(k, values)` on every rank for each chunk k in order,
/// with the chunks flowing root -> everyone through the rotation above.
/// `reader` is rank 0's open reader (nullptr elsewhere); `geo` must be
/// the bcast_geometry() result.  consume() may keep no reference into
/// `values` — the buffer is recycled for chunk k+2.
inline void chunk_sweep(
    minimpi::Comm& comm, dataio::ChunkReader* reader,
    const dataio::ChunkFileInfo& geo, bool overlap,
    const std::function<void(std::size_t, std::span<const double>)>&
        consume) {
  const std::size_t nchunks = geo.num_chunks();
  if (nchunks == 0) return;
  const bool root = comm.rank() == 0;

  std::vector<double> front;  // chunk being consumed
  std::vector<double> next;   // chunk in flight

  auto load = [&](std::size_t k, std::vector<double>& buf) {
    comm.phase_begin("stream_read");
    if (overlap) {
      // Sequential streaming: the reader's prefetch thread has been
      // reading this chunk since the previous handover.
      const std::size_t got = reader->next(buf);
      DIPDC_REQUIRE(got == k, "chunk stream out of order");
    } else {
      reader->read_chunk(k, buf);  // synchronous, no read-ahead
    }
    comm.phase_end();
  };

  // Prologue: chunk 0 has nothing to hide behind.
  front.resize(geo.rows_in_chunk(0) * geo.dim);
  if (root) load(0, front);
  comm.phase_begin("stream_comm");
  minimpi::Request req = comm.ibcast(std::span<double>(front), 0);
  comm.wait(req);
  comm.phase_end();

  for (std::size_t k = 0; k < nchunks; ++k) {
    const bool more = k + 1 < nchunks;
    if (more) {
      // Issue the k+1 broadcast before computing on k.  The root's send
      // stages a copy (its buffer is free again at issue); a non-root's
      // posted receive fills `next` while consume() runs.
      next.resize(geo.rows_in_chunk(k + 1) * geo.dim);
      if (root) load(k + 1, next);
      comm.phase_begin("stream_comm");
      req = comm.ibcast(std::span<double>(next), 0);
      if (!overlap) comm.wait(req);
      comm.phase_end();
    }
    comm.phase_begin("stream_compute");
    consume(k, std::span<const double>(front));
    comm.phase_end();
    if (more) {
      if (overlap) {
        comm.phase_begin("stream_comm");
        comm.wait(req);
        comm.phase_end();
      }
      std::swap(front, next);
    }
  }
}

}  // namespace dipdc::modules::streaming
