#include "modules/mapreduce/module7.hpp"

#include <algorithm>
#include <unordered_map>

#include "minimpi/ops.hpp"
#include "support/error.hpp"

namespace dipdc::modules::mapreduce {

namespace mpi = minimpi;

namespace {

/// SplitMix64 finalizer: decorrelates the Zipf head from reducer ids.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int reducer_of(std::uint64_t key, const Config& config, int p) {
  if (config.partitioning == Partitioning::kHash) {
    return static_cast<int>(mix(key) % static_cast<std::uint64_t>(p));
  }
  const std::uint64_t vocab = std::max<std::uint64_t>(1, config.vocabulary);
  const std::uint64_t clamped = std::min(key, vocab - 1);
  return static_cast<int>(clamped * static_cast<std::uint64_t>(p) / vocab);
}

std::vector<KeyCount> word_count_sequential(
    std::span<const std::uint64_t> tokens) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(tokens.size() / 4 + 1);
  for (const std::uint64_t t : tokens) ++counts[t];
  std::vector<KeyCount> out;
  out.reserve(counts.size());
  for (const auto& [k, c] : counts) out.push_back({k, c});
  std::sort(out.begin(), out.end(),
            [](const KeyCount& a, const KeyCount& b) { return a.key < b.key; });
  return out;
}

Result word_count(mpi::Comm& comm, std::span<const std::uint64_t> tokens,
                  const Config& config) {
  const int p = comm.size();
  const auto np = static_cast<std::size_t>(p);
  Result result;
  const double t0 = comm.wtime();

  // ---- map (+ optional combiner): per-destination tuple lists. ----------
  comm.phase_begin("map");
  std::vector<std::vector<KeyCount>> outgoing(np);
  if (config.map_side_combine) {
    std::unordered_map<std::uint64_t, std::uint64_t> local;
    local.reserve(tokens.size() / 4 + 1);
    for (const std::uint64_t t : tokens) ++local[t];
    for (const auto& [key, count] : local) {
      outgoing[static_cast<std::size_t>(reducer_of(key, config, p))]
          .push_back({key, count});
    }
    // Hashing + counting: ~8 flop-equivalents and one 16-byte slot touch
    // per token.
    comm.sim_compute(8.0 * static_cast<double>(tokens.size()),
                     16.0 * static_cast<double>(tokens.size()));
  } else {
    for (const std::uint64_t t : tokens) {
      outgoing[static_cast<std::size_t>(reducer_of(t, config, p))]
          .push_back({t, 1});
    }
    comm.sim_compute(4.0 * static_cast<double>(tokens.size()),
                     24.0 * static_cast<double>(tokens.size()));
  }
  comm.phase_end();
  const double t_mapped = comm.wtime();

  // ---- shuffle: Alltoallv of KeyCount tuples. ----------------------------
  comm.phase_begin("shuffle");
  std::vector<std::size_t> send_counts(np), send_displs(np);
  std::vector<KeyCount> send_buf;
  for (std::size_t i = 0; i < np; ++i) {
    send_displs[i] = send_buf.size();
    send_counts[i] = outgoing[i].size();
    send_buf.insert(send_buf.end(), outgoing[i].begin(), outgoing[i].end());
  }
  result.shuffle_tuples_sent = send_buf.size();
  std::vector<std::size_t> recv_counts(np), recv_displs(np);
  comm.alltoall(std::span<const std::size_t>(send_counts),
                std::span<std::size_t>(recv_counts));
  std::size_t total_recv = 0;
  for (std::size_t i = 0; i < np; ++i) {
    recv_displs[i] = total_recv;
    total_recv += recv_counts[i];
  }
  std::vector<KeyCount> received(total_recv);
  comm.alltoallv(std::span<const KeyCount>(send_buf),
                 std::span<const std::size_t>(send_counts),
                 std::span<const std::size_t>(send_displs),
                 std::span<KeyCount>(received),
                 std::span<const std::size_t>(recv_counts),
                 std::span<const std::size_t>(recv_displs));
  comm.phase_end();
  const double t_shuffled = comm.wtime();

  // ---- reduce: merge the partial counts per key. --------------------------
  comm.phase_begin("reduce");
  std::unordered_map<std::uint64_t, std::uint64_t> merged;
  merged.reserve(received.size() / 2 + 1);
  std::uint64_t tuples_in = 0;
  for (const KeyCount& kc : received) {
    merged[kc.key] += kc.count;
    ++tuples_in;
  }
  comm.sim_compute(8.0 * static_cast<double>(received.size()),
                   16.0 * static_cast<double>(received.size()));
  result.counts.reserve(merged.size());
  for (const auto& [k, c] : merged) result.counts.push_back({k, c});
  std::sort(result.counts.begin(), result.counts.end(),
            [](const KeyCount& a, const KeyCount& b) { return a.key < b.key; });
  comm.phase_end();
  const double t_reduced = comm.wtime();

  // ---- invariants & balance metrics. --------------------------------------
  std::uint64_t local_total = 0;
  for (const KeyCount& kc : result.counts) local_total += kc.count;
  result.global_total = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<long long>(local_total), mpi::ops::Sum{}));

  const long long max_in = comm.allreduce_value(
      static_cast<long long>(tuples_in), mpi::ops::Max{});
  const long long sum_in = comm.allreduce_value(
      static_cast<long long>(tuples_in), mpi::ops::Sum{});
  const double mean_in =
      static_cast<double>(sum_in) / static_cast<double>(p);
  result.reducer_imbalance =
      mean_in > 0.0 ? static_cast<double>(max_in) / mean_in : 1.0;

  const double my_total = comm.wtime() - t0;
  result.sim_time = comm.allreduce_value(my_total, mpi::ops::Max{});
  result.map_time = t_mapped - t0;
  result.shuffle_time = t_shuffled - t_mapped;
  result.reduce_time = t_reduced - t_shuffled;
  return result;
}

}  // namespace dipdc::modules::mapreduce
