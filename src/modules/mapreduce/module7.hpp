// Module 7 (extension) — a hand-built MapReduce: distributed word count.
//
// The paper's future work item (ii) asks for "modules with other
// data-intensive algorithms so students have some choice"; word count over
// Zipf-distributed tokens is the canonical data-intensive example (it is
// the hello-world of Hadoop/Spark, which §II cites as the Big Data tools
// students must eventually meet — here they build the engine themselves).
//
// Pipeline: every rank holds a shard of the token stream.
//   map     — count tokens locally (optionally: the combiner),
//   shuffle — partition (key -> reducer) and exchange with Alltoallv,
//   reduce  — merge the received partial counts per key.
//
// The experiments: the map-side combiner collapses the shuffle volume from
// O(tokens) to O(distinct keys); hash partitioning balances the reducers
// while range partitioning collapses under the Zipf head (real text!).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"

namespace dipdc::modules::mapreduce {

enum class Partitioning {
  kHash,   // reducer = mix(key) % p
  kRange,  // reducer = key * p / vocabulary (contiguous key ranges)
};

struct Config {
  Partitioning partitioning = Partitioning::kHash;
  /// Aggregate counts locally before the shuffle (the combiner).
  bool map_side_combine = true;
  /// Vocabulary size (needed by range partitioning).
  std::uint64_t vocabulary = 1 << 16;
};

struct KeyCount {
  std::uint64_t key = 0;
  std::uint64_t count = 0;

  friend bool operator==(const KeyCount&, const KeyCount&) = default;
};

struct Result {
  /// This rank's reduced partition, sorted by key.
  std::vector<KeyCount> counts;
  /// Global invariant: sum of all counts == total number of tokens.
  std::uint64_t global_total = 0;
  /// Tuples this rank shipped during the shuffle, and the global max/mean
  /// tuples received per reducer (the load-balance figure of merit).
  std::uint64_t shuffle_tuples_sent = 0;
  double reducer_imbalance = 1.0;
  double sim_time = 0.0;
  double map_time = 0.0;
  double shuffle_time = 0.0;
  double reduce_time = 0.0;
};

/// Distributed word count over this rank's `tokens` shard.
Result word_count(minimpi::Comm& comm,
                  std::span<const std::uint64_t> tokens,
                  const Config& config);

/// Single-process oracle: counts of all tokens, sorted by key.
std::vector<KeyCount> word_count_sequential(
    std::span<const std::uint64_t> tokens);

/// The reducer a key belongs to under `config` with `p` reducers.
int reducer_of(std::uint64_t key, const Config& config, int p);

}  // namespace dipdc::modules::mapreduce
