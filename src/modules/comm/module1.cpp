#include "modules/comm/module1.hpp"

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace dipdc::modules::comm1 {

namespace mpi = minimpi;

PingPongResult ping_pong(mpi::Comm& comm, int iterations, std::size_t bytes) {
  DIPDC_REQUIRE(comm.size() >= 2, "ping-pong needs at least two ranks");
  DIPDC_REQUIRE(iterations > 0, "need at least one iteration");
  PingPongResult result;
  result.iterations = iterations;
  result.message_bytes = bytes;
  if (comm.rank() > 1) return result;

  std::vector<std::uint8_t> buffer(bytes, 0xAB);
  const double start = comm.wtime();
  for (int i = 0; i < iterations; ++i) {
    if (comm.rank() == 0) {
      comm.send(std::span<const std::uint8_t>(buffer), 1, 0);
      comm.recv(std::span<std::uint8_t>(buffer), 1, 0);
    } else {
      comm.recv(std::span<std::uint8_t>(buffer), 0, 0);
      comm.send(std::span<const std::uint8_t>(buffer), 0, 0);
    }
  }
  result.sim_elapsed = comm.wtime() - start;
  result.mean_one_way = result.sim_elapsed / (2.0 * iterations);
  return result;
}

namespace {

template <typename SendFn>
RingResult ring_impl(mpi::Comm& comm, int rounds, SendFn&& exchange) {
  DIPDC_REQUIRE(rounds > 0, "need at least one round");
  const int p = comm.size();
  const int next = (comm.rank() + 1) % p;
  const int prev = (comm.rank() - 1 + p) % p;

  RingResult result;
  result.rounds = rounds;
  // The token starts as the rank id; each round it moves one step around
  // the ring and the receiver adds its own rank.  After exactly p rounds a
  // token has visited every rank once, so it ends as r + sum(0..p-1).
  long long token = comm.rank();
  const double start = comm.wtime();
  if (p > 1) {
    for (int round = 0; round < rounds; ++round) {
      token = exchange(comm, token, next, prev);
      token += comm.rank();
    }
  }
  result.token = token;
  result.sim_elapsed = comm.wtime() - start;
  return result;
}

}  // namespace

RingResult ring_blocking(mpi::Comm& comm, int rounds) {
  return ring_impl(comm, rounds,
                   [](mpi::Comm& c, long long token, int next, int prev) {
                     c.send_value(token, next, 11);
                     return c.recv_value<long long>(prev, 11);
                   });
}

RingResult ring_nonblocking(mpi::Comm& comm, int rounds) {
  return ring_impl(comm, rounds,
                   [](mpi::Comm& c, long long token, int next, int prev) {
                     mpi::Request req = c.isend_value(token, next, 11);
                     const auto got = c.recv_value<long long>(prev, 11);
                     c.wait(req);
                     return got;
                   });
}

namespace {

RandomCommResult random_comm_impl(mpi::Comm& comm, int messages_per_rank,
                                  std::uint64_t seed, bool any_source) {
  DIPDC_REQUIRE(messages_per_rank >= 0, "message count cannot be negative");
  const int p = comm.size();
  const int r = comm.rank();
  auto rng = support::make_stream(seed, static_cast<std::uint64_t>(r));

  // Draw destinations and count messages per destination.
  std::vector<int> sends_to(static_cast<std::size_t>(p), 0);
  for (int m = 0; m < messages_per_rank; ++m) {
    const int dst =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(p)));
    ++sends_to[static_cast<std::size_t>(dst)];
  }

  RandomCommResult result;
  result.used_any_source = any_source;
  const double start = comm.wtime();

  // Circulate the message counts: this is exactly how the module has
  // students solve "receive from an unknown sender without ANY_SOURCE".
  std::vector<int> recv_counts(static_cast<std::size_t>(p), 0);
  comm.alltoall(std::span<const int>(sends_to), std::span<int>(recv_counts));

  // Fire all sends without blocking so no send/recv ordering can deadlock.
  std::vector<mpi::Request> send_reqs;
  for (int dst = 0; dst < p; ++dst) {
    for (int m = 0; m < sends_to[static_cast<std::size_t>(dst)]; ++m) {
      send_reqs.push_back(comm.isend_value(r, dst, 21));
      ++result.messages_sent;
    }
  }

  if (any_source) {
    std::uint64_t expected = 0;
    for (const int c : recv_counts) {
      expected += static_cast<std::uint64_t>(c);
    }
    for (std::uint64_t m = 0; m < expected; ++m) {
      int payload = -1;
      const mpi::Status st =
          comm.recv(std::span<int>(&payload, 1), mpi::kAnySource, 21);
      if (payload != st.source) result.payloads_consistent = false;
      ++result.messages_received;
    }
  } else {
    for (int src = 0; src < p; ++src) {
      for (int m = 0; m < recv_counts[static_cast<std::size_t>(src)]; ++m) {
        const int payload = comm.recv_value<int>(src, 21);
        if (payload != src) result.payloads_consistent = false;
        ++result.messages_received;
      }
    }
  }
  comm.wait_all(std::span<mpi::Request>(send_reqs));
  result.sim_elapsed = comm.wtime() - start;
  return result;
}

}  // namespace

RandomCommResult random_comm_directed(mpi::Comm& comm, int messages_per_rank,
                                      std::uint64_t seed) {
  return random_comm_impl(comm, messages_per_rank, seed,
                          /*any_source=*/false);
}

RandomCommResult random_comm_any_source(mpi::Comm& comm,
                                        int messages_per_rank,
                                        std::uint64_t seed) {
  return random_comm_impl(comm, messages_per_rank, seed, /*any_source=*/true);
}

}  // namespace dipdc::modules::comm1
