// Module 1 — MPI Communication (paper §III-B).
//
// Reference solutions for the module's three activities: ping-pong
// communication, communication in a ring, and random communication.  The
// random-communication activity exists in the two variants the module
// contrasts: receiving from unknown senders *without* MPI_ANY_SOURCE
// (senders' message counts are circulated first, then every receive names
// its source) and the simpler variant using MPI_ANY_SOURCE.  The ring
// exists in a deliberately deadlock-prone blocking form (run it with
// eager_threshold = 0 to watch the runtime detect the deadlock Module 1
// teaches) and a non-blocking form that is safe under any protocol.
#pragma once

#include <cstddef>
#include <cstdint>

#include "minimpi/comm.hpp"

namespace dipdc::modules::comm1 {

struct PingPongResult {
  int iterations = 0;
  std::size_t message_bytes = 0;
  /// Simulated seconds for the whole exchange, measured on rank 0.
  double sim_elapsed = 0.0;
  /// Mean simulated one-way latency per message.
  double mean_one_way = 0.0;
};

/// Activity 1: ranks 0 and 1 bounce a `bytes`-sized message back and forth
/// `iterations` times.  Other ranks idle.  Collective-free.
PingPongResult ping_pong(minimpi::Comm& comm, int iterations,
                         std::size_t bytes);

struct RingResult {
  int rounds = 0;
  /// The token after circulation: sum of all ranks, `rounds` times.
  long long token = 0;
  double sim_elapsed = 0.0;
};

/// Activity 2, naive version: every rank does send(next) *then* recv(prev).
/// Correct with eager buffering; deadlocks (and is detected) when every
/// send is a rendezvous.
RingResult ring_blocking(minimpi::Comm& comm, int rounds);

/// Activity 2, robust version: isend(next), recv(prev), wait — the fix the
/// module asks students to discover.
RingResult ring_nonblocking(minimpi::Comm& comm, int rounds);

struct RandomCommResult {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  bool used_any_source = false;
  double sim_elapsed = 0.0;
  /// Every received payload carried its sender's rank (self-check).
  bool payloads_consistent = true;
};

/// Activity 3 without MPI_ANY_SOURCE: each rank draws `messages_per_rank`
/// random destinations (seeded), the per-pair message counts are exchanged
/// with Alltoall, and every receive then names its exact source.
RandomCommResult random_comm_directed(minimpi::Comm& comm,
                                      int messages_per_rank,
                                      std::uint64_t seed);

/// Activity 3 with MPI_ANY_SOURCE: only the expected total is derived from
/// the count exchange; receives are wildcarded.
RandomCommResult random_comm_any_source(minimpi::Comm& comm,
                                        int messages_per_rank,
                                        std::uint64_t seed);

}  // namespace dipdc::modules::comm1
