#include "modules/stencil/module6.hpp"

#include <algorithm>

#include "dataio/dataset.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"

namespace dipdc::modules::stencil {

namespace mpi = minimpi;

double initial_value(std::size_t i) {
  // A deterministic, bounded, non-smooth field (hash-based) so that every
  // cell matters in the checksum.
  std::uint64_t z = (static_cast<std::uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  return static_cast<double>(z % 10000) / 10000.0;
}

namespace {

/// One Jacobi sweep over cells [lo, hi) of `cur` into `nxt`; cells outside
/// the range keep their current values.
void sweep(const std::vector<double>& cur, std::vector<double>& nxt,
           std::size_t lo, std::size_t hi, double alpha) {
  std::copy(cur.begin(), cur.end(), nxt.begin());
  for (std::size_t i = lo; i < hi; ++i) {
    nxt[i] = cur[i] + alpha * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
  }
}

void validate(const Config& config) {
  DIPDC_REQUIRE(config.global_cells > 0, "need at least one cell");
  DIPDC_REQUIRE(config.iterations > 0, "need at least one iteration");
  DIPDC_REQUIRE(config.halo_width >= 1, "halo width must be positive");
  DIPDC_REQUIRE(config.iterations % config.halo_width == 0,
                "iterations must be a multiple of the halo width");
  DIPDC_REQUIRE(config.alpha > 0.0 && config.alpha <= 0.5,
                "diffusion coefficient must be in (0, 0.5] for stability");
  DIPDC_REQUIRE(
      config.exchange == Exchange::kBlocking || config.halo_width == 1,
      "the overlapped exchange is implemented for halo width 1 "
      "(deep halos and overlap are separate optimizations in this module)");
}

}  // namespace

std::vector<double> run_sequential(const Config& config) {
  validate(config);
  const std::size_t n = config.global_cells;
  // One ghost cell on each side holding the Dirichlet boundary (0).
  std::vector<double> cur(n + 2, 0.0), nxt(n + 2, 0.0);
  for (std::size_t i = 0; i < n; ++i) cur[i + 1] = initial_value(i);
  for (int it = 0; it < config.iterations; ++it) {
    sweep(cur, nxt, 1, n + 1, config.alpha);
    std::swap(cur, nxt);
  }
  return {cur.begin() + 1, cur.end() - 1};
}

Result run_distributed(mpi::Comm& comm, const Config& config) {
  validate(config);
  const int p = comm.size();
  const int r = comm.rank();
  const auto w = static_cast<std::size_t>(config.halo_width);

  DIPDC_REQUIRE(config.global_cells >=
                    static_cast<std::size_t>(p) * w,
                "every rank needs at least halo_width cells");
  const auto parts =
      dataio::block_partition(config.global_cells, static_cast<std::size_t>(p));
  const auto [begin, end] = parts[static_cast<std::size_t>(r)];
  const std::size_t len = end - begin;
  const std::size_t L = len + 2 * w;
  const bool leftmost = r == 0;
  const bool rightmost = r == p - 1;

  std::vector<double> cur(L, 0.0), nxt(L, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    cur[w + i] = initial_value(begin + i);
  }

  Result result;
  const double t0 = comm.wtime();
  double comm_marks = 0.0;

  const int rounds = config.iterations / config.halo_width;
  for (int round = 0; round < rounds; ++round) {
    const double tc = comm.wtime();
    if (config.exchange == Exchange::kBlocking) {
      // "Blocking" here means the exchange completes in full before any
      // computation (no overlap); the sends themselves are non-blocking so
      // the exchange cannot deadlock under the rendezvous protocol.
      comm.phase_begin("halo_exchange");
      std::vector<mpi::Request> sreqs;
      if (!rightmost) {
        sreqs.push_back(comm.isend(
            std::span<const double>(cur.data() + len, w), r + 1, 60));
        ++result.halo_messages;
      }
      if (!leftmost) {
        sreqs.push_back(comm.isend(
            std::span<const double>(cur.data() + w, w), r - 1, 61));
        ++result.halo_messages;
      }
      if (!leftmost) {
        comm.recv(std::span<double>(cur.data(), w), r - 1, 60);
      }
      if (!rightmost) {
        comm.recv(std::span<double>(cur.data() + w + len, w), r + 1, 61);
      }
      comm.wait_all(std::span<mpi::Request>(sreqs));
      comm.phase_end();
      comm_marks += comm.wtime() - tc;

      // w sweeps; the valid region shrinks inward from non-boundary edges.
      comm.phase_begin("sweep");
      for (std::size_t s = 1; s <= w; ++s) {
        const std::size_t lo = leftmost ? w : s;
        const std::size_t hi = rightmost ? L - w : L - s;
        if (lo < hi) sweep(cur, nxt, lo, hi, config.alpha);
        else std::copy(cur.begin(), cur.end(), nxt.begin());
        comm.sim_compute(4.0 * static_cast<double>(hi > lo ? hi - lo : 0),
                         16.0 * static_cast<double>(L));
        std::swap(cur, nxt);
      }
      comm.phase_end();
    } else {
      // Overlapped (w == 1): post the halo transfers, compute the
      // interior while they fly, then finish the two boundary cells.
      comm.phase_begin("overlap_round");
      std::vector<mpi::Request> reqs;
      if (!leftmost) {
        reqs.push_back(comm.irecv(std::span<double>(cur.data(), 1), r - 1,
                                  60));
        reqs.push_back(comm.isend(
            std::span<const double>(cur.data() + 1, 1), r - 1, 61));
        ++result.halo_messages;
      }
      if (!rightmost) {
        reqs.push_back(comm.irecv(
            std::span<double>(cur.data() + 1 + len, 1), r + 1, 61));
        reqs.push_back(comm.isend(
            std::span<const double>(cur.data() + len, 1), r + 1, 60));
        ++result.halo_messages;
      }
      comm_marks += comm.wtime() - tc;

      // Interior cells need no halo data.
      if (len >= 2) {
        sweep(cur, nxt, 2, len, config.alpha);
        comm.sim_compute(4.0 * static_cast<double>(len - 2),
                         16.0 * static_cast<double>(L));
      } else {
        std::copy(cur.begin(), cur.end(), nxt.begin());
      }

      const double tw = comm.wtime();
      comm.wait_all(std::span<mpi::Request>(reqs));
      comm_marks += comm.wtime() - tw;

      // Boundary cells, now that the ghosts arrived.
      if (len >= 1) {
        const std::size_t first = 1, last = len;
        nxt[first] = cur[first] + config.alpha * (cur[first - 1] -
                                                  2.0 * cur[first] +
                                                  cur[first + 1]);
        if (last != first) {
          nxt[last] = cur[last] + config.alpha * (cur[last - 1] -
                                                  2.0 * cur[last] +
                                                  cur[last + 1]);
        }
        comm.sim_compute(8.0, 64.0);
      }
      std::swap(cur, nxt);
      comm.phase_end();
    }
  }

  double local_sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) local_sum += cur[w + i];
  double checksum = 0.0;
  comm.reduce(std::span<const double>(&local_sum, 1),
              std::span<double>(&checksum, 1), mpi::ops::Sum{}, 0);
  result.checksum = comm.bcast_value(checksum, 0);

  const double my_total = comm.wtime() - t0;
  double slowest = 0.0;
  comm.reduce(std::span<const double>(&my_total, 1),
              std::span<double>(&slowest, 1), mpi::ops::Max{}, 0);
  result.sim_time = comm.bcast_value(slowest, 0);
  result.comm_time = comm_marks;
  result.compute_time = my_total - comm_marks;
  return result;
}

}  // namespace dipdc::modules::stencil
