// Module 6 (extension) — Halo Exchange & Latency Hiding.
//
// The paper's future work item (i) calls for "modules that capture
// excluded concepts, such as increasing focus on communication and latency
// hiding".  This module is that material: a distributed 1-D Jacobi
// diffusion stencil whose halo exchange comes in two flavours,
//
//   * kBlocking   — exchange halos with blocking Sendrecv, then compute
//                   the whole local block (communication and computation
//                   strictly serialized), and
//   * kOverlapped — post Irecv/Isend for the halos, compute the interior
//                   cells (which need no halo data), then Wait and finish
//                   the boundary strips: communication hidden behind the
//                   interior computation.
//
// A second knob, the halo width w, trades communication frequency for
// redundant computation: exchanging w-deep halos allows w local sweeps
// between exchanges (communication-avoiding stencils).
#pragma once

#include <cstddef>
#include <vector>

#include "minimpi/comm.hpp"

namespace dipdc::modules::stencil {

enum class Exchange { kBlocking, kOverlapped };

struct Config {
  std::size_t global_cells = 1 << 16;
  int iterations = 64;       // total Jacobi sweeps
  int halo_width = 1;        // halo depth = sweeps per exchange
  double alpha = 0.2;        // diffusion coefficient (stability: <= 0.5)
  Exchange exchange = Exchange::kBlocking;
};

struct Result {
  /// Sum of the final field — identical across rank counts, exchange
  /// styles and halo widths (the correctness handle).
  double checksum = 0.0;
  /// Slowest rank's simulated total, plus this rank's split.
  double sim_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;
  /// Halo messages this rank sent.
  std::uint64_t halo_messages = 0;
};

/// Deterministic initial field value of global cell `i`.
double initial_value(std::size_t i);

/// Single-process oracle.
std::vector<double> run_sequential(const Config& config);

/// Distributed stencil; every rank passes the same config.
/// `iterations` must be a multiple of `halo_width`.
Result run_distributed(minimpi::Comm& comm, const Config& config);

}  // namespace dipdc::modules::stencil
