#include "modules/kmeans/module5.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <optional>

#include "container/container.hpp"
#include "kernels/distance.hpp"
#include "kernels/kmeans.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dipdc::modules::kmeans {

namespace mpi = minimpi;

namespace {

// The assignment and centroid-update hot loops live in src/kernels
// (kernels::assign_points / kernels::update_centroids): runtime-dispatched
// scalar/AVX2 implementations that are bit-identical by the canonical
// accumulation contract, so every path below clusters identically no
// matter which ISA runs.

/// Initial centroids at the data owner: first-k or k-means++ seeding.
std::vector<double> initial_centroids(const dataio::Dataset& dataset,
                                      const Config& config,
                                      kernels::Isa isa) {
  const std::size_t k = config.k;
  const std::size_t dim = dataset.dim();
  std::vector<double> centroids(k * dim);
  if (config.init == Init::kFirstK) {
    std::copy(dataset.values().begin(),
              dataset.values().begin() + static_cast<std::ptrdiff_t>(k * dim),
              centroids.begin());
    return centroids;
  }
  // k-means++: choose each next seed with probability proportional to its
  // squared distance to the nearest already-chosen seed.
  support::Xoshiro256 rng(config.init_seed);
  const std::size_t n = dataset.size();
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  std::size_t first = rng.uniform_index(n);
  for (std::size_t j = 0; j < dim; ++j) {
    centroids[j] = dataset.point(first)[j];
  }
  for (std::size_t c = 1; c <= k; ++c) {
    // Refresh distances against the centroid chosen in the previous round.
    const double* last = centroids.data() + (c - 1) * dim;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dist =
          kernels::squared_distance(isa, dataset.point(i).data(), last, dim);
      d2[i] = std::min(d2[i], dist);
      total += d2[i];
    }
    if (c == k) break;
    double target = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    for (std::size_t j = 0; j < dim; ++j) {
      centroids[c * dim + j] = dataset.point(pick)[j];
    }
  }
  return centroids;
}

/// Assignment-phase cost: k distance evaluations per point (3 flops per
/// dimension each) over one stream of the local points.
void charge_assignment(mpi::Comm& comm, std::size_t local_points,
                       std::size_t k, std::size_t dim) {
  const double n = static_cast<double>(local_points);
  comm.sim_compute(n * static_cast<double>(k) * 3.0 *
                       static_cast<double>(dim),
                   n * static_cast<double>(dim) * sizeof(double));
}

/// Checkpoint blob for the elastic path: [next iteration | centroids].
/// Replicated on every rank, so any survivor's copy restores the run.
std::vector<std::byte> pack_state(std::uint64_t next_iter,
                                  std::span<const double> centroids) {
  std::vector<std::byte> blob(sizeof(next_iter) + centroids.size_bytes());
  std::memcpy(blob.data(), &next_iter, sizeof(next_iter));
  if (!centroids.empty()) {
    std::memcpy(blob.data() + sizeof(next_iter), centroids.data(),
                centroids.size_bytes());
  }
  return blob;
}

bool unpack_state(std::span<const std::byte> blob, std::uint64_t* next_iter,
                  std::vector<double>* centroids) {
  if (blob.size() < sizeof(*next_iter)) return false;
  std::memcpy(next_iter, blob.data(), sizeof(*next_iter));
  centroids->resize((blob.size() - sizeof(*next_iter)) / sizeof(double));
  if (!centroids->empty()) {
    std::memcpy(centroids->data(), blob.data() + sizeof(*next_iter),
                centroids->size() * sizeof(double));
  }
  return true;
}

}  // namespace

Result lloyd_sequential(const dataio::Dataset& dataset, const Config& config) {
  const std::size_t n = dataset.size();
  const std::size_t dim = dataset.dim();
  const std::size_t k = config.k;
  DIPDC_REQUIRE(k > 0 && k <= n, "need 1 <= k <= n");
  const kernels::Isa isa = kernels::resolve(config.kernel);

  Result result;
  result.centroids = initial_centroids(dataset, config, isa);
  std::vector<std::size_t> assignment(n, 0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::vector<double> sums(k * dim, 0.0);
    std::vector<double> counts(k, 0.0);
    kernels::assign_points(isa, dataset.values().data(), n, dim,
                           result.centroids.data(), k, assignment.data(),
                           sums.data(), counts.data());
    const double movement = kernels::update_centroids(
        isa, result.centroids.data(), sums.data(), counts.data(), k, dim);
    result.iterations = iter + 1;
    if (movement <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = assignment[i];
    result.inertia += kernels::squared_distance(
        isa, dataset.point(i).data(), result.centroids.data() + c * dim,
        dim);
  }
  return result;
}

Result distributed(mpi::Comm& comm, const dataio::Dataset& dataset,
                   const Config& config) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t k = config.k;
  const kernels::Isa isa = kernels::resolve(config.kernel);

  const double t0 = comm.wtime();
  double comm_marks = 0.0;  // accumulated communication-phase time

  // Distribute the data: shape, row blocks, initial centroids.
  comm.phase_begin("distribute");
  std::size_t shape[2] = {dataset.size(), dataset.dim()};
  comm.bcast(std::span<std::size_t>(shape, 2), 0);
  const std::size_t n = shape[0];
  const std::size_t dim = shape[1];
  DIPDC_REQUIRE(k > 0 && k <= n, "need 1 <= k <= n");

  const auto parts = dataio::block_partition(n, static_cast<std::size_t>(p));
  std::vector<std::size_t> counts_elems(static_cast<std::size_t>(p));
  std::vector<std::size_t> displs(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    const auto& [b, e] = parts[static_cast<std::size_t>(i)];
    counts_elems[static_cast<std::size_t>(i)] = (e - b) * dim;
    displs[static_cast<std::size_t>(i)] = b * dim;
  }
  const auto [my_begin, my_end] = parts[static_cast<std::size_t>(r)];
  const std::size_t my_n = my_end - my_begin;
  std::vector<double> local((my_end - my_begin) * dim);
  comm.scatterv(dataset.values(), std::span<const std::size_t>(counts_elems),
                std::span<const std::size_t>(displs),
                std::span<double>(local), 0);

  Result result;
  result.centroids.assign(k * dim, 0.0);
  if (r == 0) {
    result.centroids = initial_centroids(dataset, config, isa);
  }
  comm.bcast(std::span<double>(result.centroids), 0);
  comm.phase_end();
  comm_marks += comm.wtime() - t0;

  // Byte accounting starts after the one-time data distribution, so
  // comm_bytes isolates the per-iteration cost the two strategies differ
  // in (the module's communication-volume comparison).
  const std::uint64_t transport_before = comm.stats().transport_bytes_sent;

  std::vector<std::size_t> assignment(my_n, 0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Assignment phase (pure local compute): the fused dispatched
    // assign+accumulate kernel.
    comm.phase_begin("assign");
    std::vector<double> sums(k * dim, 0.0);
    std::vector<double> member_counts(k, 0.0);
    kernels::assign_points(isa, local.data(), my_n, dim,
                           result.centroids.data(), k, assignment.data(),
                           sums.data(), member_counts.data());
    charge_assignment(comm, my_n, k, dim);
    comm.phase_end();

    // Centroid update: the module's two communication options.
    comm.phase_begin("update");
    const double t_comm = comm.wtime();
    double movement = 0.0;
    if (config.strategy == Strategy::kWeightedMeans) {
      std::vector<double> global_sums(k * dim, 0.0);
      std::vector<double> global_counts(k, 0.0);
      comm.allreduce(std::span<const double>(sums),
                     std::span<double>(global_sums), mpi::ops::Sum{});
      comm.allreduce(std::span<const double>(member_counts),
                     std::span<double>(global_counts), mpi::ops::Sum{});
      movement = kernels::update_centroids(isa, result.centroids.data(),
                                           global_sums.data(),
                                           global_counts.data(), k, dim);
    } else {
      // Explicit assignments: gather every rank's assignment vector to the
      // root, which owns the full dataset and recomputes the centroids.
      std::vector<std::size_t> gcounts(static_cast<std::size_t>(p));
      std::vector<std::size_t> gdispls(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        const auto& [b, e] = parts[static_cast<std::size_t>(i)];
        gcounts[static_cast<std::size_t>(i)] = e - b;
        gdispls[static_cast<std::size_t>(i)] = b;
      }
      std::vector<std::size_t> all_assignments(r == 0 ? n : 0);
      comm.gatherv(std::span<const std::size_t>(assignment),
                   std::span<const std::size_t>(gcounts),
                   std::span<const std::size_t>(gdispls),
                   std::span<std::size_t>(all_assignments), 0);
      if (r == 0) {
        std::vector<double> root_sums(k * dim, 0.0);
        std::vector<double> root_counts(k, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t c = all_assignments[i];
          DIPDC_REQUIRE(c < k, "corrupt assignment index");
          for (std::size_t j = 0; j < dim; ++j) {
            root_sums[c * dim + j] += dataset.point(i)[j];
          }
          root_counts[c] += 1.0;
        }
        movement = kernels::update_centroids(isa, result.centroids.data(),
                                             root_sums.data(),
                                             root_counts.data(), k, dim);
      }
      comm.bcast(std::span<double>(result.centroids), 0);
      movement = comm.bcast_value(movement, 0);
    }
    comm.phase_end();
    comm_marks += comm.wtime() - t_comm;

    result.iterations = iter + 1;
    if (movement <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final inertia over the last assignment.
  double local_inertia = 0.0;
  for (std::size_t i = 0; i < my_n; ++i) {
    local_inertia += kernels::squared_distance(
        isa, local.data() + i * dim,
        result.centroids.data() + assignment[i] * dim, dim);
  }
  result.inertia = comm.allreduce_value(local_inertia, mpi::ops::Sum{});

  const double my_total = comm.wtime() - t0;
  result.sim_time = comm.allreduce_value(my_total, mpi::ops::Max{});
  result.comm_time = comm_marks;
  result.compute_time = my_total - comm_marks;
  const std::uint64_t transport_delta =
      comm.stats().transport_bytes_sent - transport_before;
  result.comm_bytes = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<long long>(transport_delta), mpi::ops::Sum{}));
  return result;
}

Result elastic(mpi::Comm& world, const dataio::Dataset& dataset,
               const Config& config, const ElasticConfig& elastic) {
  namespace box = dipdc::container;
  const std::size_t k = config.k;
  const kernels::Isa isa = kernels::resolve(config.kernel);
  mpi::Comm* comm = &world;
  // Shrunken communicators must outlive the container (it keeps a pointer
  // to the communicator it was recovered onto).
  std::deque<mpi::Comm> shrunk;
  // World rank of the dataset holder — stable across shrink renumbering.
  const int data_world = world.world_group()[0];
  // New-comm rank of the dataset holder, or -1 when it died.
  const auto data_root_on = [&](mpi::Comm& c) {
    const std::vector<int> group = c.world_group();
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (group[i] == data_world) return static_cast<int>(i);
    }
    return -1;
  };

  const double t0 = world.wtime();
  double comm_marks = 0.0;
  std::uint64_t transport_before = world.stats().transport_bytes_sent;

  std::optional<box::Container<double>> pts;
  std::size_t n = 0;
  std::size_t dim = 0;
  std::vector<double> centroids;
  std::uint64_t start_iter = 0;
  std::vector<std::size_t> assignment;
  std::vector<std::size_t> prev_assignment;
  Result result;

  for (;;) {
    try {
      if (!pts) {
        comm->phase_begin("distribute");
        const double t_comm = comm->wtime();
        std::size_t shape[2] = {dataset.size(), dataset.dim()};
        comm->bcast(std::span<std::size_t>(shape, 2), 0);
        n = shape[0];
        dim = shape[1];
        DIPDC_REQUIRE(k > 0 && k <= n, "need 1 <= k <= n");
        std::vector<double> source;
        if (comm->rank() == 0) {
          source.assign(dataset.values().begin(), dataset.values().end());
        }
        pts.emplace(box::Container<double>::scatter(*comm, std::move(source),
                                                    n, dim));
        centroids.assign(k * dim, 0.0);
        if (comm->rank() == 0) {
          centroids = initial_centroids(dataset, config, isa);
        }
        comm->bcast(std::span<double>(centroids), 0);
        comm->phase_end();
        comm_marks += comm->wtime() - t_comm;
        pts->checkpoint(pack_state(0, centroids));
        start_iter = 0;
        // Byte accounting starts after the one-time distribution, matching
        // distributed(); recovery traffic after a kill does count.
        transport_before = comm->stats().transport_bytes_sent;
      }

      for (std::uint64_t iter = start_iter;
           iter < static_cast<std::uint64_t>(config.max_iterations); ++iter) {
        const std::size_t my_n = pts->count();
        comm->phase_begin("assign");
        assignment.assign(my_n, 0);
        std::vector<double> sums(k * dim, 0.0);
        std::vector<double> member_counts(k, 0.0);
        kernels::assign_points(isa, pts->local().data(), my_n, dim,
                               centroids.data(), k, assignment.data(),
                               sums.data(), member_counts.data());
        charge_assignment(*comm, my_n, k, dim);
        comm->phase_end();

        comm->phase_begin("update");
        const double t_comm = comm->wtime();
        double movement = 0.0;
        if (config.strategy == Strategy::kWeightedMeans) {
          std::vector<double> global_sums(k * dim, 0.0);
          std::vector<double> global_counts(k, 0.0);
          comm->allreduce(std::span<const double>(sums),
                          std::span<double>(global_sums), mpi::ops::Sum{});
          comm->allreduce(std::span<const double>(member_counts),
                          std::span<double>(global_counts), mpi::ops::Sum{});
          movement =
              kernels::update_centroids(isa, centroids.data(),
                                        global_sums.data(),
                                        global_counts.data(), k, dim);
        } else {
          // Explicit assignments need the full dataset, which only the
          // original root holds.
          const int data_root = data_root_on(*comm);
          if (data_root < 0) {
            throw mpi::RankFailedError(
                "module5 elastic: the dataset holder died; "
                "explicit-assignments cannot continue");
          }
          const box::Partitioning& part = pts->partitioning();
          const int p = comm->size();
          std::vector<std::size_t> gcounts(static_cast<std::size_t>(p));
          std::vector<std::size_t> gdispls(static_cast<std::size_t>(p));
          for (int i = 0; i < p; ++i) {
            gcounts[static_cast<std::size_t>(i)] = part.count(i);
            gdispls[static_cast<std::size_t>(i)] = part.begin(i);
          }
          std::vector<std::size_t> all_assignments(
              comm->rank() == data_root ? n : 0);
          comm->gatherv(std::span<const std::size_t>(assignment), gcounts,
                        gdispls, std::span<std::size_t>(all_assignments),
                        data_root);
          if (comm->rank() == data_root) {
            std::vector<double> root_sums(k * dim, 0.0);
            std::vector<double> root_counts(k, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
              const std::size_t c = all_assignments[i];
              DIPDC_REQUIRE(c < k, "corrupt assignment index");
              for (std::size_t j = 0; j < dim; ++j) {
                root_sums[c * dim + j] += dataset.point(i)[j];
              }
              root_counts[c] += 1.0;
            }
            movement = kernels::update_centroids(isa, centroids.data(),
                                                 root_sums.data(),
                                                 root_counts.data(), k, dim);
          }
          comm->bcast(std::span<double>(centroids), data_root);
          movement = comm->bcast_value(movement, data_root);
        }
        comm->phase_end();
        comm_marks += comm->wtime() - t_comm;

        result.iterations = static_cast<int>(iter) + 1;

        // Churn weights feed the next rebalance AND the checkpoint, so a
        // post-failure re-cut balances by the same measure.
        std::vector<double> churn(my_n, 2.0);
        if (prev_assignment.size() == my_n) {
          for (std::size_t i = 0; i < my_n; ++i) {
            churn[i] = assignment[i] != prev_assignment[i] ? 2.0 : 1.0;
          }
        }
        pts->set_weights(churn);
        pts->checkpoint(pack_state(iter + 1, centroids));

        if (movement <= config.tolerance) {
          result.converged = true;
          break;
        }
        if (elastic.repartition &&
            pts->rebalance(elastic.imbalance_threshold)) {
          prev_assignment.clear();  // points moved; churn restarts
        } else {
          prev_assignment = assignment;
        }
      }
      break;
    } catch (const mpi::RankFailedError&) {
      if (comm->failed_rank() == comm->world_rank()) throw;  // I am the corpse
      shrunk.push_back(comm->shrink());
      comm = &shrunk.back();
      prev_assignment.clear();
      // A kill during the distribution can strand slower survivors inside
      // the scatter constructor, so the survivors may disagree on whether
      // the container exists at all.  Agree first: if any rank missed the
      // construction, everyone discards it and redistributes from the
      // dataset holder instead of touching the container's collectives.
      const bool everyone_has_it =
          comm->allreduce_value(pts ? 1 : 0, mpi::ops::Min{}) == 1;
      if (!everyone_has_it) {
        if (data_root_on(*comm) != 0) {
          throw mpi::RankFailedError(
              "module5 elastic: the dataset holder died; "
              "cannot redistribute the points");
        }
        pts.reset();
        continue;
      }
      const std::vector<std::byte> blob = pts->recover(*comm);
      std::uint64_t next_iter = 0;
      if (unpack_state(blob, &next_iter, &centroids) &&
          centroids.size() == k * dim) {
        start_iter = next_iter;
      } else {
        // Rebuilt from the source: iteration state restarts from scratch.
        const int data_root = data_root_on(*comm);
        DIPDC_REQUIRE(data_root >= 0,
                      "module5 elastic: source rebuild without the holder");
        centroids.assign(k * dim, 0.0);
        if (comm->rank() == data_root) {
          centroids = initial_centroids(dataset, config, isa);
        }
        comm->bcast(std::span<double>(centroids), data_root);
        start_iter = 0;
      }
    }
  }

  result.centroids = centroids;

  // Final inertia: recompute the assignment — the last stored one may
  // predate a rebalance.
  const std::size_t my_n = pts->count();
  assignment.assign(my_n, 0);
  {
    std::vector<double> dummy_sums(k * dim, 0.0);
    std::vector<double> dummy_counts(k, 0.0);
    kernels::assign_points(isa, pts->local().data(), my_n, dim,
                           centroids.data(), k, assignment.data(),
                           dummy_sums.data(), dummy_counts.data());
  }
  double local_inertia = 0.0;
  for (std::size_t i = 0; i < my_n; ++i) {
    local_inertia += kernels::squared_distance(
        isa, pts->local().data() + i * dim,
        centroids.data() + assignment[i] * dim, dim);
  }
  result.inertia = comm->allreduce_value(local_inertia, mpi::ops::Sum{});

  const double my_total = comm->wtime() - t0;
  result.sim_time = comm->allreduce_value(my_total, mpi::ops::Max{});
  result.comm_time = comm_marks;
  result.compute_time = my_total - comm_marks;
  const std::uint64_t transport_delta =
      comm->stats().transport_bytes_sent - transport_before;
  result.comm_bytes = static_cast<std::uint64_t>(comm->allreduce_value(
      static_cast<long long>(transport_delta), mpi::ops::Sum{}));
  return result;
}

}  // namespace dipdc::modules::kmeans
