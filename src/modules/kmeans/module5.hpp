// Module 5 — k-means Clustering (paper §III-F).
//
// Distributed Lloyd iteration: the dataset is scattered over ranks, each
// iteration assigns local points to the nearest centroid (independent
// compute), and the centroid update requires global knowledge — the
// alternating computation/communication pattern the module teaches.  The
// module presents two options for that communication:
//
//   * kExplicitAssignments — every rank ships its point-to-centroid
//     assignments to the root, which recomputes the centroids from the
//     full dataset and broadcasts them: explicit but O(N) communication
//     per iteration.
//   * kWeightedMeans — every rank reduces (sum of member points, member
//     count) per centroid with Allreduce: O(k·d) communication, the
//     efficient option.
//
// Both produce the same clustering; the benches compare their measured
// communication volumes and show the module's headline result: low k is
// communication-dominated, high k computation-dominated.
#pragma once

#include <cstdint>
#include <vector>

#include "dataio/dataset.hpp"
#include "kernels/dispatch.hpp"
#include "minimpi/comm.hpp"

namespace dipdc::modules::kmeans {

enum class Strategy { kExplicitAssignments, kWeightedMeans };

enum class Init {
  kFirstK,    // the module's prescription: the first k points
  kPlusPlus,  // k-means++ (extension): distance-weighted seeding
};

struct Config {
  std::size_t k = 8;
  int max_iterations = 200;
  /// Convergence: squared centroid movement below this on every centroid.
  double tolerance = 1e-12;
  Strategy strategy = Strategy::kWeightedMeans;
  Init init = Init::kFirstK;
  /// Seed for the k-means++ draw (ignored for kFirstK).
  std::uint64_t init_seed = 1;
  /// Compute-kernel ISA for the assignment/update hot loops (`--kernel=`
  /// / DIPDC_KERNEL); scalar and simd are bit-identical, so clustering,
  /// iteration count and inertia never depend on this.
  kernels::Policy kernel = kernels::Policy::kAuto;
};

struct Result {
  std::vector<double> centroids;  // k x dim, row-major
  int iterations = 0;
  bool converged = false;
  /// Sum of squared distances of points to their assigned centroid.
  double inertia = 0.0;
  /// Slowest rank's simulated time and this rank's phase breakdown.
  double sim_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;
  /// Transport bytes across all ranks for the iteration loop (excludes the
  /// one-time data distribution, so the two strategies compare directly).
  std::uint64_t comm_bytes = 0;
};

/// Single-process reference (the oracle the distributed versions must
/// match).  Initial centroids are the first k points.
Result lloyd_sequential(const dataio::Dataset& dataset, const Config& config);

/// Distributed k-means; the dataset lives on rank 0 (other ranks may pass
/// an empty dataset).  Every rank must use the same config.
Result distributed(minimpi::Comm& comm, const dataio::Dataset& dataset,
                   const Config& config);

/// Elastic-container variant (src/container).
struct ElasticConfig {
  /// Rebalance points by measured churn weights (1 + "assignment changed
  /// this iteration") when the weight imbalance exceeds the threshold.
  bool repartition = true;
  double imbalance_threshold = 1.25;
};

/// k-means with the points held in an elastic container: per-iteration
/// churn weights drive live rebalancing, every iteration checkpoints
/// {next iteration, centroids} alongside the point slabs, and a rank kill
/// is survived — survivors shrink the communicator, restore the newest
/// consistent checkpoint (or redistribute from the root-retained source
/// when none exists) and continue iterating.  Centroids match the
/// no-fault run to floating-point tolerance (summation order changes with
/// the rank count).  `world` must be the communicator the fault plan
/// targets, with the dataset on its rank 0.
Result elastic(minimpi::Comm& world, const dataio::Dataset& dataset,
               const Config& config, const ElasticConfig& elastic = {});

}  // namespace dipdc::modules::kmeans
