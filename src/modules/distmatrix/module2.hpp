// Module 2 — Distance Matrix (paper §III-C).
//
// Students compute the N x N Euclidean distance matrix over
// high-dimensional (the module uses 90-D) points with MPI_Scatter /
// MPI_Reduce, first with a row-wise access pattern and then tiled, compare
// the two, and measure cache misses with a performance tool.  Here:
//
//  * the kernels are templated on a cachesim tracer, so the identical loop
//    nest runs natively or through the cache simulator (the "performance
//    tool" substitute);
//  * an analytic DRAM-traffic model predicts the kernels' memory behaviour
//    from the cache capacity alone; tests validate it against the
//    simulator, and the distributed driver feeds it to the machine model so
//    scaling experiments reflect the locality difference;
//  * the distributed driver follows the module's structure: the root owns
//    the dataset, row blocks are scattered (Scatterv), the full dataset is
//    broadcast (every rank needs all points as distance partners), each
//    rank fills its block of rows, and a Reduce combines the checksum and
//    the slowest rank's time.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "cachesim/cache.hpp"
#include "dataio/dataset.hpp"
#include "kernels/detail/canonical.hpp"
#include "kernels/dispatch.hpp"
#include "minimpi/comm.hpp"

namespace dipdc::modules::distmatrix {

// The templated loop nests below are the *traced/reference* kernels: the
// identical traversal runs natively (NullTracer) or through the cache
// simulator.  The untraced production path dispatches to the
// register-blocked SIMD kernels in src/kernels instead; both compute
// every ‖a−b‖² in the canonical lane-blocked accumulation order
// (kernels/detail/canonical.hpp), so traced runs, scalar runs and SIMD
// runs all produce bit-identical distances and checksums.

/// Row-wise kernel: for each local row i, stream every point j.
/// `all` is the full n x dim dataset; rows [row_begin, row_end) are
/// computed into `out` (size (row_end-row_begin) x n).
template <typename Tracer>
void distance_rows_rowwise(std::span<const double> all, std::size_t dim,
                           std::size_t n, std::size_t row_begin,
                           std::size_t row_end, std::span<double> out,
                           Tracer& tracer) {
  const std::size_t rows = row_end - row_begin;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* a = all.data() + (row_begin + i) * dim;
    if constexpr (Tracer::kEnabled) {
      tracer.touch(a, dim * sizeof(double));
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double* b = all.data() + j * dim;
      if constexpr (Tracer::kEnabled) {
        tracer.touch(b, dim * sizeof(double));
      }
      out[i * n + j] =
          std::sqrt(kernels::detail::squared_distance_ref(a, b, dim));
    }
  }
}

/// Tiled kernel: points j are processed in tiles of `tile` points; a tile
/// stays cache-resident while every local row visits it.
template <typename Tracer>
void distance_rows_tiled(std::span<const double> all, std::size_t dim,
                         std::size_t n, std::size_t row_begin,
                         std::size_t row_end, std::size_t tile,
                         std::span<double> out, Tracer& tracer) {
  const std::size_t rows = row_end - row_begin;
  for (std::size_t jt = 0; jt < n; jt += tile) {
    const std::size_t jt_end = std::min(n, jt + tile);
    for (std::size_t i = 0; i < rows; ++i) {
      const double* a = all.data() + (row_begin + i) * dim;
      if constexpr (Tracer::kEnabled) {
        tracer.touch(a, dim * sizeof(double));
      }
      for (std::size_t j = jt; j < jt_end; ++j) {
        const double* b = all.data() + j * dim;
        if constexpr (Tracer::kEnabled) {
          tracer.touch(b, dim * sizeof(double));
        }
        out[i * n + j] =
            std::sqrt(kernels::detail::squared_distance_ref(a, b, dim));
      }
    }
  }
}

/// Floating-point work of a `rows x n` block: 3 flops per dimension
/// (subtract, multiply, accumulate) plus the square root.
[[nodiscard]] double block_flops(std::size_t rows, std::size_t n,
                                 std::size_t dim);

/// Analytic DRAM traffic (bytes) of the row-wise kernel: when the dataset
/// exceeds the cache, every row pass streams all n partner points again.
[[nodiscard]] double estimated_traffic_rowwise(std::size_t rows,
                                               std::size_t n, std::size_t dim,
                                               std::size_t cache_bytes);

/// Analytic DRAM traffic (bytes) of the tiled kernel: a cache-resident tile
/// is loaded once per tile pass while the rows stream; oversized tiles
/// degenerate to the row-wise behaviour.
[[nodiscard]] double estimated_traffic_tiled(std::size_t rows, std::size_t n,
                                             std::size_t dim,
                                             std::size_t tile,
                                             std::size_t cache_bytes);

/// How matrix rows are assigned to ranks.
enum class RowDistribution {
  kBlock,   // contiguous row blocks (the module's prescription)
  kCyclic,  // row i -> rank i % p (the fix for the symmetric imbalance)
};

struct Config {
  /// 0 = row-wise; otherwise the j-tile size in points.
  std::size_t tile = 0;
  /// Extension (learning outcome 15, "improve beyond the module"):
  /// exploit d(i,j) = d(j,i) and compute only the upper triangle — half
  /// the arithmetic.  With block rows this is badly imbalanced (early
  /// rows own long triangle rows); cyclic distribution restores balance.
  bool symmetric = false;
  RowDistribution distribution = RowDistribution::kBlock;
  /// Run the kernel through the cache simulator and report measured miss
  /// rates / traffic instead of the analytic estimate (slower).
  bool trace_cache = false;
  /// Geometry used for both the tracer and the analytic estimate.
  cachesim::CacheConfig cache{256 * 1024, 64, 8};
  /// Compute-kernel ISA for the untraced fast path (`--kernel=` /
  /// DIPDC_KERNEL); scalar and simd are bit-identical by contract.
  kernels::Policy kernel = kernels::Policy::kAuto;
};

struct Result {
  std::size_t n = 0;
  std::size_t dim = 0;
  /// Slowest rank's simulated total time (the experiment's figure of
  /// merit), plus the root's phase breakdown.
  double sim_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;
  /// Sum of all n^2 distances: identical across configurations, used as
  /// the cross-configuration correctness check.
  double checksum = 0.0;
  /// DRAM bytes per rank (measured when trace_cache, else estimated).
  double dram_bytes = 0.0;
  /// Measured miss rate (only when trace_cache).
  double miss_rate = 0.0;
  /// max/mean of per-rank distance-pair counts (1.0 = perfectly balanced).
  double compute_imbalance = 1.0;
};

/// Generalized kernel over an arbitrary list of rows; when `symmetric`,
/// only j >= i is computed for each listed row i (the upper triangle).
/// `out` holds rows.size() x n entries; untouched cells are left as-is.
template <typename Tracer>
void distance_rows_list(std::span<const double> all, std::size_t dim,
                        std::size_t n, std::span<const std::size_t> rows,
                        bool symmetric, std::size_t tile,
                        std::span<double> out, Tracer& tracer) {
  const std::size_t step = tile == 0 ? n : tile;
  for (std::size_t jt = 0; jt < n; jt += step) {
    const std::size_t jt_end = std::min(n, jt + step);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t i = rows[r];
      const double* a = all.data() + i * dim;
      if constexpr (Tracer::kEnabled) {
        tracer.touch(a, dim * sizeof(double));
      }
      const std::size_t j_begin = symmetric ? std::max(jt, i) : jt;
      for (std::size_t j = j_begin; j < jt_end; ++j) {
        const double* b = all.data() + j * dim;
        if constexpr (Tracer::kEnabled) {
          tracer.touch(b, dim * sizeof(double));
        }
        out[r * n + j] =
            std::sqrt(kernels::detail::squared_distance_ref(a, b, dim));
      }
    }
  }
}

/// Distributed distance matrix: the dataset lives on rank 0.
/// Every rank must call this with the same config.
Result run_distributed(minimpi::Comm& comm, const dataio::Dataset& dataset,
                       const Config& config);

/// Knobs of the out-of-core pipeline (run_streamed).
struct StreamConfig {
  /// Overlap the next chunk's broadcast (and the root's disk read-ahead)
  /// with the current chunk's compute.  Off = issue-and-wait per chunk:
  /// same data through the same collectives, nothing hidden — the
  /// baseline the benches compare against.
  bool overlap = true;
};

/// Out-of-core distance matrix: the dataset lives in a chunk file
/// (dataio/chunk.hpp) that only rank 0 opens, and no rank ever holds more
/// than its own row block plus two chunks of partner points.  Two sweeps
/// over the file: a streamed Scatterv hands each rank its block rows, then
/// the chunks stream past every rank as distance partners through the
/// read / communicate / compute rotation in modules/stream_sweep.hpp.
/// Results — checksum included — are
/// bit-identical to run_distributed on the same data, on every backend.
/// Supports the module's base configuration (block rows, full matrix,
/// untraced); every rank must pass the same config.
Result run_streamed(minimpi::Comm& comm, const std::string& chunk_path,
                    const Config& config, const StreamConfig& stream = {});

}  // namespace dipdc::modules::distmatrix
