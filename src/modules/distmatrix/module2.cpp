#include "modules/distmatrix/module2.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/distance.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"

namespace dipdc::modules::distmatrix {

namespace mpi = minimpi;

double block_flops(std::size_t rows, std::size_t n, std::size_t dim) {
  return static_cast<double>(rows) * static_cast<double>(n) *
         (3.0 * static_cast<double>(dim) + 1.0);
}

namespace {

/// An LRU cache effectively retains slightly less than its capacity of a
/// mixed working set (the output stores and loop state evict a few lines).
constexpr double kEffectiveCapacity = 0.9;

double point_bytes(std::size_t dim) {
  return static_cast<double>(dim) * sizeof(double);
}

}  // namespace

double estimated_traffic_rowwise(std::size_t rows, std::size_t n,
                                 std::size_t dim, std::size_t cache_bytes) {
  const double dataset = static_cast<double>(n) * point_bytes(dim);
  const double effective =
      kEffectiveCapacity * static_cast<double>(cache_bytes);
  if (dataset <= effective) {
    // Everything stays resident after the first pass.
    return dataset + static_cast<double>(rows) * point_bytes(dim);
  }
  // Each of the `rows` passes streams the full dataset from DRAM.
  return static_cast<double>(rows) * dataset;
}

double estimated_traffic_tiled(std::size_t rows, std::size_t n,
                               std::size_t dim, std::size_t tile,
                               std::size_t cache_bytes) {
  DIPDC_REQUIRE(tile > 0, "tile size must be positive");
  const double effective =
      kEffectiveCapacity * static_cast<double>(cache_bytes);
  const double tile_bytes = static_cast<double>(tile) * point_bytes(dim);
  const double rows_bytes = static_cast<double>(rows) * point_bytes(dim);
  if (tile_bytes > effective) {
    // The tile itself thrashes: no reuse, row-wise behaviour.
    return estimated_traffic_rowwise(rows, n, dim, cache_bytes);
  }
  if (tile_bytes + rows_bytes <= effective) {
    // Both the tile and the whole row block stay resident: every point
    // loads from DRAM exactly once.
    return static_cast<double>(n) * point_bytes(dim) + rows_bytes;
  }
  // Per tile pass: the tile loads once and stays resident while all `rows`
  // row points stream through the remaining capacity.
  const double ntiles =
      std::ceil(static_cast<double>(n) / static_cast<double>(tile));
  return ntiles * (tile_bytes + rows_bytes);
}

Result run_distributed(mpi::Comm& comm, const dataio::Dataset& dataset,
                       const Config& config) {
  const int p = comm.size();
  const int r = comm.rank();

  // Geometry travels from the root so only rank 0 needs the real dataset.
  std::size_t shape[2] = {dataset.size(), dataset.dim()};
  comm.bcast(std::span<std::size_t>(shape, 2), 0);
  const std::size_t n = shape[0];
  const std::size_t dim = shape[1];
  DIPDC_REQUIRE(n > 0 && dim > 0, "dataset must be non-empty");

  Result result;
  result.n = n;
  result.dim = dim;

  // The extension path (symmetric triangle and/or cyclic rows) shares the
  // broadcast but assigns rows by index list and skips the block scatter.
  if (config.symmetric || config.distribution == RowDistribution::kCyclic) {
    const double t0x = comm.wtime();
    std::vector<double> all(n * dim);
    if (r == 0) {
      std::copy(dataset.values().begin(), dataset.values().end(),
                all.begin());
    }
    comm.bcast(std::span<double>(all), 0);
    const double t_commx = comm.wtime();

    std::vector<std::size_t> my_rows;
    if (config.distribution == RowDistribution::kCyclic) {
      for (std::size_t i = static_cast<std::size_t>(r); i < n;
           i += static_cast<std::size_t>(p)) {
        my_rows.push_back(i);
      }
    } else {
      const auto parts =
          dataio::block_partition(n, static_cast<std::size_t>(p));
      for (std::size_t i = parts[static_cast<std::size_t>(r)].first;
           i < parts[static_cast<std::size_t>(r)].second; ++i) {
        my_rows.push_back(i);
      }
    }

    // Same j-tile traversal as the traced distance_rows_list template,
    // but each row sweep runs through the dispatched SIMD/scalar kernel.
    std::vector<double> block(my_rows.size() * n, 0.0);
    const kernels::Isa isa = kernels::resolve(config.kernel);
    const std::size_t step = config.tile == 0 ? n : config.tile;
    for (std::size_t jt = 0; jt < n; jt += step) {
      const std::size_t jt_end = std::min(n, jt + step);
      for (std::size_t rr = 0; rr < my_rows.size(); ++rr) {
        const std::size_t i = my_rows[rr];
        const std::size_t j_begin =
            config.symmetric ? std::max(jt, i) : jt;
        kernels::distance_row(isa, all.data() + i * dim, all.data(), dim,
                              j_begin, jt_end, block.data() + rr * n);
      }
    }

    // Cost: pairs actually computed, with the locality estimate scaled by
    // the fraction of the full row sweep each row performs.
    double pairs = 0.0;
    for (const std::size_t i : my_rows) {
      pairs += static_cast<double>(config.symmetric ? n - i : n);
    }
    const double full_pairs =
        static_cast<double>(my_rows.size()) * static_cast<double>(n);
    const double full_traffic =
        config.tile == 0
            ? estimated_traffic_rowwise(my_rows.size(), n, dim,
                                        config.cache.size_bytes)
            : estimated_traffic_tiled(my_rows.size(), n, dim, config.tile,
                                      config.cache.size_bytes);
    result.dram_bytes =
        full_pairs > 0.0 ? full_traffic * pairs / full_pairs : 0.0;
    comm.sim_compute(pairs * (3.0 * static_cast<double>(dim) + 1.0),
                     result.dram_bytes);

    // Checksum over the *full* matrix: off-diagonal triangle entries count
    // twice, so every configuration reports the same value.
    double local_checksum = 0.0;
    for (std::size_t rr = 0; rr < my_rows.size(); ++rr) {
      const std::size_t i = my_rows[rr];
      const std::size_t j0 = config.symmetric ? i : 0;
      for (std::size_t j = j0; j < n; ++j) {
        const double v = block[rr * n + j];
        local_checksum += (config.symmetric && j > i) ? 2.0 * v : v;
      }
    }
    double checksum = 0.0;
    comm.reduce(std::span<const double>(&local_checksum, 1),
                std::span<double>(&checksum, 1), mpi::ops::Sum{}, 0);
    const double my_total = comm.wtime() - t0x;
    double slowest = 0.0;
    comm.reduce(std::span<const double>(&my_total, 1),
                std::span<double>(&slowest, 1), mpi::ops::Max{}, 0);
    double max_pairs = 0.0;
    comm.reduce(std::span<const double>(&pairs, 1),
                std::span<double>(&max_pairs, 1), mpi::ops::Max{}, 0);
    double sum_pairs = 0.0;
    comm.reduce(std::span<const double>(&pairs, 1),
                std::span<double>(&sum_pairs, 1), mpi::ops::Sum{}, 0);

    result.checksum = comm.bcast_value(checksum, 0);
    result.sim_time = comm.bcast_value(slowest, 0);
    max_pairs = comm.bcast_value(max_pairs, 0);
    sum_pairs = comm.bcast_value(sum_pairs, 0);
    const double mean_pairs = sum_pairs / static_cast<double>(p);
    result.compute_imbalance =
        mean_pairs > 0.0 ? max_pairs / mean_pairs : 1.0;
    result.comm_time = t_commx - t0x;
    result.compute_time = (comm.wtime() - t0x) - result.comm_time;
    return result;
  }

  const auto parts = dataio::block_partition(n, static_cast<std::size_t>(p));
  const auto [row_begin, row_end] = parts[static_cast<std::size_t>(r)];
  const std::size_t my_rows = row_end - row_begin;

  const double t0 = comm.wtime();

  // Scatter the row blocks (the module's MPI_Scatter step, generalized to
  // Scatterv for non-divisible n), then broadcast the whole dataset since
  // every rank needs all points as distance partners.
  comm.phase_begin("scatter");
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> displs(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    counts[static_cast<std::size_t>(i)] =
        (parts[static_cast<std::size_t>(i)].second -
         parts[static_cast<std::size_t>(i)].first) *
        dim;
    displs[static_cast<std::size_t>(i)] =
        parts[static_cast<std::size_t>(i)].first * dim;
  }
  std::vector<double> my_block(my_rows * dim);
  comm.scatterv(dataset.values(), std::span<const std::size_t>(counts),
                std::span<const std::size_t>(displs),
                std::span<double>(my_block), 0);

  std::vector<double> all(n * dim);
  if (r == 0) {
    std::copy(dataset.values().begin(), dataset.values().end(), all.begin());
  }
  comm.bcast(std::span<double>(all), 0);
  comm.phase_end();

  const double t_comm_in = comm.wtime();

  // Local computation.  The kernel runs natively (and through the cache
  // simulator when tracing); its simulated cost is charged to the machine
  // model with the locality-aware traffic estimate.
  comm.phase_begin("compute");
  std::vector<double> block(my_rows * n);
  if (config.trace_cache) {
    cachesim::CacheHierarchy hierarchy({config.cache});
    cachesim::CacheTracer tracer(&hierarchy);
    if (config.tile == 0) {
      distance_rows_rowwise(std::span<const double>(all), dim, n, row_begin,
                            row_end, std::span<double>(block), tracer);
    } else {
      distance_rows_tiled(std::span<const double>(all), dim, n, row_begin,
                          row_end, config.tile, std::span<double>(block),
                          tracer);
    }
    result.dram_bytes = static_cast<double>(hierarchy.memory_traffic_bytes());
    result.miss_rate = hierarchy.level(0).miss_rate();
  } else {
    // Untraced fast path: the register-blocked dispatched kernel
    // (bit-identical to the traced loops above by the canonical
    // accumulation contract).
    kernels::distance_rows(kernels::resolve(config.kernel), all.data(), dim,
                           n, row_begin, row_end, config.tile, block.data());
    result.dram_bytes =
        config.tile == 0
            ? estimated_traffic_rowwise(my_rows, n, dim,
                                        config.cache.size_bytes)
            : estimated_traffic_tiled(my_rows, n, dim, config.tile,
                                      config.cache.size_bytes);
  }
  comm.sim_compute(block_flops(my_rows, n, dim), result.dram_bytes);
  comm.phase_end();

  const double t_compute = comm.wtime();

  // Combine: checksum (correctness) and the slowest rank's span via Reduce,
  // exactly the module's MPI_Reduce step.
  comm.phase_begin("combine");
  double local_checksum = 0.0;
  for (const double v : block) local_checksum += v;
  double checksum = 0.0;
  comm.reduce(std::span<const double>(&local_checksum, 1),
              std::span<double>(&checksum, 1), mpi::ops::Sum{}, 0);
  const double my_total = comm.wtime() - t0;
  double slowest = 0.0;
  comm.reduce(std::span<const double>(&my_total, 1),
              std::span<double>(&slowest, 1), mpi::ops::Max{}, 0);

  result.checksum = comm.bcast_value(checksum, 0);
  result.sim_time = comm.bcast_value(slowest, 0);
  comm.phase_end();
  result.comm_time = t_comm_in - t0;
  result.compute_time = t_compute - t_comm_in;
  return result;
}

}  // namespace dipdc::modules::distmatrix
