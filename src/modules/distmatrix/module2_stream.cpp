// Module 2, out-of-core: the distance matrix with the dataset streamed
// from disk through the nonblocking-broadcast rotation instead of held
// resident everywhere.
//
// Two sweeps over the chunk file:
//
//   1. distribute — rank 0 reads each chunk and Scatterv's the slices to
//      the owning ranks (the streamed stand-in for the in-core Scatterv;
//      every byte travels once, unlike a broadcast, so this sweep costs
//      1/p of the compute sweep's traffic);
//   2. compute — each chunk is a tile of partner points: every local row
//      computes its distances against the resident chunk, filling the
//      column stripe of the output block.
//
// Each pair (i, j) goes through the same dispatched kernel as the in-core
// path, and the checksum accumulates over the materialized block in the
// same row-major order, so the result is bit-identical to
// run_distributed — the determinism tests pin exactly that.
#include "modules/distmatrix/module2.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dataio/chunk.hpp"
#include "kernels/distance.hpp"
#include "minimpi/ops.hpp"
#include "modules/stream_sweep.hpp"
#include "support/error.hpp"

namespace dipdc::modules::distmatrix {

namespace mpi = minimpi;

Result run_streamed(mpi::Comm& comm, const std::string& chunk_path,
                    const Config& config, const StreamConfig& stream) {
  DIPDC_REQUIRE(!config.symmetric &&
                    config.distribution == RowDistribution::kBlock &&
                    !config.trace_cache,
                "run_streamed supports the base configuration: block rows, "
                "full matrix, no cache tracing");
  const int p = comm.size();
  const int r = comm.rank();

  std::unique_ptr<dataio::ChunkReader> reader;
  if (r == 0) reader = std::make_unique<dataio::ChunkReader>(chunk_path);
  const dataio::ChunkFileInfo geo =
      streaming::bcast_geometry(comm, reader.get());
  const std::size_t dim = geo.dim;
  const std::size_t n = geo.total_rows;
  DIPDC_REQUIRE(n > 0 && dim > 0, "dataset must be non-empty");

  Result result;
  result.n = n;
  result.dim = dim;

  const auto parts = dataio::block_partition(n, static_cast<std::size_t>(p));
  const auto [row_begin, row_end] = parts[static_cast<std::size_t>(r)];
  const std::size_t my_rows = row_end - row_begin;

  const double t0 = comm.wtime();

  // Sweep 1 — distribute: rank 0 reads each chunk and scatters its row
  // slices straight to the owners.  The root's read-ahead (overlap mode)
  // hides chunk k+1's disk time behind chunk k's Scatterv.
  std::vector<double> my_points(my_rows * dim);
  std::vector<double> chunk;
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> displs(static_cast<std::size_t>(p));
  std::size_t filled = 0;  // doubles of my_points received so far
  for (std::size_t k = 0; k < geo.num_chunks(); ++k) {
    if (r == 0) {
      comm.phase_begin("stream_read");
      if (stream.overlap) {
        const std::size_t got = reader->next(chunk);
        DIPDC_REQUIRE(got == k, "chunk stream out of order");
      } else {
        reader->read_chunk(k, chunk);
      }
      comm.phase_end();
    }
    const std::size_t cb = k * geo.chunk_rows;            // first row
    const std::size_t ce = cb + geo.rows_in_chunk(k);     // past-last row
    for (std::size_t m = 0; m < static_cast<std::size_t>(p); ++m) {
      const std::size_t lo = std::max(cb, parts[m].first);
      const std::size_t hi = std::min(ce, parts[m].second);
      counts[m] = lo < hi ? (hi - lo) * dim : 0;
      displs[m] = lo < hi ? (lo - cb) * dim : 0;
    }
    comm.phase_begin("stream_comm");
    comm.scatterv(std::span<const double>(chunk),
                  std::span<const std::size_t>(counts),
                  std::span<const std::size_t>(displs),
                  std::span<double>(my_points.data() + filled,
                                    counts[static_cast<std::size_t>(r)]),
                  0);
    comm.phase_end();
    filled += counts[static_cast<std::size_t>(r)];
  }
  DIPDC_REQUIRE(filled == my_rows * dim, "distribution sweep lost rows");
  const double t_distributed = comm.wtime();

  // Sweep 2 — compute: each chunk is a resident tile of partner points.
  if (r == 0) reader->reset();
  std::vector<double> block(my_rows * n);
  const kernels::Isa isa = kernels::resolve(config.kernel);
  double compute_sim = 0.0;
  streaming::chunk_sweep(
      comm, reader.get(), geo, stream.overlap,
      [&](std::size_t k, std::span<const double> values) {
        const std::size_t cb = k * geo.chunk_rows;
        const std::size_t rows_k = values.size() / dim;
        const double t_in = comm.wtime();
        for (std::size_t rr = 0; rr < my_rows; ++rr) {
          kernels::distance_row(isa, my_points.data() + rr * dim,
                                values.data(), dim, 0, rows_k,
                                block.data() + rr * n + cb);
        }
        // Charge the machine model chunk by chunk: the flops are exact;
        // the DRAM traffic is the tiled estimate's share for this tile
        // (streaming over chunks *is* j-tiling with tile = chunk_rows).
        const double share =
            static_cast<double>(rows_k) / static_cast<double>(n);
        comm.sim_compute(
            block_flops(my_rows, rows_k, dim),
            share * estimated_traffic_tiled(my_rows, n, dim, geo.chunk_rows,
                                            config.cache.size_bytes));
        compute_sim += comm.wtime() - t_in;
      });
  result.dram_bytes = estimated_traffic_tiled(my_rows, n, dim,
                                              geo.chunk_rows,
                                              config.cache.size_bytes);

  // Combine — identical to the in-core path: checksum over the block in
  // row-major order, slowest rank's span via Reduce.
  comm.phase_begin("combine");
  double local_checksum = 0.0;
  for (const double v : block) local_checksum += v;
  double checksum = 0.0;
  comm.reduce(std::span<const double>(&local_checksum, 1),
              std::span<double>(&checksum, 1), mpi::ops::Sum{}, 0);
  const double my_total = comm.wtime() - t0;
  double slowest = 0.0;
  comm.reduce(std::span<const double>(&my_total, 1),
              std::span<double>(&slowest, 1), mpi::ops::Max{}, 0);
  result.checksum = comm.bcast_value(checksum, 0);
  result.sim_time = comm.bcast_value(slowest, 0);
  comm.phase_end();

  // The distribute sweep is all communication; the compute sweep splits
  // into kernel time (measured around the consume) and the transfers.
  result.compute_time = compute_sim;
  result.comm_time = (t_distributed - t0) +
                     ((comm.wtime() - t_distributed) - compute_sim);
  return result;
}

}  // namespace dipdc::modules::distmatrix
