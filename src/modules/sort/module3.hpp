// Module 3 — Distribution Sort (paper §III-D).
//
// A distributed bucket sort: every rank starts with local unsorted data
// (already distributed, as the module prescribes), buckets are assigned one
// per rank, a communication phase scatters each rank's data to the bucket
// owners, and every rank sorts its bucket locally.  The data stays
// distributed afterwards (large datasets exceed one node's memory).
//
// The three activities map to configurations:
//   1. uniform input, equal-width buckets            -> balanced
//   2. exponential input, equal-width buckets        -> heavy imbalance
//   3. exponential input, histogram-based splitters  -> balance restored
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"
#include "minimpi/comm.hpp"

namespace dipdc::modules::distsort {

enum class SplitterPolicy {
  kEqualWidth,  // bucket i owns [lo + i*w, lo + (i+1)*w), equal widths
  kHistogram,   // rank 0 histograms its local data and equalizes counts
  kSampling,    // regular sampling over ALL ranks (the PSRS splitter
                // selection) — an extension beyond the module: robust even
                // when ranks hold differently-distributed data
};

struct Config {
  SplitterPolicy policy = SplitterPolicy::kEqualWidth;
  /// Domain of the keys; values outside are clamped into the end buckets.
  double lo = 0.0;
  double hi = 1.0;
  /// Bins of the rank-0 histogram for kHistogram.
  std::size_t histogram_bins = 256;
  /// Compute-kernel ISA for the histogram and splitter-scan passes
  /// (`--kernel=` / DIPDC_KERNEL); scalar and simd bucket identically.
  kernels::Policy kernel = kernels::Policy::kAuto;
};

struct Result {
  std::size_t total_elements = 0;
  /// Elements owned by this rank after the exchange.
  std::size_t local_elements = 0;
  /// max / mean of post-exchange bucket sizes: 1.0 = perfectly balanced.
  double imbalance = 1.0;
  /// All ranks locally sorted and bucket ranges globally ordered, and no
  /// element lost (allreduce-verified).
  bool globally_sorted = false;
  /// Slowest rank's simulated total, and the root's phase breakdown.
  double sim_time = 0.0;
  double exchange_time = 0.0;
  double sort_time = 0.0;
  /// Bytes this rank shipped during the exchange.
  std::uint64_t exchange_bytes = 0;
};

/// Sorts `local` (this rank's share of the global data) into a global
/// bucket order; on return `local` holds this rank's sorted bucket.
/// Every rank must use the same config.
Result distributed_bucket_sort(minimpi::Comm& comm,
                               std::vector<double>& local,
                               const Config& config);

/// Elastic-container variant (src/container).
struct ElasticConfig {
  /// Level the skewed post-exchange distribution with a unit-weight
  /// repartition (contiguous ranges slide between neighbouring ranks, so
  /// the global sort order is preserved).
  bool rebalance = true;
  /// Rebalance only when max/mean bucket size exceeds this.
  double imbalance_threshold = 1.10;
};

/// Bucket sort with the keys held in an elastic container: the bucket
/// exchange is adopted into the container, rebalancing levels the skew,
/// and a rank kill is survived — the survivors shrink the communicator,
/// restore the generation-0 checkpoint of the unsorted input, and redo the
/// sort on the shrunken world.  The final global sorted sequence is
/// bit-identical to the no-fault run.  `world` must be the communicator
/// the fault plan targets; `sorted_root` (optional) receives the full
/// sorted array on (surviving) rank 0.
Result elastic_bucket_sort(minimpi::Comm& world, std::vector<double> local,
                           const Config& config,
                           const ElasticConfig& elastic = {},
                           std::vector<double>* sorted_root = nullptr);

/// The splitters (p-1 ascending values) the configuration produces; exposed
/// for tests and for the bench's explanation output.
std::vector<double> compute_splitters(minimpi::Comm& comm,
                                      const std::vector<double>& local,
                                      const Config& config);

/// Knobs of the out-of-core pipeline (streamed_bucket_sort).
struct StreamConfig {
  /// Overlap the next chunk's broadcast (and the root's disk read-ahead)
  /// with the current chunk's bucket filter; off = issue-and-wait.
  bool overlap = true;
};

/// Out-of-core bucket sort: the keys live in a chunk file (dim-1 rows;
/// dataio/chunk.hpp) that only rank 0 opens.  Chunks stream past every
/// rank through the read / communicate / compute rotation
/// (modules/stream_sweep.hpp); each rank keeps the keys of its own bucket
/// as they pass and sorts them once the sweep ends, so the exchange
/// dissolves into the stream — no Alltoallv, no rank ever holds more than
/// its bucket plus two chunks.  Requires kEqualWidth splitters (the data-
/// dependent policies need a look at the data before it streams).  On
/// return `sorted` holds this rank's sorted bucket, bit-identical to what
/// distributed_bucket_sort leaves on this rank for the same file split
/// any which way across ranks.  Every rank must pass the same config.
Result streamed_bucket_sort(minimpi::Comm& comm,
                            const std::string& chunk_path,
                            const Config& config,
                            std::vector<double>& sorted,
                            const StreamConfig& stream = {});

}  // namespace dipdc::modules::distsort
