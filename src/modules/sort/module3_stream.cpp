// Module 3, out-of-core: bucket sort with the keys streamed from disk.
//
// The in-core sort starts from data already scattered across ranks and
// redistributes it with Alltoallv.  Out of core the redistribution
// dissolves into the stream: every chunk is broadcast past every rank,
// and each rank keeps exactly the keys that fall into its own equal-width
// bucket (the same dispatched splitter-scan kernel classifies them).
// After the sweep each rank sorts its bucket locally — the same multiset
// a no-streaming run would have assembled, so the sorted buckets are
// bit-identical to the in-core result however the input was split across
// ranks.
#include "modules/sort/module3.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>

#include "dataio/chunk.hpp"
#include "kernels/sort.hpp"
#include "minimpi/ops.hpp"
#include "modules/stream_sweep.hpp"
#include "support/error.hpp"

namespace dipdc::modules::distsort {

namespace mpi = minimpi;

namespace {

double log2_safe(std::size_t n) {
  return n < 2 ? 1.0 : std::log2(static_cast<double>(n));
}

template <typename T, typename Op>
T reduce_to_all(mpi::Comm& comm, T value, Op op) {
  T out{};
  comm.reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, 0);
  return comm.bcast_value(out, 0);
}

}  // namespace

Result streamed_bucket_sort(mpi::Comm& comm, const std::string& chunk_path,
                            const Config& config, std::vector<double>& sorted,
                            const StreamConfig& stream) {
  DIPDC_REQUIRE(config.policy == SplitterPolicy::kEqualWidth,
                "streamed_bucket_sort needs data-independent (equal-width) "
                "splitters; histogram/sampling would have to see the data "
                "before it streams");
  const int p = comm.size();
  const auto np = static_cast<std::size_t>(p);
  const auto nr = static_cast<std::uint32_t>(comm.rank());
  Result result;

  std::unique_ptr<dataio::ChunkReader> reader;
  if (comm.rank() == 0) {
    reader = std::make_unique<dataio::ChunkReader>(chunk_path);
    DIPDC_REQUIRE(reader->dim() == 1, "key files are 1-dimensional rows");
  }
  const dataio::ChunkFileInfo geo =
      streaming::bcast_geometry(comm, reader.get());

  const double t0 = comm.wtime();

  // Splitters are a pure function of (lo, hi, p) — no data needed.
  const std::vector<double> splitters = compute_splitters(comm, {}, config);

  // Sweep — every chunk passes every rank; each keeps its bucket's keys.
  // Classification cost matches the in-core partition pass (one streaming
  // scan); the keeps are charged with it.
  std::vector<double> bucket;
  std::vector<std::uint32_t> dest;
  const kernels::Isa isa = kernels::resolve(config.kernel);
  streaming::chunk_sweep(
      comm, reader.get(), geo, stream.overlap,
      [&](std::size_t, std::span<const double> values) {
        dest.resize(values.size());
        kernels::bucket_indices(isa, values.data(), values.size(),
                                splitters.data(), splitters.size(),
                                dest.data());
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (dest[i] == nr) bucket.push_back(values[i]);
        }
        comm.sim_compute(2.0 * static_cast<double>(values.size()),
                         8.0 * static_cast<double>(values.size()));
      });
  const double t_streamed = comm.wtime();

  // Local sort — same cost model as the in-core phase.
  comm.phase_begin("local_sort");
  std::sort(bucket.begin(), bucket.end());
  const double nlogn =
      static_cast<double>(bucket.size()) * log2_safe(bucket.size());
  comm.sim_compute(2.0 * nlogn, 8.0 * nlogn);
  comm.phase_end();
  const double t_sorted = comm.wtime();

  // Verification mirrors the in-core sort: counts preserved, every rank
  // sorted, bucket fronts ordered across ranks.
  const long long global_out = reduce_to_all(
      comm, static_cast<long long>(bucket.size()), mpi::ops::Sum{});
  const bool locally_sorted = std::is_sorted(bucket.begin(), bucket.end());

  const double lowest = std::numeric_limits<double>::lowest();
  const double pair[2] = {bucket.empty() ? lowest : bucket.front(),
                          bucket.empty() ? lowest : bucket.back()};
  std::vector<double> fronts(2 * np);
  comm.gather(std::span<const double>(pair, 2), std::span<double>(fronts), 0);
  bool boundaries_ok = true;
  if (comm.rank() == 0) {
    double prev_max = lowest;
    for (std::size_t i = 0; i < np; ++i) {
      const double imn = fronts[2 * i];
      const double imx = fronts[2 * i + 1];
      if (imn == lowest && imx == lowest) continue;  // empty bucket
      if (imn < prev_max) boundaries_ok = false;
      prev_max = imx;
    }
  }
  boundaries_ok = comm.bcast_value(boundaries_ok, 0);

  const char all_ok = static_cast<char>(
      locally_sorted && boundaries_ok &&
      global_out == static_cast<long long>(geo.total_rows));
  result.globally_sorted =
      reduce_to_all(comm, all_ok, mpi::ops::LogicalAnd{}) != 0;

  const auto my_count = static_cast<long long>(bucket.size());
  const long long max_count = reduce_to_all(comm, my_count, mpi::ops::Max{});
  result.total_elements = static_cast<std::size_t>(global_out);
  result.local_elements = bucket.size();
  const double mean_count =
      static_cast<double>(global_out) / static_cast<double>(p);
  result.imbalance =
      mean_count > 0.0 ? static_cast<double>(max_count) / mean_count : 1.0;
  // Broadcasting every chunk to every rank is what this rank shipped /
  // received through the stream.
  result.exchange_bytes =
      static_cast<std::uint64_t>(geo.total_rows * sizeof(double));

  const double my_total = comm.wtime() - t0;
  result.sim_time = reduce_to_all(comm, my_total, mpi::ops::Max{});
  result.exchange_time = t_streamed - t0;
  result.sort_time = t_sorted - t_streamed;

  sorted = std::move(bucket);
  return result;
}

}  // namespace dipdc::modules::distsort
