#include "modules/sort/module3.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "container/container.hpp"
#include "kernels/sort.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "support/error.hpp"

namespace dipdc::modules::distsort {

namespace mpi = minimpi;

std::vector<double> compute_splitters(mpi::Comm& comm,
                                      const std::vector<double>& local,
                                      const Config& config) {
  DIPDC_REQUIRE(config.lo < config.hi, "key domain must be non-empty");
  const int p = comm.size();
  std::vector<double> splitters(static_cast<std::size_t>(p - 1));

  if (config.policy == SplitterPolicy::kEqualWidth) {
    const double width =
        (config.hi - config.lo) / static_cast<double>(p);
    for (int i = 1; i < p; ++i) {
      splitters[static_cast<std::size_t>(i - 1)] =
          config.lo + width * static_cast<double>(i);
    }
    return splitters;
  }

  if (config.policy == SplitterPolicy::kSampling) {
    // Regular sampling (the PSRS selection): every rank contributes p
    // evenly spaced samples of its *sorted* local data; the root sorts the
    // p*p samples and picks every p-th one as a splitter.  Unlike the
    // histogram policy this uses information from all ranks, so it stays
    // balanced even when ranks hold differently-distributed data.
    // Oversampling tightens the classic 2x PSRS bucket bound to ~(1+1/c).
    constexpr std::size_t kOversample = 16;
    const auto np = static_cast<std::size_t>(p);
    const std::size_t per_rank = kOversample * np;
    std::vector<double> sorted_local(local);
    std::sort(sorted_local.begin(), sorted_local.end());
    std::vector<double> samples(per_rank, config.lo);
    if (!sorted_local.empty()) {
      for (std::size_t i = 0; i < per_rank; ++i) {
        const std::size_t pos = std::min(
            sorted_local.size() - 1,
            (2 * i + 1) * sorted_local.size() / (2 * per_rank));
        samples[i] = sorted_local[pos];
      }
    }
    std::vector<double> all_samples(per_rank * np);
    comm.gather(std::span<const double>(samples),
                std::span<double>(all_samples), 0);
    if (comm.rank() == 0) {
      std::sort(all_samples.begin(), all_samples.end());
      for (int i = 1; i < p; ++i) {
        splitters[static_cast<std::size_t>(i - 1)] =
            all_samples[static_cast<std::size_t>(i) * per_rank];
      }
    }
    comm.bcast(std::span<double>(splitters), 0);
    return splitters;
  }

  // Histogram policy: rank 0 approximates the global distribution with a
  // histogram of *its* local data (the module's prescription) and places
  // splitters so each bucket would receive an equal share.
  if (comm.rank() == 0) {
    DIPDC_REQUIRE(config.histogram_bins >= static_cast<std::size_t>(p),
                  "need at least one histogram bin per rank");
    std::vector<std::uint64_t> hist(config.histogram_bins, 0);
    const double bin_width =
        (config.hi - config.lo) / static_cast<double>(config.histogram_bins);
    kernels::histogram(kernels::resolve(config.kernel), local.data(),
                       local.size(), config.lo, bin_width,
                       config.histogram_bins, hist.data());
    const double per_bucket =
        static_cast<double>(local.size()) / static_cast<double>(p);
    std::size_t cumulative = 0;
    int next_split = 1;
    for (std::size_t b = 0;
         b < hist.size() && next_split < p; ++b) {
      cumulative += hist[b];
      while (next_split < p &&
             static_cast<double>(cumulative) >=
                 per_bucket * static_cast<double>(next_split)) {
        splitters[static_cast<std::size_t>(next_split - 1)] =
            config.lo + bin_width * static_cast<double>(b + 1);
        ++next_split;
      }
    }
    // Any splitters not placed (degenerate histograms) fall at the top.
    for (; next_split < p; ++next_split) {
      splitters[static_cast<std::size_t>(next_split - 1)] = config.hi;
    }
  }
  comm.bcast(std::span<double>(splitters), 0);
  return splitters;
}

namespace {

double log2_safe(std::size_t n) {
  return n < 2 ? 1.0 : std::log2(static_cast<double>(n));
}

/// Reduce to the root then broadcast: the module prescribes MPI_Reduce, so
/// the reference solution uses it (rather than Allreduce) for its global
/// quantities.
template <typename T, typename Op>
T reduce_to_all(mpi::Comm& comm, T value, Op op) {
  T out{};
  comm.reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, 0);
  return comm.bcast_value(out, 0);
}

}  // namespace

Result distributed_bucket_sort(mpi::Comm& comm, std::vector<double>& local,
                               const Config& config) {
  const int p = comm.size();
  const auto np = static_cast<std::size_t>(p);
  Result result;

  const double t0 = comm.wtime();
  comm.phase_begin("partition");
  const std::vector<double> splitters =
      compute_splitters(comm, local, config);

  // Classify local elements into per-destination buckets with the
  // dispatched splitter-scan kernel, then place them bucket-contiguously
  // in one stable counting pass (replaces the per-element push_back into
  // p vectors).  Cost model: one pass over the data (compute-light,
  // streaming).
  std::vector<std::uint32_t> dest(local.size());
  kernels::bucket_indices(kernels::resolve(config.kernel), local.data(),
                          local.size(), splitters.data(), splitters.size(),
                          dest.data());
  comm.sim_compute(2.0 * static_cast<double>(local.size()),
                   8.0 * static_cast<double>(local.size()));
  comm.phase_end();

  // Exchange with Alltoallv — the module's scatter phase.
  comm.phase_begin("exchange");
  std::vector<std::size_t> send_counts(np), send_displs(np);
  for (const std::uint32_t d : dest) ++send_counts[d];
  std::size_t placed = 0;
  for (std::size_t i = 0; i < np; ++i) {
    send_displs[i] = placed;
    placed += send_counts[i];
  }
  std::vector<double> send_buf(local.size());
  std::vector<std::size_t> cursor = send_displs;
  for (std::size_t i = 0; i < local.size(); ++i) {
    send_buf[cursor[dest[i]]++] = local[i];
  }
  std::vector<std::size_t> recv_counts(np), recv_displs(np);
  comm.alltoall(std::span<const std::size_t>(send_counts),
                std::span<std::size_t>(recv_counts));
  std::size_t total_recv = 0;
  for (std::size_t i = 0; i < np; ++i) {
    recv_displs[i] = total_recv;
    total_recv += recv_counts[i];
  }
  std::vector<double> bucket(total_recv);
  comm.alltoallv(std::span<const double>(send_buf),
                 std::span<const std::size_t>(send_counts),
                 std::span<const std::size_t>(send_displs),
                 std::span<double>(bucket),
                 std::span<const std::size_t>(recv_counts),
                 std::span<const std::size_t>(recv_displs));
  result.exchange_bytes =
      static_cast<std::uint64_t>(send_buf.size() * sizeof(double));
  comm.phase_end();
  const double t_exchanged = comm.wtime();

  // Local sort.  Cost model: comparison sort is memory-bound — per element
  // roughly 2*log2(n) flop-equivalents against 8*log2(n) bytes of traffic
  // (multiple passes over a working set that exceeds cache).
  comm.phase_begin("local_sort");
  std::sort(bucket.begin(), bucket.end());
  const double nlogn =
      static_cast<double>(bucket.size()) * log2_safe(bucket.size());
  comm.sim_compute(2.0 * nlogn, 8.0 * nlogn);
  comm.phase_end();
  const double t_sorted = comm.wtime();

  // Verification: counts preserved, every rank sorted, bucket fronts
  // ordered across ranks.
  const auto sent_total = static_cast<long long>(local.size());
  const long long global_in =
      reduce_to_all(comm, sent_total, mpi::ops::Sum{});
  const long long global_out = reduce_to_all(
      comm, static_cast<long long>(bucket.size()), mpi::ops::Sum{});
  const bool locally_sorted =
      std::is_sorted(bucket.begin(), bucket.end());

  // Boundary check: my smallest element must not precede any lower rank's
  // largest.  Gather (min, max) pairs and check on the root.
  const double lowest = std::numeric_limits<double>::lowest();
  double mn = bucket.empty() ? lowest : bucket.front();
  double mx = bucket.empty() ? lowest : bucket.back();
  std::vector<double> fronts(2 * np);
  const double pair[2] = {mn, mx};
  comm.gather(std::span<const double>(pair, 2), std::span<double>(fronts),
              0);
  bool boundaries_ok = true;
  if (comm.rank() == 0) {
    double prev_max = lowest;
    for (std::size_t i = 0; i < np; ++i) {
      const double imn = fronts[2 * i];
      const double imx = fronts[2 * i + 1];
      if (imn == lowest && imx == lowest) continue;  // empty bucket
      if (imn < prev_max) boundaries_ok = false;
      prev_max = imx;
    }
  }
  boundaries_ok = comm.bcast_value(boundaries_ok, 0);

  const char all_ok = static_cast<char>(
      locally_sorted && boundaries_ok && global_in == global_out);
  result.globally_sorted =
      reduce_to_all(comm, all_ok, mpi::ops::LogicalAnd{}) != 0;

  // Load-balance metrics.
  const auto my_count = static_cast<long long>(bucket.size());
  const long long max_count =
      reduce_to_all(comm, my_count, mpi::ops::Max{});
  result.total_elements = static_cast<std::size_t>(global_out);
  result.local_elements = bucket.size();
  const double mean_count =
      static_cast<double>(global_out) / static_cast<double>(p);
  result.imbalance =
      mean_count > 0.0 ? static_cast<double>(max_count) / mean_count : 1.0;

  const double my_total = comm.wtime() - t0;
  const double slowest = reduce_to_all(comm, my_total, mpi::ops::Max{});
  result.sim_time = slowest;
  result.exchange_time = t_exchanged - t0;
  result.sort_time = t_sorted - t_exchanged;

  local = std::move(bucket);
  return result;
}

Result elastic_bucket_sort(mpi::Comm& world, std::vector<double> local,
                           const Config& config,
                           const ElasticConfig& elastic,
                           std::vector<double>* sorted_root) {
  namespace box = dipdc::container;
  mpi::Comm* comm = &world;
  // Shrunken communicators must outlive the container (it keeps a pointer
  // to the communicator it was recovered onto).
  std::deque<mpi::Comm> shrunk;
  std::optional<box::Container<double>> keys;

  for (;;) {
    try {
      if (!keys) {
        keys.emplace(
            box::Container<double>::from_counts(*comm, 1, std::move(local)));
        // Generation 0 is all recovery ever needs here: the sort's input
        // is immutable, so survivors restore it and redo the whole sort.
        keys->checkpoint({});
      }
      std::vector<double> work = keys->local();
      Result result = distributed_bucket_sort(*comm, work, config);
      // Owner-computes adoption: the exchange already moved the data; the
      // container relearns the (skewed) cuts from the new counts.
      keys->adopt(std::move(work));
      if (elastic.rebalance) {
        keys->rebalance(elastic.imbalance_threshold);
        result.local_elements = keys->count();
        result.imbalance = keys->partitioning().count_imbalance();
      }
      if (sorted_root != nullptr) {
        const box::Partitioning& part = keys->partitioning();
        const int p = comm->size();
        std::vector<std::size_t> counts(static_cast<std::size_t>(p));
        std::vector<std::size_t> displs(static_cast<std::size_t>(p));
        for (int i = 0; i < p; ++i) {
          counts[static_cast<std::size_t>(i)] = part.count(i);
          displs[static_cast<std::size_t>(i)] = part.begin(i);
        }
        std::vector<double> gathered(comm->rank() == 0 ? part.total() : 0);
        comm->gatherv(std::span<const double>(keys->local()), counts, displs,
                      std::span<double>(gathered), 0);
        if (comm->rank() == 0) *sorted_root = std::move(gathered);
      }
      return result;
    } catch (const mpi::RankFailedError&) {
      if (comm->failed_rank() == comm->world_rank()) throw;  // I am the corpse
      shrunk.push_back(comm->shrink());
      comm = &shrunk.back();
      // A kill during the input snapshot can strand slower survivors
      // inside the constructor; if any rank missed it, generation 0 is not
      // ring-wide and the dead rank's input shard is unrecoverable.
      if (comm->allreduce_value(keys ? 1 : 0, mpi::ops::Min{}) != 1) {
        throw mpi::RankFailedError(
            "module3 elastic: a rank died before the input checkpoint "
            "completed; its keys are lost");
      }
      (void)keys->recover(*comm);  // restores the generation-0 input
    }
  }
}

}  // namespace dipdc::modules::distsort
