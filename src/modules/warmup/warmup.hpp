// Ancillary module — MPI warm-up exercises (paper §III-G).
//
// "The other module provides warmup exercises that gently introduce
//  students to MPI primitives.  These exercises can be used as in-class
//  activities."
//
// Each exercise is a small self-checking function: it performs the
// communication pattern and verifies its own result, returning a report.
// run_all() executes the whole series — the in-class live-coding session
// in executable form.
#pragma once

#include <string>
#include <vector>

#include "minimpi/comm.hpp"

namespace dipdc::modules::warmup {

struct ExerciseReport {
  std::string name;
  bool passed = false;
  std::string detail;  // a one-line human-readable summary
};

/// 1. "Hello world": every rank reports in to rank 0 (Send/Recv).
ExerciseReport hello_ranks(minimpi::Comm& comm);

/// 2. Sum of all ranks by hand along a chain (no collectives allowed).
ExerciseReport chain_sum(minimpi::Comm& comm);

/// 3. Broadcast by hand: rank 0's value reaches everyone via a relay.
ExerciseReport relay_broadcast(minimpi::Comm& comm);

/// 4. Global maximum with the real collective (first Reduce).
ExerciseReport reduce_maximum(minimpi::Comm& comm);

/// 5. Monte-Carlo estimation of pi: independent sampling + Reduce — the
/// classic first "real" MPI program.
ExerciseReport monte_carlo_pi(minimpi::Comm& comm, std::size_t samples_per_rank);

/// 6. Ping-pong timing: measure the simulated one-way latency (first
/// exposure to MPI_Wtime-style measurement).
ExerciseReport timed_pingpong(minimpi::Comm& comm);

/// Runs every exercise in sequence.
std::vector<ExerciseReport> run_all(minimpi::Comm& comm);

}  // namespace dipdc::modules::warmup
