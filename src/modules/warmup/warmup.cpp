#include "modules/warmup/warmup.hpp"

#include <cmath>

#include "minimpi/ops.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace dipdc::modules::warmup {

namespace mpi = minimpi;

ExerciseReport hello_ranks(mpi::Comm& comm) {
  ExerciseReport report{"hello_ranks", false, {}};
  if (comm.rank() != 0) {
    comm.send_value(comm.rank(), 0, 100);
    report.passed = true;
    report.detail = "sent greeting";
    return report;
  }
  std::vector<bool> heard(static_cast<std::size_t>(comm.size()), false);
  heard[0] = true;
  for (int i = 1; i < comm.size(); ++i) {
    int from = -1;
    const mpi::Status st =
        comm.recv(std::span<int>(&from, 1), mpi::kAnySource, 100);
    if (from != st.source) {
      report.detail = "a rank lied about its identity";
      return report;
    }
    heard[static_cast<std::size_t>(from)] = true;
  }
  for (const bool h : heard) {
    if (!h) {
      report.detail = "a rank never reported in";
      return report;
    }
  }
  report.passed = true;
  report.detail = "all " + std::to_string(comm.size()) + " ranks said hello";
  return report;
}

ExerciseReport chain_sum(mpi::Comm& comm) {
  ExerciseReport report{"chain_sum", false, {}};
  const int p = comm.size();
  const int r = comm.rank();
  // Pass a running sum up the chain 0 -> 1 -> ... -> p-1, then broadcast
  // the total back down by hand.
  long long sum = r;
  if (r > 0) {
    sum += comm.recv_value<long long>(r - 1, 101);
  }
  if (r + 1 < p) {
    comm.send_value(sum, r + 1, 101);
    sum = comm.recv_value<long long>(r + 1, 102);  // total coming back
  }
  if (r > 0) {
    comm.send_value(sum, r - 1, 102);
  }
  const long long expect = static_cast<long long>(p) * (p - 1) / 2;
  report.passed = sum == expect;
  report.detail = "sum of ranks = " + std::to_string(sum) + " (expect " +
                  std::to_string(expect) + ")";
  return report;
}

ExerciseReport relay_broadcast(mpi::Comm& comm) {
  ExerciseReport report{"relay_broadcast", false, {}};
  const int p = comm.size();
  const int r = comm.rank();
  double secret = r == 0 ? 42.125 : 0.0;
  if (r > 0) secret = comm.recv_value<double>(r - 1, 103);
  if (r + 1 < p) comm.send_value(secret, r + 1, 103);
  report.passed = secret == 42.125;
  report.detail = "received " + support::fixed(secret, 3);
  return report;
}

ExerciseReport reduce_maximum(mpi::Comm& comm) {
  ExerciseReport report{"reduce_maximum", false, {}};
  // Every rank contributes a deterministic pseudo-random value.
  auto rng = support::make_stream(7777, static_cast<std::uint64_t>(comm.rank()));
  const double mine = rng.uniform(0.0, 100.0);
  double global_max = 0.0;
  comm.reduce(std::span<const double>(&mine, 1),
              std::span<double>(&global_max, 1), mpi::ops::Max{}, 0);
  global_max = comm.bcast_value(global_max, 0);
  // Everyone can verify: the maximum is at least their own value.
  report.passed = global_max >= mine;
  report.detail = "max = " + support::fixed(global_max, 3) +
                  " (mine = " + support::fixed(mine, 3) + ")";
  return report;
}

ExerciseReport monte_carlo_pi(mpi::Comm& comm,
                              std::size_t samples_per_rank) {
  ExerciseReport report{"monte_carlo_pi", false, {}};
  auto rng = support::make_stream(31415, static_cast<std::uint64_t>(comm.rank()));
  long long inside = 0;
  for (std::size_t i = 0; i < samples_per_rank; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    if (x * x + y * y <= 1.0) ++inside;
  }
  // Charge the sampling to the machine model: ~6 flops per sample.
  comm.sim_compute(6.0 * static_cast<double>(samples_per_rank), 0.0);
  long long total_inside = 0;
  comm.reduce(std::span<const long long>(&inside, 1),
              std::span<long long>(&total_inside, 1), mpi::ops::Sum{}, 0);
  total_inside = comm.bcast_value(total_inside, 0);
  const double total_samples = static_cast<double>(samples_per_rank) *
                               static_cast<double>(comm.size());
  const double pi = 4.0 * static_cast<double>(total_inside) / total_samples;
  report.passed = std::fabs(pi - 3.14159265358979) < 0.05;
  report.detail = "pi ~= " + support::fixed(pi, 4);
  return report;
}

ExerciseReport timed_pingpong(mpi::Comm& comm) {
  ExerciseReport report{"timed_pingpong", false, {}};
  if (comm.size() < 2) {
    report.passed = true;
    report.detail = "skipped (needs 2 ranks)";
    return report;
  }
  if (comm.rank() > 1) {
    report.passed = true;
    report.detail = "idle";
    return report;
  }
  const double t0 = comm.wtime();
  const int rounds = 10;
  for (int i = 0; i < rounds; ++i) {
    if (comm.rank() == 0) {
      comm.send_value(i, 1, 104);
      (void)comm.recv_value<int>(1, 104);
    } else {
      const int v = comm.recv_value<int>(0, 104);
      comm.send_value(v, 0, 104);
    }
  }
  const double one_way = (comm.wtime() - t0) / (2.0 * rounds);
  report.passed = one_way > 0.0;
  report.detail = "one-way latency " + support::seconds(one_way);
  return report;
}

std::vector<ExerciseReport> run_all(mpi::Comm& comm) {
  std::vector<ExerciseReport> reports;
  reports.push_back(hello_ranks(comm));
  reports.push_back(chain_sum(comm));
  reports.push_back(relay_broadcast(comm));
  reports.push_back(reduce_maximum(comm));
  reports.push_back(monte_carlo_pi(comm, 100000));
  reports.push_back(timed_pingpong(comm));
  return reports;
}

}  // namespace dipdc::modules::warmup
