// Elastic, weight-driven distributed container over minimpi.
//
// A Container<T> holds a global 1-D array of `total` elements (each element
// is `stride` consecutive T values) distributed across the ranks of a
// communicator by a range Partitioning.  Three operations change the
// distribution, all of them collective:
//
//   * repartition()/rebalance(t) — recompute weight-driven cuts from the
//     measured per-element weights and materialize the transition as an
//     alltoallv exchange (data and weights move together).  Every rank
//     derives the cuts independently from the same allgathered weight
//     vector with pure integer arithmetic, then an allreduce(MIN) over an
//     FNV hash of the cuts asserts agreement.  When the new cuts equal the
//     old ones nothing is exchanged, so calling rebalance() repeatedly at a
//     threshold boundary cannot ping-pong.
//   * adopt(new_local) — the owner-computes escape hatch: an algorithm that
//     already exchanged data itself (e.g. a bucket sort) hands the
//     container its new local slab and the container rebuilds the cuts from
//     one allgather of the per-rank counts.  Weights reset to 1.
//
// Fault tolerance is explicit, not ambient.  checkpoint(blob) snapshots the
// local slab (plus an opaque, globally replicated blob — iteration state)
// and mirrors it to the ring buddy (rank+1)%p with two sendrecvs.  After a
// rank kill the survivors shrink the communicator (Comm::shrink()) and call
// recover(new_comm): the survivors agree on the newest checkpoint
// generation that every self ring and the dead rank's buddy ring can serve,
// gatherv the generation's slabs to the new root (displaced at their old
// global ranges, so the array reassembles in place), re-cut over the
// survivors by the checkpointed weights, and scatterv the result.  If no
// consistent generation exists, a container built by scatter() falls back
// to the source retained at the old root.  Three snapshot generations are
// kept because checkpoint generations across ranks can skew by one when a
// kill interrupts the buddy exchange (see docs/handbook/containers.md for
// the bound).
//
// Checkpoints must be separated by at least one collective on the same
// communicator (any real iteration loop does this); that is what bounds the
// generation skew the ring must cover.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "container/partitioning.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "support/error.hpp"

namespace dipdc::container {

/// Counters a Container accumulates over its lifetime (local view).
struct ContainerStats {
  std::uint64_t repartitions = 0;     // exchanges that moved ownership
  std::uint64_t rebalance_noops = 0;  // repartition calls that kept the cuts
  std::uint64_t elements_moved = 0;   // local elements that changed owner
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
};

/// FNV-1a over a byte span; used for the cut-agreement allreduce and by the
/// fuzzer's container digests.
inline std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

template <minimpi::Trivial T>
class Container {
 public:
  /// p2p tag reserved for checkpoint/recovery slab traffic; user code on
  /// the same communicator must not receive with kAnyTag while a
  /// checkpoint or recovery is in flight.
  static constexpr int kWireTag = 9931;

  // ---- Construction ------------------------------------------------------

  /// Root-held source, block-scattered.  `total` is the global element
  /// count (source.size() == total * stride at the root, ignored
  /// elsewhere).  The root retains the source as the generation-0 recovery
  /// fallback.  Collective: one scatterv.
  static Container scatter(minimpi::Comm& comm, std::vector<T> source,
                           std::size_t total, std::size_t stride) {
    DIPDC_REQUIRE(stride >= 1, "container stride must be >= 1");
    Container c;
    c.comm_ = &comm;
    c.stride_ = stride;
    c.from_scatter_ = true;
    c.part_ = Partitioning::block(total, comm.size());
    {
      minimpi::Comm::Phase ph(comm, "partition.distribute");
      if (comm.rank() == 0) {
        DIPDC_REQUIRE(source.size() == total * stride,
                      "scatter: root source size must be total * stride");
      }
      const int p = comm.size();
      std::vector<std::size_t> counts(static_cast<std::size_t>(p));
      std::vector<std::size_t> displs(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        counts[static_cast<std::size_t>(r)] = c.part_.count(r) * stride;
        displs[static_cast<std::size_t>(r)] = c.part_.begin(r) * stride;
      }
      c.data_.resize(c.part_.count(comm.rank()) * stride);
      comm.scatterv(std::span<const T>(source), counts, displs,
                    std::span<T>(c.data_), 0);
    }
    c.weights_.assign(c.part_.count(comm.rank()), 1.0);
    if (comm.rank() == 0) c.source_ = std::move(source);
    return c;
  }

  /// Zero-communication construction: every rank brings the block-layout
  /// slab it already holds.  `local` must be exactly the block partition's
  /// share (the fuzzer depends on this ctor making no calls).
  static Container from_local(minimpi::Comm& comm, std::size_t total,
                              std::size_t stride, std::vector<T> local) {
    DIPDC_REQUIRE(stride >= 1, "container stride must be >= 1");
    Container c;
    c.comm_ = &comm;
    c.stride_ = stride;
    c.part_ = Partitioning::block(total, comm.size());
    DIPDC_REQUIRE(local.size() == c.part_.count(comm.rank()) * stride,
                  "from_local: slab must match the block partitioning");
    c.data_ = std::move(local);
    c.weights_.assign(c.part_.count(comm.rank()), 1.0);
    return c;
  }

  /// Ranks bring arbitrary-size slabs; the cuts are rebuilt from one
  /// allgather of the per-rank counts (collective).
  static Container from_counts(minimpi::Comm& comm, std::size_t stride,
                               std::vector<T> local) {
    DIPDC_REQUIRE(stride >= 1, "container stride must be >= 1");
    DIPDC_REQUIRE(local.size() % stride == 0,
                  "from_counts: slab must be a whole number of elements");
    Container c;
    c.comm_ = &comm;
    c.stride_ = stride;
    c.part_ = c.gathered_cuts(comm, local.size() / stride);
    c.data_ = std::move(local);
    c.weights_.assign(c.part_.count(comm.rank()), 1.0);
    return c;
  }

  Container(Container&&) noexcept = default;
  Container& operator=(Container&&) noexcept = default;

  // ---- Local view ----------------------------------------------------------

  [[nodiscard]] minimpi::Comm& comm() const { return *comm_; }
  [[nodiscard]] const Partitioning& partitioning() const { return part_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] std::size_t size() const { return part_.total(); }
  /// Global index of the first local element.
  [[nodiscard]] std::size_t global_begin() const {
    return part_.begin(comm_->rank());
  }
  /// Number of local elements (local data holds count()*stride() T values).
  [[nodiscard]] std::size_t count() const {
    return part_.count(comm_->rank());
  }
  [[nodiscard]] std::vector<T>& local() { return data_; }
  [[nodiscard]] const std::vector<T>& local() const { return data_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] const ContainerStats& stats() const { return stats_; }

  /// Sets the measured weight of one local element (by local index).
  void set_weight(std::size_t local_index, double weight) {
    DIPDC_REQUIRE(local_index < weights_.size(),
                  "set_weight: local index out of range");
    weights_[local_index] = weight;
  }

  /// Replaces all local element weights (size must equal count()).
  void set_weights(std::span<const double> weights) {
    DIPDC_REQUIRE(weights.size() == weights_.size(),
                  "set_weights: need one weight per local element");
    std::copy(weights.begin(), weights.end(), weights_.begin());
  }

  // ---- Partition transitions ----------------------------------------------

  /// Recomputes weight-driven cuts and exchanges data to match.  Returns
  /// true when ownership changed (an exchange happened).  Collective:
  /// one allgather + one allreduce, plus two alltoallv when data moves.
  bool repartition() { return repartition_impl(0.0); }

  /// Like repartition(), but only re-cuts when the measured imbalance
  /// (max part weight / mean part weight) exceeds `threshold`.  Calling it
  /// again with unchanged weights is always a no-op, so a threshold
  /// boundary cannot ping-pong.
  bool rebalance(double threshold) { return repartition_impl(threshold); }

  /// Owner-computes adoption: the algorithm already moved the data; the
  /// container rebuilds the cuts from the new per-rank counts (one
  /// allgather) and resets all weights to 1.  The global element count
  /// must be conserved.
  void adopt(std::vector<T> new_local) {
    minimpi::Comm::Phase ph(*comm_, "partition.adopt");
    DIPDC_REQUIRE(new_local.size() % stride_ == 0,
                  "adopt: slab must be a whole number of elements");
    Partitioning next = gathered_cuts(*comm_, new_local.size() / stride_);
    DIPDC_REQUIRE(next.total() == part_.total(),
                  "adopt must conserve the global element count");
    part_ = std::move(next);
    data_ = std::move(new_local);
    weights_.assign(part_.count(comm_->rank()), 1.0);
  }

  // ---- Checkpoint / recover -------------------------------------------------

  /// Snapshots the local slab plus an opaque `blob` (must be identical on
  /// every rank — replicated iteration state such as the current centroids)
  /// and mirrors the snapshot to the ring buddy (rank+1)%p.  Collective in
  /// effect: two sendrecvs around the ring.
  void checkpoint(std::span<const std::byte> blob) {
    minimpi::Comm::Phase ph(*comm_, "partition.checkpoint");
    Snapshot snap;
    snap.valid = true;
    snap.generation = next_generation_;
    snap.cuts = part_.cuts();
    snap.data = data_;
    snap.weights = weights_;
    snap.blob.assign(blob.begin(), blob.end());
    const int p = comm_->size();
    WireHeader mine{next_generation_,
                    static_cast<std::uint64_t>(snap.weights.size()),
                    static_cast<std::uint64_t>(snap.blob.size()),
                    static_cast<std::uint64_t>(snap.cuts.size())};
    const std::vector<std::byte> tx =
        p > 1 ? pack_snapshot(snap) : std::vector<std::byte>{};
    // The self snapshot is pushed before any communication: a rank that
    // has *entered* checkpoint(g) can always serve its own slab at g,
    // because container state cannot change between here and the rank's
    // next collective even when the ring exchange below is cut short by a
    // failure.
    push_ring(self_, std::move(snap));
    ++next_generation_;
    ++stats_.checkpoints;
    if (p == 1) return;
    const int to = (comm_->rank() + 1) % p;
    const int from = (comm_->rank() - 1 + p) % p;
    WireHeader peer{};
    comm_->sendrecv(std::span<const WireHeader>(&mine, 1), to, kWireTag,
                    std::span<WireHeader>(&peer, 1), from, kWireTag);
    std::vector<std::byte> rx(wire_bytes(peer));
    // Payload leg as irecv + send + wait: every rank posts its receive
    // before sending, so the ring cannot deadlock, and a snapshot that
    // fully arrived before a failure aborted the exchange is salvaged —
    // recovery can then still serve the sender's slab at this generation.
    minimpi::Request pr = comm_->irecv(std::span<std::byte>(rx), from,
                                       kWireTag);
    try {
      comm_->send(std::span<const std::byte>(tx), to, kWireTag);
      comm_->wait(pr);
    } catch (...) {
      // Drain or unpost the pending receive before `rx` dies; wait()
      // either completes it or removes the posted entry when it throws.
      bool arrived = false;
      try {
        comm_->wait(pr);
        arrived = true;
      } catch (...) {
      }
      if (arrived || comm_->test(pr)) {
        push_ring(buddy_, unpack_snapshot(peer, rx));
      }
      throw;
    }
    push_ring(buddy_, unpack_snapshot(peer, rx));
  }

  /// Shrink-recover protocol: call on every survivor after Comm::shrink(),
  /// passing the shrunken communicator (which must outlive the container).
  /// Restores the newest consistent checkpoint generation — or, failing
  /// that, rebuilds from the root-retained source — re-cut over the
  /// survivors, and returns the restored checkpoint blob (empty when the
  /// container was rebuilt from the source and iteration state must
  /// restart).  Throws RankFailedError when neither path is available.
  std::vector<std::byte> recover(minimpi::Comm& new_comm) {
    minimpi::Comm::Phase ph(new_comm, "partition.recover");
    minimpi::Comm& oc = *comm_;
    const int old_p = oc.size();
    const int new_p = new_comm.size();
    const int dead_world = new_comm.failed_rank();
    DIPDC_REQUIRE(dead_world >= 0, "recover: no rank has failed");
    const std::vector<int> old_group = oc.world_group();
    int dead_old = -1;
    for (std::size_t i = 0; i < old_group.size(); ++i) {
      if (old_group[i] == dead_world) dead_old = static_cast<int>(i);
    }
    if (dead_old < 0) {
      throw minimpi::MpiError(
          "recover: the dead rank is not a member of this container's "
          "communicator");
    }
    const int buddy_old = (dead_old + 1) % old_p;

    // Every survivor advertises the generations its rings can serve; the
    // decision below is a pure function of the gathered metadata, so all
    // survivors pick the same generation without a bcast.
    RecoverMeta mine{};
    mine.old_rank = oc.rank();
    for (std::size_t s = 0; s < kRing; ++s) {
      mine.self_gens[s] =
          self_[s].valid ? static_cast<std::int64_t>(self_[s].generation) : -1;
      mine.buddy_gens[s] =
          buddy_[s].valid ? static_cast<std::int64_t>(buddy_[s].generation)
                          : -1;
    }
    std::vector<RecoverMeta> all(static_cast<std::size_t>(new_p));
    new_comm.allgather(std::span<const RecoverMeta>(&mine, 1),
                       std::span<RecoverMeta>(all));

    int holder_new = -1;  // new rank of the dead rank's buddy
    for (int i = 0; i < new_p; ++i) {
      if (all[static_cast<std::size_t>(i)].old_rank == buddy_old) {
        holder_new = i;
      }
    }
    const std::int64_t gen = pick_generation(all, holder_new);
    ++stats_.recoveries;
    if (gen >= 0) {
      restore_from_snapshots(new_comm, all, holder_new, dead_old, gen);
      std::vector<std::byte> blob =
          ring_at(self_, gen).blob;  // copy before the rings are cleared
      finish_recovery(new_comm, static_cast<std::uint64_t>(gen) + 1);
      return blob;
    }
    // Generation-0 fallback: rebuild from the source retained at the old
    // root — available only for scatter()-built containers whose old root
    // survived.
    if (!from_scatter_ || dead_old == 0) {
      throw minimpi::RankFailedError(
          "recover: no consistent checkpoint generation and no surviving "
          "source holder");
    }
    int source_new = -1;
    for (int i = 0; i < new_p; ++i) {
      if (all[static_cast<std::size_t>(i)].old_rank == 0) source_new = i;
    }
    DIPDC_REQUIRE(source_new >= 0, "recover: old root missing from survivors");
    restore_from_source(new_comm, source_new);
    finish_recovery(new_comm, 0);
    return {};
  }

 private:
  Container() = default;

  struct WireHeader {
    std::uint64_t generation = 0;
    std::uint64_t count = 0;  // elements, not T values
    std::uint64_t blob_bytes = 0;
    std::uint64_t ncuts = 0;
  };

  struct Snapshot {
    bool valid = false;
    std::uint64_t generation = 0;
    std::vector<std::size_t> cuts;
    std::vector<T> data;
    std::vector<double> weights;
    std::vector<std::byte> blob;
  };

  struct RecoverMeta {
    int old_rank = -1;
    std::int64_t self_gens[3] = {-1, -1, -1};
    std::int64_t buddy_gens[3] = {-1, -1, -1};
  };

  static constexpr std::size_t kRing = 3;

  bool repartition_impl(double threshold) {
    minimpi::Comm::Phase ph(*comm_, "partition.repartition");
    const int p = comm_->size();
    const int me = comm_->rank();
    // (1) Everyone learns every element's weight; the recv layout is the
    // current cuts, which all ranks already share.
    const std::vector<std::uint64_t> local_q = quantize_weights(weights_);
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = part_.count(r);
      displs[static_cast<std::size_t>(r)] = part_.begin(r);
    }
    std::vector<std::uint64_t> global_q(part_.total());
    comm_->allgatherv(std::span<const std::uint64_t>(local_q), counts, displs,
                      std::span<std::uint64_t>(global_q));
    // (2) Derive the cuts locally — pure integer arithmetic over identical
    // input, so every rank lands on the same vector.
    Partitioning next = part_;
    if (threshold <= 0.0 || part_.imbalance(global_q) > threshold) {
      next = Partitioning::from_weights(global_q, p);
    }
    // (3) Cheap agreement assertion: MIN-allreduce an FNV hash of the cuts
    // (MIN rather than XOR so mirrored disagreement cannot cancel out).
    const auto cut_bytes = std::as_bytes(std::span<const std::size_t>(
        next.cuts().data(), next.cuts().size()));
    const std::uint64_t h = fnv1a64(cut_bytes);
    const std::uint64_t agreed = comm_->allreduce_value(
        h, [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
    if (agreed != h) {
      throw minimpi::MpiError(
          "repartition: ranks disagree on the new cuts");
    }
    // (4) Move only when ownership changed.
    if (next == part_) {
      ++stats_.rebalance_noops;
      return false;
    }
    exchange_to(next, me, p);
    ++stats_.repartitions;
    return true;
  }

  void exchange_to(const Partitioning& next, int me, int p) {
    const std::size_t ob = part_.begin(me), oe = part_.end(me);
    const std::size_t nb = next.begin(me), ne = next.end(me);
    const auto sp = static_cast<std::size_t>(p);
    std::vector<std::size_t> sc(sp), sd(sp), rc(sp), rd(sp);
    std::vector<std::size_t> scw(sp), sdw(sp), rcw(sp), rdw(sp);
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      // To r: my old range ∩ r's new range (overlaps ascend with r, so the
      // send buffer is naturally laid out in rank order).
      const std::size_t b = std::max(ob, next.begin(r));
      const std::size_t e = std::min(oe, next.end(r));
      scw[ri] = b < e ? e - b : 0;
      sdw[ri] = (b < e ? b : ob) - ob;
      sc[ri] = scw[ri] * stride_;
      sd[ri] = sdw[ri] * stride_;
      // From r: my new range ∩ r's old range.
      const std::size_t b2 = std::max(nb, part_.begin(r));
      const std::size_t e2 = std::min(ne, part_.end(r));
      rcw[ri] = b2 < e2 ? e2 - b2 : 0;
      rdw[ri] = (b2 < e2 ? b2 : nb) - nb;
      rc[ri] = rcw[ri] * stride_;
      rd[ri] = rdw[ri] * stride_;
    }
    std::vector<T> ndata((ne - nb) * stride_);
    comm_->alltoallv(std::span<const T>(data_), sc, sd, std::span<T>(ndata),
                     rc, rd);
    std::vector<double> nweights(ne - nb);
    comm_->alltoallv(std::span<const double>(weights_), scw, sdw,
                     std::span<double>(nweights), rcw, rdw);
    const std::size_t kept =
        std::min(oe, ne) > std::max(ob, nb) ? std::min(oe, ne) - std::max(ob, nb)
                                            : 0;
    stats_.elements_moved += (oe - ob) - kept;
    data_ = std::move(ndata);
    weights_ = std::move(nweights);
    part_ = next;
  }

  /// Cuts from one allgather of per-rank element counts.
  Partitioning gathered_cuts(minimpi::Comm& comm, std::uint64_t my_count) {
    const int p = comm.size();
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
    comm.allgather(std::span<const std::uint64_t>(&my_count, 1),
                   std::span<std::uint64_t>(counts));
    std::vector<std::size_t> cuts(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
      cuts[static_cast<std::size_t>(r) + 1] =
          cuts[static_cast<std::size_t>(r)] +
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    }
    return Partitioning::from_cuts(std::move(cuts));
  }

  // ---- Snapshot ring -------------------------------------------------------

  static void push_ring(std::array<Snapshot, kRing>& ring, Snapshot snap) {
    ring[2] = std::move(ring[1]);
    ring[1] = std::move(ring[0]);
    ring[0] = std::move(snap);
  }

  const Snapshot& ring_at(const std::array<Snapshot, kRing>& ring,
                          std::int64_t gen) const {
    for (const Snapshot& s : ring) {
      if (s.valid && static_cast<std::int64_t>(s.generation) == gen) return s;
    }
    throw minimpi::MpiError("recover: agreed generation missing from ring");
  }

  std::size_t wire_bytes(const WireHeader& h) const {
    return static_cast<std::size_t>(h.ncuts) * sizeof(std::size_t) +
           static_cast<std::size_t>(h.count) * stride_ * sizeof(T) +
           static_cast<std::size_t>(h.count) * sizeof(double) +
           static_cast<std::size_t>(h.blob_bytes);
  }

  std::vector<std::byte> pack_snapshot(const Snapshot& s) const {
    std::vector<std::byte> out(s.cuts.size() * sizeof(std::size_t) +
                               s.data.size() * sizeof(T) +
                               s.weights.size() * sizeof(double) +
                               s.blob.size());
    std::byte* w = out.data();
    auto put = [&w](const void* src, std::size_t n) {
      if (n > 0) std::memcpy(w, src, n);
      w += n;
    };
    put(s.cuts.data(), s.cuts.size() * sizeof(std::size_t));
    put(s.data.data(), s.data.size() * sizeof(T));
    put(s.weights.data(), s.weights.size() * sizeof(double));
    put(s.blob.data(), s.blob.size());
    return out;
  }

  Snapshot unpack_snapshot(const WireHeader& h,
                           std::span<const std::byte> bytes) const {
    DIPDC_REQUIRE(bytes.size() == wire_bytes(h),
                  "checkpoint: buddy payload size mismatch");
    Snapshot s;
    s.valid = true;
    s.generation = h.generation;
    s.cuts.resize(static_cast<std::size_t>(h.ncuts));
    s.data.resize(static_cast<std::size_t>(h.count) * stride_);
    s.weights.resize(static_cast<std::size_t>(h.count));
    s.blob.resize(static_cast<std::size_t>(h.blob_bytes));
    const std::byte* r = bytes.data();
    auto get = [&r](void* dst, std::size_t n) {
      if (n > 0) std::memcpy(dst, r, n);
      r += n;
    };
    get(s.cuts.data(), s.cuts.size() * sizeof(std::size_t));
    get(s.data.data(), s.data.size() * sizeof(T));
    get(s.weights.data(), s.weights.size() * sizeof(double));
    get(s.blob.data(), s.blob.size());
    return s;
  }

  // ---- Recovery ------------------------------------------------------------

  /// Newest generation that every survivor's self ring and the buddy
  /// holder's buddy ring can serve; -1 when none exists.
  std::int64_t pick_generation(const std::vector<RecoverMeta>& all,
                               int holder_new) const {
    if (holder_new < 0) return -1;  // buddy died too (or old_p == 1)
    std::int64_t best = -1;
    const RecoverMeta& holder = all[static_cast<std::size_t>(holder_new)];
    for (const std::int64_t g : holder.buddy_gens) {
      if (g < 0 || g <= best) continue;
      bool ok = true;
      for (const RecoverMeta& m : all) {
        bool has = false;
        for (const std::int64_t sg : m.self_gens) has = has || sg == g;
        if (!has) {
          ok = false;
          break;
        }
      }
      if (ok) best = g;
    }
    return best;
  }

  void restore_from_snapshots(minimpi::Comm& nc,
                              const std::vector<RecoverMeta>& all,
                              int holder_new, int dead_old,
                              std::int64_t gen) {
    const int new_p = nc.size();
    const int me = nc.rank();
    const Snapshot& snap = ring_at(self_, gen);
    // The cuts recorded in any snapshot at `gen` are identical everywhere.
    const Partitioning old_at_gen = Partitioning::from_cuts(snap.cuts);
    const std::size_t total = old_at_gen.total();
    // Gatherv every survivor's snapshot slab to the new root, displaced at
    // its OLD global range: the global array reassembles in place and only
    // the dead rank's range is left to fill from the buddy copy.
    std::vector<std::size_t> counts(static_cast<std::size_t>(new_p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(new_p));
    std::vector<std::size_t> wcounts(static_cast<std::size_t>(new_p));
    std::vector<std::size_t> wdispls(static_cast<std::size_t>(new_p));
    for (int i = 0; i < new_p; ++i) {
      const int old_r = all[static_cast<std::size_t>(i)].old_rank;
      wcounts[static_cast<std::size_t>(i)] = old_at_gen.count(old_r);
      wdispls[static_cast<std::size_t>(i)] = old_at_gen.begin(old_r);
      counts[static_cast<std::size_t>(i)] =
          wcounts[static_cast<std::size_t>(i)] * stride_;
      displs[static_cast<std::size_t>(i)] =
          wdispls[static_cast<std::size_t>(i)] * stride_;
    }
    std::vector<T> gdata(me == 0 ? total * stride_ : 0);
    std::vector<double> gweights(me == 0 ? total : 0);
    nc.gatherv(std::span<const T>(snap.data), counts, displs,
               std::span<T>(gdata), 0);
    nc.gatherv(std::span<const double>(snap.weights), wcounts, wdispls,
               std::span<double>(gweights), 0);
    // The dead rank's range comes from its buddy's mirrored copy.
    const std::size_t dead_n = old_at_gen.count(dead_old);
    if (dead_n > 0) {
      const std::size_t db = old_at_gen.begin(dead_old);
      if (me == holder_new) {
        const Snapshot& bsnap = ring_at(buddy_, gen);
        DIPDC_REQUIRE(bsnap.weights.size() == dead_n,
                      "recover: buddy slab size mismatch");
        if (me == 0) {
          std::copy(bsnap.data.begin(), bsnap.data.end(),
                    gdata.begin() + static_cast<std::ptrdiff_t>(db * stride_));
          std::copy(bsnap.weights.begin(), bsnap.weights.end(),
                    gweights.begin() + static_cast<std::ptrdiff_t>(db));
        } else {
          nc.send(std::span<const T>(bsnap.data), 0, kWireTag);
          nc.send(std::span<const double>(bsnap.weights), 0, kWireTag);
        }
      } else if (me == 0) {
        nc.recv(std::span<T>(gdata.data() + db * stride_, dead_n * stride_),
                holder_new, kWireTag);
        nc.recv(std::span<double>(gweights.data() + db, dead_n), holder_new,
                kWireTag);
      }
    }
    // Weight-driven cuts over the survivors, decided at the root and
    // broadcast (only the root holds the reassembled weights).
    std::vector<std::size_t> ncuts(static_cast<std::size_t>(new_p) + 1, 0);
    if (me == 0) {
      ncuts = Partitioning::from_weights(quantize_weights(gweights), new_p)
                  .cuts();
    }
    nc.bcast(std::span<std::size_t>(ncuts), 0);
    const Partitioning next = Partitioning::from_cuts(std::move(ncuts));
    for (int i = 0; i < new_p; ++i) {
      wcounts[static_cast<std::size_t>(i)] = next.count(i);
      wdispls[static_cast<std::size_t>(i)] = next.begin(i);
      counts[static_cast<std::size_t>(i)] = next.count(i) * stride_;
      displs[static_cast<std::size_t>(i)] = next.begin(i) * stride_;
    }
    data_.assign(next.count(me) * stride_, T{});
    weights_.assign(next.count(me), 0.0);
    nc.scatterv(std::span<const T>(gdata), counts, displs,
                std::span<T>(data_), 0);
    nc.scatterv(std::span<const double>(gweights), wcounts, wdispls,
                std::span<double>(weights_), 0);
    part_ = next;
  }

  void restore_from_source(minimpi::Comm& nc, int source_new) {
    const int new_p = nc.size();
    const int me = nc.rank();
    const std::size_t total = part_.total();
    const Partitioning next = Partitioning::block(total, new_p);
    std::vector<std::size_t> counts(static_cast<std::size_t>(new_p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(new_p));
    for (int i = 0; i < new_p; ++i) {
      counts[static_cast<std::size_t>(i)] = next.count(i) * stride_;
      displs[static_cast<std::size_t>(i)] = next.begin(i) * stride_;
    }
    data_.assign(next.count(me) * stride_, T{});
    nc.scatterv(std::span<const T>(source_), counts, displs,
                std::span<T>(data_), source_new);
    weights_.assign(next.count(me), 1.0);
    part_ = next;
  }

  /// Rebinds the container to the shrunken communicator and drops all
  /// snapshots — the ring-buddy topology changed, so pre-failure mirrors
  /// are no longer where recovery would look for them.
  void finish_recovery(minimpi::Comm& nc, std::uint64_t next_gen) {
    comm_ = &nc;
    for (Snapshot& s : self_) s = Snapshot{};
    for (Snapshot& s : buddy_) s = Snapshot{};
    next_generation_ = next_gen;
  }

  minimpi::Comm* comm_ = nullptr;
  std::size_t stride_ = 1;
  bool from_scatter_ = false;
  Partitioning part_;
  std::vector<T> data_;          // count() * stride() values
  std::vector<double> weights_;  // count() values
  std::vector<T> source_;        // scatter(): retained at the (old) root
  std::array<Snapshot, kRing> self_{};
  std::array<Snapshot, kRing> buddy_{};  // mirrors of (rank-1+p)%p
  std::uint64_t next_generation_ = 0;
  ContainerStats stats_;
};

}  // namespace dipdc::container
