#include "container/partitioning.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace dipdc::container {

Partitioning Partitioning::block(std::size_t total, int parts) {
  DIPDC_REQUIRE(parts > 0, "partitioning needs at least one part");
  std::vector<std::size_t> cuts(static_cast<std::size_t>(parts) + 1, 0);
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  for (int r = 0; r < parts; ++r) {
    cuts[static_cast<std::size_t>(r) + 1] =
        cuts[static_cast<std::size_t>(r)] + base +
        (static_cast<std::size_t>(r) < extra ? 1 : 0);
  }
  return Partitioning(std::move(cuts));
}

Partitioning Partitioning::from_weights(std::span<const std::uint64_t> weights,
                                        int parts) {
  DIPDC_REQUIRE(parts > 0, "partitioning needs at least one part");
  const std::size_t n = weights.size();
  // prefix[i] = sum of weights[0..i); 128-bit products below keep the cut
  // rule exact even for large weight totals.
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    DIPDC_REQUIRE(weights[i] >= 1, "element weights must be >= 1");
    prefix[i + 1] = prefix[i] + weights[i];
  }
  const std::uint64_t total_w = prefix[n];
  std::vector<std::size_t> cuts(static_cast<std::size_t>(parts) + 1, 0);
  cuts[static_cast<std::size_t>(parts)] = n;
  const auto p128 = static_cast<unsigned __int128>(parts);
  for (int r = 1; r < parts; ++r) {
    const unsigned __int128 target =
        static_cast<unsigned __int128>(r) * total_w;
    // Smallest i with prefix[i] * parts >= r * total_w.
    const auto it = std::lower_bound(
        prefix.begin(), prefix.end(), target,
        [p128](std::uint64_t pre, const unsigned __int128& t) {
          return static_cast<unsigned __int128>(pre) * p128 < t;
        });
    cuts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(it - prefix.begin());
  }
  return Partitioning(std::move(cuts));
}

Partitioning Partitioning::from_cuts(std::vector<std::size_t> cuts) {
  DIPDC_REQUIRE(cuts.size() >= 2 && cuts.front() == 0,
                "cut vector must start at 0 and name at least one part");
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    DIPDC_REQUIRE(cuts[i - 1] <= cuts[i], "cut vector must be monotone");
  }
  return Partitioning(std::move(cuts));
}

int Partitioning::owner(std::size_t index) const {
  DIPDC_REQUIRE(index < total(), "element index outside the partitioning");
  // The owner is the last part whose begin() <= index.
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), index);
  return static_cast<int>(it - cuts_.begin()) - 1;
}

double Partitioning::imbalance(std::span<const std::uint64_t> weights) const {
  DIPDC_REQUIRE(weights.size() == total(),
                "imbalance needs one weight per element");
  if (parts() == 0 || total() == 0) return 1.0;
  std::uint64_t total_w = 0;
  std::uint64_t max_w = 0;
  for (int r = 0; r < parts(); ++r) {
    std::uint64_t w = 0;
    for (std::size_t i = begin(r); i < end(r); ++i) w += weights[i];
    total_w += w;
    max_w = std::max(max_w, w);
  }
  if (total_w == 0) return 1.0;
  const double mean =
      static_cast<double>(total_w) / static_cast<double>(parts());
  return static_cast<double>(max_w) / mean;
}

double Partitioning::count_imbalance() const {
  if (parts() == 0 || total() == 0) return 1.0;
  std::size_t max_c = 0;
  for (int r = 0; r < parts(); ++r) max_c = std::max(max_c, count(r));
  const double mean =
      static_cast<double>(total()) / static_cast<double>(parts());
  return static_cast<double>(max_c) / mean;
}

std::vector<std::uint64_t> quantize_weights(std::span<const double> weights,
                                            double scale) {
  std::vector<std::uint64_t> q(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double scaled = weights[i] * scale;
    q[i] = scaled <= 1.0
               ? 1
               : static_cast<std::uint64_t>(std::llround(scaled));
  }
  return q;
}

}  // namespace dipdc::container
