// Range-based, owner-computes partitioning of a 1-D index space.
//
// A Partitioning over `total` elements and `parts` owners is a monotone cut
// vector: part r owns the contiguous global range [begin(r), end(r)).
// Weight-driven cuts are computed with pure integer arithmetic over
// quantized per-element weights, so every rank that holds the same weight
// vector derives bit-identical cuts — there is no distributed agreement
// problem and no float-associativity hazard (the laik partitioner idea,
// made deterministic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dipdc::container {

class Partitioning {
 public:
  Partitioning() = default;

  /// Equal-count block partitioning (the classic startup layout): part r
  /// owns total/parts elements, the first total%parts parts one extra.
  static Partitioning block(std::size_t total, int parts);

  /// Weight-driven cuts over `weights` (one entry per global element, all
  /// entries >= 1): cut r is the smallest index i with
  ///   prefix(i) * parts >= r * total_weight
  /// — the deterministic integer analogue of "each part gets 1/parts of
  /// the total weight".  Cuts are non-decreasing because weights are
  /// strictly positive.
  static Partitioning from_weights(std::span<const std::uint64_t> weights,
                                   int parts);

  /// Explicit cut vector (size parts+1, monotone, cuts[0]==0).
  static Partitioning from_cuts(std::vector<std::size_t> cuts);

  [[nodiscard]] std::size_t total() const {
    return cuts_.empty() ? 0 : cuts_.back();
  }
  [[nodiscard]] int parts() const {
    return cuts_.empty() ? 0 : static_cast<int>(cuts_.size()) - 1;
  }
  [[nodiscard]] std::size_t begin(int part) const {
    return cuts_[static_cast<std::size_t>(part)];
  }
  [[nodiscard]] std::size_t end(int part) const {
    return cuts_[static_cast<std::size_t>(part) + 1];
  }
  [[nodiscard]] std::size_t count(int part) const {
    return end(part) - begin(part);
  }
  /// Owner of global element `index` (binary search over the cuts).
  [[nodiscard]] int owner(std::size_t index) const;

  /// max part weight / mean part weight under `weights` (1.0 = balanced).
  [[nodiscard]] double imbalance(
      std::span<const std::uint64_t> weights) const;
  /// max part count / mean part count (unit-weight imbalance).
  [[nodiscard]] double count_imbalance() const;

  [[nodiscard]] const std::vector<std::size_t>& cuts() const { return cuts_; }

  bool operator==(const Partitioning&) const = default;

 private:
  explicit Partitioning(std::vector<std::size_t> cuts)
      : cuts_(std::move(cuts)) {}

  std::vector<std::size_t> cuts_;  // size parts+1; cuts_[0] == 0
};

/// Quantizes measured (double) weights for the integer cut rule: each entry
/// becomes max(1, llround(w * scale)).  The floor of 1 keeps prefix sums
/// strictly increasing (zero-weight elements still need an owner) and the
/// fixed scale keeps quantization independent of the weight distribution.
std::vector<std::uint64_t> quantize_weights(std::span<const double> weights,
                                            double scale = 1024.0);

}  // namespace dipdc::container
