// Deterministic performance model of a commodity HPC cluster.
//
// The paper evaluates its modules on NAU's "Monsoon" cluster (multi-core
// nodes, shared memory bandwidth within a node, an interconnect between
// nodes).  This environment has a single host core and no cluster, so all
// scaling results in this repository are produced in *simulated time*: each
// rank of the minimpi runtime carries a SimClock, compute kernels advance it
// through a roofline-style cost model, and messages advance it through a
// Hockney (latency + bytes/bandwidth) model with distinct intra-node and
// inter-node parameters.
//
// The model intentionally captures exactly the mechanisms the paper's
// experiments rely on:
//   * compute-bound kernels scale with core count,
//   * memory-bound kernels saturate at the per-node memory bandwidth that is
//     shared by all ranks placed on the node (so p ranks on 2 nodes can beat
//     p ranks on 1 node — Module 4, activity 3),
//   * inter-node messages cost more than intra-node messages (so
//     communication-heavy configurations prefer fewer nodes — Module 5),
//   * external co-running jobs steal node memory bandwidth (the "terrible
//     twins" co-scheduling question behind Figure 1).
#pragma once

#include <cstddef>
#include <vector>

namespace dipdc::perfmodel {

/// Static description of the modelled cluster.
struct MachineConfig {
  int nodes = 1;
  int cores_per_node = 32;

  /// Peak floating-point rate of one core (flop/s).
  double core_flops = 4.0e9;
  /// Memory bandwidth of one node, shared by all ranks placed on it (B/s).
  double node_mem_bandwidth = 80.0e9;

  /// Hockney parameters for messages between ranks on the same node
  /// (shared-memory transport) and on different nodes (interconnect).
  double intra_latency = 8.0e-7;    // seconds
  double intra_bandwidth = 2.0e10;  // B/s
  double inter_latency = 2.0e-6;    // seconds
  double inter_bandwidth = 1.25e10; // B/s (~100 Gb/s)

  /// CPU time the *sender* spends injecting a message (LogP's "o").  Much
  /// smaller than the wire latency: a non-blocking send returns almost
  /// immediately, which is what makes communication/computation overlap
  /// (Module 6) possible.
  double send_overhead = 1.0e-7;    // seconds

  /// Fraction of each node's memory bandwidth consumed by jobs outside the
  /// modelled program (co-runners).  Empty means no external load anywhere.
  std::vector<double> external_bw_load;

  /// A configuration shaped like the paper's cluster: 32-core nodes.
  static MachineConfig monsoon_like(int node_count);

  /// External bandwidth load on `node` in [0, 1).
  [[nodiscard]] double external_load(int node) const;

  /// Total cores across all nodes.
  [[nodiscard]] int total_cores() const { return nodes * cores_per_node; }
};

/// How ranks are assigned to nodes.
enum class PlacementPolicy {
  kBlock,       // ranks 0..p/n-1 on node 0, next chunk on node 1, ...
  kRoundRobin,  // rank r on node r % nodes
};

struct Placement {
  PlacementPolicy policy = PlacementPolicy::kBlock;

  /// Node hosting `rank` out of `nranks` ranks over `nodes` nodes.
  [[nodiscard]] int node_of(int rank, int nranks, int nodes) const;
};

/// Cost model bound to a concrete (machine, placement, rank count) triple.
/// This is the object the minimpi runtime and the module kernels query.
class CostModel {
 public:
  CostModel(const MachineConfig& config, Placement placement, int nranks);

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int node_of(int rank) const;
  [[nodiscard]] int ranks_on_node(int node) const;

  /// Point-to-point message cost (seconds) for `bytes` payload bytes.
  [[nodiscard]] double message_time(int src_rank, int dst_rank,
                                    std::size_t bytes) const;

  /// Sender-side injection overhead (seconds).
  [[nodiscard]] double send_overhead() const {
    return config_.send_overhead;
  }

  /// Time for a kernel on `rank` that executes `flops` floating-point
  /// operations and moves `mem_bytes` bytes to/from DRAM: the roofline
  /// max of compute time and memory time under the rank's bandwidth share.
  [[nodiscard]] double kernel_time(int rank, double flops,
                                   double mem_bytes) const;

  /// The DRAM bandwidth share available to one rank on `node` (B/s):
  /// the node bandwidth minus external load, divided among resident ranks.
  [[nodiscard]] double bandwidth_share(int node) const;

 private:
  MachineConfig config_;
  Placement placement_;
  int nranks_;
  std::vector<int> node_of_rank_;
  std::vector<int> ranks_per_node_;
};

/// Speedups t(1)/t(p) for a series of times indexed by run; `procs[i]` gives
/// the rank count of run i (procs[0] is the baseline).
std::vector<double> speedups(const std::vector<double>& times);

/// Parallel efficiency speedup/p.
double parallel_efficiency(double speedup, int procs);

/// Weak-scaling efficiency t(1)/t(p) with the problem size growing with p
/// (1.0 = perfect: constant time as both work and workers grow).
double weak_efficiency(double t1, double tp);

}  // namespace dipdc::perfmodel
