#include "perfmodel/machine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dipdc::perfmodel {

MachineConfig MachineConfig::monsoon_like(int node_count) {
  MachineConfig cfg;
  cfg.nodes = node_count;
  cfg.cores_per_node = 32;
  return cfg;
}

double MachineConfig::external_load(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= external_bw_load.size()) {
    return 0.0;
  }
  return std::clamp(external_bw_load[static_cast<std::size_t>(node)], 0.0,
                    0.99);
}

int Placement::node_of(int rank, int nranks, int nodes) const {
  DIPDC_REQUIRE(rank >= 0 && rank < nranks, "rank out of range");
  DIPDC_REQUIRE(nodes > 0, "need at least one node");
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return rank % nodes;
    case PlacementPolicy::kBlock:
    default: {
      // Ceil-divide so the first nodes take the larger chunks.
      const int per_node = (nranks + nodes - 1) / nodes;
      return std::min(rank / per_node, nodes - 1);
    }
  }
}

CostModel::CostModel(const MachineConfig& config, Placement placement,
                     int nranks)
    : config_(config), placement_(placement), nranks_(nranks) {
  DIPDC_REQUIRE(nranks > 0, "need at least one rank");
  DIPDC_REQUIRE(config.nodes > 0, "need at least one node");
  node_of_rank_.resize(static_cast<std::size_t>(nranks));
  ranks_per_node_.assign(static_cast<std::size_t>(config.nodes), 0);
  for (int r = 0; r < nranks; ++r) {
    const int n = placement_.node_of(r, nranks, config.nodes);
    node_of_rank_[static_cast<std::size_t>(r)] = n;
    ++ranks_per_node_[static_cast<std::size_t>(n)];
  }
}

int CostModel::node_of(int rank) const {
  DIPDC_REQUIRE(rank >= 0 && rank < nranks_, "rank out of range");
  return node_of_rank_[static_cast<std::size_t>(rank)];
}

int CostModel::ranks_on_node(int node) const {
  DIPDC_REQUIRE(node >= 0 && node < config_.nodes, "node out of range");
  return ranks_per_node_[static_cast<std::size_t>(node)];
}

double CostModel::message_time(int src_rank, int dst_rank,
                               std::size_t bytes) const {
  const bool same_node = node_of(src_rank) == node_of(dst_rank);
  const double latency =
      same_node ? config_.intra_latency : config_.inter_latency;
  const double bandwidth =
      same_node ? config_.intra_bandwidth : config_.inter_bandwidth;
  return latency + static_cast<double>(bytes) / bandwidth;
}

double CostModel::bandwidth_share(int node) const {
  const double available =
      config_.node_mem_bandwidth * (1.0 - config_.external_load(node));
  const int residents = std::max(1, ranks_on_node(node));
  return available / static_cast<double>(residents);
}

double CostModel::kernel_time(int rank, double flops, double mem_bytes) const {
  DIPDC_REQUIRE(flops >= 0.0 && mem_bytes >= 0.0,
                "kernel cost inputs must be non-negative");
  const double compute_time = flops / config_.core_flops;
  const double memory_time = mem_bytes / bandwidth_share(node_of(rank));
  return std::max(compute_time, memory_time);
}

std::vector<double> speedups(const std::vector<double>& times) {
  std::vector<double> out;
  out.reserve(times.size());
  if (times.empty()) return out;
  const double t1 = times.front();
  for (const double t : times) {
    out.push_back(t > 0.0 ? t1 / t : 0.0);
  }
  return out;
}

double parallel_efficiency(double speedup, int procs) {
  return procs > 0 ? speedup / static_cast<double>(procs) : 0.0;
}

double weak_efficiency(double t1, double tp) {
  return tp > 0.0 ? t1 / tp : 0.0;
}

}  // namespace dipdc::perfmodel
