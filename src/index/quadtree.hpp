// Point-region quad-tree: the alternative spatial index the paper mentions
// alongside the R-tree (Finkel & Bentley 1974).  Used as a second baseline
// in the Module 4 experiments and ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "index/geometry.hpp"

namespace dipdc::spatial {

class QuadTree {
 public:
  /// All inserted points must fall inside `bounds`.
  explicit QuadTree(Rect bounds, std::size_t node_capacity = 16,
                    int max_depth = 32);

  /// Returns false (and ignores the point) if it lies outside the bounds.
  bool insert(Point2 p, std::uint32_t id);

  void query(const Rect& window, std::vector<std::uint32_t>& out,
             QueryStats* stats = nullptr) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Rect bounds() const { return bounds_; }

 private:
  struct Item {
    Point2 point;
    std::uint32_t id;
  };
  struct Node {
    std::vector<Item> items;                    // leaf payload
    std::unique_ptr<Node> children[4];          // null in leaves
    [[nodiscard]] bool leaf() const { return children[0] == nullptr; }
  };

  static int quadrant_of(const Rect& r, Point2 p);
  static Rect child_rect(const Rect& r, int quadrant);
  void insert_into(Node* node, const Rect& r, Item item, int depth);
  static void query_node(const Node* node, const Rect& r, const Rect& window,
                         std::vector<std::uint32_t>& out, QueryStats* stats);

  Rect bounds_;
  std::size_t capacity_;
  int max_depth_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dipdc::spatial
