// 2-D geometry primitives shared by the spatial indexes and Module 4.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace dipdc::spatial {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2&, const Point2&) = default;
};

/// Closed axis-aligned rectangle [xmin, xmax] x [ymin, ymax].
struct Rect {
  double xmin = 0.0;
  double ymin = 0.0;
  double xmax = 0.0;
  double ymax = 0.0;

  static Rect of_point(Point2 p) { return {p.x, p.y, p.x, p.y}; }

  /// The degenerate "empty" rectangle that unites as the identity.
  static Rect empty();

  [[nodiscard]] bool valid() const { return xmin <= xmax && ymin <= ymax; }
  [[nodiscard]] bool contains(Point2 p) const {
    return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }
  [[nodiscard]] bool contains(const Rect& o) const {
    return o.xmin >= xmin && o.xmax <= xmax && o.ymin >= ymin &&
           o.ymax <= ymax;
  }
  [[nodiscard]] bool intersects(const Rect& o) const {
    return o.xmin <= xmax && o.xmax >= xmin && o.ymin <= ymax &&
           o.ymax >= ymin;
  }
  [[nodiscard]] double area() const {
    return valid() ? (xmax - xmin) * (ymax - ymin) : 0.0;
  }
  [[nodiscard]] Rect united(const Rect& o) const {
    return {std::min(xmin, o.xmin), std::min(ymin, o.ymin),
            std::max(xmax, o.xmax), std::max(ymax, o.ymax)};
  }
  /// Area growth if this rectangle were extended to cover `o`
  /// (Guttman's least-enlargement heuristic).
  [[nodiscard]] double enlargement(const Rect& o) const {
    return united(o).area() - area();
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Counters a range query fills in; Module 4's reasoning about the
/// memory-access:distance-calculation ratio is grounded in these.
struct QueryStats {
  std::uint64_t nodes_visited = 0;    // index nodes touched
  std::uint64_t entries_checked = 0;  // rect/point comparisons performed

  QueryStats& operator+=(const QueryStats& o) {
    nodes_visited += o.nodes_visited;
    entries_checked += o.entries_checked;
    return *this;
  }
};

/// Baseline: scan every point (the Module 4 activity-1 algorithm).
void brute_force_query(std::span<const Point2> points, const Rect& window,
                       std::vector<std::uint32_t>& out,
                       QueryStats* stats = nullptr);

}  // namespace dipdc::spatial
