#include "index/quadtree.hpp"

#include "support/error.hpp"

namespace dipdc::spatial {

QuadTree::QuadTree(Rect bounds, std::size_t node_capacity, int max_depth)
    : bounds_(bounds),
      capacity_(node_capacity),
      max_depth_(max_depth),
      root_(std::make_unique<Node>()) {
  DIPDC_REQUIRE(bounds.valid(), "quad-tree bounds must be a valid rectangle");
  DIPDC_REQUIRE(node_capacity > 0, "node capacity must be positive");
  DIPDC_REQUIRE(max_depth > 0, "max depth must be positive");
}

int QuadTree::quadrant_of(const Rect& r, Point2 p) {
  const double cx = (r.xmin + r.xmax) / 2.0;
  const double cy = (r.ymin + r.ymax) / 2.0;
  return (p.x >= cx ? 1 : 0) | (p.y >= cy ? 2 : 0);
}

Rect QuadTree::child_rect(const Rect& r, int quadrant) {
  const double cx = (r.xmin + r.xmax) / 2.0;
  const double cy = (r.ymin + r.ymax) / 2.0;
  switch (quadrant) {
    case 0: return {r.xmin, r.ymin, cx, cy};
    case 1: return {cx, r.ymin, r.xmax, cy};
    case 2: return {r.xmin, cy, cx, r.ymax};
    default: return {cx, cy, r.xmax, r.ymax};
  }
}

bool QuadTree::insert(Point2 p, std::uint32_t id) {
  if (!bounds_.contains(p)) return false;
  insert_into(root_.get(), bounds_, Item{p, id}, 1);
  ++size_;
  return true;
}

void QuadTree::insert_into(Node* node, const Rect& r, Item item, int depth) {
  while (!node->leaf()) {
    const int q = quadrant_of(r, item.point);
    Node* child = node->children[q].get();
    insert_into(child, child_rect(r, q), item, depth + 1);
    return;
  }
  node->items.push_back(item);
  if (node->items.size() > capacity_ && depth < max_depth_) {
    for (auto& child : node->children) child = std::make_unique<Node>();
    std::vector<Item> items = std::move(node->items);
    node->items.clear();
    for (const Item& it : items) {
      const int q = quadrant_of(r, it.point);
      insert_into(node->children[q].get(), child_rect(r, q), it, depth + 1);
    }
  }
}

void QuadTree::query_node(const Node* node, const Rect& r, const Rect& window,
                          std::vector<std::uint32_t>& out,
                          QueryStats* stats) {
  if (stats != nullptr) ++stats->nodes_visited;
  if (node->leaf()) {
    for (const Item& it : node->items) {
      if (stats != nullptr) ++stats->entries_checked;
      if (window.contains(it.point)) out.push_back(it.id);
    }
    return;
  }
  for (int q = 0; q < 4; ++q) {
    if (stats != nullptr) ++stats->entries_checked;
    const Rect cr = child_rect(r, q);
    if (window.intersects(cr)) {
      query_node(node->children[q].get(), cr, window, out, stats);
    }
  }
}

void QuadTree::query(const Rect& window, std::vector<std::uint32_t>& out,
                     QueryStats* stats) const {
  query_node(root_.get(), bounds_, window, out, stats);
}

}  // namespace dipdc::spatial
