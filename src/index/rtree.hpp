// R-tree (Guttman 1984) over 2-D points: dynamic insertion with quadratic
// node splitting plus Sort-Tile-Recursive (STR) bulk loading.
//
// The paper's Module 4 *supplies* an R-tree to students; this is that
// supplied implementation, built from scratch.  Query statistics expose the
// node-visit and comparison counts that make the module's "efficient but
// memory-bound" lesson measurable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/geometry.hpp"

namespace dipdc::spatial {

class RTree {
 public:
  /// `max_entries` is the node fan-out M; the minimum fill m is M*0.4.
  explicit RTree(std::size_t max_entries = 16);

  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;

  /// Inserts one point with an opaque id (Guttman ChooseLeaf + quadratic
  /// split).
  void insert(Point2 p, std::uint32_t id);

  /// Builds a packed tree over `points` (ids = positions) using STR:
  /// sort by x, cut into vertical slabs, sort each slab by y, pack leaves.
  static RTree bulk_load(std::span<const Point2> points,
                         std::size_t max_entries = 16);

  /// All ids whose point lies inside `window`, appended to `out`.
  void query(const Rect& window, std::vector<std::uint32_t>& out,
             QueryStats* stats = nullptr) const;

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Leaf depth (1 for a leaf-only tree).
  [[nodiscard]] int height() const;
  /// Root bounding rectangle (meaningless when empty).
  [[nodiscard]] Rect bounds() const;

  /// Structural invariants, for property tests: every node's rectangle
  /// tightly bounds its children, entry counts respect M (and m below the
  /// root for inserted trees), all leaves at equal depth.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node;
  struct Entry {
    Rect rect;
    std::uint32_t id = 0;          // valid in leaves
    std::unique_ptr<Node> child;   // valid in internal nodes
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    [[nodiscard]] Rect bounds() const;
  };

  [[nodiscard]] std::size_t min_entries() const {
    return std::max<std::size_t>(1, max_entries_ * 2 / 5);
  }

  Node* choose_leaf(Node* node, const Rect& rect,
                    std::vector<Node*>& path) const;
  /// Splits an overfull node, returning the new sibling.
  std::unique_ptr<Node> split_node(Node* node);
  void adjust_tree(std::vector<Node*>& path, Node* node,
                   std::unique_ptr<Node> sibling);
  static void query_node(const Node* node, const Rect& window,
                         std::vector<std::uint32_t>& out, QueryStats* stats);
  static bool check_node(const Node* node, std::size_t max_entries,
                         std::size_t min_entries, bool is_root, int depth,
                         int leaf_depth);
  static int leaf_depth_of(const Node* node);

  std::size_t max_entries_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dipdc::spatial
