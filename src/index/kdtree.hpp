// 2-D k-d tree (Bentley 1975) — the third spatial index the paper cites
// alongside the R-tree and quad-tree (§III-E).  Built once over a point
// set (median-split, balanced); supports rectangular range queries with
// the same QueryStats instrumentation as the other indexes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/geometry.hpp"

namespace dipdc::spatial {

class KdTree {
 public:
  KdTree() = default;

  /// Builds a balanced tree over `points` (ids are positions).
  static KdTree build(std::span<const Point2> points);

  /// All ids whose point lies inside `window`, appended to `out`.
  void query(const Rect& window, std::vector<std::uint32_t>& out,
             QueryStats* stats = nullptr) const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  /// Depth of the deepest node (0 for an empty tree).
  [[nodiscard]] int height() const;

  /// Structural invariants for property tests: at every node, the left
  /// subtree's points lie on the splitting coordinate's low side and the
  /// right subtree's on the high side.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    Point2 point;
    std::uint32_t id = 0;
    std::int32_t left = -1;   // index into nodes_, -1 = none
    std::int32_t right = -1;
    std::uint8_t axis = 0;    // 0 = x, 1 = y
  };

  std::int32_t build_recursive(
      std::vector<std::pair<Point2, std::uint32_t>>& items,
      std::size_t begin, std::size_t end, int depth);
  void query_node(std::int32_t node, const Rect& window,
                  std::vector<std::uint32_t>& out, QueryStats* stats) const;
  bool check_node(std::int32_t node, Rect bounds) const;
  int depth_of(std::int32_t node) const;

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace dipdc::spatial
