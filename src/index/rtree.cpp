#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace dipdc::spatial {

Rect Rect::empty() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {inf, inf, -inf, -inf};
}

void brute_force_query(std::span<const Point2> points, const Rect& window,
                       std::vector<std::uint32_t>& out, QueryStats* stats) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (stats != nullptr) ++stats->entries_checked;
    if (window.contains(points[i])) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

Rect RTree::Node::bounds() const {
  Rect r = Rect::empty();
  for (const Entry& e : entries) r = r.united(e.rect);
  return r;
}

RTree::RTree(std::size_t max_entries) : max_entries_(max_entries) {
  DIPDC_REQUIRE(max_entries >= 4, "R-tree fan-out must be at least 4");
}

Rect RTree::bounds() const {
  return root_ ? root_->bounds() : Rect::empty();
}

int RTree::height() const { return root_ ? leaf_depth_of(root_.get()) : 0; }

int RTree::leaf_depth_of(const Node* node) {
  int depth = 1;
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++depth;
  }
  return depth;
}

RTree::Node* RTree::choose_leaf(Node* node, const Rect& rect,
                                std::vector<Node*>& path) const {
  while (!node->leaf) {
    path.push_back(node);
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& e : node->entries) {
      const double grow = e.rect.enlargement(rect);
      const double area = e.rect.area();
      if (grow < best_enlargement ||
          (grow == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = grow;
        best_area = area;
      }
    }
    node = best->child.get();
  }
  return node;
}

std::unique_ptr<RTree::Node> RTree::split_node(Node* node) {
  std::vector<Entry> pool = std::move(node->entries);
  node->entries.clear();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  // Quadratic PickSeeds: the pair wasting the most area together.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      const double waste = pool[i].rect.united(pool[j].rect).area() -
                           pool[i].rect.area() - pool[j].rect.area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Rect rect_a = pool[seed_a].rect;
  Rect rect_b = pool[seed_b].rect;
  node->entries.push_back(std::move(pool[seed_a]));
  sibling->entries.push_back(std::move(pool[seed_b]));
  // Erase the higher index first so the lower stays valid.
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(
                                std::max(seed_a, seed_b)));
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(
                                std::min(seed_a, seed_b)));

  const std::size_t min_fill = min_entries();
  while (!pool.empty()) {
    // If one group must take everything to reach minimum fill, give it all.
    if (node->entries.size() + pool.size() == min_fill) {
      for (Entry& e : pool) {
        rect_a = rect_a.united(e.rect);
        node->entries.push_back(std::move(e));
      }
      pool.clear();
      break;
    }
    if (sibling->entries.size() + pool.size() == min_fill) {
      for (Entry& e : pool) {
        rect_b = rect_b.united(e.rect);
        sibling->entries.push_back(std::move(e));
      }
      pool.clear();
      break;
    }

    // PickNext: the entry with the strongest group preference.
    std::size_t pick = 0;
    double best_diff = -1.0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const double da = rect_a.enlargement(pool[i].rect);
      const double db = rect_b.enlargement(pool[i].rect);
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    Entry e = std::move(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    const double da = rect_a.enlargement(e.rect);
    const double db = rect_b.enlargement(e.rect);
    const bool to_a =
        da < db || (da == db && (rect_a.area() < rect_b.area() ||
                                 (rect_a.area() == rect_b.area() &&
                                  node->entries.size() <=
                                      sibling->entries.size())));
    if (to_a) {
      rect_a = rect_a.united(e.rect);
      node->entries.push_back(std::move(e));
    } else {
      rect_b = rect_b.united(e.rect);
      sibling->entries.push_back(std::move(e));
    }
  }
  return sibling;
}

void RTree::adjust_tree(std::vector<Node*>& path, Node* node,
                        std::unique_ptr<Node> sibling) {
  while (!path.empty()) {
    Node* parent = path.back();
    path.pop_back();
    // Refresh the parent entry covering `node`.
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->bounds();
        break;
      }
    }
    if (sibling) {
      Entry e;
      e.rect = sibling->bounds();
      e.child = std::move(sibling);
      parent->entries.push_back(std::move(e));
      if (parent->entries.size() > max_entries_) {
        sibling = split_node(parent);
      } else {
        sibling = nullptr;
      }
    }
    node = parent;
  }
  if (sibling) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.rect = root_->bounds();
    left.child = std::move(root_);
    Entry right;
    right.rect = sibling->bounds();
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
}

void RTree::insert(Point2 p, std::uint32_t id) {
  const Rect rect = Rect::of_point(p);
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  std::vector<Node*> path;
  Node* leaf = choose_leaf(root_.get(), rect, path);
  Entry e;
  e.rect = rect;
  e.id = id;
  leaf->entries.push_back(std::move(e));
  std::unique_ptr<Node> sibling;
  if (leaf->entries.size() > max_entries_) {
    sibling = split_node(leaf);
  }
  adjust_tree(path, leaf, std::move(sibling));
  ++size_;
}

RTree RTree::bulk_load(std::span<const Point2> points,
                       std::size_t max_entries) {
  RTree tree(max_entries);
  tree.size_ = points.size();
  if (points.empty()) return tree;

  // Leaf level: STR packing of (rect, id) records.
  struct Record {
    Rect rect;
    double cx, cy;
    std::unique_ptr<Node> child;  // null at the leaf level
    std::uint32_t id;
  };
  std::vector<Record> records;
  records.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    records.push_back({Rect::of_point(points[i]), points[i].x, points[i].y,
                       nullptr, static_cast<std::uint32_t>(i)});
  }

  bool leaf_level = true;
  const double m = static_cast<double>(max_entries);
  while (records.size() > max_entries || leaf_level) {
    const std::size_t n = records.size();
    const auto nnodes =
        static_cast<std::size_t>(std::ceil(static_cast<double>(n) / m));
    const auto slabs = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(nnodes))));
    const std::size_t slab_size =
        (n + slabs - 1) / slabs;  // records per vertical slab

    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) { return a.cx < b.cx; });
    std::vector<Record> parents;
    parents.reserve(nnodes);
    for (std::size_t s = 0; s < n; s += slab_size) {
      const std::size_t slab_end = std::min(n, s + slab_size);
      std::sort(records.begin() + static_cast<std::ptrdiff_t>(s),
                records.begin() + static_cast<std::ptrdiff_t>(slab_end),
                [](const Record& a, const Record& b) { return a.cy < b.cy; });
      for (std::size_t b = s; b < slab_end; b += max_entries) {
        const std::size_t e = std::min(slab_end, b + max_entries);
        auto node = std::make_unique<Node>();
        node->leaf = leaf_level;
        Rect nr = Rect::empty();
        for (std::size_t i = b; i < e; ++i) {
          Entry entry;
          entry.rect = records[i].rect;
          entry.id = records[i].id;
          entry.child = std::move(records[i].child);
          nr = nr.united(entry.rect);
          node->entries.push_back(std::move(entry));
        }
        parents.push_back({nr, (nr.xmin + nr.xmax) / 2.0,
                           (nr.ymin + nr.ymax) / 2.0, std::move(node), 0});
      }
    }
    records = std::move(parents);
    leaf_level = false;
  }

  if (records.size() == 1) {
    tree.root_ = std::move(records.front().child);
  } else {
    auto root = std::make_unique<Node>();
    root->leaf = false;
    for (Record& r : records) {
      Entry e;
      e.rect = r.rect;
      e.child = std::move(r.child);
      root->entries.push_back(std::move(e));
    }
    tree.root_ = std::move(root);
  }
  return tree;
}

void RTree::query_node(const Node* node, const Rect& window,
                       std::vector<std::uint32_t>& out, QueryStats* stats) {
  if (stats != nullptr) ++stats->nodes_visited;
  for (const Entry& e : node->entries) {
    if (stats != nullptr) ++stats->entries_checked;
    if (!window.intersects(e.rect)) continue;
    if (node->leaf) {
      out.push_back(e.id);
    } else {
      query_node(e.child.get(), window, out, stats);
    }
  }
}

void RTree::query(const Rect& window, std::vector<std::uint32_t>& out,
                  QueryStats* stats) const {
  if (!root_) return;
  query_node(root_.get(), window, out, stats);
}

bool RTree::check_node(const Node* node, std::size_t max_entries,
                       std::size_t /*min_entries*/, bool is_root, int depth,
                       int leaf_depth) {
  if (node->entries.empty()) return false;
  if (node->entries.size() > max_entries) return false;
  if (!is_root && node->entries.size() < 1) return false;
  if (node->leaf) {
    return depth == leaf_depth;
  }
  for (const Entry& e : node->entries) {
    if (e.child == nullptr) return false;
    // Parent rectangles must tightly bound their children.
    if (!(e.rect == e.child->bounds())) return false;
    if (!check_node(e.child.get(), max_entries, 0, false, depth + 1,
                    leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool RTree::check_invariants() const {
  if (!root_) return size_ == 0;
  return check_node(root_.get(), max_entries_, min_entries(), true, 1,
                    leaf_depth_of(root_.get()));
}

}  // namespace dipdc::spatial
