#include "index/kdtree.hpp"

#include <algorithm>

namespace dipdc::spatial {

KdTree KdTree::build(std::span<const Point2> points) {
  KdTree tree;
  if (points.empty()) return tree;
  std::vector<std::pair<Point2, std::uint32_t>> items;
  items.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    items.emplace_back(points[i], static_cast<std::uint32_t>(i));
  }
  tree.nodes_.reserve(points.size());
  tree.root_ = tree.build_recursive(items, 0, items.size(), 0);
  return tree;
}

std::int32_t KdTree::build_recursive(
    std::vector<std::pair<Point2, std::uint32_t>>& items, std::size_t begin,
    std::size_t end, int depth) {
  if (begin >= end) return -1;
  const std::uint8_t axis = static_cast<std::uint8_t>(depth % 2);
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(
      items.begin() + static_cast<std::ptrdiff_t>(begin),
      items.begin() + static_cast<std::ptrdiff_t>(mid),
      items.begin() + static_cast<std::ptrdiff_t>(end),
      [axis](const auto& a, const auto& b) {
        return axis == 0 ? a.first.x < b.first.x : a.first.y < b.first.y;
      });
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{items[mid].first, items[mid].second, -1, -1, axis});
  // Recurse after the push; note nodes_ may reallocate, so assign through
  // the index, not a stale reference.
  const std::int32_t left = build_recursive(items, begin, mid, depth + 1);
  const std::int32_t right = build_recursive(items, mid + 1, end, depth + 1);
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

void KdTree::query(const Rect& window, std::vector<std::uint32_t>& out,
                   QueryStats* stats) const {
  query_node(root_, window, out, stats);
}

void KdTree::query_node(std::int32_t node, const Rect& window,
                        std::vector<std::uint32_t>& out,
                        QueryStats* stats) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (stats != nullptr) {
    ++stats->nodes_visited;
    ++stats->entries_checked;
  }
  if (window.contains(n.point)) out.push_back(n.id);
  const double coord = n.axis == 0 ? n.point.x : n.point.y;
  const double lo = n.axis == 0 ? window.xmin : window.ymin;
  const double hi = n.axis == 0 ? window.xmax : window.ymax;
  if (lo <= coord) query_node(n.left, window, out, stats);
  if (hi >= coord) query_node(n.right, window, out, stats);
}

int KdTree::height() const { return depth_of(root_); }

int KdTree::depth_of(std::int32_t node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

bool KdTree::check_invariants() const {
  constexpr double kInf = 1e300;
  return check_node(root_, Rect{-kInf, -kInf, kInf, kInf});
}

bool KdTree::check_node(std::int32_t node, Rect bounds) const {
  if (node < 0) return true;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!bounds.contains(n.point)) return false;
  Rect left = bounds;
  Rect right = bounds;
  if (n.axis == 0) {
    left.xmax = n.point.x;
    right.xmin = n.point.x;
  } else {
    left.ymax = n.point.y;
    right.ymin = n.point.y;
  }
  return check_node(n.left, left) && check_node(n.right, right);
}

}  // namespace dipdc::spatial
