// Chunked on-disk dataset format with double-buffered prefetch.
//
// The streamed pipelines in modules 2 and 3 work on datasets larger than
// RAM: rows live on disk in fixed-size chunks and only O(chunk) of them
// are resident at a time.  This header provides the format and the two
// movers:
//
//  - ChunkWriter appends rows and flushes a chunk whenever `chunk_rows`
//    have accumulated (the file stays valid after every flush);
//  - ChunkReader random-accesses chunks (`read_chunk`) or streams them in
//    order (`next`), where a background thread reads chunk k+1 from disk
//    while the caller consumes chunk k — the I/O half of the read /
//    communicate / compute rotation documented in
//    docs/handbook/streaming.md.
//
// File layout (host-native byte order; this is a single-machine teaching
// format, not an interchange format):
//
//   offset 0: Header { magic "DIPDCCHK", version, dim, total_rows,
//                      chunk_rows }
//   then ceil(total_rows / chunk_rows) chunks back to back, chunk k
//   holding rows [k*chunk_rows, min((k+1)*chunk_rows, total_rows)) as raw
//   row-major doubles.  Chunk offsets are computable from the header, so
//   there are no per-chunk headers and any chunk can be seeked directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dataio/dataset.hpp"

namespace dipdc::dataio {

/// Shape of a chunk file, as recorded in its header.
struct ChunkFileInfo {
  std::size_t dim = 0;
  std::size_t total_rows = 0;
  std::size_t chunk_rows = 0;

  [[nodiscard]] std::size_t num_chunks() const {
    return chunk_rows == 0 ? 0 : (total_rows + chunk_rows - 1) / chunk_rows;
  }
  /// Rows in chunk k (the last chunk may be short).
  [[nodiscard]] std::size_t rows_in_chunk(std::size_t k) const;
};

/// Appends rows to a chunk file.  The header's row count is patched on
/// close(), which the destructor calls; a writer abandoned mid-append
/// still leaves a parseable file covering the rows flushed so far.
class ChunkWriter {
 public:
  ChunkWriter(const std::string& path, std::size_t dim,
              std::size_t chunk_rows);
  ~ChunkWriter();
  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;

  /// Appends whole rows: `values.size()` must be a multiple of dim.
  void append(std::span<const double> values);
  [[nodiscard]] std::size_t rows_written() const { return rows_written_; }
  /// Flushes the partial chunk and patches the header.  Idempotent.
  void close();

 private:
  void flush_buffer();

  std::ofstream out_;
  std::string path_;
  std::size_t dim_;
  std::size_t chunk_rows_;
  std::size_t rows_written_ = 0;
  std::vector<double> buffer_;  // < chunk_rows_ * dim_ values pending
  bool closed_ = false;
};

/// Reads a chunk file: random access via read_chunk(), or sequential
/// streaming via next()/reset() with one chunk of read-ahead on a
/// background thread.  Not thread-safe; one reader per consumer.
class ChunkReader {
 public:
  explicit ChunkReader(const std::string& path);
  ~ChunkReader();
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  [[nodiscard]] const ChunkFileInfo& info() const { return info_; }
  [[nodiscard]] std::size_t dim() const { return info_.dim; }
  [[nodiscard]] std::size_t total_rows() const { return info_.total_rows; }
  [[nodiscard]] std::size_t num_chunks() const { return info_.num_chunks(); }

  /// Reads chunk k into `out` (resized to rows_in_chunk(k) * dim).
  void read_chunk(std::size_t k, std::vector<double>& out);

  /// Streams chunks in order.  Fills `out` with the next chunk and
  /// returns its index, or returns num_chunks() when exhausted.  After
  /// handing over chunk k it immediately starts reading chunk k+1 in the
  /// background, so a caller that computes on `out` between calls overlaps
  /// that compute with the disk read.
  std::size_t next(std::vector<double>& out);

  /// Restarts streaming from chunk 0 (discards any read-ahead).
  void reset();

 private:
  void start_prefetch(std::size_t k);
  void join_prefetch();

  ChunkFileInfo info_;
  std::string path_;
  std::ifstream in_;           // random-access reads (read_chunk)
  std::ifstream prefetch_in_;  // owned by the prefetch thread while joined
  std::thread prefetch_;
  std::vector<double> back_;   // buffer the prefetch thread fills
  std::size_t next_chunk_ = 0;
  bool inflight_ = false;
};

/// Writes a whole in-core dataset as a chunk file.
void dataset_to_chunks(const Dataset& dataset, const std::string& path,
                       std::size_t chunk_rows);

/// Reads a whole chunk file into memory (in-core convenience / tests).
Dataset read_chunks(const std::string& path);

/// Streaming CSV-to-chunks conversion: O(chunk) resident memory however
/// large the file.  Malformed input (ragged rows, non-numeric cells) is
/// reported with its 1-based line number.
ChunkFileInfo csv_to_chunks(const std::string& csv_path,
                            const std::string& chunk_path,
                            std::size_t chunk_rows);

/// Parses one CSV line of doubles into `row` (cleared first).  Errors name
/// `path` and the 1-based `line_no`.  Shared by read_csv and
/// csv_to_chunks so both report malformed input identically.
void parse_csv_row(const std::string& line, std::size_t line_no,
                   const std::string& path, std::vector<double>& row);

}  // namespace dipdc::dataio
