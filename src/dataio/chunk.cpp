#include "dataio/chunk.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <memory>
#include <utility>

#include "support/error.hpp"

namespace dipdc::dataio {

namespace {

constexpr char kMagic[8] = {'D', 'I', 'P', 'D', 'C', 'C', 'H', 'K'};
constexpr std::uint32_t kVersion = 1;

// Fixed-width on-disk header; everything after it is raw doubles.
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t pad;  // keeps the doubles that follow 8-byte aligned
  std::uint64_t dim;
  std::uint64_t total_rows;
  std::uint64_t chunk_rows;
};
static_assert(sizeof(Header) == 40, "header layout is part of the format");

std::streamoff chunk_offset(const ChunkFileInfo& info, std::size_t k) {
  return static_cast<std::streamoff>(
      sizeof(Header) +
      k * info.chunk_rows * info.dim * sizeof(double));
}

void write_header(std::ofstream& out, const ChunkFileInfo& info) {
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.dim = info.dim;
  h.total_rows = info.total_rows;
  h.chunk_rows = info.chunk_rows;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
}

void read_doubles(std::ifstream& in, const std::string& path,
                  std::streamoff offset, std::vector<double>& out) {
  in.seekg(offset);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(double)));
  DIPDC_REQUIRE(in.good(), "truncated chunk file: " + path);
}

}  // namespace

std::size_t ChunkFileInfo::rows_in_chunk(std::size_t k) const {
  const std::size_t begin = k * chunk_rows;
  DIPDC_REQUIRE(begin < total_rows || (total_rows == 0 && k == 0),
                "chunk index out of range");
  return std::min(chunk_rows, total_rows - begin);
}

// ---- ChunkWriter -----------------------------------------------------------

ChunkWriter::ChunkWriter(const std::string& path, std::size_t dim,
                         std::size_t chunk_rows)
    : out_(path, std::ios::binary), path_(path), dim_(dim),
      chunk_rows_(chunk_rows) {
  DIPDC_REQUIRE(dim > 0, "chunk file dimensionality must be positive");
  DIPDC_REQUIRE(chunk_rows > 0, "chunk_rows must be positive");
  DIPDC_REQUIRE(out_.good(), "cannot open chunk file for writing: " + path);
  buffer_.reserve(chunk_rows_ * dim_);
  write_header(out_, {dim_, 0, chunk_rows_});
}

ChunkWriter::~ChunkWriter() {
  try {
    close();
  } catch (...) {
    // Destructor teardown must not throw; close() explicitly to observe
    // write failures.
  }
}

void ChunkWriter::append(std::span<const double> values) {
  DIPDC_REQUIRE(!closed_, "append on a closed ChunkWriter");
  DIPDC_REQUIRE(values.size() % dim_ == 0,
                "append size must be a multiple of the dimensionality");
  std::size_t taken = 0;
  while (taken < values.size()) {
    const std::size_t room = chunk_rows_ * dim_ - buffer_.size();
    const std::size_t n = std::min(room, values.size() - taken);
    buffer_.insert(buffer_.end(), values.begin() + static_cast<std::ptrdiff_t>(taken),
                   values.begin() + static_cast<std::ptrdiff_t>(taken + n));
    taken += n;
    if (buffer_.size() == chunk_rows_ * dim_) flush_buffer();
  }
}

void ChunkWriter::flush_buffer() {
  if (buffer_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size() * sizeof(double)));
  DIPDC_REQUIRE(out_.good(), "error while writing chunk file: " + path_);
  rows_written_ += buffer_.size() / dim_;
  buffer_.clear();
}

void ChunkWriter::close() {
  if (closed_) return;
  flush_buffer();
  // Patch the row count now that it is known; everything else in the
  // header was final from the start.
  out_.seekp(0);
  write_header(out_, {dim_, rows_written_, chunk_rows_});
  out_.flush();
  DIPDC_REQUIRE(out_.good(), "error while finalizing chunk file: " + path_);
  out_.close();
  closed_ = true;
}

// ---- ChunkReader -----------------------------------------------------------

ChunkReader::ChunkReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary),
      prefetch_in_(path, std::ios::binary) {
  DIPDC_REQUIRE(in_.good(), "cannot open chunk file for reading: " + path);
  Header h{};
  in_.read(reinterpret_cast<char*>(&h), sizeof(h));
  DIPDC_REQUIRE(in_.good() && std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
                "not a chunk file: " + path);
  DIPDC_REQUIRE(h.version == kVersion,
                "unsupported chunk file version in " + path);
  DIPDC_REQUIRE(h.dim > 0 && h.chunk_rows > 0,
                "corrupt chunk file header in " + path);
  info_ = {static_cast<std::size_t>(h.dim),
           static_cast<std::size_t>(h.total_rows),
           static_cast<std::size_t>(h.chunk_rows)};
}

ChunkReader::~ChunkReader() { join_prefetch(); }

void ChunkReader::read_chunk(std::size_t k, std::vector<double>& out) {
  DIPDC_REQUIRE(k < num_chunks(), "chunk index out of range");
  out.resize(info_.rows_in_chunk(k) * info_.dim);
  read_doubles(in_, path_, chunk_offset(info_, k), out);
}

void ChunkReader::start_prefetch(std::size_t k) {
  back_.resize(info_.rows_in_chunk(k) * info_.dim);
  // The prefetch stream is touched only by this thread until the matching
  // join_prefetch(); read failures surface there via the stream state.
  prefetch_ = std::thread([this, k] {
    prefetch_in_.seekg(chunk_offset(info_, k));
    prefetch_in_.read(
        reinterpret_cast<char*>(back_.data()),
        static_cast<std::streamsize>(back_.size() * sizeof(double)));
  });
  inflight_ = true;
}

void ChunkReader::join_prefetch() {
  if (prefetch_.joinable()) prefetch_.join();
  inflight_ = false;
}

std::size_t ChunkReader::next(std::vector<double>& out) {
  if (next_chunk_ >= num_chunks()) return num_chunks();
  const std::size_t k = next_chunk_++;
  if (inflight_) {
    join_prefetch();
    DIPDC_REQUIRE(prefetch_in_.good(), "truncated chunk file: " + path_);
    out.swap(back_);
  } else {
    read_chunk(k, out);  // first call (or first after reset): no read-ahead
  }
  if (next_chunk_ < num_chunks()) start_prefetch(next_chunk_);
  return k;
}

void ChunkReader::reset() {
  join_prefetch();
  prefetch_in_.clear();
  next_chunk_ = 0;
}

// ---- Whole-file conveniences ----------------------------------------------

void dataset_to_chunks(const Dataset& dataset, const std::string& path,
                       std::size_t chunk_rows) {
  ChunkWriter writer(path, dataset.dim(), chunk_rows);
  writer.append(dataset.values());
  writer.close();
}

Dataset read_chunks(const std::string& path) {
  ChunkReader reader(path);
  std::vector<double> values;
  values.reserve(reader.total_rows() * reader.dim());
  std::vector<double> chunk;
  while (reader.next(chunk) < reader.num_chunks()) {
    values.insert(values.end(), chunk.begin(), chunk.end());
  }
  return {reader.dim(), std::move(values)};
}

// ---- CSV -------------------------------------------------------------------

void parse_csv_row(const std::string& line, std::size_t line_no,
                   const std::string& path, std::vector<double>& row) {
  row.clear();
  const char* p = line.data();
  const char* const end = p + line.size();
  while (true) {
    const char* cell_end = p;
    while (cell_end != end && *cell_end != ',') ++cell_end;
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(p, cell_end, v);
    DIPDC_REQUIRE(ec == std::errc{} && ptr == cell_end,
                  "malformed CSV cell at " + path + ":" +
                      std::to_string(line_no));
    row.push_back(v);
    if (cell_end == end) break;
    p = cell_end + 1;  // past the comma; an empty trailing cell is an error
  }
}

ChunkFileInfo csv_to_chunks(const std::string& csv_path,
                            const std::string& chunk_path,
                            std::size_t chunk_rows) {
  std::ifstream in(csv_path);
  DIPDC_REQUIRE(in.good(), "cannot open CSV file for reading: " + csv_path);
  std::string line;
  std::vector<double> row;
  std::size_t line_no = 0;
  std::size_t dim = 0;
  // The writer is constructed lazily: the dimensionality is whatever the
  // first non-empty row has, and every later row must match it.
  std::unique_ptr<ChunkWriter> writer;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    parse_csv_row(line, line_no, csv_path, row);
    if (dim == 0) {
      dim = row.size();
      writer = std::make_unique<ChunkWriter>(chunk_path, dim, chunk_rows);
    } else {
      DIPDC_REQUIRE(row.size() == dim,
                    "ragged CSV row at " + csv_path + ":" +
                        std::to_string(line_no) + " (got " +
                        std::to_string(row.size()) + " cells, expected " +
                        std::to_string(dim) + ")");
    }
    writer->append(row);
  }
  DIPDC_REQUIRE(dim > 0, "empty CSV file: " + csv_path);
  writer->close();
  return {dim, writer->rows_written(), chunk_rows};
}

}  // namespace dipdc::dataio
