// Dataset representation and the synthetic generators the modules use.
//
// Module 2 computes distance matrices on 90-dimensional feature vectors;
// Module 3 sorts uniformly and exponentially distributed values; Module 4
// queries 2-D points (e.g. asteroid light-curve amplitude x rotation
// period); Module 5 clusters a 2-D dataset.  All of those inputs come from
// the generators here, seeded deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dipdc::dataio {

/// A dense row-major collection of `dim`-dimensional points.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t dim, std::vector<double> values);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t size() const {
    return dim_ == 0 ? 0 : values_.size() / dim_;
  }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  [[nodiscard]] std::span<const double> point(std::size_t i) const {
    return {values_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<double> point(std::size_t i) {
    return {values_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<double> values() { return values_; }

  /// Rows [begin, end) as a contiguous span of raw values.
  [[nodiscard]] std::span<const double> rows(std::size_t begin,
                                             std::size_t end) const {
    return {values_.data() + begin * dim_, (end - begin) * dim_};
  }

 private:
  std::size_t dim_ = 0;
  std::vector<double> values_;
};

/// n points uniform in [lo, hi)^dim.
Dataset generate_uniform(std::size_t n, std::size_t dim, double lo, double hi,
                         std::uint64_t seed);

/// n points with each coordinate Exp(rate)-distributed (the skewed input of
/// Module 3's second activity).
Dataset generate_exponential(std::size_t n, std::size_t dim, double rate,
                             std::uint64_t seed);

/// A Gaussian-mixture dataset with ground truth, for k-means.
struct ClusteredDataset {
  Dataset data;
  Dataset true_centers;          // k x dim
  std::vector<std::size_t> labels;  // generating component of each point
};

ClusteredDataset generate_clusters(std::size_t n, std::size_t dim,
                                   std::size_t k, double stddev, double lo,
                                   double hi, std::uint64_t seed);

/// n tokens drawn from a vocabulary of `vocab` ids with Zipf(s) frequencies
/// (id 0 is the most frequent).  The skewed input of the Module 7 extension
/// (MapReduce word count): real text is Zipf-distributed, which is what
/// makes naive range partitioning collapse onto one reducer.
std::vector<std::uint64_t> generate_zipf_tokens(std::size_t n,
                                                std::size_t vocab, double s,
                                                std::uint64_t seed);

/// Block partition of n items over `parts` owners: returns [begin, end) per
/// part, sizes differing by at most one.
std::vector<std::pair<std::size_t, std::size_t>> block_partition(
    std::size_t n, std::size_t parts);

/// CSV round trip (plain doubles, comma separated, one point per row).
/// read_csv reports malformed rows with their 1-based line number; for
/// files too large to hold in memory, convert with csv_to_chunks
/// (dataio/chunk.hpp) and stream with ChunkReader instead.
void write_csv(const Dataset& dataset, const std::string& path);
Dataset read_csv(const std::string& path);

}  // namespace dipdc::dataio
