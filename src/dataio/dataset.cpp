#include "dataio/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "dataio/chunk.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dipdc::dataio {

Dataset::Dataset(std::size_t dim, std::vector<double> values)
    : dim_(dim), values_(std::move(values)) {
  DIPDC_REQUIRE(dim > 0, "dataset dimensionality must be positive");
  DIPDC_REQUIRE(values_.size() % dim == 0,
                "value count must be a multiple of the dimensionality");
}

Dataset generate_uniform(std::size_t n, std::size_t dim, double lo, double hi,
                         std::uint64_t seed) {
  DIPDC_REQUIRE(lo < hi, "uniform range must be non-empty");
  support::Xoshiro256 rng(seed);
  std::vector<double> values(n * dim);
  for (double& v : values) v = rng.uniform(lo, hi);
  return {dim, std::move(values)};
}

Dataset generate_exponential(std::size_t n, std::size_t dim, double rate,
                             std::uint64_t seed) {
  DIPDC_REQUIRE(rate > 0.0, "exponential rate must be positive");
  support::Xoshiro256 rng(seed);
  std::vector<double> values(n * dim);
  for (double& v : values) v = rng.exponential(rate);
  return {dim, std::move(values)};
}

ClusteredDataset generate_clusters(std::size_t n, std::size_t dim,
                                   std::size_t k, double stddev, double lo,
                                   double hi, std::uint64_t seed) {
  DIPDC_REQUIRE(k > 0, "need at least one cluster");
  DIPDC_REQUIRE(lo < hi, "center range must be non-empty");
  support::Xoshiro256 rng(seed);

  std::vector<double> centers(k * dim);
  for (double& c : centers) c = rng.uniform(lo, hi);

  std::vector<double> values(n * dim);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.uniform_index(k);
    labels[i] = c;
    for (std::size_t d = 0; d < dim; ++d) {
      values[i * dim + d] = rng.normal(centers[c * dim + d], stddev);
    }
  }
  return {Dataset(dim, std::move(values)), Dataset(dim, std::move(centers)),
          std::move(labels)};
}

std::vector<std::uint64_t> generate_zipf_tokens(std::size_t n,
                                                std::size_t vocab, double s,
                                                std::uint64_t seed) {
  DIPDC_REQUIRE(vocab > 0, "vocabulary must be non-empty");
  DIPDC_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
  support::Xoshiro256 rng(seed);
  // Inverse-CDF sampling over the (normalized) cumulative Zipf weights.
  std::vector<double> cdf(vocab);
  double total = 0.0;
  for (std::size_t k = 0; k < vocab; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  std::vector<std::uint64_t> tokens(n);
  for (auto& t : tokens) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    t = static_cast<std::uint64_t>(it - cdf.begin());
  }
  return tokens;
}

std::vector<std::pair<std::size_t, std::size_t>> block_partition(
    std::size_t n, std::size_t parts) {
  DIPDC_REQUIRE(parts > 0, "need at least one partition");
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void write_csv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  DIPDC_REQUIRE(out.good(), "cannot open CSV file for writing: " + path);
  out.precision(17);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto p = dataset.point(i);
    for (std::size_t d = 0; d < p.size(); ++d) {
      if (d > 0) out << ',';
      out << p[d];
    }
    out << '\n';
  }
  DIPDC_REQUIRE(out.good(), "error while writing CSV file: " + path);
}

Dataset read_csv(const std::string& path) {
  std::ifstream in(path);
  DIPDC_REQUIRE(in.good(), "cannot open CSV file for reading: " + path);
  std::vector<double> values;
  std::vector<double> row;  // reused across lines
  std::size_t dim = 0;
  std::size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    parse_csv_row(line, line_no, path, row);
    if (dim == 0) {
      dim = row.size();
    } else {
      DIPDC_REQUIRE(row.size() == dim,
                    "ragged CSV row at " + path + ":" +
                        std::to_string(line_no) + " (got " +
                        std::to_string(row.size()) + " cells, expected " +
                        std::to_string(dim) + ")");
    }
    values.insert(values.end(), row.begin(), row.end());
  }
  DIPDC_REQUIRE(dim > 0, "empty CSV file: " + path);
  return {dim, std::move(values)};
}

}  // namespace dipdc::dataio
