// Fundamental types of the minimpi message-passing runtime.
//
// minimpi is a from-scratch, thread-backed implementation of the MPI subset
// used by the paper's pedagogic modules (Table II): blocking and
// non-blocking point-to-point communication with tag/source matching
// (including ANY_SOURCE / ANY_TAG and Probe/Get_count), and the collectives
// Barrier, Bcast, Scatter(v), Gather(v), Allgather(v), Reduce, Allreduce,
// Alltoall(v) and Scan.  Every rank runs as one std::thread in the same
// process; messages move between per-rank mailboxes under MPI matching
// semantics (non-overtaking per (source, destination) pair).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dipdc::minimpi {

/// Wildcard source for receive/probe operations (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive/probe operations (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Result of a receive or probe: who sent, with what tag, how many bytes.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;

  /// Number of elements of type T in the message (MPI_Get_count).
  template <typename T>
  [[nodiscard]] std::size_t count() const {
    return bytes / sizeof(T);
  }
};

/// User-visible primitives, instrumented per rank.  The enumeration mirrors
/// the rows of the paper's Table II plus the remaining collectives we
/// implement.  Collective-internal point-to-point traffic is *not* counted
/// as Send/Recv: the counters reflect what the module author called.
enum class Primitive : std::size_t {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kSendrecv,
  kProbe,
  kBarrier,
  kBcast,
  kScatter,
  kScatterv,
  kGather,
  kGatherv,
  kAllgather,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAlltoallv,
  kScan,
  kSendReliable,
  kRecvReliable,
  // Nonblocking collectives (issue side; completion is counted as kWait,
  // exactly like Isend/Irecv).  Appended after the reliable primitives so
  // existing trace op codes stay stable.
  kIbcast,
  kIreduce,
  kIallreduce,
  kIallgatherv,
  kCount,  // sentinel
};

inline constexpr std::size_t kPrimitiveCount =
    static_cast<std::size_t>(Primitive::kCount);

/// Human-readable primitive name ("MPI_Send" style, matching the paper).
std::string_view primitive_name(Primitive p);

/// Concrete algorithm executed for one collective invocation; counted per
/// rank in CommStats::algo_uses so benches/tests can verify which code path
/// ran at a given size.  Composite collectives also count their building
/// blocks (e.g. a reduce+bcast allreduce bumps kReduceBinomial and
/// kBcastBinomial too).
enum class CollectiveAlgo : std::size_t {
  kBarrierDissemination,
  kBcastBinomial,
  kScatterLinear,
  kScatterBinomial,
  kScattervLinear,
  kScattervBinomial,
  kGatherLinear,
  kGatherBinomial,
  kGathervLinear,
  kGathervBinomial,
  kAllgatherGatherBcast,
  kAllgatherRing,
  kReduceBinomial,
  kAllreduceReduceBcast,
  kAllreduceRecursiveDoubling,
  kAllreduceRabenseifner,
  kAlltoallPairwise,
  kAlltoallvPairwise,
  kScanLinear,
  // Nonblocking collectives run flat (star) schedules: completion order is
  // driven by the waiting rank, not a tree, so overlap with compute is
  // maximal and root-side fan-in stays deterministic.
  kIbcastLinear,
  kIreduceLinear,
  kIallreduceReduceBcast,
  kIallgathervLinear,
  kCount,  // sentinel
};

inline constexpr std::size_t kCollectiveAlgoCount =
    static_cast<std::size_t>(CollectiveAlgo::kCount);

/// Human-readable algorithm name ("bcast/binomial" style).
std::string_view collective_algo_name(CollectiveAlgo a);

}  // namespace dipdc::minimpi
