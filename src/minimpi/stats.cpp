#include "minimpi/stats.hpp"

#include <sstream>

namespace dipdc::minimpi {

CommStats& CommStats::operator+=(const CommStats& other) {
  for (std::size_t i = 0; i < kPrimitiveCount; ++i) {
    calls[i] += other.calls[i];
  }
  p2p_bytes_sent += other.p2p_bytes_sent;
  p2p_messages_sent += other.p2p_messages_sent;
  p2p_bytes_received += other.p2p_bytes_received;
  p2p_messages_received += other.p2p_messages_received;
  transport_bytes_sent += other.transport_bytes_sent;
  transport_messages_sent += other.transport_messages_sent;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  inline_messages += other.inline_messages;
  zero_copy_bytes += other.zero_copy_bytes;
  copied_bytes += other.copied_bytes;
  rendezvous_stalls += other.rendezvous_stalls;
  fault_drops += other.fault_drops;
  fault_dups += other.fault_dups;
  fault_delays += other.fault_delays;
  reliable_retries += other.reliable_retries;
  reliable_timeouts += other.reliable_timeouts;
  reliable_duplicates += other.reliable_duplicates;
  for (std::size_t i = 0; i < kCollectiveAlgoCount; ++i) {
    algo_uses[i] += other.algo_uses[i];
  }
  sim_compute_seconds += other.sim_compute_seconds;
  sim_comm_seconds += other.sim_comm_seconds;
  sim_idle_seconds += other.sim_idle_seconds;
  return *this;
}

std::string transport_report(const CommStats& stats) {
  std::ostringstream os;
  os << "transport: " << stats.transport_messages_sent << " messages, "
     << stats.transport_bytes_sent << " bytes\n";
  os << "  payload pool: " << stats.pool_hits << " hits, "
     << stats.pool_misses << " misses\n";
  os << "  inline messages: " << stats.inline_messages << "\n";
  os << "  bytes zero-copy: " << stats.zero_copy_bytes
     << ", copied: " << stats.copied_bytes << "\n";
  os << "  rendezvous stalls: " << stats.rendezvous_stalls << "\n";
  if (stats.fault_drops != 0 || stats.fault_dups != 0 ||
      stats.fault_delays != 0 || stats.reliable_retries != 0 ||
      stats.reliable_timeouts != 0 || stats.reliable_duplicates != 0) {
    os << "fault injection: " << stats.fault_drops << " dropped, "
       << stats.fault_dups << " duplicated, " << stats.fault_delays
       << " delayed\n";
    os << "  reliable delivery: " << stats.reliable_retries << " retries, "
       << stats.reliable_timeouts << " timeouts, "
       << stats.reliable_duplicates << " duplicates filtered\n";
  }
  bool any_algo = false;
  for (std::size_t i = 0; i < kCollectiveAlgoCount; ++i) {
    if (stats.algo_uses[i] == 0) continue;
    if (!any_algo) {
      os << "collective algorithms (rank-invocations):\n";
      any_algo = true;
    }
    os << "  " << collective_algo_name(static_cast<CollectiveAlgo>(i))
       << ": " << stats.algo_uses[i] << "\n";
  }
  return os.str();
}

}  // namespace dipdc::minimpi
