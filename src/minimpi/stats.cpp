#include "minimpi/stats.hpp"

namespace dipdc::minimpi {

CommStats& CommStats::operator+=(const CommStats& other) {
  for (std::size_t i = 0; i < kPrimitiveCount; ++i) {
    calls[i] += other.calls[i];
  }
  p2p_bytes_sent += other.p2p_bytes_sent;
  p2p_messages_sent += other.p2p_messages_sent;
  p2p_bytes_received += other.p2p_bytes_received;
  p2p_messages_received += other.p2p_messages_received;
  transport_bytes_sent += other.transport_bytes_sent;
  transport_messages_sent += other.transport_messages_sent;
  sim_compute_seconds += other.sim_compute_seconds;
  sim_comm_seconds += other.sim_comm_seconds;
  return *this;
}

}  // namespace dipdc::minimpi
