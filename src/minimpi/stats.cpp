#include "minimpi/stats.hpp"

#include <map>
#include <sstream>
#include <string>

#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"

namespace dipdc::minimpi {

CommStats& CommStats::operator+=(const CommStats& other) {
  for (std::size_t i = 0; i < kPrimitiveCount; ++i) {
    calls[i] += other.calls[i];
  }
  p2p_bytes_sent += other.p2p_bytes_sent;
  p2p_messages_sent += other.p2p_messages_sent;
  p2p_bytes_received += other.p2p_bytes_received;
  p2p_messages_received += other.p2p_messages_received;
  transport_bytes_sent += other.transport_bytes_sent;
  transport_messages_sent += other.transport_messages_sent;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  inline_messages += other.inline_messages;
  zero_copy_bytes += other.zero_copy_bytes;
  copied_bytes += other.copied_bytes;
  rendezvous_stalls += other.rendezvous_stalls;
  backend_frames += other.backend_frames;
  backend_wire_bytes += other.backend_wire_bytes;
  fault_drops += other.fault_drops;
  fault_dups += other.fault_dups;
  fault_delays += other.fault_delays;
  reliable_retries += other.reliable_retries;
  reliable_timeouts += other.reliable_timeouts;
  reliable_duplicates += other.reliable_duplicates;
  for (std::size_t i = 0; i < kCollectiveAlgoCount; ++i) {
    algo_uses[i] += other.algo_uses[i];
  }
  sim_compute_seconds += other.sim_compute_seconds;
  sim_comm_seconds += other.sim_comm_seconds;
  sim_idle_seconds += other.sim_idle_seconds;
  return *this;
}

std::string transport_report(const CommStats& stats) {
  std::ostringstream os;
  os << "transport: " << stats.transport_messages_sent << " messages, "
     << stats.transport_bytes_sent << " bytes\n";
  os << "  payload pool: " << stats.pool_hits << " hits, "
     << stats.pool_misses << " misses\n";
  os << "  inline messages: " << stats.inline_messages << "\n";
  os << "  bytes zero-copy: " << stats.zero_copy_bytes
     << ", copied: " << stats.copied_bytes << "\n";
  os << "  rendezvous stalls: " << stats.rendezvous_stalls << "\n";
  if (stats.backend_frames != 0) {
    os << "  backend frames: " << stats.backend_frames << ", wire bytes: "
       << stats.backend_wire_bytes << "\n";
  }
  if (stats.fault_drops != 0 || stats.fault_dups != 0 ||
      stats.fault_delays != 0 || stats.reliable_retries != 0 ||
      stats.reliable_timeouts != 0 || stats.reliable_duplicates != 0) {
    os << "fault injection: " << stats.fault_drops << " dropped, "
       << stats.fault_dups << " duplicated, " << stats.fault_delays
       << " delayed\n";
    os << "  reliable delivery: " << stats.reliable_retries << " retries, "
       << stats.reliable_timeouts << " timeouts, "
       << stats.reliable_duplicates << " duplicates filtered\n";
  }
  bool any_algo = false;
  for (std::size_t i = 0; i < kCollectiveAlgoCount; ++i) {
    if (stats.algo_uses[i] == 0) continue;
    if (!any_algo) {
      os << "collective algorithms (rank-invocations):\n";
      any_algo = true;
    }
    os << "  " << collective_algo_name(static_cast<CollectiveAlgo>(i))
       << ": " << stats.algo_uses[i] << "\n";
  }
  return os.str();
}

void register_comm_stats(obs::Registry& reg, const CommStats& stats) {
  for (std::size_t i = 0; i < kPrimitiveCount; ++i) {
    if (stats.calls[i] == 0) continue;
    const auto p = static_cast<Primitive>(i);
    reg.set_counter(std::string("calls.") + std::string(primitive_name(p)),
                    stats.calls[i]);
  }
  reg.set_counter("p2p.bytes_sent", stats.p2p_bytes_sent);
  reg.set_counter("p2p.messages_sent", stats.p2p_messages_sent);
  reg.set_counter("p2p.bytes_received", stats.p2p_bytes_received);
  reg.set_counter("p2p.messages_received", stats.p2p_messages_received);
  reg.set_counter("transport.bytes_sent", stats.transport_bytes_sent);
  reg.set_counter("transport.messages_sent", stats.transport_messages_sent);
  reg.set_counter("pool.hits", stats.pool_hits);
  reg.set_counter("pool.misses", stats.pool_misses);
  reg.set_counter("transport.inline_messages", stats.inline_messages);
  reg.set_counter("transport.zero_copy_bytes", stats.zero_copy_bytes);
  reg.set_counter("transport.copied_bytes", stats.copied_bytes);
  reg.set_counter("transport.rendezvous_stalls", stats.rendezvous_stalls);
  if (stats.backend_frames != 0) {
    reg.set_counter("transport.backend_frames", stats.backend_frames);
    reg.set_counter("transport.backend_wire_bytes", stats.backend_wire_bytes);
  }
  if (stats.fault_drops != 0) reg.set_counter("fault.drops", stats.fault_drops);
  if (stats.fault_dups != 0) reg.set_counter("fault.dups", stats.fault_dups);
  if (stats.fault_delays != 0) {
    reg.set_counter("fault.delays", stats.fault_delays);
  }
  if (stats.reliable_retries != 0) {
    reg.set_counter("reliable.retries", stats.reliable_retries);
  }
  if (stats.reliable_timeouts != 0) {
    reg.set_counter("reliable.timeouts", stats.reliable_timeouts);
  }
  if (stats.reliable_duplicates != 0) {
    reg.set_counter("reliable.duplicates", stats.reliable_duplicates);
  }
  for (std::size_t i = 0; i < kCollectiveAlgoCount; ++i) {
    if (stats.algo_uses[i] == 0) continue;
    const auto a = static_cast<CollectiveAlgo>(i);
    reg.set_counter(
        std::string("algo.") + std::string(collective_algo_name(a)),
        stats.algo_uses[i]);
  }
  reg.set_gauge("time.compute", stats.sim_compute_seconds, "s");
  reg.set_gauge("time.comm", stats.sim_comm_seconds, "s");
  reg.set_gauge("time.idle", stats.sim_idle_seconds, "s");
}

obs::Registry build_metrics(const RunResult& result) {
  obs::Registry reg;
  reg.set_gauge("sim.makespan", result.max_sim_time(), "s");
  register_comm_stats(reg, result.total_stats());
  // Message-size distribution over user p2p send events; phase timers from
  // the recorded phase spans (both empty unless record_trace was on).
  std::map<std::string_view, std::pair<double, std::uint64_t>> phases;
  for (const TraceEvent& e : result.trace) {
    if (e.cat == obs::Category::kP2P && e.seq_out != 0) {
      reg.observe("msg.bytes", static_cast<double>(e.bytes));
    }
    if (e.cat == obs::Category::kPhase) {
      auto& [seconds, calls] = phases[e.name];
      seconds += e.t_end - e.t_start;
      ++calls;
    }
  }
  for (const auto& [name, agg] : phases) {
    const std::string key = "phase." + std::string(name);
    reg.set_gauge(key + ".seconds", agg.first, "s");
    reg.set_counter(key + ".calls", agg.second);
  }
  return reg;
}

}  // namespace dipdc::minimpi
