// Nonblocking collectives: ibcast / ireduce / iallreduce / iallgatherv.
//
// All four run flat (star) schedules assembled entirely at issue time into
// a detail::CollectiveState; completion is driven by the issuing rank's own
// wait()/test()/wait_any() calls (comm.cpp::advance_collective) — no
// progress thread.  The decomposition per role:
//
//  - fan-out (ibcast root, iallreduce rank 0's result, iallgatherv's
//    contribution): one staged zero-copy buffer shared into p-1 eager
//    internal sends, which complete at post;
//  - overlap receives (ibcast non-root, iallreduce non-zero result,
//    iallgatherv's incoming slices): posted internal irecvs straight into
//    the user buffer, completing at delivery — posting early and waiting
//    late is what hides the transfer under compute;
//  - fan-in (ireduce root, iallreduce rank 0): contributions are *not*
//    posted; they queue as unexpected internal messages and the completing
//    wait ingests them in ascending comm-rank order (CollectiveState::
//    ingests + finish).  Receiver-ordered ingestion keeps the simulated
//    ingress-link accounting deterministic across backends and schedules,
//    and reductions combine in a fixed ascending order, so results are
//    bit-identical everywhere.
//
// Like the blocking collectives, every invocation consumes a fixed number
// of internal tags (ibcast/ireduce/iallgatherv: 1; iallreduce: 2) at issue
// time on every rank, so nonblocking and blocking collectives interleave
// safely in any issue order.
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"

namespace dipdc::minimpi {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw MpiError(what);
}

}  // namespace

Request Comm::ibcast_bytes(std::span<std::byte> data, int root) {
  validate_peer(root, "ibcast");
  count_algo(CollectiveAlgo::kIbcastLinear);
  const int tag = next_collective_tag();
  const int p = size();
  auto cs = std::make_shared<detail::CollectiveState>();
  if (p == 1) return Request(std::move(cs));
  if (rank_ == root) {
    // One staged copy of the payload, shared into every eager send; the
    // user may mutate `data` the moment issue returns.
    const detail::StagedBuffer sb = stage_copy(data);
    for (int m = 0; m < p; ++m) {
      if (m != root) send_staged(sb, m, tag);
    }
    return Request(std::move(cs));
  }
  Request sub = irecv_bytes(data, root, tag, /*internal=*/true);
  cs->subs.push_back(std::move(sub.state_));
  return Request(std::move(cs));
}

Request Comm::ireduce_bytes(std::span<const std::byte> send,
                            std::span<std::byte> recv,
                            std::size_t elem_size, ReduceFn op, int root) {
  validate_peer(root, "ireduce");
  require(elem_size > 0 && send.size() % elem_size == 0,
          "ireduce: send size must be a multiple of the element size");
  count_algo(CollectiveAlgo::kIreduceLinear);
  const int tag = next_collective_tag();
  const int p = size();
  auto cs = std::make_shared<detail::CollectiveState>();

  if (rank_ != root) {
    // Eager internal send: the payload is copied at post, so the request
    // completes immediately and the user's buffer is free.
    Request sub = isend_bytes(send, root, tag, /*internal=*/true);
    cs->subs.push_back(std::move(sub.state_));
    return Request(std::move(cs));
  }

  require(recv.size() == send.size(),
          "ireduce: recv size must match send size on the root");
  for (int m = 0; m < p; ++m) {
    if (m != root) cs->ingests.push_back({m, tag});
  }
  // Deferred combine: ingest contributions in ascending comm-rank order
  // (the root's own snapshot taking its rank's slot) and fold as they
  // arrive — acc = op(acc, contribution).
  std::vector<std::byte> own(send.begin(), send.end());
  cs->finish = [own = std::move(own), recv, elem_size, op = std::move(op),
                root, p, tag](Comm& c) mutable {
    const std::size_t nelems = own.size() / elem_size;
    std::vector<std::byte> acc;
    std::vector<std::byte> scratch(own.size());
    for (int m = 0; m < p; ++m) {
      const std::byte* contrib;
      if (m == root) {
        contrib = own.data();
      } else {
        c.recv_bytes(scratch, m, tag, /*internal=*/true);
        contrib = scratch.data();
      }
      if (m == 0) {
        acc.assign(contrib, contrib + own.size());
      } else {
        op(contrib, acc.data(), acc.data(), nelems, elem_size);
      }
    }
    if (!acc.empty()) std::memcpy(recv.data(), acc.data(), acc.size());
  };
  return Request(std::move(cs));
}

Request Comm::iallreduce_bytes(std::span<const std::byte> send,
                               std::span<std::byte> recv,
                               std::size_t elem_size, ReduceFn op) {
  require(elem_size > 0 && send.size() % elem_size == 0,
          "iallreduce: send size must be a multiple of the element size");
  require(recv.size() == send.size(),
          "iallreduce: recv size must match send size");
  count_algo(CollectiveAlgo::kIallreduceReduceBcast);
  const int tag_reduce = next_collective_tag();
  const int tag_bcast = next_collective_tag();
  const int p = size();
  auto cs = std::make_shared<detail::CollectiveState>();

  if (rank_ != 0) {
    // Contribution up (eager, completes at post) and the result receive
    // pre-posted right away: tags are unique per invocation, so the
    // round-2 payload can never be confused with anything else.
    Request up = isend_bytes(send, 0, tag_reduce, /*internal=*/true);
    cs->subs.push_back(std::move(up.state_));
    Request down = irecv_bytes(recv, 0, tag_bcast, /*internal=*/true);
    cs->subs.push_back(std::move(down.state_));
    return Request(std::move(cs));
  }

  for (int m = 1; m < p; ++m) cs->ingests.push_back({m, tag_reduce});
  std::vector<std::byte> own(send.begin(), send.end());
  cs->finish = [own = std::move(own), recv, elem_size, op = std::move(op), p,
                tag_reduce, tag_bcast](Comm& c) mutable {
    const std::size_t nelems = own.size() / elem_size;
    std::vector<std::byte> acc(own.begin(), own.end());
    std::vector<std::byte> scratch(own.size());
    for (int m = 1; m < p; ++m) {
      c.recv_bytes(scratch, m, tag_reduce, /*internal=*/true);
      op(scratch.data(), acc.data(), acc.data(), nelems, elem_size);
    }
    if (!acc.empty()) std::memcpy(recv.data(), acc.data(), acc.size());
    // Fan the result out eagerly; one staged copy shared across all peers.
    if (p > 1) {
      const detail::StagedBuffer sb = c.stage_copy(recv);
      for (int m = 1; m < p; ++m) c.send_staged(sb, m, tag_bcast);
    }
  };
  return Request(std::move(cs));
}

Request Comm::iallgatherv_bytes(std::span<const std::byte> send,
                                std::span<const std::size_t> counts,
                                std::span<const std::size_t> displs,
                                std::span<std::byte> recv,
                                std::size_t elem_size) {
  const int p = size();
  const auto np = static_cast<std::size_t>(p);
  require(counts.size() == np && displs.size() == np,
          "iallgatherv: counts/displs must have one entry per rank");
  require(send.size() ==
              counts[static_cast<std::size_t>(rank_)] * elem_size,
          "iallgatherv: send size must match this rank's count");
  count_algo(CollectiveAlgo::kIallgathervLinear);
  const int tag = next_collective_tag();
  auto cs = std::make_shared<detail::CollectiveState>();

  // Own slice lands immediately.
  const auto nr = static_cast<std::size_t>(rank_);
  if (!send.empty()) {
    std::memcpy(recv.data() + displs[nr] * elem_size, send.data(),
                send.size());
  }
  if (p == 1) return Request(std::move(cs));

  // Post every incoming slice first (overlap), then fan out one staged
  // copy of the contribution.  Post order ascends by comm rank so clock
  // adoption at wait time is deterministic.
  for (int m = 0; m < p; ++m) {
    if (m == rank_) continue;
    const auto nm = static_cast<std::size_t>(m);
    Request sub = irecv_bytes(
        recv.subspan(displs[nm] * elem_size, counts[nm] * elem_size), m, tag,
        /*internal=*/true);
    cs->subs.push_back(std::move(sub.state_));
  }
  const detail::StagedBuffer sb = stage_copy(send);
  for (int m = 0; m < p; ++m) {
    if (m != rank_) send_staged(sb, m, tag);
  }
  return Request(std::move(cs));
}

}  // namespace dipdc::minimpi
