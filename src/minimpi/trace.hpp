// Communication tracing: an optional per-rank event log (what the modules'
// "utilize a performance tool" outcome looks like for communication).
//
// Enable with RuntimeOptions::record_trace; every user-level operation
// (sends, receives, waits, probes and collectives) is recorded with its
// simulated start/end time, peer, tag and payload size — plus simulated
// kernel/idle spans (sim_compute / sim_advance) and user-named module
// phases (Comm::phase_begin / Phase).  Events are obs::Event records in
// the structured observability layer (src/obs): RunResult carries the
// merged log, render_timeline() draws a per-rank ASCII Gantt chart — a
// miniature Vampir/Paraver — and obs::to_perfetto_json() exports the same
// trace for https://ui.perfetto.dev, with send->recv flow arrows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/types.hpp"
#include "obs/event.hpp"

namespace dipdc::minimpi {

/// Trace events are plain obs::Event records.  `op` holds the Primitive
/// (op_code/op_of below); compute/idle/phase spans carry obs::kNoOp.
using TraceEvent = obs::Event;

struct RunResult;

/// Primitive -> trace-event op code.
[[nodiscard]] constexpr std::int16_t op_code(Primitive p) {
  return static_cast<std::int16_t>(p);
}

/// True when `e` records the given user primitive.
[[nodiscard]] constexpr bool is_op(const TraceEvent& e, Primitive p) {
  return e.op == op_code(p);
}

/// Observability category of a user primitive (p2p / collective / wait /
/// probe), used for timeline glyphs and critical-path attribution.
[[nodiscard]] obs::Category primitive_category(Primitive p);

/// Bundles a RunResult's merged event log into an obs::Trace for the
/// exporters and analyses (obs::to_perfetto_json, obs::critical_path...).
[[nodiscard]] obs::Trace make_trace(const RunResult& result);

/// Renders user-primitive events as a per-rank timeline of `width` columns
/// covering [0, t_max].  Glyphs: s/S send/isend, r/R recv/irecv, w wait,
/// p probe, C collective; '.' = compute or idle (compute/idle/phase spans
/// draw no glyph of their own).
std::string render_timeline(const std::vector<TraceEvent>& events,
                            int nranks, double t_max, int width = 72);

/// One-line-per-event textual log (sorted by start time).
std::string render_log(const std::vector<TraceEvent>& events,
                       std::size_t max_events = 50);

}  // namespace dipdc::minimpi
