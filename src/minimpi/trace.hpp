// Communication tracing: an optional per-rank event log (what the modules'
// "utilize a performance tool" outcome looks like for communication).
//
// Enable with RuntimeOptions::record_trace; every user-level operation
// (sends, receives, waits, probes and collectives) is recorded with its
// simulated start/end time, peer, tag and payload size.  RunResult carries
// the merged log, and render_timeline() draws a per-rank ASCII Gantt chart
// of communication activity — a miniature Vampir/Paraver.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minimpi/types.hpp"

namespace dipdc::minimpi {

struct TraceEvent {
  int rank = 0;
  Primitive op = Primitive::kSend;
  /// Peer rank for point-to-point ops; -1 for collectives/wildcards.
  int peer = -1;
  int tag = 0;
  std::size_t bytes = 0;
  double t_start = 0.0;  // simulated seconds
  double t_end = 0.0;
};

/// Renders events as a per-rank timeline of `width` columns covering
/// [0, t_max].  Glyphs: s/S send/isend, r/R recv/irecv, w wait, p probe,
/// C collective; '.' = computing or idle.
std::string render_timeline(const std::vector<TraceEvent>& events,
                            int nranks, double t_max, int width = 72);

/// One-line-per-event textual log (sorted by start time).
std::string render_log(const std::vector<TraceEvent>& events,
                       std::size_t max_events = 50);

}  // namespace dipdc::minimpi
