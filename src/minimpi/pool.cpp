#include "minimpi/pool.hpp"

#include <bit>

#include "minimpi/detail.hpp"

namespace dipdc::minimpi::detail {

namespace {

/// Smallest power of two >= n (n >= 1).
std::size_t round_up_pow2(std::size_t n) {
  return std::size_t{1} << std::bit_width(n - 1);
}

}  // namespace

std::size_t BufferPool::class_of(std::size_t n) {
  return static_cast<std::size_t>(std::bit_width(n - 1));
}

/// Deleter of pooled buffers: holds the pool alive and hands the storage
/// back (or frees it when the pool is full/disabled).
struct BufferPool::Returner {
  std::shared_ptr<BufferPool> pool;
  void operator()(std::vector<std::byte>* buf) const { pool->release(buf); }
};

Buffer BufferPool::acquire(std::size_t n, bool* pool_hit) {
  if (pool_hit != nullptr) *pool_hit = false;
  if (n == 0) n = 1;  // keep data() valid for zero-length staging
  const std::size_t cls = class_of(n);
  if (enabled_ && cls < kClassCount) {
    std::unique_lock<std::mutex> lock(mu_);
    auto& slot = free_[cls];
    if (!slot.empty()) {
      std::unique_ptr<std::vector<std::byte>> buf = std::move(slot.back());
      slot.pop_back();
      pooled_bytes_ -= buf->size();
      lock.unlock();
      if (pool_hit != nullptr) *pool_hit = true;
      return Buffer(buf.release(), Returner{shared_from_this()});
    }
  }
  // Fresh allocation, sized to the class so it can be reused for any
  // request of the same class later.  The one-time value-initialisation is
  // paid here; recycled buffers are never cleared again.
  auto* buf = new std::vector<std::byte>(round_up_pow2(n));
  if (enabled_) {
    return Buffer(buf, Returner{shared_from_this()});
  }
  return Buffer(buf);
}

void BufferPool::release(std::vector<std::byte>* buf) {
  std::unique_ptr<std::vector<std::byte>> owned(buf);
  const std::size_t cls = class_of(owned->size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cls < kClassCount && free_[cls].size() < kPerClassCap &&
        pooled_bytes_ + owned->size() <= kMaxPooledBytes) {
      pooled_bytes_ += owned->size();
      free_[cls].push_back(std::move(owned));
      return;
    }
  }
  // Dropped on the floor (unique_ptr frees it outside the lock).
}

EnvelopePool::~EnvelopePool() {
  for (Envelope* env : free_) delete env;
}

std::shared_ptr<Envelope> EnvelopePool::acquire() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      Envelope* env = free_.back();
      free_.pop_back();
      auto self = shared_from_this();
      return std::shared_ptr<Envelope>(
          env, [self](Envelope* e) { self->release(e); });
    }
  }
  if (!enabled_) return std::make_shared<Envelope>();
  auto self = shared_from_this();
  return std::shared_ptr<Envelope>(new Envelope(),
                                   [self](Envelope* e) { self->release(e); });
}

void EnvelopePool::release(Envelope* env) {
  env->reset();  // drops the payload (returning its buffer to the pool)
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kCap) {
      free_.push_back(env);
      return;
    }
  }
  delete env;
}

}  // namespace dipdc::minimpi::detail
