// Pooled transport storage: recycled payload buffers and envelopes.
//
// Every eager message in the seed implementation paid two heap allocations
// (the Envelope control block and its payload vector) plus two memcpys.
// The pools below recycle both kinds of storage across messages so that the
// steady-state hot path allocates nothing beyond a shared_ptr control
// block, and the StagedBuffer type lets collectives hand payload buffers
// from rank to rank by reference instead of by copy.
//
// Locking: each pool has its own mutex and never takes the runtime lock, so
// pool calls are safe both inside and outside the global runtime mutex
// (lock order is always runtime -> pool).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace dipdc::minimpi::detail {

/// Shared payload storage.  Buffers handed to an envelope are immutable
/// from the moment they are published (shared with a second owner); the
/// collectives rely on this to forward one buffer through many hops.
using Buffer = std::shared_ptr<std::vector<std::byte>>;

/// A byte range inside a (possibly shared, possibly pooled) buffer: the
/// unit of zero-copy staging used by the collectives.  `storage` keeps the
/// bytes alive; [offset, offset+len) is the logical content.
struct StagedBuffer {
  Buffer storage;
  std::size_t offset = 0;
  std::size_t len = 0;

  [[nodiscard]] std::span<const std::byte> view() const {
    return storage
               ? std::span<const std::byte>(storage->data() + offset, len)
               : std::span<const std::byte>{};
  }
  /// Writable view; only valid while this rank is the sole owner (before
  /// the buffer has been shared into an envelope).
  [[nodiscard]] std::span<std::byte> mutable_view() {
    return storage ? std::span<std::byte>(storage->data() + offset, len)
                   : std::span<std::byte>{};
  }
  /// Sub-range view sharing the same storage (used to forward one slice of
  /// a relayed tree/ring blob without copying).
  [[nodiscard]] StagedBuffer slice(std::size_t off, std::size_t n) const {
    return StagedBuffer{storage, offset + off, n};
  }
};

/// Power-of-two size-class freelist for payload buffers.  acquire() returns
/// a buffer whose size() is at least the requested byte count; when the
/// last reference dies the buffer returns to the pool.  Disabled pools
/// simply allocate (used to reproduce the pre-pool baseline in benches).
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  explicit BufferPool(bool enabled) : enabled_(enabled) {}

  /// Buffer with size() >= n.  `*pool_hit` (optional) reports whether the
  /// storage was recycled rather than freshly allocated.
  Buffer acquire(std::size_t n, bool* pool_hit = nullptr);

 private:
  struct Returner;

  void release(std::vector<std::byte>* buf);
  static std::size_t class_of(std::size_t n);

  static constexpr std::size_t kClassCount = 48;
  static constexpr std::size_t kPerClassCap = 4;
  static constexpr std::size_t kMaxPooledBytes = std::size_t{256} << 20;

  std::mutex mu_;
  std::array<std::vector<std::unique_ptr<std::vector<std::byte>>>,
             kClassCount>
      free_;
  std::size_t pooled_bytes_ = 0;
  bool enabled_;
};

struct Envelope;

/// Freelist of fully constructed Envelopes.  acquire() hands out a cleared
/// envelope; the shared handle's deleter resets it (dropping any payload
/// buffer back into the BufferPool) and parks the object for reuse.
class EnvelopePool : public std::enable_shared_from_this<EnvelopePool> {
 public:
  explicit EnvelopePool(bool enabled) : enabled_(enabled) {}
  ~EnvelopePool();

  EnvelopePool(const EnvelopePool&) = delete;
  EnvelopePool& operator=(const EnvelopePool&) = delete;

  std::shared_ptr<Envelope> acquire();

 private:
  void release(Envelope* env);

  static constexpr std::size_t kCap = 1024;

  std::mutex mu_;
  std::vector<Envelope*> free_;
  bool enabled_;
};

}  // namespace dipdc::minimpi::detail
