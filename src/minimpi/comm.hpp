// The per-rank communicator: the public face of minimpi.
//
// The typed template methods in this header are thin wrappers over the
// byte-level operations implemented in comm.cpp / collectives.cpp.  All
// message types must be trivially copyable (they travel as raw bytes, as
// with MPI datatypes over contiguous buffers).
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "minimpi/detail.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/stats.hpp"
#include "minimpi/types.hpp"

namespace dipdc::minimpi {

template <typename T>
concept Trivial = std::is_trivially_copyable_v<T>;

/// Handle to a pending non-blocking operation: a p2p isend/irecv, or a
/// nonblocking collective (ibcast/ireduce/iallreduce/iallgatherv).
/// Complete it with Comm::wait()/test()/wait_all()/wait_any(); destroying
/// an incomplete Request is allowed (the transfer still happens, like a
/// forgotten MPI request leak), and destroying a completed-but-unwaited
/// collective request is safe — all pending state is owned by the request
/// or the mailbox, never borrowed from it.  Collective requests must be
/// completed on the communicator that issued them.
class Request {
 public:
  Request() = default;

  [[nodiscard]] bool valid() const {
    return state_ != nullptr || coll_ != nullptr;
  }
  /// Receive status; meaningful after wait()/test() returned success.
  [[nodiscard]] const Status& status() const {
    return coll_ != nullptr ? coll_->status : state_->status;
  }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  explicit Request(std::shared_ptr<detail::CollectiveState> coll)
      : coll_(std::move(coll)) {}

  std::shared_ptr<detail::RequestState> state_;
  std::shared_ptr<detail::CollectiveState> coll_;
};

class Comm {
 public:
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;
  Comm& operator=(Comm&&) = default;

  /// Rank within this communicator.
  [[nodiscard]] int rank() const { return rank_; }
  /// Number of ranks in this communicator.
  [[nodiscard]] int size() const {
    return group_.empty() ? runtime_->nranks()
                          : static_cast<int>(group_.size());
  }
  /// The underlying world rank (stable across split()).
  [[nodiscard]] int world_rank() const { return world_rank_; }

  /// World ranks of this communicator's members, in comm-rank order.
  [[nodiscard]] std::vector<int> world_group() const {
    if (!group_.empty()) return group_;
    std::vector<int> g(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) g[static_cast<std::size_t>(r)] = r;
    return g;
  }

  /// Simulated wall-clock (seconds since the world started), analogous to
  /// MPI_Wtime under the configured machine model.  Shared across all
  /// communicators of this rank.
  [[nodiscard]] double wtime() const { return state().clock; }

  /// Advances this rank's simulated clock through the machine model's
  /// roofline cost for a kernel of `flops` operations touching `mem_bytes`
  /// bytes of DRAM traffic.
  void sim_compute(double flops, double mem_bytes);

  /// Advances this rank's simulated clock by a fixed duration, accounted
  /// as idle/waiting time (CommStats::sim_idle_seconds), not kernel work.
  void sim_advance(double seconds);

  [[nodiscard]] const CommStats& stats() const { return state().stats; }
  [[nodiscard]] const perfmodel::CostModel& cost_model() const {
    return runtime_->cost();
  }

  // ---- Phase spans ---------------------------------------------------------
  // Named spans bracketing a module's algorithmic phases ("assign",
  // "update", "exchange", ...).  They envelope the operations performed
  // inside them in exported traces and drive the per-phase timers in the
  // metrics registry.  No-ops unless RuntimeOptions::record_trace; `name`
  // must reference static storage (pass a string literal).

  void phase_begin(std::string_view name);
  /// Closes the innermost open phase (no-op when none is open).
  void phase_end();

  /// RAII phase span: `minimpi::Phase p(comm, "assign");`
  class Phase {
   public:
    Phase(Comm& comm, std::string_view name) : comm_(&comm) {
      comm_->phase_begin(name);
    }
    ~Phase() {
      if (comm_ != nullptr) comm_->phase_end();
    }
    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

   private:
    Comm* comm_;
  };

  // ---- Point-to-point ----------------------------------------------------

  template <Trivial T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    count_call(Primitive::kSend);
    const TraceStart t0 = trace_begin();
    send_bytes(as_bytes(data), dest, tag, /*internal=*/false);
    trace_end(Primitive::kSend, dest, tag, data.size_bytes(), t0);
  }

  template <Trivial T>
  void send_value(const T& value, int dest, int tag = 0) {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Receives into `data`; the message may be shorter than the buffer (the
  /// status reports the actual size) but must not be longer.
  template <Trivial T>
  Status recv(std::span<T> data, int source = kAnySource, int tag = kAnyTag) {
    count_call(Primitive::kRecv);
    const TraceStart t0 = trace_begin();
    const Status st = recv_bytes(as_writable_bytes(data), source, tag,
                                 /*internal=*/false);
    trace_end(Primitive::kRecv, st.source, st.tag, st.bytes, t0);
    return st;
  }

  template <Trivial T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    T value{};
    const Status st = recv(std::span<T>(&value, 1), source, tag);
    if (st.bytes != sizeof(T)) {
      throw MpiError("recv_value: message size does not match value type");
    }
    return value;
  }

  /// Probes for the next matching message and receives exactly it,
  /// whatever its length (the MPI_Probe + MPI_Get_count + MPI_Recv idiom
  /// Module 3 teaches).
  template <Trivial T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag) {
    const Status st = probe(source, tag);
    std::vector<T> data(st.count<T>());
    recv(std::span<T>(data), st.source, st.tag);
    return data;
  }

  template <Trivial T>
  Request isend(std::span<const T> data, int dest, int tag = 0) {
    count_call(Primitive::kIsend);
    const TraceStart t0 = trace_begin();
    Request req = isend_bytes(as_bytes(data), dest, tag, /*internal=*/false);
    trace_end(Primitive::kIsend, dest, tag, data.size_bytes(), t0);
    return req;
  }

  template <Trivial T>
  Request isend_value(const T& value, int dest, int tag = 0) {
    return isend(std::span<const T>(&value, 1), dest, tag);
  }

  /// Posts a non-blocking receive; `data` must stay alive until completion.
  template <Trivial T>
  Request irecv(std::span<T> data, int source = kAnySource,
                int tag = kAnyTag) {
    count_call(Primitive::kIrecv);
    const TraceStart t0 = trace_begin();
    Request req = irecv_bytes(as_writable_bytes(data), source, tag,
                              /*internal=*/false);
    trace_end(Primitive::kIrecv, source, tag, data.size_bytes(), t0);
    return req;
  }

  /// Blocks until the request completes; returns the receive status.
  Status wait(Request& request);
  /// Blocks until at least one request completes; returns its index and
  /// fills `status` for receives (MPI_Waitany).
  std::size_t wait_any(std::span<Request> requests,
                       Status* status = nullptr);
  /// Non-blocking completion check; fills `status` when true.
  bool test(Request& request, Status* status = nullptr);
  void wait_all(std::span<Request> requests);

  /// Blocks until a matching message is available; the message is left in
  /// place for a subsequent recv.
  Status probe(int source = kAnySource, int tag = kAnyTag);
  /// Non-blocking probe.
  std::optional<Status> iprobe(int source = kAnySource, int tag = kAnyTag);

  // ---- Reliable delivery -------------------------------------------------
  // Acknowledged sends that survive injected message loss: each frame
  // carries a sequence number, the receiver acknowledges it over the
  // lossless control channel, and the sender retransmits when the
  // acknowledgement provably cannot arrive (deterministic timeout).  Both
  // ends must use the reliable variants; duplicates (retransmissions and
  // injected dups) are filtered by sequence number, so delivery is
  // exactly-once per frame.  Requires RuntimeOptions::detect_deadlock.

  /// Acknowledged send; retries up to ReliableOptions::max_retries times.
  /// Throws MpiError when the retry budget is exhausted without an ack.
  template <Trivial T>
  void send_reliable(std::span<const T> data, int dest, int tag = 0) {
    count_call(Primitive::kSendReliable);
    const TraceStart t0 = trace_begin();
    send_reliable_bytes(as_bytes(data), dest, tag);
    trace_end(Primitive::kSendReliable, dest, tag, data.size_bytes(), t0);
  }

  template <Trivial T>
  void send_reliable_value(const T& value, int dest, int tag = 0) {
    send_reliable(std::span<const T>(&value, 1), dest, tag);
  }

  /// Receives one frame sent with send_reliable and acknowledges it.
  template <Trivial T>
  Status recv_reliable(std::span<T> data, int source = kAnySource,
                       int tag = kAnyTag) {
    count_call(Primitive::kRecvReliable);
    const TraceStart t0 = trace_begin();
    const Status st = recv_reliable_bytes(as_writable_bytes(data), source, tag);
    trace_end(Primitive::kRecvReliable, st.source, st.tag, st.bytes, t0);
    return st;
  }

  template <Trivial T>
  T recv_reliable_value(int source = kAnySource, int tag = kAnyTag) {
    T value{};
    const Status st = recv_reliable(std::span<T>(&value, 1), source, tag);
    if (st.bytes != sizeof(T)) {
      throw MpiError(
          "recv_reliable_value: message size does not match value type");
    }
    return value;
  }

  /// Combined send+receive that is deadlock-safe (internally isend+recv),
  /// as MPI_Sendrecv is.
  template <Trivial T>
  Status sendrecv(std::span<const T> send_data, int dest, int send_tag,
                  std::span<T> recv_data, int source = kAnySource,
                  int recv_tag = kAnyTag) {
    count_call(Primitive::kSendrecv);
    const TraceStart t0 = trace_begin();
    Request sreq = isend_bytes(as_bytes(send_data), dest, send_tag,
                               /*internal=*/false);
    const Status st = recv_bytes(as_writable_bytes(recv_data), source,
                                 recv_tag, /*internal=*/false);
    wait_nocount(sreq);
    trace_end(Primitive::kSendrecv, dest, send_tag,
              send_data.size_bytes() + st.bytes, t0);
    return st;
  }

  // ---- Collectives ---------------------------------------------------------
  // All ranks must call the same collective in the same order; collective
  // payloads are matched by an internal per-communicator sequence number,
  // never by user tags.

  void barrier();

  /// Splits this communicator (MPI_Comm_split): ranks passing the same
  /// non-negative `color` form a new communicator, ordered by (key, rank).
  /// Collective over this communicator.
  [[nodiscard]] Comm split(int color, int key = 0);

  // ---- Shrink-on-failure ---------------------------------------------------

  /// World rank killed by fault injection, or -1.  A rank catching
  /// RankFailedError uses this to tell "a peer died" (recover) from
  /// "I am the dead rank" (rethrow).
  [[nodiscard]] int failed_rank() const { return runtime_->failed_rank(); }

  /// ULFM-style shrink: after catching a RankFailedError caused by a
  /// fault-injection kill, every surviving rank calls shrink() once and
  /// receives a fresh communicator over exactly the survivors (ordered by
  /// world rank).  The agreement barrier purges all pre-failure traffic
  /// and clears the global abort, so the survivors can keep communicating;
  /// pre-failure Requests and in-flight messages are invalidated.  The
  /// dead rank must rethrow instead of calling this.
  [[nodiscard]] Comm shrink();

  template <Trivial T>
  void bcast(std::span<T> data, int root) {
    count_call(Primitive::kBcast);
    const TraceStart t0 = trace_begin();
    bcast_bytes(as_writable_bytes(data), root);
    trace_end(Primitive::kBcast, root, 0, data.size_bytes(), t0);
  }

  template <Trivial T>
  T bcast_value(T value, int root) {
    bcast(std::span<T>(&value, 1), root);
    return value;
  }

  /// Root's `send_data` (size() * chunk elements) is split into equal
  /// chunks, one per rank, received in `recv_data` (chunk elements).
  template <Trivial T>
  void scatter(std::span<const T> send_data, std::span<T> recv_data,
               int root) {
    count_call(Primitive::kScatter);
    const TraceStart t0 = trace_begin();
    scatter_bytes(as_bytes(send_data), as_writable_bytes(recv_data), root);
    trace_end(Primitive::kScatter, root, 0, recv_data.size_bytes(), t0);
  }

  /// Variable-size scatter: rank i receives send_counts[i] elements
  /// starting at displacement displs[i] of root's buffer.
  template <Trivial T>
  void scatterv(std::span<const T> send_data,
                std::span<const std::size_t> send_counts,
                std::span<const std::size_t> displs, std::span<T> recv_data,
                int root) {
    count_call(Primitive::kScatterv);
    const TraceStart t0 = trace_begin();
    scatterv_bytes(as_bytes(send_data), send_counts, displs,
                   as_writable_bytes(recv_data), sizeof(T), root);
    trace_end(Primitive::kScatterv, root, 0, recv_data.size_bytes(), t0);
  }

  template <Trivial T>
  void gather(std::span<const T> send_data, std::span<T> recv_data,
              int root) {
    count_call(Primitive::kGather);
    const TraceStart t0 = trace_begin();
    gather_bytes(as_bytes(send_data), as_writable_bytes(recv_data), root);
    trace_end(Primitive::kGather, root, 0, send_data.size_bytes(), t0);
  }

  template <Trivial T>
  void gatherv(std::span<const T> send_data,
               std::span<const std::size_t> recv_counts,
               std::span<const std::size_t> displs, std::span<T> recv_data,
               int root) {
    count_call(Primitive::kGatherv);
    const TraceStart t0 = trace_begin();
    gatherv_bytes(as_bytes(send_data), recv_counts, displs,
                  as_writable_bytes(recv_data), sizeof(T), root);
    trace_end(Primitive::kGatherv, root, 0, send_data.size_bytes(), t0);
  }

  template <Trivial T>
  void allgather(std::span<const T> send_data, std::span<T> recv_data) {
    count_call(Primitive::kAllgather);
    const TraceStart t0 = trace_begin();
    allgather_bytes(as_bytes(send_data), as_writable_bytes(recv_data));
    trace_end(Primitive::kAllgather, -1, 0, recv_data.size_bytes(), t0);
  }

  /// Variable-size allgather: rank i contributes recv_counts[i] elements,
  /// gathered at displs[i]; everyone receives everything.
  template <Trivial T>
  void allgatherv(std::span<const T> send_data,
                  std::span<const std::size_t> recv_counts,
                  std::span<const std::size_t> displs,
                  std::span<T> recv_data) {
    count_call(Primitive::kAllgather);
    const TraceStart t0 = trace_begin();
    gatherv_bytes(as_bytes(send_data), recv_counts, displs,
                  as_writable_bytes(recv_data), sizeof(T), 0);
    bcast_bytes(as_writable_bytes(recv_data), 0);
    trace_end(Primitive::kAllgather, -1, 0, recv_data.size_bytes(), t0);
  }

  template <Trivial T, typename Op>
  void reduce(std::span<const T> send_data, std::span<T> recv_data, Op op,
              int root) {
    count_call(Primitive::kReduce);
    const TraceStart t0 = trace_begin();
    reduce_bytes(as_bytes(send_data),
                 root == rank_ ? as_writable_bytes(recv_data)
                               : std::span<std::byte>{},
                 sizeof(T), make_reduce_fn<T>(op), root);
    trace_end(Primitive::kReduce, root, 0, send_data.size_bytes(), t0);
  }

  template <Trivial T, typename Op>
  void allreduce(std::span<const T> send_data, std::span<T> recv_data,
                 Op op) {
    count_call(Primitive::kAllreduce);
    const TraceStart t0 = trace_begin();
    allreduce_bytes(as_bytes(send_data), as_writable_bytes(recv_data),
                    sizeof(T), make_reduce_fn<T>(op));
    trace_end(Primitive::kAllreduce, -1, 0, send_data.size_bytes(), t0);
  }

  template <Trivial T, typename Op>
  T allreduce_value(const T& value, Op op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Inclusive prefix reduction over ranks (MPI_Scan).
  template <Trivial T, typename Op>
  void scan(std::span<const T> send_data, std::span<T> recv_data, Op op) {
    count_call(Primitive::kScan);
    const TraceStart t0 = trace_begin();
    scan_bytes(as_bytes(send_data), as_writable_bytes(recv_data), sizeof(T),
               make_reduce_fn<T>(op));
    trace_end(Primitive::kScan, -1, 0, send_data.size_bytes(), t0);
  }

  /// Equal-size all-to-all: rank i's chunk j goes to rank j's chunk i.
  template <Trivial T>
  void alltoall(std::span<const T> send_data, std::span<T> recv_data) {
    count_call(Primitive::kAlltoall);
    const TraceStart t0 = trace_begin();
    alltoall_bytes(as_bytes(send_data), as_writable_bytes(recv_data));
    trace_end(Primitive::kAlltoall, -1, 0, send_data.size_bytes(), t0);
  }

  /// Variable-size all-to-all (MPI_Alltoallv); counts/displs in elements.
  template <Trivial T>
  void alltoallv(std::span<const T> send_data,
                 std::span<const std::size_t> send_counts,
                 std::span<const std::size_t> send_displs,
                 std::span<T> recv_data,
                 std::span<const std::size_t> recv_counts,
                 std::span<const std::size_t> recv_displs) {
    count_call(Primitive::kAlltoallv);
    const TraceStart t0 = trace_begin();
    alltoallv_bytes(as_bytes(send_data), send_counts, send_displs,
                    as_writable_bytes(recv_data), recv_counts, recv_displs,
                    sizeof(T));
    trace_end(Primitive::kAlltoallv, -1, 0, send_data.size_bytes(), t0);
  }

  // ---- Nonblocking collectives ---------------------------------------------
  // Issue returns immediately with a Request that composes with wait()/
  // test()/wait_all()/wait_any(), including mixed sets with p2p requests.
  // All ranks must issue the same collectives in the same order on a
  // communicator (interleaved freely with blocking collectives); buffers
  // must stay alive until the request completes.  Progress needs no extra
  // threads: eager internal sends complete at post, posted receives
  // complete when the sender delivers, and root-side fan-in is ingested by
  // the completing wait/test.  Results are bit-identical across backends
  // and runs: reductions always combine in ascending comm-rank order.
  // That matches the blocking collectives exactly for exact ops (integer,
  // min/max); floating-point sums can differ from the blocking *tree*
  // algorithms in the last bits, since trees bracket differently.

  /// Nonblocking broadcast.  The root completes at issue (fan-out is
  /// eager); non-roots complete when the payload arrives — posting early
  /// and waiting late is what overlaps the transfer with compute.
  template <Trivial T>
  Request ibcast(std::span<T> data, int root) {
    count_call(Primitive::kIbcast);
    const TraceStart t0 = trace_begin();
    Request req = ibcast_bytes(as_writable_bytes(data), root);
    trace_end(Primitive::kIbcast, root, 0, data.size_bytes(), t0);
    return req;
  }

  /// Nonblocking reduce-to-root.  Non-roots complete at issue; the root's
  /// wait ingests the contributions (ascending comm rank) and combines
  /// into `recv_data` (ignored on non-roots).
  template <Trivial T, typename Op>
  Request ireduce(std::span<const T> send_data, std::span<T> recv_data,
                  Op op, int root) {
    count_call(Primitive::kIreduce);
    const TraceStart t0 = trace_begin();
    Request req = ireduce_bytes(as_bytes(send_data),
                                root == rank_ ? as_writable_bytes(recv_data)
                                              : std::span<std::byte>{},
                                sizeof(T), make_reduce_fn<T>(op), root);
    trace_end(Primitive::kIreduce, root, 0, send_data.size_bytes(), t0);
    return req;
  }

  /// Nonblocking allreduce (reduce to comm rank 0, broadcast back).  Rank
  /// 0's wait combines and fans the result out; other ranks complete when
  /// the result arrives on their pre-posted receive.
  template <Trivial T, typename Op>
  Request iallreduce(std::span<const T> send_data, std::span<T> recv_data,
                     Op op) {
    count_call(Primitive::kIallreduce);
    const TraceStart t0 = trace_begin();
    Request req =
        iallreduce_bytes(as_bytes(send_data), as_writable_bytes(recv_data),
                         sizeof(T), make_reduce_fn<T>(op));
    trace_end(Primitive::kIallreduce, -1, 0, send_data.size_bytes(), t0);
    return req;
  }

  /// Nonblocking variable-size allgather: rank i contributes
  /// recv_counts[i] elements, gathered at displs[i] on every rank.
  /// Completes when all p-1 incoming slices have landed in `recv_data`.
  template <Trivial T>
  Request iallgatherv(std::span<const T> send_data,
                      std::span<const std::size_t> recv_counts,
                      std::span<const std::size_t> displs,
                      std::span<T> recv_data) {
    count_call(Primitive::kIallgatherv);
    const TraceStart t0 = trace_begin();
    Request req =
        iallgatherv_bytes(as_bytes(send_data), recv_counts, displs,
                          as_writable_bytes(recv_data), sizeof(T));
    trace_end(Primitive::kIallgatherv, -1, 0, send_data.size_bytes(), t0);
    return req;
  }

 private:
  friend RunResult run(int, const std::function<void(Comm&)>&,
                       RuntimeOptions);

  /// Three-address byte-level reduction: out[i] = op(b[i], a[i]).  `out`
  /// may alias `b` (in-place accumulate); `a` is never written, so adopted
  /// zero-copy payloads can feed reductions directly.
  using ReduceFn =
      std::function<void(const std::byte* a, const std::byte* b,
                         std::byte* out, std::size_t elems,
                         std::size_t elem_size)>;

  /// World communicator for one rank.
  Comm(detail_runtime::Runtime* runtime, int rank)
      : runtime_(runtime), world_rank_(rank), rank_(rank) {}

  /// Split communicator: `group` maps comm ranks to world ranks.
  Comm(detail_runtime::Runtime* runtime, int world_rank, int comm_rank,
       std::vector<int> group, int context)
      : runtime_(runtime),
        world_rank_(world_rank),
        rank_(comm_rank),
        group_(std::move(group)),
        context_(context) {}

  [[nodiscard]] detail::RankState& state() const {
    return runtime_->rank_state(world_rank_);
  }
  /// World rank of communicator rank `peer`.
  [[nodiscard]] int to_world(int peer) const {
    return group_.empty() ? peer
                          : group_[static_cast<std::size_t>(peer)];
  }

  template <Trivial T>
  static std::span<const std::byte> as_bytes(std::span<const T> s) {
    return std::as_bytes(s);
  }
  template <Trivial T>
  static std::span<std::byte> as_writable_bytes(std::span<T> s) {
    return std::as_writable_bytes(s);
  }

  /// Wraps a typed binary operator into the byte-level reduction functor.
  /// Elements are copied in and out with memcpy, so the payload buffers
  /// need no alignment guarantees.
  template <Trivial T, typename Op>
  static ReduceFn make_reduce_fn(Op op) {
    return [op](const std::byte* a, const std::byte* b, std::byte* out,
                std::size_t elems, std::size_t elem_size) {
      for (std::size_t i = 0; i < elems; ++i) {
        T x;
        T y;
        std::memcpy(&x, a + i * elem_size, sizeof(T));
        std::memcpy(&y, b + i * elem_size, sizeof(T));
        const T r = op(y, x);  // out = op(b, a)
        std::memcpy(out + i * elem_size, &r, sizeof(T));
      }
    };
  }

  void count_call(Primitive p) {
    ++state().stats.calls[static_cast<std::size_t>(p)];
    if (runtime_->options().faults.kills()) fault_tick(p);
  }

  /// Timing capture taken at the start of a traced operation: the rank's
  /// simulated clock plus (when RuntimeOptions::trace_wall_time) the real
  /// clock.  Cheap to take even with tracing off — just two reads.
  struct TraceStart {
    double sim = 0.0;
    double wall = 0.0;
  };

  [[nodiscard]] TraceStart trace_begin() const {
    obs::Recorder* rec = runtime_->recorder();
    return {state().clock, rec != nullptr ? rec->wall_now() : 0.0};
  }

  /// Records a user-level operation spanning [t0, now] when tracing is on
  /// (comm.cpp; no-op otherwise).  Consumes the pending message-edge seq
  /// ids stamped by the byte-level transport since t0 was taken.
  void trace_end(Primitive op, int peer, int tag, std::size_t bytes,
                 const TraceStart& t0);

  // Byte-level transport (comm.cpp).
  void send_bytes(std::span<const std::byte> data, int dest, int tag,
                  bool internal);
  Status recv_bytes(std::span<std::byte> data, int source, int tag,
                    bool internal);
  Request isend_bytes(std::span<const std::byte> data, int dest, int tag,
                      bool internal);
  Request irecv_bytes(std::span<std::byte> data, int source, int tag,
                      bool internal);
  Status wait_nocount(Request& request);
  void validate_peer(int peer, const char* what) const;
  void validate_user_tag(int tag, const char* what) const;

  // Reliable-delivery protocol and fault injection (comm.cpp).
  void send_reliable_bytes(std::span<const std::byte> data, int dest, int tag);
  Status recv_reliable_bytes(std::span<std::byte> data, int source, int tag);
  /// Receives an 8-byte acknowledgement header on the control channel, or
  /// gives up when the runtime proves it cannot arrive.  Returns false on
  /// timeout (the simulated clock is charged ReliableOptions::timeout_seconds).
  bool recv_ack_timeout(std::span<std::byte> data, int source, int tag,
                        Status* status);
  /// Kill-plan hook: throws RankFailedError when this rank reaches the
  /// fault plan's kill_at_call-th primitive call.
  void fault_tick(Primitive p);

  // Zero-copy staging primitives for collective internals (comm.cpp).
  // StagedBuffers ride the normal envelope path — same tags, sizes and
  // simulated costs as plain sends — but the payload travels as a shared
  // pooled buffer that every hop references instead of copying (when
  // TransportOptions::zero_copy allows; otherwise they degrade to copies).
  detail::StagedBuffer stage_acquire(std::size_t n);
  detail::StagedBuffer stage_copy(std::span<const std::byte> src);
  void send_staged(const detail::StagedBuffer& data, int dest, int tag);
  detail::StagedBuffer recv_staged(int source, int tag,
                                   Status* status = nullptr);

  void count_algo(CollectiveAlgo a) {
    ++state().stats.algo_uses[static_cast<std::size_t>(a)];
  }

  // Collective building blocks (collectives.cpp).
  int next_collective_tag();
  void bcast_bytes(std::span<std::byte> data, int root);
  void scatter_bytes(std::span<const std::byte> send,
                     std::span<std::byte> recv, int root);
  void scatterv_bytes(std::span<const std::byte> send,
                      std::span<const std::size_t> counts,
                      std::span<const std::size_t> displs,
                      std::span<std::byte> recv, std::size_t elem_size,
                      int root);
  void gather_bytes(std::span<const std::byte> send, std::span<std::byte> recv,
                    int root);
  void gatherv_bytes(std::span<const std::byte> send,
                     std::span<const std::size_t> counts,
                     std::span<const std::size_t> displs,
                     std::span<std::byte> recv, std::size_t elem_size,
                     int root);
  void allgather_bytes(std::span<const std::byte> send,
                       std::span<std::byte> recv);
  void reduce_bytes(std::span<const std::byte> send, std::span<std::byte> recv,
                    std::size_t elem_size, const ReduceFn& op, int root);
  void allreduce_bytes(std::span<const std::byte> send,
                       std::span<std::byte> recv, std::size_t elem_size,
                       const ReduceFn& op);
  void scan_bytes(std::span<const std::byte> send, std::span<std::byte> recv,
                  std::size_t elem_size, const ReduceFn& op);
  void alltoall_bytes(std::span<const std::byte> send,
                      std::span<std::byte> recv);
  void alltoallv_bytes(std::span<const std::byte> send,
                       std::span<const std::size_t> send_counts,
                       std::span<const std::size_t> send_displs,
                       std::span<std::byte> recv,
                       std::span<const std::size_t> recv_counts,
                       std::span<const std::size_t> recv_displs,
                       std::size_t elem_size);

  // Nonblocking collectives (icollectives.cpp) and their completion engine
  // (comm.cpp).  advance_collective() drives a CollectiveState to
  // completion: waits/checks the posted subs, verifies (non-blocking) or
  // performs (blocking, via `finish`) the lazy root-side ingestion, and
  // marks the request done.  Returns false when non-blocking and not yet
  // completable.
  Request ibcast_bytes(std::span<std::byte> data, int root);
  Request ireduce_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv, std::size_t elem_size,
                        ReduceFn op, int root);
  Request iallreduce_bytes(std::span<const std::byte> send,
                           std::span<std::byte> recv, std::size_t elem_size,
                           ReduceFn op);
  Request iallgatherv_bytes(std::span<const std::byte> send,
                            std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs,
                            std::span<std::byte> recv,
                            std::size_t elem_size);
  bool advance_collective(const std::shared_ptr<detail::CollectiveState>& cs,
                          bool blocking);

  // Alternative collective algorithms (collectives.cpp).
  void scatter_tree(std::span<const std::byte> send, std::span<std::byte> recv,
                    int root, int tag);
  void scatterv_tree(std::span<const std::byte> send,
                     std::span<const std::size_t> counts,
                     std::span<const std::size_t> displs,
                     std::span<std::byte> recv, std::size_t elem_size,
                     int root, int tag);
  void gather_tree(std::span<const std::byte> send, std::span<std::byte> recv,
                   int root, int tag);
  void gatherv_tree(std::span<const std::byte> send,
                    std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs,
                    std::span<std::byte> recv, std::size_t elem_size,
                    int root, int tag);
  void allgather_ring(std::span<const std::byte> send,
                      std::span<std::byte> recv);
  void allreduce_rd(std::span<const std::byte> send, std::span<std::byte> recv,
                    std::size_t elem_size, const ReduceFn& op);
  void allreduce_ring(std::span<const std::byte> send,
                      std::span<std::byte> recv, std::size_t elem_size,
                      const ReduceFn& op);

  detail_runtime::Runtime* runtime_;
  int world_rank_;
  int rank_;               // rank within this communicator
  std::vector<int> group_;  // comm rank -> world rank; empty = world comm
  int context_ = 0;
  int collective_seq_ = 0;
};

}  // namespace dipdc::minimpi
