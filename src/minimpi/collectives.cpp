// Collective operations, implemented on top of the point-to-point transport
// so that their simulated cost emerges from the same message model students
// reason about.  Algorithms: binomial trees for Bcast/Reduce, dissemination
// for Barrier, linear root loops for Scatter(v)/Gather(v) (adequate at
// teaching scale and easy to reason about), pairwise exchange for
// Alltoall(v), and a linear chain for Scan.
//
// All ranks must invoke the same collectives in the same order; each
// invocation consumes one internal tag from a per-communicator sequence so
// that consecutive collectives can never exchange each other's messages.
#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"

namespace dipdc::minimpi {

namespace {

/// First tag value available to collectives; user tags are >= 0, kAnyTag
/// and kAnySource are -1, so internal tags start below -1.
constexpr int kInternalTagBase = -2;

void require(bool ok, const char* what) {
  if (!ok) throw MpiError(what);
}

/// memcpy-based span copy; avoids GCC's spurious stringop-overflow warning
/// on std::copy over runtime-sized byte spans.
void copy_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  require(src.size() <= dst.size(), "internal: copy_bytes overflow");
  const std::size_t n = src.size();
  // The explicit upper-bound check is unreachable but lets GCC prove the
  // memcpy bound is finite (silences a spurious -Wstringop-overflow).
  if (n == 0 || n > (static_cast<std::size_t>(-1) >> 1)) return;
  std::memcpy(dst.data(), src.data(), n);
}

}  // namespace

int Comm::next_collective_tag() {
  return kInternalTagBase - (collective_seq_++);
}

Comm Comm::split(int color, int key) {
  require(color >= 0, "split: colors must be non-negative");

  struct Entry {
    int color;
    int key;
    int world;
    int parent_rank;
  };
  const Entry mine{color, key, world_rank_, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  allgather_bytes(std::as_bytes(std::span<const Entry>(&mine, 1)),
                  std::as_writable_bytes(std::span<Entry>(all)));

  // Agree on context ids: parent rank 0 reserves one id per distinct
  // color and broadcasts the base; colors map to ids in sorted order.
  std::vector<int> colors;
  colors.reserve(all.size());
  for (const Entry& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  int base = 0;
  if (rank_ == 0) {
    base = runtime_->allocate_contexts(static_cast<int>(colors.size()));
  }
  bcast_bytes(std::as_writable_bytes(std::span<int>(&base, 1)), 0);
  const auto color_index = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) -
      colors.begin());
  const int context = base + color_index;

  // My group: members of my color ordered by (key, parent rank).
  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(),
            [](const Entry& a, const Entry& b) {
              return a.key != b.key ? a.key < b.key
                                    : a.parent_rank < b.parent_rank;
            });
  std::vector<int> group;
  group.reserve(members.size());
  int my_rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(members[i].world);
    if (members[i].world == world_rank_) my_rank = static_cast<int>(i);
  }
  return Comm(runtime_, world_rank_, my_rank, std::move(group), context);
}

void Comm::barrier() {
  count_call(Primitive::kBarrier);
  const double t0 = wtime();
  const int tag = next_collective_tag();
  const int p = size();
  for (int k = 1; k < p; k <<= 1) {
    const int dest = (rank_ + k) % p;
    const int source = (rank_ - k + p) % p;
    Request sreq = isend_bytes({}, dest, tag, /*internal=*/true);
    recv_bytes({}, source, tag, /*internal=*/true);
    wait_nocount(sreq);
  }
  trace_end(Primitive::kBarrier, -1, 0, 0, t0);
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) {
  validate_peer(root, "bcast");
  const int tag = next_collective_tag();
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      int source = rank_ - mask;
      if (source < 0) source += p;
      recv_bytes(data, source, tag, /*internal=*/true);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      int dest = rank_ + mask;
      if (dest >= p) dest -= p;
      send_bytes(data, dest, tag, /*internal=*/true);
    }
    mask >>= 1;
  }
}

void Comm::scatter_bytes(std::span<const std::byte> send,
                         std::span<std::byte> recv, int root) {
  validate_peer(root, "scatter");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t chunk = recv.size();
  if (rank_ == root) {
    require(send.size() == chunk * static_cast<std::size_t>(p),
            "scatter: root send buffer must be size() * chunk bytes");
    for (int i = 0; i < p; ++i) {
      const auto piece = send.subspan(static_cast<std::size_t>(i) * chunk,
                                      chunk);
      if (i == root) {
        copy_bytes(recv, piece);
      } else {
        send_bytes(piece, i, tag, /*internal=*/true);
      }
    }
  } else {
    recv_bytes(recv, root, tag, /*internal=*/true);
  }
}

void Comm::scatterv_bytes(std::span<const std::byte> send,
                          std::span<const std::size_t> counts,
                          std::span<const std::size_t> displs,
                          std::span<std::byte> recv, std::size_t elem_size,
                          int root) {
  validate_peer(root, "scatterv");
  const int tag = next_collective_tag();
  const int p = size();
  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "scatterv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "scatterv: need one displacement per rank at the root");
    for (int i = 0; i < p; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::size_t offset = displs[idx] * elem_size;
      const std::size_t nbytes = counts[idx] * elem_size;
      require(offset + nbytes <= send.size(),
              "scatterv: count/displacement outside the send buffer");
      const auto piece = send.subspan(offset, nbytes);
      if (i == root) {
        require(recv.size() >= nbytes,
                "scatterv: root receive buffer too small");
        copy_bytes(recv, piece);
      } else {
        send_bytes(piece, i, tag, /*internal=*/true);
      }
    }
  } else {
    recv_bytes(recv, root, tag, /*internal=*/true);
  }
}

void Comm::gather_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv, int root) {
  validate_peer(root, "gather");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t chunk = send.size();
  if (rank_ == root) {
    require(recv.size() == chunk * static_cast<std::size_t>(p),
            "gather: root receive buffer must be size() * chunk bytes");
    for (int i = 0; i < p; ++i) {
      auto slot = recv.subspan(static_cast<std::size_t>(i) * chunk, chunk);
      if (i == root) {
        copy_bytes(slot, send);
      } else {
        const Status st = recv_bytes(slot, i, tag, /*internal=*/true);
        require(st.bytes == chunk,
                "gather: a rank contributed an unexpected number of bytes");
      }
    }
  } else {
    send_bytes(send, root, tag, /*internal=*/true);
  }
}

void Comm::gatherv_bytes(std::span<const std::byte> send,
                         std::span<const std::size_t> counts,
                         std::span<const std::size_t> displs,
                         std::span<std::byte> recv, std::size_t elem_size,
                         int root) {
  validate_peer(root, "gatherv");
  const int tag = next_collective_tag();
  const int p = size();
  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "gatherv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "gatherv: need one displacement per rank at the root");
    for (int i = 0; i < p; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::size_t offset = displs[idx] * elem_size;
      const std::size_t nbytes = counts[idx] * elem_size;
      require(offset + nbytes <= recv.size(),
              "gatherv: count/displacement outside the receive buffer");
      auto slot = recv.subspan(offset, nbytes);
      if (i == root) {
        require(send.size() == nbytes,
                "gatherv: root contribution does not match its count");
        copy_bytes(slot, send);
      } else {
        const Status st = recv_bytes(slot, i, tag, /*internal=*/true);
        require(st.bytes == nbytes,
                "gatherv: a rank contributed an unexpected number of bytes");
      }
    }
  } else {
    send_bytes(send, root, tag, /*internal=*/true);
  }
}

void Comm::allgather_bytes(std::span<const std::byte> send,
                           std::span<std::byte> recv) {
  gather_bytes(send, recv, /*root=*/0);
  bcast_bytes(recv, /*root=*/0);
}

void Comm::reduce_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv, std::size_t elem_size,
                        const ReduceFn& op, int root) {
  validate_peer(root, "reduce");
  require(elem_size > 0, "reduce: element size must be positive");
  require(send.size() % elem_size == 0,
          "reduce: buffer size must be a multiple of the element size");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t nelems = send.size() / elem_size;

  std::vector<std::byte> accum(send.begin(), send.end());
  std::vector<std::byte> incoming(send.size());
  const int vrank = (rank_ - root + p) % p;

  // Binomial combine: ranks whose relative id has the current bit clear
  // receive from the partner with the bit set; the others send their
  // partial accumulation upward and leave.  Requires a commutative,
  // associative operator (all operators in ops.hpp qualify).
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int partner_v = vrank | mask;
      if (partner_v < p) {
        const int partner = (partner_v + root) % p;
        recv_bytes(incoming, partner, tag, /*internal=*/true);
        op(incoming.data(), accum.data(), nelems, elem_size);
      }
    } else {
      const int partner = ((vrank & ~mask) + root) % p;
      send_bytes(accum, partner, tag, /*internal=*/true);
      break;
    }
  }
  if (rank_ == root) {
    require(recv.size() == send.size(),
            "reduce: root receive buffer must match the send buffer size");
    copy_bytes(recv, accum);
  }
}

void Comm::scan_bytes(std::span<const std::byte> send,
                      std::span<std::byte> recv, std::size_t elem_size,
                      const ReduceFn& op) {
  require(elem_size > 0, "scan: element size must be positive");
  require(send.size() % elem_size == 0,
          "scan: buffer size must be a multiple of the element size");
  require(recv.size() == send.size(),
          "scan: receive buffer must match the send buffer size");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t nelems = send.size() / elem_size;

  std::vector<std::byte> accum(send.begin(), send.end());
  if (rank_ > 0) {
    std::vector<std::byte> prefix(send.size());
    recv_bytes(prefix, rank_ - 1, tag, /*internal=*/true);
    op(prefix.data(), accum.data(), nelems, elem_size);
  }
  if (rank_ + 1 < p) {
    send_bytes(accum, rank_ + 1, tag, /*internal=*/true);
  }
  copy_bytes(recv, accum);
}

void Comm::alltoall_bytes(std::span<const std::byte> send,
                          std::span<std::byte> recv) {
  const int p = size();
  require(send.size() == recv.size(),
          "alltoall: send and receive buffers must match in size");
  require(send.size() % static_cast<std::size_t>(p) == 0,
          "alltoall: buffer size must be a multiple of the world size");
  const int tag = next_collective_tag();
  const std::size_t chunk = send.size() / static_cast<std::size_t>(p);

  const std::size_t self = static_cast<std::size_t>(rank_) * chunk;
  copy_bytes(recv.subspan(self, chunk), send.subspan(self, chunk));
  for (int shift = 1; shift < p; ++shift) {
    const int dest = (rank_ + shift) % p;
    const int source = (rank_ - shift + p) % p;
    Request sreq = isend_bytes(
        send.subspan(static_cast<std::size_t>(dest) * chunk, chunk), dest,
        tag, /*internal=*/true);
    recv_bytes(recv.subspan(static_cast<std::size_t>(source) * chunk, chunk),
               source, tag, /*internal=*/true);
    wait_nocount(sreq);
  }
}

void Comm::alltoallv_bytes(std::span<const std::byte> send,
                           std::span<const std::size_t> send_counts,
                           std::span<const std::size_t> send_displs,
                           std::span<std::byte> recv,
                           std::span<const std::size_t> recv_counts,
                           std::span<const std::size_t> recv_displs,
                           std::size_t elem_size) {
  const int p = size();
  const auto np = static_cast<std::size_t>(p);
  require(send_counts.size() == np && send_displs.size() == np &&
              recv_counts.size() == np && recv_displs.size() == np,
          "alltoallv: need counts and displacements for every rank");
  const int tag = next_collective_tag();

  auto send_piece = [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::size_t offset = send_displs[idx] * elem_size;
    const std::size_t nbytes = send_counts[idx] * elem_size;
    require(offset + nbytes <= send.size(),
            "alltoallv: send count/displacement outside the buffer");
    return send.subspan(offset, nbytes);
  };
  auto recv_piece = [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::size_t offset = recv_displs[idx] * elem_size;
    const std::size_t nbytes = recv_counts[idx] * elem_size;
    require(offset + nbytes <= recv.size(),
            "alltoallv: receive count/displacement outside the buffer");
    return recv.subspan(offset, nbytes);
  };

  {
    const auto src = send_piece(rank_);
    auto dst = recv_piece(rank_);
    require(src.size() == dst.size(),
            "alltoallv: self counts disagree between send and receive sides");
    copy_bytes(dst, src);
  }
  for (int shift = 1; shift < p; ++shift) {
    const int dest = (rank_ + shift) % p;
    const int source = (rank_ - shift + p) % p;
    Request sreq = isend_bytes(send_piece(dest), dest, tag, /*internal=*/true);
    auto dst = recv_piece(source);
    const Status st = recv_bytes(dst, source, tag, /*internal=*/true);
    require(st.bytes == dst.size(),
            "alltoallv: a rank contributed an unexpected number of bytes");
    wait_nocount(sreq);
  }
}

}  // namespace dipdc::minimpi
