// Collective operations, implemented on top of the point-to-point transport
// so that their simulated cost emerges from the same message model students
// reason about.
//
// Each collective has a "classic" algorithm (the one the teaching modules
// describe: binomial Bcast/Reduce, dissemination Barrier, linear root loops
// for Scatter(v)/Gather(v), pairwise Alltoall(v), linear-chain Scan) plus,
// for the root-rooted and reduction collectives, an alternative algorithm
// for larger scale:
//   - binomial-tree Scatter(v)/Gather(v) (log p root steps instead of p-1);
//   - recursive-doubling Allreduce for mid-size payloads;
//   - Rabenseifner Allreduce (ring reduce-scatter + ring allgather) and a
//     ring Allgather for large payloads.
// CollectiveOptions selects per collective; kAuto picks from thresholds
// that depend only on values all ranks agree on (payload size is excluded
// for the v-variants, where only the root knows the counts), so every rank
// always takes the same branch and consumes the same internal tags.
//
// Data movement inside collectives uses the staged-buffer primitives
// (comm.cpp): payloads travel as shared pooled buffers that each hop
// forwards by reference, so a tree relay or ring pass costs no memcpy.
// Buffers are never mutated after they have been shared into an envelope;
// where an algorithm must send from a buffer it still mutates (the ring
// reduce-scatter phase), it stage-copies the outgoing chunk.
//
// All ranks must invoke the same collectives in the same order; each
// invocation consumes a fixed number of internal tags from a
// per-communicator sequence so that consecutive collectives can never
// exchange each other's messages.
#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"

namespace dipdc::minimpi {

namespace {

/// First tag value available to collectives; user tags are >= 0, kAnyTag
/// and kAnySource are -1, so internal tags start below -1.
constexpr int kInternalTagBase = -2;

void require(bool ok, const char* what) {
  if (!ok) throw MpiError(what);
}

/// memcpy-based span copy; avoids GCC's spurious stringop-overflow warning
/// on std::copy over runtime-sized byte spans.
void copy_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  require(src.size() <= dst.size(), "internal: copy_bytes overflow");
  const std::size_t n = src.size();
  // The explicit upper-bound check is unreachable but lets GCC prove the
  // memcpy bound is finite (silences a spurious -Wstringop-overflow).
  if (n == 0 || n > (static_cast<std::size_t>(-1) >> 1)) return;
  std::memcpy(dst.data(), src.data(), n);
}

/// Largest power of two <= p (p >= 1).
int pow2_floor(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

}  // namespace

int Comm::next_collective_tag() {
  return kInternalTagBase - (collective_seq_++);
}

Comm Comm::split(int color, int key) {
  require(color >= 0, "split: colors must be non-negative");

  struct Entry {
    int color;
    int key;
    int world;
    int parent_rank;
  };
  const Entry mine{color, key, world_rank_, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  allgather_bytes(std::as_bytes(std::span<const Entry>(&mine, 1)),
                  std::as_writable_bytes(std::span<Entry>(all)));

  // Agree on context ids: parent rank 0 reserves one id per distinct
  // color and broadcasts the base; colors map to ids in sorted order.
  std::vector<int> colors;
  colors.reserve(all.size());
  for (const Entry& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  int base = 0;
  if (rank_ == 0) {
    base = runtime_->allocate_contexts(static_cast<int>(colors.size()));
  }
  bcast_bytes(std::as_writable_bytes(std::span<int>(&base, 1)), 0);
  const auto color_index = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) -
      colors.begin());
  const int context = base + color_index;

  // My group: members of my color ordered by (key, parent rank).
  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(),
            [](const Entry& a, const Entry& b) {
              return a.key != b.key ? a.key < b.key
                                    : a.parent_rank < b.parent_rank;
            });
  std::vector<int> group;
  group.reserve(members.size());
  int my_rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(members[i].world);
    if (members[i].world == world_rank_) my_rank = static_cast<int>(i);
  }
  return Comm(runtime_, world_rank_, my_rank, std::move(group), context);
}

Comm Comm::shrink() {
  // No count_call / fault_tick: recovery runs after the plan's kill fired,
  // and the shrink barrier itself must not be killable.
  const detail_runtime::Runtime::ShrinkResult res =
      runtime_->failure_shrink(world_rank_);
  std::vector<int> group = res.survivors;
  int my_rank = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == world_rank_) my_rank = static_cast<int>(i);
  }
  return Comm(runtime_, world_rank_, my_rank, std::move(group), res.context);
}

void Comm::barrier() {
  count_call(Primitive::kBarrier);
  count_algo(CollectiveAlgo::kBarrierDissemination);
  const TraceStart t0 = trace_begin();
  const int tag = next_collective_tag();
  const int p = size();
  for (int k = 1; k < p; k <<= 1) {
    const int dest = (rank_ + k) % p;
    const int source = (rank_ - k + p) % p;
    Request sreq = isend_bytes({}, dest, tag, /*internal=*/true);
    recv_bytes({}, source, tag, /*internal=*/true);
    wait_nocount(sreq);
  }
  trace_end(Primitive::kBarrier, -1, 0, 0, t0);
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) {
  validate_peer(root, "bcast");
  count_algo(CollectiveAlgo::kBcastBinomial);
  const int tag = next_collective_tag();
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Staged relay: the payload travels the whole tree as one shared buffer
  // (root stages a single copy; every hop forwards it by reference and
  // copies out into its own user buffer exactly once).  Inline-size
  // payloads skip the staging machinery.
  const bool staged = runtime_->options().transport.zero_copy &&
                      data.size() > detail::Payload::kMaxInline;
  detail::StagedBuffer blob;

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      int source = rank_ - mask;
      if (source < 0) source += p;
      if (staged) {
        Status st{};
        blob = recv_staged(source, tag, &st);
        copy_bytes(data, blob.view());
        state().stats.copied_bytes += blob.len;
      } else {
        recv_bytes(data, source, tag, /*internal=*/true);
      }
      break;
    }
    mask <<= 1;
  }
  if (staged && vrank == 0) blob = stage_copy(data);
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      int dest = rank_ + mask;
      if (dest >= p) dest -= p;
      if (staged) {
        send_staged(blob, dest, tag);
      } else {
        send_bytes(data, dest, tag, /*internal=*/true);
      }
    }
    mask >>= 1;
  }
}

void Comm::scatter_bytes(std::span<const std::byte> send,
                         std::span<std::byte> recv, int root) {
  validate_peer(root, "scatter");
  const CollectiveOptions& copt = runtime_->options().collectives;
  const bool tree =
      copt.scatter == CollectiveAlgorithm::kTree ||
      (copt.scatter == CollectiveAlgorithm::kAuto &&
       size() >= copt.tree_rank_threshold);
  const int tag = next_collective_tag();
  if (tree) {
    scatter_tree(send, recv, root, tag);
    return;
  }
  count_algo(CollectiveAlgo::kScatterLinear);
  const int p = size();
  const std::size_t chunk = recv.size();
  if (rank_ == root) {
    require(send.size() == chunk * static_cast<std::size_t>(p),
            "scatter: root send buffer must be size() * chunk bytes");
    for (int i = 0; i < p; ++i) {
      const auto piece = send.subspan(static_cast<std::size_t>(i) * chunk,
                                      chunk);
      if (i == root) {
        copy_bytes(recv, piece);
      } else {
        send_bytes(piece, i, tag, /*internal=*/true);
      }
    }
  } else {
    recv_bytes(recv, root, tag, /*internal=*/true);
  }
}

void Comm::scatter_tree(std::span<const std::byte> send,
                        std::span<std::byte> recv, int root, int tag) {
  count_algo(CollectiveAlgo::kScatterBinomial);
  const int p = size();
  const std::size_t chunk = recv.size();
  const int vrank = (rank_ - root + p) % p;
  detail::StagedBuffer blob;  // chunks for vranks [vrank, vrank + extent)

  if (rank_ == root) {
    require(send.size() == chunk * static_cast<std::size_t>(p),
            "scatter: root send buffer must be size() * chunk bytes");
    // Stage the whole buffer once, rotated into vrank order, so that every
    // subtree is a contiguous slice forwarded without further copies.
    blob = stage_acquire(send.size());
    if (chunk != 0) {
      std::byte* dst = blob.mutable_view().data();
      for (int v = 0; v < p; ++v) {
        const int actual = (v + root) % p;
        std::memcpy(dst + static_cast<std::size_t>(v) * chunk,
                    send.data() + static_cast<std::size_t>(actual) * chunk,
                    chunk);
      }
    }
    state().stats.copied_bytes += send.size();
  }

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      int source = rank_ - mask;
      if (source < 0) source += p;
      const std::size_t extent = std::min<std::size_t>(
          static_cast<std::size_t>(mask),
          static_cast<std::size_t>(p - vrank));
      Status st{};
      blob = recv_staged(source, tag, &st);
      require(st.bytes == extent * chunk,
              "scatter: unexpected subtree payload size");
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child_v = vrank + mask;
      int dest = rank_ + mask;
      if (dest >= p) dest -= p;
      const std::size_t cnt = std::min<std::size_t>(
          static_cast<std::size_t>(mask),
          static_cast<std::size_t>(p - child_v));
      send_staged(blob.slice(static_cast<std::size_t>(mask) * chunk,
                             cnt * chunk),
                  dest, tag);
    }
    mask >>= 1;
  }
  copy_bytes(recv, blob.slice(0, chunk).view());
  state().stats.copied_bytes += chunk;
}

void Comm::scatterv_bytes(std::span<const std::byte> send,
                          std::span<const std::size_t> counts,
                          std::span<const std::size_t> displs,
                          std::span<std::byte> recv, std::size_t elem_size,
                          int root) {
  validate_peer(root, "scatterv");
  const CollectiveOptions& copt = runtime_->options().collectives;
  // kAuto must not consult the counts: only the root knows them.
  const bool tree =
      copt.scatter == CollectiveAlgorithm::kTree ||
      (copt.scatter == CollectiveAlgorithm::kAuto &&
       size() >= copt.tree_rank_threshold);
  const int tag = next_collective_tag();
  if (tree) {
    scatterv_tree(send, counts, displs, recv, elem_size, root, tag);
    return;
  }
  count_algo(CollectiveAlgo::kScattervLinear);
  const int p = size();
  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "scatterv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "scatterv: need one displacement per rank at the root");
    for (int i = 0; i < p; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::size_t offset = displs[idx] * elem_size;
      const std::size_t nbytes = counts[idx] * elem_size;
      require(offset + nbytes <= send.size(),
              "scatterv: count/displacement outside the send buffer");
      const auto piece = send.subspan(offset, nbytes);
      if (i == root) {
        require(recv.size() >= nbytes,
                "scatterv: root receive buffer too small");
        copy_bytes(recv, piece);
      } else {
        send_bytes(piece, i, tag, /*internal=*/true);
      }
    }
  } else {
    recv_bytes(recv, root, tag, /*internal=*/true);
  }
}

void Comm::scatterv_tree(std::span<const std::byte> send,
                         std::span<const std::size_t> counts,
                         std::span<const std::size_t> displs,
                         std::span<std::byte> recv, std::size_t elem_size,
                         int root, int tag) {
  count_algo(CollectiveAlgo::kScattervBinomial);
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  // Per-edge protocol: a size header (one u64 per covered vrank) followed
  // by the concatenated data blob, both under the collective's tag.  The
  // transport is non-overtaking per (source, tag), so the header always
  // arrives first.
  std::vector<std::uint64_t> sizes;  // bytes per vrank in my region
  detail::StagedBuffer blob;

  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "scatterv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "scatterv: need one displacement per rank at the root");
    sizes.resize(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int v = 0; v < p; ++v) {
      const auto actual = static_cast<std::size_t>((v + root) % p);
      const std::size_t nbytes = counts[actual] * elem_size;
      require(displs[actual] * elem_size + nbytes <= send.size(),
              "scatterv: count/displacement outside the send buffer");
      sizes[static_cast<std::size_t>(v)] = nbytes;
      total += nbytes;
    }
    blob = stage_acquire(total);
    std::size_t pos = 0;
    for (int v = 0; v < p; ++v) {
      const auto actual = static_cast<std::size_t>((v + root) % p);
      const std::size_t nbytes = sizes[static_cast<std::size_t>(v)];
      if (nbytes != 0) {
        std::memcpy(blob.mutable_view().data() + pos,
                    send.data() + displs[actual] * elem_size, nbytes);
      }
      pos += nbytes;
    }
    state().stats.copied_bytes += total;
  }

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      int source = rank_ - mask;
      if (source < 0) source += p;
      const std::size_t extent = std::min<std::size_t>(
          static_cast<std::size_t>(mask),
          static_cast<std::size_t>(p - vrank));
      sizes.resize(extent);
      recv_bytes(std::as_writable_bytes(std::span<std::uint64_t>(sizes)),
                 source, tag, /*internal=*/true);
      Status st{};
      blob = recv_staged(source, tag, &st);
      const std::uint64_t total =
          std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
      require(st.bytes == total, "scatterv: unexpected subtree payload size");
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child_v = vrank + mask;
      int dest = rank_ + mask;
      if (dest >= p) dest -= p;
      const auto cnt = std::min<std::size_t>(
          static_cast<std::size_t>(mask),
          static_cast<std::size_t>(p - child_v));
      const auto m = static_cast<std::size_t>(mask);
      std::size_t off = 0;
      for (std::size_t i = 0; i < m; ++i) off += sizes[i];
      std::size_t csize = 0;
      for (std::size_t i = 0; i < cnt; ++i) csize += sizes[m + i];
      const std::span<const std::uint64_t> hdr(sizes);
      send_bytes(std::as_bytes(hdr.subspan(m, cnt)), dest, tag,
                 /*internal=*/true);
      send_staged(blob.slice(off, csize), dest, tag);
    }
    mask >>= 1;
  }
  const std::size_t mine = sizes.empty() ? 0 : sizes[0];
  require(mine <= recv.size(),
          "scatterv: receive buffer too small for this rank's count");
  copy_bytes(recv, blob.slice(0, mine).view());
  state().stats.copied_bytes += mine;
}

void Comm::gather_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv, int root) {
  validate_peer(root, "gather");
  const CollectiveOptions& copt = runtime_->options().collectives;
  const bool tree =
      copt.gather == CollectiveAlgorithm::kTree ||
      (copt.gather == CollectiveAlgorithm::kAuto &&
       size() >= copt.tree_rank_threshold);
  const int tag = next_collective_tag();
  if (tree) {
    gather_tree(send, recv, root, tag);
    return;
  }
  count_algo(CollectiveAlgo::kGatherLinear);
  const int p = size();
  const std::size_t chunk = send.size();
  if (rank_ == root) {
    require(recv.size() == chunk * static_cast<std::size_t>(p),
            "gather: root receive buffer must be size() * chunk bytes");
    for (int i = 0; i < p; ++i) {
      auto slot = recv.subspan(static_cast<std::size_t>(i) * chunk, chunk);
      if (i == root) {
        copy_bytes(slot, send);
      } else {
        const Status st = recv_bytes(slot, i, tag, /*internal=*/true);
        require(st.bytes == chunk,
                "gather: a rank contributed an unexpected number of bytes");
      }
    }
  } else {
    send_bytes(send, root, tag, /*internal=*/true);
  }
}

void Comm::gather_tree(std::span<const std::byte> send,
                       std::span<std::byte> recv, int root, int tag) {
  count_algo(CollectiveAlgo::kGatherBinomial);
  const int p = size();
  const std::size_t chunk = send.size();
  const int vrank = (rank_ - root + p) % p;

  // limit = my lowest set bit (the mask at which I report to my parent);
  // the root's limit covers the whole tree.
  int limit = 1;
  while (limit < p && (vrank & limit) == 0) limit <<= 1;
  const std::size_t extent =
      vrank == 0 ? static_cast<std::size_t>(p)
                 : std::min<std::size_t>(static_cast<std::size_t>(limit),
                                         static_cast<std::size_t>(p - vrank));

  if (rank_ == root) {
    require(recv.size() == chunk * static_cast<std::size_t>(p),
            "gather: root receive buffer must be size() * chunk bytes");
    // The root writes child subtree blobs straight into the user buffer
    // (un-rotating from vrank order), skipping the assembly staging.
    copy_bytes(recv.subspan(static_cast<std::size_t>(root) * chunk, chunk),
               send);
    state().stats.copied_bytes += chunk;
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vrank + mask >= p) break;
      int source = rank_ + mask;
      if (source >= p) source -= p;
      const auto cnt = std::min<std::size_t>(
          static_cast<std::size_t>(mask),
          static_cast<std::size_t>(p - (vrank + mask)));
      Status st{};
      const detail::StagedBuffer cb = recv_staged(source, tag, &st);
      require(st.bytes == cnt * chunk,
              "gather: a rank contributed an unexpected number of bytes");
      for (std::size_t j = 0; j < cnt; ++j) {
        const auto actual = static_cast<std::size_t>(
            (vrank + mask + static_cast<int>(j) + root) % p);
        copy_bytes(recv.subspan(actual * chunk, chunk),
                   cb.slice(j * chunk, chunk).view());
      }
      state().stats.copied_bytes += st.bytes;
    }
    return;
  }

  detail::StagedBuffer blob = stage_acquire(extent * chunk);
  copy_bytes(blob.mutable_view(), send);
  state().stats.copied_bytes += chunk;
  for (int mask = 1; mask < limit; mask <<= 1) {
    if (vrank + mask >= p) break;
    int source = rank_ + mask;
    if (source >= p) source -= p;
    const auto cnt = std::min<std::size_t>(
        static_cast<std::size_t>(mask),
        static_cast<std::size_t>(p - (vrank + mask)));
    Status st{};
    const detail::StagedBuffer cb = recv_staged(source, tag, &st);
    require(st.bytes == cnt * chunk,
            "gather: a rank contributed an unexpected number of bytes");
    copy_bytes(blob.mutable_view().subspan(
                   static_cast<std::size_t>(mask) * chunk),
               cb.view());
    state().stats.copied_bytes += st.bytes;
  }
  int parent = rank_ - limit;
  if (parent < 0) parent += p;
  send_staged(blob, parent, tag);
}

void Comm::gatherv_bytes(std::span<const std::byte> send,
                         std::span<const std::size_t> counts,
                         std::span<const std::size_t> displs,
                         std::span<std::byte> recv, std::size_t elem_size,
                         int root) {
  validate_peer(root, "gatherv");
  const CollectiveOptions& copt = runtime_->options().collectives;
  // kAuto must not consult the counts: only the root knows them.
  const bool tree =
      copt.gather == CollectiveAlgorithm::kTree ||
      (copt.gather == CollectiveAlgorithm::kAuto &&
       size() >= copt.tree_rank_threshold);
  const int tag = next_collective_tag();
  if (tree) {
    gatherv_tree(send, counts, displs, recv, elem_size, root, tag);
    return;
  }
  count_algo(CollectiveAlgo::kGathervLinear);
  const int p = size();
  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "gatherv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "gatherv: need one displacement per rank at the root");
    for (int i = 0; i < p; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::size_t offset = displs[idx] * elem_size;
      const std::size_t nbytes = counts[idx] * elem_size;
      require(offset + nbytes <= recv.size(),
              "gatherv: count/displacement outside the receive buffer");
      auto slot = recv.subspan(offset, nbytes);
      if (i == root) {
        require(send.size() == nbytes,
                "gatherv: root contribution does not match its count");
        copy_bytes(slot, send);
      } else {
        const Status st = recv_bytes(slot, i, tag, /*internal=*/true);
        require(st.bytes == nbytes,
                "gatherv: a rank contributed an unexpected number of bytes");
      }
    }
  } else {
    send_bytes(send, root, tag, /*internal=*/true);
  }
}

void Comm::gatherv_tree(std::span<const std::byte> send,
                        std::span<const std::size_t> counts,
                        std::span<const std::size_t> displs,
                        std::span<std::byte> recv, std::size_t elem_size,
                        int root, int tag) {
  count_algo(CollectiveAlgo::kGathervBinomial);
  const int p = size();
  const int vrank = (rank_ - root + p) % p;

  int limit = 1;
  while (limit < p && (vrank & limit) == 0) limit <<= 1;
  const std::size_t extent =
      vrank == 0 ? static_cast<std::size_t>(p)
                 : std::min<std::size_t>(static_cast<std::size_t>(limit),
                                         static_cast<std::size_t>(p - vrank));

  // sizes[i] = bytes contributed by vrank (my vrank + i); filled from my
  // own contribution and the per-edge headers sent by each child.
  std::vector<std::uint64_t> sizes(extent, 0);
  sizes[0] = send.size();

  struct Child {
    int mask;
    std::size_t cnt;
    detail::StagedBuffer blob;
  };
  std::vector<Child> children;
  for (int mask = 1; mask < limit; mask <<= 1) {
    if (vrank + mask >= p) break;
    int source = rank_ + mask;
    if (source >= p) source -= p;
    const auto m = static_cast<std::size_t>(mask);
    const auto cnt = std::min<std::size_t>(
        m, static_cast<std::size_t>(p - (vrank + mask)));
    std::vector<std::uint64_t> hdr(cnt);
    recv_bytes(std::as_writable_bytes(std::span<std::uint64_t>(hdr)), source,
               tag, /*internal=*/true);
    Status st{};
    detail::StagedBuffer cb = recv_staged(source, tag, &st);
    require(st.bytes == std::accumulate(hdr.begin(), hdr.end(),
                                        std::uint64_t{0}),
            "gatherv: unexpected subtree payload size");
    std::copy(hdr.begin(), hdr.end(), sizes.begin() + static_cast<long>(m));
    children.push_back(Child{mask, cnt, std::move(cb)});
  }

  if (rank_ == root) {
    require(counts.size() == static_cast<std::size_t>(p),
            "gatherv: need one count per rank at the root");
    require(displs.size() == static_cast<std::size_t>(p),
            "gatherv: need one displacement per rank at the root");
    // Scatter the subtree blobs into the user buffer by displacement,
    // checking every rank's contribution against its count.
    auto place = [&](int v, std::span<const std::byte> bytes) {
      const auto actual = static_cast<std::size_t>((v + root) % p);
      const std::size_t offset = displs[actual] * elem_size;
      const std::size_t nbytes = counts[actual] * elem_size;
      require(offset + nbytes <= recv.size(),
              "gatherv: count/displacement outside the receive buffer");
      require(bytes.size() == nbytes,
              "gatherv: a rank contributed an unexpected number of bytes");
      copy_bytes(recv.subspan(offset, nbytes), bytes);
      state().stats.copied_bytes += nbytes;
    };
    {
      const auto actual = static_cast<std::size_t>(root);
      require(send.size() == counts[actual] * elem_size,
              "gatherv: root contribution does not match its count");
      place(0, send);
    }
    for (const Child& c : children) {
      std::size_t pos = 0;
      for (std::size_t j = 0; j < c.cnt; ++j) {
        const std::size_t nbytes =
            sizes[static_cast<std::size_t>(c.mask) + j];
        place(c.mask + static_cast<int>(j), c.blob.slice(pos, nbytes).view());
        pos += nbytes;
      }
    }
    return;
  }

  const std::uint64_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  detail::StagedBuffer blob = stage_acquire(total);
  copy_bytes(blob.mutable_view(), send);
  std::size_t pos = send.size();
  for (const Child& c : children) {
    copy_bytes(blob.mutable_view().subspan(pos), c.blob.view());
    pos += c.blob.len;
  }
  state().stats.copied_bytes += total;
  int parent = rank_ - limit;
  if (parent < 0) parent += p;
  send_bytes(std::as_bytes(std::span<const std::uint64_t>(sizes)), parent,
             tag, /*internal=*/true);
  send_staged(blob, parent, tag);
}

void Comm::allgather_bytes(std::span<const std::byte> send,
                           std::span<std::byte> recv) {
  const CollectiveOptions& copt = runtime_->options().collectives;
  const bool ring =
      copt.allgather == CollectiveAlgorithm::kRing ||
      (copt.allgather == CollectiveAlgorithm::kAuto && size() >= 4 &&
       recv.size() >= copt.allgather_ring_threshold);
  if (ring) {
    allgather_ring(send, recv);
    return;
  }
  count_algo(CollectiveAlgo::kAllgatherGatherBcast);
  gather_bytes(send, recv, /*root=*/0);
  bcast_bytes(recv, /*root=*/0);
}

void Comm::allgather_ring(std::span<const std::byte> send,
                          std::span<std::byte> recv) {
  count_algo(CollectiveAlgo::kAllgatherRing);
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t chunk = send.size();
  require(recv.size() == chunk * static_cast<std::size_t>(p),
          "allgather: receive buffer must be size() * chunk bytes");
  copy_bytes(recv.subspan(static_cast<std::size_t>(rank_) * chunk, chunk),
             send);
  if (p == 1) return;
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  // Each step relays the chunk received in the previous step.  Chunks are
  // final (nobody mutates a contribution), so the relay is zero-copy: one
  // stage at the origin, then every hop forwards the same buffer.
  detail::StagedBuffer cur = stage_copy(send);
  for (int step = 1; step < p; ++step) {
    send_staged(cur, right, tag);
    Status st{};
    cur = recv_staged(left, tag, &st);
    require(st.bytes == chunk,
            "allgather: a rank contributed an unexpected number of bytes");
    const auto origin = static_cast<std::size_t>((rank_ - step + p) % p);
    copy_bytes(recv.subspan(origin * chunk, chunk), cur.view());
    state().stats.copied_bytes += chunk;
  }
}

void Comm::reduce_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv, std::size_t elem_size,
                        const ReduceFn& op, int root) {
  validate_peer(root, "reduce");
  count_algo(CollectiveAlgo::kReduceBinomial);
  require(elem_size > 0, "reduce: element size must be positive");
  require(send.size() % elem_size == 0,
          "reduce: buffer size must be a multiple of the element size");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t nelems = send.size() / elem_size;

  std::vector<std::byte> accum(send.begin(), send.end());
  const int vrank = (rank_ - root + p) % p;

  // Binomial combine: ranks whose relative id has the current bit clear
  // receive from the partner with the bit set; the others send their
  // partial accumulation upward and leave.  Requires a commutative,
  // associative operator (all operators in ops.hpp qualify).  Incoming
  // partials are adopted zero-copy where possible and fed to the reduction
  // functor in place (`a` is never written).
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int partner_v = vrank | mask;
      if (partner_v < p) {
        const int partner = (partner_v + root) % p;
        Status st{};
        const detail::StagedBuffer incoming = recv_staged(partner, tag, &st);
        require(st.bytes == send.size(),
                "reduce: a rank contributed an unexpected number of bytes");
        op(incoming.view().data(), accum.data(), accum.data(), nelems,
           elem_size);
      }
    } else {
      const int partner = ((vrank & ~mask) + root) % p;
      send_bytes(accum, partner, tag, /*internal=*/true);
      break;
    }
  }
  if (rank_ == root) {
    require(recv.size() == send.size(),
            "reduce: root receive buffer must match the send buffer size");
    copy_bytes(recv, accum);
  }
}

void Comm::allreduce_bytes(std::span<const std::byte> send,
                           std::span<std::byte> recv, std::size_t elem_size,
                           const ReduceFn& op) {
  const CollectiveOptions& copt = runtime_->options().collectives;
  const int p = size();
  CollectiveAlgorithm alg = copt.allreduce;
  if (alg == CollectiveAlgorithm::kAuto) {
    if (send.size() >= copt.allreduce_ring_threshold && p >= 4) {
      alg = CollectiveAlgorithm::kRing;
    } else if (send.size() >= copt.allreduce_rd_threshold) {
      alg = CollectiveAlgorithm::kRecursiveDoubling;
    } else {
      alg = CollectiveAlgorithm::kClassic;
    }
  }
  if (p == 1) alg = CollectiveAlgorithm::kClassic;
  switch (alg) {
    case CollectiveAlgorithm::kRing:
      allreduce_ring(send, recv, elem_size, op);
      return;
    case CollectiveAlgorithm::kRecursiveDoubling:
      allreduce_rd(send, recv, elem_size, op);
      return;
    default:
      break;
  }
  count_algo(CollectiveAlgo::kAllreduceReduceBcast);
  reduce_bytes(send,
               rank_ == 0 ? recv : std::span<std::byte>{}, elem_size, op,
               /*root=*/0);
  bcast_bytes(recv, /*root=*/0);
}

void Comm::allreduce_rd(std::span<const std::byte> send,
                        std::span<std::byte> recv, std::size_t elem_size,
                        const ReduceFn& op) {
  count_algo(CollectiveAlgo::kAllreduceRecursiveDoubling);
  // Uniform tag budget: every rank consumes three tags whether or not it
  // participates in the non-power-of-two fold phases.
  const int tag_fold = next_collective_tag();
  const int tag_main = next_collective_tag();
  const int tag_post = next_collective_tag();
  const int p = size();
  const std::size_t n = send.size();
  require(elem_size > 0, "allreduce: element size must be positive");
  require(n % elem_size == 0,
          "allreduce: buffer size must be a multiple of the element size");
  require(recv.size() == n,
          "allreduce: receive buffer must match the send buffer size");
  const std::size_t nelems = n / elem_size;
  const int pow2 = pow2_floor(p);
  const int rem = p - pow2;

  // The accumulator is re-staged every round: a buffer that has been shared
  // into an envelope is immutable, so each combine writes a fresh pooled
  // buffer (3-address reduce; the adopted partner payload is never
  // written).
  detail::StagedBuffer accum = stage_copy(send);
  auto combine = [&](const detail::StagedBuffer& incoming) {
    detail::StagedBuffer next = stage_acquire(n);
    op(incoming.view().data(), accum.view().data(),
       next.mutable_view().data(), nelems, elem_size);
    accum = next;
  };

  // Fold the p - pow2 excess ranks into their even neighbours so the main
  // loop runs on a power of two.
  int vr;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send_staged(accum, rank_ - 1, tag_fold);
      vr = -1;  // parked until the post phase
    } else {
      Status st{};
      const detail::StagedBuffer incoming =
          recv_staged(rank_ + 1, tag_fold, &st);
      require(st.bytes == n,
              "allreduce: a rank contributed an unexpected number of bytes");
      combine(incoming);
      vr = rank_ / 2;
    }
  } else {
    vr = rank_ - rem;
  }

  if (vr >= 0) {
    for (int mask = 1; mask < pow2; mask <<= 1) {
      const int partner_v = vr ^ mask;
      const int partner = partner_v < rem ? partner_v * 2 : partner_v + rem;
      send_staged(accum, partner, tag_main);
      Status st{};
      const detail::StagedBuffer incoming =
          recv_staged(partner, tag_main, &st);
      require(st.bytes == n,
              "allreduce: a rank contributed an unexpected number of bytes");
      combine(incoming);
    }
  }

  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send_staged(accum, rank_ + 1, tag_post);
    } else {
      Status st{};
      accum = recv_staged(rank_ - 1, tag_post, &st);
      require(st.bytes == n,
              "allreduce: a rank contributed an unexpected number of bytes");
    }
  }
  copy_bytes(recv, accum.view());
  state().stats.copied_bytes += n;
}

void Comm::allreduce_ring(std::span<const std::byte> send,
                          std::span<std::byte> recv, std::size_t elem_size,
                          const ReduceFn& op) {
  count_algo(CollectiveAlgo::kAllreduceRabenseifner);
  const int tag_rs = next_collective_tag();
  const int tag_ag = next_collective_tag();
  const int p = size();
  const std::size_t n = send.size();
  require(elem_size > 0, "allreduce: element size must be positive");
  require(n % elem_size == 0,
          "allreduce: buffer size must be a multiple of the element size");
  require(recv.size() == n,
          "allreduce: receive buffer must match the send buffer size");
  const std::size_t nelems = n / elem_size;
  const auto np = static_cast<std::size_t>(p);

  // Element-balanced partition: first (nelems % p) chunks get one extra.
  std::vector<std::size_t> off(np), sz(np);
  {
    const std::size_t base = nelems / np;
    const std::size_t extra = nelems % np;
    std::size_t pos = 0;
    for (std::size_t c = 0; c < np; ++c) {
      const std::size_t e = base + (c < extra ? 1 : 0);
      off[c] = pos * elem_size;
      sz[c] = e * elem_size;
      pos += e;
    }
  }

  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  // Phase 1 — ring reduce-scatter.  `work` stays mutable throughout, so
  // each outgoing chunk is stage-copied (an eager downstream neighbour may
  // lag arbitrarily far behind; sharing a buffer we are still reducing
  // into would corrupt its in-flight copy).
  std::vector<std::byte> work(send.begin(), send.end());
  for (int step = 1; step < p; ++step) {
    const auto send_c = static_cast<std::size_t>((rank_ - step + 1 + p) % p);
    const auto recv_c = static_cast<std::size_t>((rank_ - step + p) % p);
    const detail::StagedBuffer out = stage_copy(
        std::span<const std::byte>(work).subspan(off[send_c], sz[send_c]));
    send_staged(out, right, tag_rs);
    Status st{};
    const detail::StagedBuffer in = recv_staged(left, tag_rs, &st);
    require(st.bytes == sz[recv_c],
            "allreduce: a rank contributed an unexpected number of bytes");
    op(in.view().data(), work.data() + off[recv_c],
       work.data() + off[recv_c], sz[recv_c] / elem_size, elem_size);
  }

  // Phase 2 — ring allgather of the fully reduced chunks.  These are final,
  // so the relay is zero-copy after one stage at each chunk's origin.
  const auto own_c = static_cast<std::size_t>((rank_ + 1) % p);
  copy_bytes(recv.subspan(off[own_c], sz[own_c]),
             std::span<const std::byte>(work).subspan(off[own_c], sz[own_c]));
  detail::StagedBuffer cur = stage_copy(
      std::span<const std::byte>(work).subspan(off[own_c], sz[own_c]));
  for (int step = 1; step < p; ++step) {
    send_staged(cur, right, tag_ag);
    Status st{};
    cur = recv_staged(left, tag_ag, &st);
    const auto c = static_cast<std::size_t>((rank_ + 1 - step + p) % p);
    require(st.bytes == sz[c],
            "allreduce: a rank contributed an unexpected number of bytes");
    copy_bytes(recv.subspan(off[c], sz[c]), cur.view());
    state().stats.copied_bytes += sz[c];
  }
}

void Comm::scan_bytes(std::span<const std::byte> send,
                      std::span<std::byte> recv, std::size_t elem_size,
                      const ReduceFn& op) {
  count_algo(CollectiveAlgo::kScanLinear);
  require(elem_size > 0, "scan: element size must be positive");
  require(send.size() % elem_size == 0,
          "scan: buffer size must be a multiple of the element size");
  require(recv.size() == send.size(),
          "scan: receive buffer must match the send buffer size");
  const int tag = next_collective_tag();
  const int p = size();
  const std::size_t nelems = send.size() / elem_size;

  std::vector<std::byte> accum(send.begin(), send.end());
  if (rank_ > 0) {
    std::vector<std::byte> prefix(send.size());
    recv_bytes(prefix, rank_ - 1, tag, /*internal=*/true);
    op(prefix.data(), accum.data(), accum.data(), nelems, elem_size);
  }
  if (rank_ + 1 < p) {
    send_bytes(accum, rank_ + 1, tag, /*internal=*/true);
  }
  copy_bytes(recv, accum);
}

void Comm::alltoall_bytes(std::span<const std::byte> send,
                          std::span<std::byte> recv) {
  count_algo(CollectiveAlgo::kAlltoallPairwise);
  const int p = size();
  require(send.size() == recv.size(),
          "alltoall: send and receive buffers must match in size");
  require(send.size() % static_cast<std::size_t>(p) == 0,
          "alltoall: buffer size must be a multiple of the world size");
  const int tag = next_collective_tag();
  const std::size_t chunk = send.size() / static_cast<std::size_t>(p);

  const std::size_t self = static_cast<std::size_t>(rank_) * chunk;
  copy_bytes(recv.subspan(self, chunk), send.subspan(self, chunk));
  for (int shift = 1; shift < p; ++shift) {
    const int dest = (rank_ + shift) % p;
    const int source = (rank_ - shift + p) % p;
    Request sreq = isend_bytes(
        send.subspan(static_cast<std::size_t>(dest) * chunk, chunk), dest,
        tag, /*internal=*/true);
    recv_bytes(recv.subspan(static_cast<std::size_t>(source) * chunk, chunk),
               source, tag, /*internal=*/true);
    wait_nocount(sreq);
  }
}

void Comm::alltoallv_bytes(std::span<const std::byte> send,
                           std::span<const std::size_t> send_counts,
                           std::span<const std::size_t> send_displs,
                           std::span<std::byte> recv,
                           std::span<const std::size_t> recv_counts,
                           std::span<const std::size_t> recv_displs,
                           std::size_t elem_size) {
  count_algo(CollectiveAlgo::kAlltoallvPairwise);
  const int p = size();
  const auto np = static_cast<std::size_t>(p);
  require(send_counts.size() == np && send_displs.size() == np &&
              recv_counts.size() == np && recv_displs.size() == np,
          "alltoallv: need counts and displacements for every rank");
  const int tag = next_collective_tag();

  auto send_piece = [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::size_t offset = send_displs[idx] * elem_size;
    const std::size_t nbytes = send_counts[idx] * elem_size;
    require(offset + nbytes <= send.size(),
            "alltoallv: send count/displacement outside the buffer");
    return send.subspan(offset, nbytes);
  };
  auto recv_piece = [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::size_t offset = recv_displs[idx] * elem_size;
    const std::size_t nbytes = recv_counts[idx] * elem_size;
    require(offset + nbytes <= recv.size(),
            "alltoallv: receive count/displacement outside the buffer");
    return recv.subspan(offset, nbytes);
  };

  {
    const auto src = send_piece(rank_);
    auto dst = recv_piece(rank_);
    require(src.size() == dst.size(),
            "alltoallv: self counts disagree between send and receive sides");
    copy_bytes(dst, src);
  }
  for (int shift = 1; shift < p; ++shift) {
    const int dest = (rank_ + shift) % p;
    const int source = (rank_ - shift + p) % p;
    Request sreq = isend_bytes(send_piece(dest), dest, tag, /*internal=*/true);
    auto dst = recv_piece(source);
    const Status st = recv_bytes(dst, source, tag, /*internal=*/true);
    require(st.bytes == dst.size(),
            "alltoallv: a rank contributed an unexpected number of bytes");
    wait_nocount(sreq);
  }
}

}  // namespace dipdc::minimpi
