#include "minimpi/runtime.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "support/error.hpp"

namespace dipdc::minimpi {

double RunResult::max_sim_time() const {
  double m = 0.0;
  for (const double t : sim_times) m = std::max(m, t);
  return m;
}

CommStats RunResult::total_stats() const {
  CommStats total{};
  for (const CommStats& s : rank_stats) total += s;
  return total;
}

namespace detail_runtime {

namespace {

/// Builds the machine model bound to this world.  If the caller left the
/// default single-node config, size the node's core count to the rank count
/// so that default runs model "one rank per core on one node".
perfmodel::CostModel make_cost_model(const RuntimeOptions& options,
                                     int nranks) {
  perfmodel::MachineConfig machine = options.machine;
  if (machine.nodes == 1 && machine.cores_per_node < nranks) {
    machine.cores_per_node = nranks;
  }
  return {machine, options.placement, nranks};
}

}  // namespace

Runtime::Runtime(int nranks, RuntimeOptions options)
    : options_(std::move(options)),
      cost_(make_cost_model(options_, nranks)),
      nranks_(nranks),
      alive_(nranks),
      buffer_pool_(
          std::make_shared<detail::BufferPool>(options_.transport.pooling)),
      envelope_pool_(
          std::make_shared<detail::EnvelopePool>(options_.transport.pooling)),
      mailboxes_(static_cast<std::size_t>(nranks)),
      rank_states_(static_cast<std::size_t>(nranks)),
      life_(static_cast<std::size_t>(nranks), RankLife::kRunning) {
  DIPDC_REQUIRE(nranks > 0, "world size must be positive");
  if (options_.record_trace) {
    recorder_ = std::make_unique<obs::Recorder>(nranks,
                                                options_.trace_wall_time);
  }
  DIPDC_REQUIRE(!options_.faults.kills() || options_.faults.kill_rank < nranks,
                "fault plan kills a rank outside the world");
  for (int r = 0; r < nranks; ++r) {
    rank_states_[static_cast<std::size_t>(r)].fault_rng = support::make_stream(
        options_.faults.seed, static_cast<std::uint64_t>(r));
  }
  // Build and connect the transport backend before any rank thread exists:
  // the shm backend forks its router process here, while this process is
  // still single-threaded (fork + threads is a footgun otherwise).
  backend_ = detail_backend::make_backend(options_.backend);
  backend_shares_ = backend_->shares_address_space();
  backend_->connect(nranks);
}

Runtime::~Runtime() {
  try {
    backend_->finalize();
  } catch (...) {
    // Destructor teardown must not throw; the backend already surfaced any
    // real transport failure to the rank that hit it.
  }
}

std::shared_ptr<detail::Envelope> Runtime::transport_envelope(
    std::shared_ptr<detail::Envelope> env) {
  if (backend_shares_) return env;
  DIPDC_REQUIRE(!env->payload.is_borrowed(),
                "borrowed payload cannot cross a non-shared-memory backend; "
                "senders must degrade zero-copy to a copy at the seam");
  // The scratch frames live in the sending rank's state and are only ever
  // touched by that rank's own thread, outside the runtime lock.
  detail::RankState& st = rank_state(env->src_world);
  detail_backend::serialize_envelope(*env, st.backend_tx_frame);
  backend_->send(env->src_world, st.backend_tx_frame);
  backend_->recv(env->src_world, st.backend_rx_frame);
  std::shared_ptr<detail::Envelope> delivered = acquire_envelope();
  detail_backend::deserialize_envelope(st.backend_rx_frame, *delivered,
                                       *buffer_pool_);
  st.stats.backend_frames += 1;
  st.stats.backend_wire_bytes += st.backend_tx_frame.size();
  return delivered;
}

std::shared_ptr<detail::RequestState> Runtime::deliver_locked(
    const std::shared_ptr<detail::Envelope>& env) {
  // Payloads up to this size are copied while holding the lock (one lock
  // round-trip); larger ones are copied by the caller outside the lock.
  constexpr std::size_t kLockedCopyMax = 4096;

  detail::Mailbox& mb = mailbox(env->dest);
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    const std::shared_ptr<detail::RequestState> req = *it;
    if (!detail::filters_match(req->source_filter, req->tag_filter,
                               req->context, req->internal, *env)) {
      continue;
    }
    req->status = Status{env->source, env->tag, env->payload.size()};
    req->src_world = env->src_world;
    req->trace_seq = env->trace_seq;
    // Receiver-side link serialization: the payload streams in only after
    // the receive is posted, the head arrives, and the ingress link is
    // free from earlier messages.
    const double start = std::max({req->post_time, env->arrival_head,
                                   mb.link_busy_until});
    const double completion = start + env->byte_time;
    mb.link_busy_until = completion;
    req->completion_time = completion;
    env->completion_time = completion;
    mb.posted.erase(it);

    if (req->want_staged) {
      // Collective-internal staged receive: adopt the shared payload
      // buffer when allowed, otherwise park a pooled copy.  Non-shareable
      // internal payloads are inline (<= Payload::kMaxInline bytes), so
      // the fallback copy under the lock is cheap.
      if (options_.transport.zero_copy && env->payload.shareable()) {
        req->staged = env->payload.share();
        req->staged_shared = true;
      } else if (env->payload.size() > 0) {
        detail::Buffer buf =
            buffer_pool_->acquire(env->payload.size(), nullptr);
        env->payload.copy_to(buf->data());
        req->staged =
            detail::StagedBuffer{std::move(buf), 0, env->payload.size()};
      }
      env->matched = true;
      req->done = true;
      cv_.notify_all();
      return nullptr;
    }

    if (env->payload.size() > req->capacity) {
      std::ostringstream os;
      os << "message truncation: rank " << env->dest << " posted a "
         << req->capacity << "-byte receive but rank " << env->source
         << " sent " << env->payload.size() << " bytes (tag " << env->tag
         << ")";
      req->error = os.str();
      env->matched = true;
      req->done = true;
      cv_.notify_all();
      return nullptr;
    }

    if (env->payload.size() <= kLockedCopyMax) {
      env->payload.copy_to(req->buffer);
      env->matched = true;
      req->done = true;
      cv_.notify_all();
      return nullptr;
    }

    // Defer the large memcpy to the caller, outside the lock.  The flag
    // keeps the receiver from unwinding (on abort) while its buffer is
    // still being written.
    req->copy_in_flight = true;
    return req;
  }
  mb.unexpected.push(env);
  cv_.notify_all();
  return nullptr;
}

void Runtime::blocking_wait(std::unique_lock<std::mutex>& lock, int rank,
                            const char* what,
                            const std::function<bool()>& pred) {
  (void)blocking_wait_for(lock, rank, what, pred, /*can_timeout=*/false);
}

Runtime::WaitOutcome Runtime::blocking_wait_for(
    std::unique_lock<std::mutex>& lock, int rank, const char* what,
    const std::function<bool()>& pred, bool can_timeout) {
  DIPDC_REQUIRE(lock.owns_lock(), "blocking_wait requires the runtime lock");
  Waiter waiter{rank, what, &pred, can_timeout, /*timed_out=*/false};
  waiters_.push_back(&waiter);
  // Ensure the waiter is deregistered on every exit path (including the
  // exceptions thrown below).
  struct Guard {
    std::vector<Waiter*>& waiters;
    Waiter* self;
    ~Guard() { std::erase(waiters, self); }
  } guard{waiters_, &waiter};

  while (!pred()) {
    if (aborted_) {
      if (deadlocked_) throw DeadlockError(abort_reason_);
      if (failed_rank_ >= 0) throw RankFailedError(abort_reason_);
      throw AbortError(abort_reason_);
    }
    if (waiter.timed_out) return WaitOutcome::kTimedOut;
    if (options_.detect_deadlock &&
        static_cast<int>(waiters_.size()) >= alive_) {
      // Throws DeadlockError if no waiter can make progress and none can
      // time out; otherwise it has notified the runnable (or expiring)
      // waiter(s) and we sleep until notified again.
      check_deadlock_locked();
      // The check may have expired OUR OWN wait.  Its notify_all cannot
      // wake this thread (we are not in cv_.wait yet), so falling through
      // to the wait would sleep forever when no other live rank remains to
      // re-notify — re-check the flag instead of relying on a wakeup.
      if (waiter.timed_out) return WaitOutcome::kTimedOut;
    }
    cv_.wait(lock);
  }
  return WaitOutcome::kReady;
}

void Runtime::check_deadlock_locked() {
  for (Waiter* w : waiters_) {
    if ((*w->pred)()) {
      // Someone can make progress; wake everyone so they notice.
      cv_.notify_all();
      return;
    }
  }
  // A flagged-but-unconsumed timeout is progress: its waiter will wake,
  // withdraw its operation, and retry — so the world is not stuck yet.
  for (Waiter* w : waiters_) {
    if (w->timed_out) {
      cv_.notify_all();
      return;
    }
  }
  // Nothing can complete: expire every timeout-capable wait (reliable
  // acknowledgement waits) before concluding the world is dead.
  bool expired_any = false;
  for (Waiter* w : waiters_) {
    if (w->can_timeout) {
      w->timed_out = true;
      expired_any = true;
    }
  }
  if (expired_any) {
    cv_.notify_all();
    return;
  }
  std::ostringstream os;
  os << "global deadlock: every live rank is blocked and no pending "
        "operation can complete.";
  for (const Waiter* w : waiters_) {
    os << " [rank " << w->rank << " in " << w->what << "]";
  }
  const int exited = nranks_ - alive_;
  if (exited > 0) {
    os << " (" << exited << " rank(s) already finished)";
  }
  if (failed_rank_ >= 0) {
    os << " (rank " << failed_rank_ << " died)";
  }
  deadlocked_ = true;
  aborted_ = true;
  abort_reason_ = os.str();
  cv_.notify_all();
  throw DeadlockError(abort_reason_);
}

void Runtime::rank_exited(int rank, bool by_exception, const std::string& why) {
  std::lock_guard<std::mutex> lock(mu_);
  --alive_;
  const auto idx = static_cast<std::size_t>(rank);
  const bool was_dead = life_[idx] == RankLife::kDead;
  if (!was_dead) life_[idx] = RankLife::kExited;
  // The killed rank's thread unwinds asynchronously — possibly after a
  // shrink barrier already cleared the global abort.  Its (expected)
  // RankFailedError must not re-abort the recovered world.
  if (by_exception && !was_dead) {
    if (!aborted_) {
      aborted_ = true;
      abort_reason_ = "a rank aborted with an exception: " + why;
    }
    // A running rank dying of a real exception while survivors sit in the
    // shrink barrier leaves them waiting for an ack that can never come;
    // poison the barrier so they unwind instead.
    if (shrink_acks_ > 0) shrink_poisoned_ = true;
  }
  maybe_finalize_shrink_locked();
  cv_.notify_all();
}

void Runtime::note_rank_killed(int rank, const std::string& why) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_rank_ < 0) failed_rank_ = rank;
  life_[static_cast<std::size_t>(rank)] = RankLife::kDead;
  if (!aborted_) {
    aborted_ = true;
    abort_from_kill_ = true;
    abort_reason_ = why;
  }
  cv_.notify_all();
}

Runtime::ShrinkResult Runtime::failure_shrink(int world_rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (failed_rank_ < 0) {
    throw MpiError(
        "shrink: no rank has failed — shrink() is only meaningful after a "
        "RankFailedError");
  }
  if (life_[static_cast<std::size_t>(world_rank)] == RankLife::kDead) {
    throw MpiError("shrink: the dead rank cannot join the survivor set");
  }
  if (deadlocked_) throw DeadlockError(abort_reason_);
  if (shrink_poisoned_) throw AbortError(abort_reason_);
  const int my_gen = shrink_generation_;
  ++shrink_acks_;
  maybe_finalize_shrink_locked();
  // Survivors park on the raw condition variable, NOT blocking_wait_for:
  // the global abort flag is still raised (that is the point), and a
  // parked survivor must not count as a deadlock-detection waiter.
  while (shrink_generation_ == my_gen) {
    if (deadlocked_) throw DeadlockError(abort_reason_);
    if (shrink_poisoned_) throw AbortError(abort_reason_);
    cv_.wait(lock);
  }
  return shrink_last_;
}

void Runtime::maybe_finalize_shrink_locked() {
  if (shrink_acks_ == 0 || shrink_poisoned_) return;
  int running = 0;
  for (const RankLife l : life_) {
    if (l == RankLife::kRunning) ++running;
  }
  if (shrink_acks_ < running) return;
  // Last survivor arrived: finalize the epoch.  Purge every mailbox so
  // pre-failure traffic (including the dead rank's stranded envelopes)
  // can never match a post-recovery receive; pre-failure Requests are
  // invalidated by the same stroke.
  for (detail::Mailbox& mb : mailboxes_) {
    mb.unexpected = detail::UnexpectedQueue{};
    mb.posted.clear();
  }
  // Clear the abort only if the kill raised it; a deadlock or a real
  // exception is not recoverable.
  if (abort_from_kill_ && !deadlocked_) {
    aborted_ = false;
    abort_from_kill_ = false;
    abort_reason_.clear();
  }
  shrink_last_.survivors.clear();
  for (int r = 0; r < nranks_; ++r) {
    if (life_[static_cast<std::size_t>(r)] == RankLife::kRunning) {
      shrink_last_.survivors.push_back(r);
    }
  }
  // One context id, allocated once by the finalizer: per-survivor
  // allocate_contexts calls could not agree (it is an atomic fetch_add).
  shrink_last_.context = allocate_contexts(1);
  recovered_ = true;
  shrink_acks_ = 0;
  ++shrink_generation_;
  cv_.notify_all();
}

}  // namespace detail_runtime

RunResult run(int nranks, const std::function<void(Comm&)>& fn,
              RuntimeOptions options) {
  DIPDC_REQUIRE(nranks > 0, "world size must be positive");
  detail_runtime::Runtime runtime(nranks, std::move(options));

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    comms.push_back(std::unique_ptr<Comm>(new Comm(&runtime, r)));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm& comm = *comms[static_cast<std::size_t>(r)];
      try {
        fn(comm);
        runtime.rank_exited(r, false, {});
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        runtime.rank_exited(r, true, e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        runtime.rank_exited(r, true, "unknown exception");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // A fault-injection kill is the root cause by definition: the survivors'
  // RankFailedErrors are secondary, so rethrow the dead rank's own error.
  // Unless the survivors shrank and recovered — then the kill was absorbed
  // and the dead rank's RankFailedError is the expected casualty, not a
  // failure of the run.
  const int failed = runtime.failed_rank();
  if (failed >= 0 && errors[static_cast<std::size_t>(failed)] &&
      !runtime.recovered()) {
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  }

  // Prefer the root cause: the first exception that is not the secondary
  // AbortError raised in ranks unblocked by someone else's failure.  In a
  // recovered run only the dead rank's own error is excused — a survivor
  // that failed AFTER the shrink (e.g. an unrecoverable container) must
  // still surface.
  std::exception_ptr first_abort;
  for (int r = 0; r < nranks; ++r) {
    const std::exception_ptr& ep = errors[static_cast<std::size_t>(r)];
    if (!ep) continue;
    if (runtime.recovered() && r == failed) continue;
    try {
      std::rethrow_exception(ep);
    } catch (const AbortError&) {
      if (!first_abort) first_abort = ep;
    } catch (...) {
      std::rethrow_exception(ep);
    }
  }
  if (first_abort) std::rethrow_exception(first_abort);

  RunResult result;
  result.rank_stats.reserve(static_cast<std::size_t>(nranks));
  result.sim_times.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    result.rank_stats.push_back(comms[static_cast<std::size_t>(r)]->stats());
    result.sim_times.push_back(comms[static_cast<std::size_t>(r)]->wtime());
    if (obs::Recorder* rec = runtime.recorder()) {
      const auto& events = rec->lane(r).events;
      result.trace.insert(result.trace.end(), events.begin(), events.end());
    }
  }
  if (runtime.options().record_channels) {
    // Merge the per-rank tallies into one (src, dst)-keyed table.  Sender
    // and receiver sides come from different ranks' states, so a lost or
    // duplicated message shows up as a sent/received disagreement.
    std::map<std::pair<int, int>, ChannelTraffic> merged;
    for (int r = 0; r < nranks; ++r) {
      const detail::RankState& st = runtime.rank_state(r);
      for (const auto& [dst, c] : st.channel_sent) {
        ChannelTraffic& t = merged[{r, dst}];
        t.src = r;
        t.dst = dst;
        t.bytes_sent += c.bytes;
        t.messages_sent += c.messages;
      }
      for (const auto& [src, c] : st.channel_received) {
        ChannelTraffic& t = merged[{src, r}];
        t.src = src;
        t.dst = r;
        t.bytes_received += c.bytes;
        t.messages_received += c.messages;
      }
    }
    result.channels.reserve(merged.size());
    for (const auto& [key, t] : merged) result.channels.push_back(t);
  }
  return result;
}

}  // namespace dipdc::minimpi
