#include "minimpi/types.hpp"

#include <array>

namespace dipdc::minimpi {

std::string_view primitive_name(Primitive p) {
  static constexpr std::array<std::string_view, kPrimitiveCount> names = {
      "MPI_Send",      "MPI_Recv",     "MPI_Isend",    "MPI_Irecv",
      "MPI_Wait",      "MPI_Sendrecv", "MPI_Probe",    "MPI_Barrier",
      "MPI_Bcast",     "MPI_Scatter",  "MPI_Scatterv", "MPI_Gather",
      "MPI_Gatherv",   "MPI_Allgather", "MPI_Reduce",  "MPI_Allreduce",
      "MPI_Alltoall",  "MPI_Alltoallv", "MPI_Scan",
      "SendReliable",  "RecvReliable",
      "MPI_Ibcast",    "MPI_Ireduce",  "MPI_Iallreduce", "MPI_Iallgatherv",
  };
  const auto idx = static_cast<std::size_t>(p);
  return idx < names.size() ? names[idx] : std::string_view{"?"};
}

std::string_view collective_algo_name(CollectiveAlgo a) {
  static constexpr std::array<std::string_view, kCollectiveAlgoCount> names =
      {
          "barrier/dissemination", "bcast/binomial",
          "scatter/linear",        "scatter/binomial",
          "scatterv/linear",       "scatterv/binomial",
          "gather/linear",         "gather/binomial",
          "gatherv/linear",        "gatherv/binomial",
          "allgather/gather+bcast", "allgather/ring",
          "reduce/binomial",       "allreduce/reduce+bcast",
          "allreduce/recursive-doubling", "allreduce/rabenseifner",
          "alltoall/pairwise",     "alltoallv/pairwise",
          "scan/linear",
          "ibcast/linear",         "ireduce/linear",
          "iallreduce/reduce+bcast", "iallgatherv/linear",
      };
  const auto idx = static_cast<std::size_t>(a);
  return idx < names.size() ? names[idx] : std::string_view{"?"};
}

}  // namespace dipdc::minimpi
