// Fault-plan specification parsing and per-message fault decisions.
//
// The `--faults` spec grammar is a comma-separated list of clauses:
//
//   drop=P          drop each user p2p message with probability P
//   dup=P           deliver each user p2p message twice with probability P
//   delay=P[:S]     delay each user p2p message with probability P by S
//                   simulated seconds (default 1e-5)
//   kill=R[@N]      kill world rank R at its Nth user primitive call
//                   (1-based; default N=1)
//   retries=K       send_reliable retransmission budget
//   timeout=S       simulated seconds charged per expired ack timeout
//
// Example: "drop=0.1,dup=0.05,delay=0.2:1e-5,kill=3@40,retries=4"
#pragma once

#include <string>

#include "minimpi/options.hpp"
#include "support/rng.hpp"

namespace dipdc::minimpi {

/// Parses a fault spec into `faults` / `reliable` (fields not named in the
/// spec keep their current values).  Throws MpiError on a malformed spec,
/// naming the offending clause.
void parse_fault_spec(const std::string& spec, FaultOptions& faults,
                      ReliableOptions& reliable);

namespace detail {

/// The injector's verdict for one outgoing message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double delay = 0.0;  // seconds of simulated delivery delay (0 = none)
};

/// Draws the fault decision for one outgoing user p2p message.  Always
/// consumes exactly three uniforms so the per-rank stream stays aligned
/// across plans that arm different subsets of faults.
FaultDecision draw_fault(const FaultOptions& plan, support::Xoshiro256& rng);

}  // namespace detail

}  // namespace dipdc::minimpi
