// Backend seam: kind parsing, wire (de)serialization, and the default
// in-process ThreadsBackend.  The shm and TCP transports live in
// backend_shm.cpp / backend_tcp.cpp.
#include "minimpi/backend.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "minimpi/error.hpp"
#include "support/error.hpp"

namespace dipdc::minimpi {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThreads:
      return "threads";
    case BackendKind::kShm:
      return "shm";
    case BackendKind::kTcp:
      return "tcp";
  }
  return "?";
}

bool parse_backend_kind(std::string_view name, BackendKind* out) {
  if (name == "threads") {
    *out = BackendKind::kThreads;
  } else if (name == "shm") {
    *out = BackendKind::kShm;
  } else if (name == "tcp") {
    *out = BackendKind::kTcp;
  } else {
    return false;
  }
  return true;
}

namespace detail_backend {

void serialize_envelope(const detail::Envelope& env,
                        std::vector<std::byte>& out) {
  WireHeader h;
  h.flags = (env.rendezvous ? 1u : 0u) | (env.internal ? 2u : 0u);
  h.source = env.source;
  h.src_world = env.src_world;
  h.dest = env.dest;
  h.tag = env.tag;
  h.context = env.context;
  h.trace_seq = env.trace_seq;
  h.arrival_head = env.arrival_head;
  h.byte_time = env.byte_time;
  h.payload_bytes = env.payload.size();
  out.resize(sizeof(WireHeader) + env.payload.size());
  std::memcpy(out.data(), &h, sizeof(h));
  env.payload.copy_to(out.data() + sizeof(h));
}

void deserialize_envelope(std::span<const std::byte> frame,
                          detail::Envelope& env, detail::BufferPool& pool) {
  if (frame.size() < sizeof(WireHeader)) {
    throw MpiError("backend frame shorter than its wire header");
  }
  WireHeader h;
  std::memcpy(&h, frame.data(), sizeof(h));
  if (h.magic != WireHeader::kMagic) {
    throw MpiError("backend frame corrupted: bad magic");
  }
  if (frame.size() != sizeof(WireHeader) + h.payload_bytes) {
    throw MpiError("backend frame corrupted: size disagrees with header");
  }
  env.reset();
  env.source = h.source;
  env.src_world = h.src_world;
  env.dest = h.dest;
  env.tag = h.tag;
  env.context = h.context;
  env.rendezvous = (h.flags & 1u) != 0;
  env.internal = (h.flags & 2u) != 0;
  env.trace_seq = h.trace_seq;
  env.arrival_head = h.arrival_head;
  env.byte_time = h.byte_time;
  const std::span<const std::byte> body = frame.subspan(sizeof(WireHeader));
  if (body.empty()) {
    // empty payload
  } else if (body.size() <= detail::Payload::kMaxInline) {
    env.payload = detail::Payload::inline_copy(body);
  } else {
    env.payload = detail::Payload::owned(pool.acquire(body.size(), nullptr),
                                         body);
  }
}

namespace {

/// The default backend: ranks are threads in one address space, so frames
/// never need to exist — Runtime hands envelopes across by pointer and
/// skips this object entirely on the hot path.  The channel methods are
/// still real (an in-process FIFO echo per rank) so the seam contract can
/// be unit-tested against the same interface the remote backends fulfil.
class ThreadsBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const override { return "threads"; }
  [[nodiscard]] bool shares_address_space() const override { return true; }

  void connect(int nranks) override {
    channels_ = std::vector<Channel>(static_cast<std::size_t>(nranks));
  }

  void send(int rank, std::span<const std::byte> frame) override {
    Channel& ch = channels_[static_cast<std::size_t>(rank)];
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.frames.emplace_back(frame.begin(), frame.end());
    }
    ch.cv.notify_one();
  }

  void recv(int rank, std::vector<std::byte>& frame) override {
    Channel& ch = channels_[static_cast<std::size_t>(rank)];
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&ch] { return !ch.frames.empty(); });
    frame = std::move(ch.frames.front());
    ch.frames.pop_front();
  }

  void finalize() override {}

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> frames;
  };
  std::vector<Channel> channels_;
};

}  // namespace

std::unique_ptr<Backend> make_threads_backend() {
  return std::make_unique<ThreadsBackend>();
}

std::unique_ptr<Backend> make_backend(const BackendOptions& opt) {
  switch (opt.kind) {
    case BackendKind::kThreads:
      return make_threads_backend();
    case BackendKind::kShm:
      return make_shm_backend(opt);
    case BackendKind::kTcp:
      return make_tcp_backend(opt);
  }
  DIPDC_REQUIRE(false, "unknown backend kind");
  return nullptr;
}

}  // namespace detail_backend
}  // namespace dipdc::minimpi
