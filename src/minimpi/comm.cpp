// Point-to-point transport: the byte-level operations behind the typed API.
//
// Fast-path structure (all sim-neutral; see options.hpp TransportOptions):
//  - payloads are built OUTSIDE the runtime lock, in pooled buffers or the
//    envelope's inline storage (no allocation for small eager messages);
//  - blocking rendezvous senders lend their buffer to the envelope instead
//    of copying (the sender provably blocks until the receiver consumed it);
//  - large payload copies on the receive side happen outside the lock, with
//    in-flight flags so an unwinding peer never frees memory mid-copy;
//  - unexpected-message matching is indexed by (context, tag) buckets.
#include "minimpi/comm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "minimpi/error.hpp"
#include "minimpi/faults.hpp"
#include "minimpi/trace.hpp"

namespace dipdc::minimpi {

namespace {

/// Payloads up to this size are copied while holding the runtime lock (one
/// lock round-trip beats two for small memcpys); larger receive-side copies
/// release the lock around the memcpy.
constexpr std::size_t kLockedCopyMax = 4096;

/// Builds the payload for an outgoing message.  Called outside the runtime
/// lock; the stats stream is the sender's own (only its thread writes it).
detail::Payload build_payload(std::span<const std::byte> data, bool borrow_ok,
                              const TransportOptions& topt,
                              detail::BufferPool& pool, CommStats& cs) {
  if (data.empty()) return {};
  const std::size_t inline_cap =
      std::min(topt.inline_threshold, detail::Payload::kMaxInline);
  if (data.size() <= inline_cap) {
    ++cs.inline_messages;
    cs.copied_bytes += data.size();
    return detail::Payload::inline_copy(data);
  }
  if (borrow_ok && topt.zero_copy) {
    // Blocking rendezvous send: the sender's frame (and therefore `data`)
    // stays alive until the receiver has consumed the bytes.
    cs.zero_copy_bytes += data.size();
    return detail::Payload::borrowed_from(data);
  }
  bool hit = false;
  detail::Buffer buf = pool.acquire(data.size(), &hit);
  ++(hit ? cs.pool_hits : cs.pool_misses);
  cs.copied_bytes += data.size();
  return detail::Payload::owned(std::move(buf), data);
}

/// Channel-introspection tallies (RuntimeOptions::record_channels).  The
/// maps belong to the acting rank's own state, so no extra locking: senders
/// tally under their own thread, receivers under theirs.
void record_channel_sent(detail::RankState& st, bool enabled, int dest_world,
                         std::size_t bytes) {
  if (!enabled) return;
  detail::ChannelCount& c = st.channel_sent[dest_world];
  c.bytes += bytes;
  ++c.messages;
}

void record_channel_received(detail::RankState& st, bool enabled,
                             int src_world, std::size_t bytes) {
  if (!enabled) return;
  detail::ChannelCount& c = st.channel_received[src_world];
  c.bytes += bytes;
  ++c.messages;
}

}  // namespace

void Comm::validate_peer(int peer, const char* what) const {
  if (peer < 0 || peer >= size()) {
    std::ostringstream os;
    os << what << ": peer rank " << peer << " outside communicator of size "
       << size();
    throw MpiError(os.str());
  }
}

void Comm::validate_user_tag(int tag, const char* what) const {
  if (tag < 0) {
    std::ostringstream os;
    os << what << ": user tags must be non-negative (got " << tag
       << "); negative tags are reserved for collectives";
    throw MpiError(os.str());
  }
}

void Comm::sim_compute(double flops, double mem_bytes) {
  const TraceStart t0 = trace_begin();
  const double dt = cost_model().kernel_time(world_rank_, flops, mem_bytes);
  state().clock += dt;
  state().stats.sim_compute_seconds += dt;
  if (obs::Recorder* rec = runtime_->recorder()) {
    obs::Event e;
    e.rank = world_rank_;
    e.cat = obs::Category::kCompute;
    e.context = context_;
    e.t_start = t0.sim;
    e.t_end = state().clock;
    e.wall_start = t0.wall;
    e.wall_end = rec->wall_now();
    e.name = "compute";
    rec->lane(world_rank_).events.push_back(e);
  }
}

void Comm::sim_advance(double seconds) {
  DIPDC_REQUIRE(seconds >= 0.0, "cannot advance the clock backwards");
  const TraceStart t0 = trace_begin();
  state().clock += seconds;
  // Explicit clock advances model idle/waiting time, not kernel work; they
  // get their own bucket so compute/comm breakdowns stay honest.
  state().stats.sim_idle_seconds += seconds;
  if (obs::Recorder* rec = runtime_->recorder()) {
    obs::Event e;
    e.rank = world_rank_;
    e.cat = obs::Category::kIdle;
    e.context = context_;
    e.t_start = t0.sim;
    e.t_end = state().clock;
    e.wall_start = t0.wall;
    e.wall_end = rec->wall_now();
    e.name = "idle";
    rec->lane(world_rank_).events.push_back(e);
  }
}

void Comm::send_bytes(std::span<const std::byte> data, int dest, int tag,
                      bool internal) {
  validate_peer(dest, "send");
  if (!internal) validate_user_tag(tag, "send");
  const int wdest = to_world(dest);
  detail::RankState& st = state();

  // Fault injection applies to user p2p traffic only; collective-internal
  // messages and reliable-delivery acknowledgements ride the lossless
  // control channel.  The draw consumes the rank's fault stream whether or
  // not a fault fires, so the injected sequence depends only on (plan seed,
  // rank, message ordinal).
  detail::FaultDecision fault;
  if (!internal && runtime_->options().faults.injects()) {
    fault = detail::draw_fault(runtime_->options().faults, st.fault_rng);
  }
  const bool channels =
      !internal && runtime_->options().record_channels;
  // Observability: every user p2p message gets a world-unique edge id.
  // Dropped messages allocate one too (the send event shows an edge no
  // receive ever completes), so edge numbering is independent of the fault
  // plan's outcomes.
  obs::Recorder* const rec = internal ? nullptr : runtime_->recorder();
  if (fault.drop) {
    // The message vanishes on the wire.  The sender cannot tell: it pays
    // the same local costs and counters as a delivered eager send.  A
    // rendezvous-sized payload is lost fire-and-forget too — blocking on a
    // handshake that can never happen would hang the sender by design.
    ++st.stats.fault_drops;
    st.stats.transport_bytes_sent += data.size();
    ++st.stats.transport_messages_sent;
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
    record_channel_sent(st, channels, wdest, data.size());
    if (rec != nullptr) st.last_tx_seq = rec->alloc_seq(world_rank_);
    const double overhead = cost_model().send_overhead();
    st.clock += overhead;
    st.stats.sim_comm_seconds += overhead;
    return;
  }

  // Collective-internal messages are always eager: real MPI collectives
  // never deadlock, and the linear root loops must not serialize on
  // rendezvous handshakes.
  const bool rendezvous =
      !internal && data.size() > runtime_->options().eager_threshold;
  auto env = runtime_->acquire_envelope();
  env->source = rank_;
  env->src_world = world_rank_;
  env->dest = wdest;
  env->tag = tag;
  env->context = context_;
  env->internal = internal;
  env->rendezvous = rendezvous;
  if (rec != nullptr) {
    env->trace_seq = rec->alloc_seq(world_rank_);
    st.last_tx_seq = env->trace_seq;
  }
  // Zero-copy borrowing is only sound when the receiver lives in this
  // address space; across the shm/tcp seam the borrow degrades to a copy
  // (satellite of the backend work: fail safe, never dangle).
  env->payload =
      build_payload(data,
                    /*borrow_ok=*/rendezvous && runtime_->backend_shares_memory(),
                    runtime_->options().transport, runtime_->buffer_pool(),
                    st.stats);

  // A duplicated message is a spurious eager retransmission: its payload is
  // an independent copy (never a borrow of the user's frame) and it never
  // takes part in the rendezvous handshake.
  std::shared_ptr<detail::Envelope> dup;
  if (fault.duplicate) {
    ++st.stats.fault_dups;
    dup = runtime_->acquire_envelope();
    dup->source = rank_;
    dup->src_world = world_rank_;
    dup->dest = wdest;
    dup->tag = tag;
    dup->context = context_;
    dup->internal = internal;
    dup->rendezvous = false;
    dup->trace_seq = env->trace_seq;  // same logical message, same edge
    dup->payload = build_payload(data, /*borrow_ok=*/false,
                                 runtime_->options().transport,
                                 runtime_->buffer_pool(), st.stats);
  }

  // Simulated-timing fields are computed BEFORE the transport seam so they
  // travel inside the frame and delivery reconstructs the identical event
  // on every backend.  No lock needed: st.clock is mutated only by this
  // thread and the cost model is immutable.
  const double alpha = cost_model().message_time(world_rank_, wdest, 0);
  const double overhead = cost_model().send_overhead();
  env->arrival_head = st.clock + alpha + fault.delay;
  if (fault.delay > 0.0) ++st.stats.fault_delays;
  env->byte_time =
      cost_model().message_time(world_rank_, wdest, data.size()) - alpha;
  if (dup) {
    dup->arrival_head = env->arrival_head;
    dup->byte_time = env->byte_time;
  }
  // Cross the transport seam (identity on the threads backend; a serialize/
  // round-trip/deserialize through the router or relay on shm/tcp).
  env = runtime_->transport_envelope(std::move(env));
  if (dup) dup = runtime_->transport_envelope(std::move(dup));

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  st.stats.transport_bytes_sent += data.size();
  ++st.stats.transport_messages_sent;
  if (!internal) {
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
  }
  record_channel_sent(st, channels, wdest, data.size());
  auto finish_delivery = [&](const std::shared_ptr<detail::Envelope>& e) {
    auto pending = runtime_->deliver_locked(e);
    if (pending) {
      lock.unlock();
      e->payload.copy_to(pending->buffer);
      lock.lock();
      pending->copy_in_flight = false;
      pending->done = true;
      e->matched = true;
      runtime_->condvar().notify_all();
    }
  };
  finish_delivery(env);
  if (dup) {
    st.stats.transport_bytes_sent += data.size();
    ++st.stats.transport_messages_sent;
    finish_delivery(dup);
  }
  if (rendezvous) {
    if (!env->matched) ++st.stats.rendezvous_stalls;
    try {
      runtime_->blocking_wait(lock, world_rank_, "Send (rendezvous)",
                              [&env] { return env->matched; });
    } catch (...) {
      // The envelope may borrow this frame's `data`; make sure nobody can
      // touch it after we unwind: drop it from the mailbox if still
      // queued, or wait out a receiver's in-flight copy.
      detail::Mailbox& mb = runtime_->mailbox(wdest);
      if (!mb.unexpected.remove(env.get())) {
        while (!env->matched) runtime_->condvar().wait(lock);
      }
      throw;
    }
    const double completion = std::max(st.clock, env->completion_time);
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
  } else {
    // The eager sender only pays its local injection overhead (LogP "o");
    // the wire latency is experienced by the receiver.
    st.clock += overhead;
    st.stats.sim_comm_seconds += overhead;
  }
}

Status Comm::recv_bytes(std::span<std::byte> data, int source, int tag,
                        bool internal) {
  if (source != kAnySource) validate_peer(source, "recv");
  if (!internal && tag != kAnyTag) validate_user_tag(tag, "recv");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);

  // Fast path: a matching message already arrived.
  if (auto m = mb.unexpected.find(source, tag, context_, internal)) {
    const std::shared_ptr<detail::Envelope> env = m->handle();
    if (env->payload.size() > data.size()) {
      std::ostringstream os;
      os << "message truncation: recv buffer holds " << data.size()
         << " bytes but rank " << env->source << " sent "
         << env->payload.size() << " bytes (tag " << env->tag << ")";
      throw MpiError(os.str());  // message stays queued, as before
    }
    const Status status{env->source, env->tag, env->payload.size()};
    const double completion =
        std::max({st.clock, env->arrival_head, mb.link_busy_until}) +
        env->byte_time;
    mb.link_busy_until = completion;
    env->completion_time = completion;
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    if (!internal) {
      st.stats.p2p_bytes_received += status.bytes;
      ++st.stats.p2p_messages_received;
      record_channel_received(st, runtime_->options().record_channels,
                              env->src_world, status.bytes);
      st.last_rx_seq = env->trace_seq;
    }
    st.stats.copied_bytes += status.bytes;
    mb.unexpected.erase(*m);
    if (status.bytes <= kLockedCopyMax) {
      env->payload.copy_to(data.data());
      env->matched = true;
    } else {
      env->consume_in_flight = true;
      lock.unlock();
      env->payload.copy_to(data.data());
      lock.lock();
      env->consume_in_flight = false;
      env->matched = true;
    }
    runtime_->condvar().notify_all();  // a rendezvous sender may be waiting
    return status;
  }

  // Slow path: post the receive and block until a sender matches it.
  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->buffer = data.data();
  req->capacity = data.size();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = internal;
  req->post_time = st.clock;
  mb.posted.push_back(req);

  try {
    runtime_->blocking_wait(lock, world_rank_, "Recv",
                            [&req] { return req->done; });
  } catch (...) {
    // Keep `data` safe across the unwind: finish an in-flight sender copy,
    // or withdraw the posted receive so no later sender writes into it.
    if (req->copy_in_flight) {
      while (!req->done) runtime_->condvar().wait(lock);
    } else if (!req->done) {
      std::erase(mb.posted, req);
    }
    throw;
  }
  if (!req->error.empty()) throw MpiError(req->error);
  const double completion = std::max(st.clock, req->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (!internal) {
    st.stats.p2p_bytes_received += req->status.bytes;
    ++st.stats.p2p_messages_received;
    record_channel_received(st, runtime_->options().record_channels,
                            req->src_world, req->status.bytes);
    st.last_rx_seq = std::exchange(req->trace_seq, 0);
  }
  st.stats.copied_bytes += req->status.bytes;
  return req->status;
}

Request Comm::isend_bytes(std::span<const std::byte> data, int dest, int tag,
                          bool internal) {
  validate_peer(dest, "isend");
  if (!internal) validate_user_tag(tag, "isend");
  const int wdest = to_world(dest);
  detail::RankState& st = state();

  // See send_bytes: user p2p traffic only, one draw per message.
  detail::FaultDecision fault;
  if (!internal && runtime_->options().faults.injects()) {
    fault = detail::draw_fault(runtime_->options().faults, st.fault_rng);
  }
  const bool channels =
      !internal && runtime_->options().record_channels;
  obs::Recorder* const rec = internal ? nullptr : runtime_->recorder();
  if (fault.drop) {
    ++st.stats.fault_drops;
    st.stats.transport_bytes_sent += data.size();
    ++st.stats.transport_messages_sent;
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
    record_channel_sent(st, channels, wdest, data.size());
    if (rec != nullptr) st.last_tx_seq = rec->alloc_seq(world_rank_);
    // The request completes immediately (the sender cannot distinguish a
    // dropped eager message); the envelope exists only so that wait()/test()
    // can dereference it, and is marked matched so nothing ever waits on it.
    auto dropped = std::make_shared<detail::RequestState>();
    dropped->kind = detail::RequestState::Kind::kSend;
    dropped->envelope = runtime_->acquire_envelope();
    dropped->envelope->rendezvous = false;
    dropped->envelope->matched = true;
    st.clock += cost_model().send_overhead();
    st.stats.sim_comm_seconds += cost_model().send_overhead();
    dropped->done = true;
    dropped->completion_time = st.clock;
    return Request(dropped);
  }

  const bool rendezvous =
      !internal && data.size() > runtime_->options().eager_threshold;
  auto env = runtime_->acquire_envelope();
  env->source = rank_;
  env->src_world = world_rank_;
  env->dest = wdest;
  env->tag = tag;
  env->context = context_;
  env->internal = internal;
  env->rendezvous = rendezvous;
  if (rec != nullptr) {
    env->trace_seq = rec->alloc_seq(world_rank_);
    st.last_tx_seq = env->trace_seq;
  }
  // Isend returns immediately, so the payload can never borrow the user's
  // buffer (the sender may mutate it before the receiver matches).
  env->payload = build_payload(data, /*borrow_ok=*/false,
                               runtime_->options().transport,
                               runtime_->buffer_pool(), st.stats);

  std::shared_ptr<detail::Envelope> dup;
  if (fault.duplicate) {
    ++st.stats.fault_dups;
    dup = runtime_->acquire_envelope();
    dup->source = rank_;
    dup->src_world = world_rank_;
    dup->dest = wdest;
    dup->tag = tag;
    dup->context = context_;
    dup->internal = internal;
    dup->rendezvous = false;
    dup->trace_seq = env->trace_seq;  // same logical message, same edge
    dup->payload = build_payload(data, /*borrow_ok=*/false,
                                 runtime_->options().transport,
                                 runtime_->buffer_pool(), st.stats);
  }

  // Timing before the seam, seam before the lock (see send_bytes).
  const double alpha = cost_model().message_time(world_rank_, wdest, 0);
  env->arrival_head = st.clock + alpha + fault.delay;
  if (fault.delay > 0.0) ++st.stats.fault_delays;
  env->byte_time =
      cost_model().message_time(world_rank_, wdest, data.size()) - alpha;
  if (dup) {
    dup->arrival_head = env->arrival_head;
    dup->byte_time = env->byte_time;
  }
  env = runtime_->transport_envelope(std::move(env));
  if (dup) dup = runtime_->transport_envelope(std::move(dup));

  // wait()/test() track the envelope that was actually delivered.
  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kSend;
  req->envelope = env;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  st.stats.transport_bytes_sent += data.size();
  ++st.stats.transport_messages_sent;
  if (!internal) {
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
  }
  record_channel_sent(st, channels, wdest, data.size());
  auto finish_delivery = [&](const std::shared_ptr<detail::Envelope>& e) {
    auto pending = runtime_->deliver_locked(e);
    if (pending) {
      lock.unlock();
      e->payload.copy_to(pending->buffer);
      lock.lock();
      pending->copy_in_flight = false;
      pending->done = true;
      e->matched = true;
      runtime_->condvar().notify_all();
    }
  };
  finish_delivery(env);
  if (dup) {
    st.stats.transport_bytes_sent += data.size();
    ++st.stats.transport_messages_sent;
    finish_delivery(dup);
  }
  // The non-blocking send itself only pays injection overhead; a rendezvous
  // Isend defers the synchronization to wait().
  st.clock += cost_model().send_overhead();
  st.stats.sim_comm_seconds += cost_model().send_overhead();
  if (!rendezvous) {
    req->done = true;
    req->completion_time = st.clock;
  }
  return Request(req);
}

Request Comm::irecv_bytes(std::span<std::byte> data, int source, int tag,
                          bool internal) {
  if (source != kAnySource) validate_peer(source, "irecv");
  if (!internal && tag != kAnyTag) validate_user_tag(tag, "irecv");

  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->buffer = data.data();
  req->capacity = data.size();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = internal;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  req->post_time = st.clock;
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  if (auto m = mb.unexpected.find(source, tag, context_, internal)) {
    const std::shared_ptr<detail::Envelope> env = m->handle();
    req->status = Status{env->source, env->tag, env->payload.size()};
    req->src_world = env->src_world;
    const double completion =
        std::max({req->post_time, env->arrival_head, mb.link_busy_until}) +
        env->byte_time;
    mb.link_busy_until = completion;
    req->completion_time = completion;
    env->completion_time = completion;
    if (env->payload.size() > req->capacity) {
      std::ostringstream os;
      os << "message truncation: irecv buffer holds " << req->capacity
         << " bytes but rank " << env->source << " sent "
         << env->payload.size() << " bytes (tag " << env->tag << ")";
      req->error = os.str();
      env->matched = true;
      req->done = true;
      mb.unexpected.erase(*m);
      runtime_->condvar().notify_all();
      return Request(req);
    }
    // The irecv completed inline, so its own trace event carries the edge
    // (wait() on this request will find req->trace_seq already consumed).
    if (!internal) st.last_rx_seq = env->trace_seq;
    st.stats.copied_bytes += env->payload.size();
    mb.unexpected.erase(*m);
    if (env->payload.size() <= kLockedCopyMax) {
      env->payload.copy_to(req->buffer);
      env->matched = true;
      req->done = true;
    } else {
      env->consume_in_flight = true;
      lock.unlock();
      env->payload.copy_to(req->buffer);
      lock.lock();
      env->consume_in_flight = false;
      env->matched = true;
      req->done = true;
    }
    runtime_->condvar().notify_all();
    return Request(req);
  }
  mb.posted.push_back(req);
  return Request(req);
}

detail::StagedBuffer Comm::stage_acquire(std::size_t n) {
  bool hit = false;
  detail::Buffer buf = runtime_->buffer_pool().acquire(n, &hit);
  CommStats& cs = state().stats;
  ++(hit ? cs.pool_hits : cs.pool_misses);
  return detail::StagedBuffer{std::move(buf), 0, n};
}

detail::StagedBuffer Comm::stage_copy(std::span<const std::byte> src) {
  detail::StagedBuffer sb = stage_acquire(src.size());
  if (!src.empty()) {
    std::memcpy(sb.storage->data(), src.data(), src.size());
  }
  state().stats.copied_bytes += src.size();
  return sb;
}

void Comm::send_staged(const detail::StagedBuffer& data, int dest, int tag) {
  validate_peer(dest, "send");
  const int wdest = to_world(dest);
  detail::RankState& st = state();
  const TransportOptions& topt = runtime_->options().transport;
  auto env = runtime_->acquire_envelope();
  env->source = rank_;
  env->src_world = world_rank_;
  env->dest = wdest;
  env->tag = tag;
  env->context = context_;
  env->internal = true;   // staged traffic is collective-internal
  env->rendezvous = false;  // and therefore always eager
  if (data.len == 0) {
    // empty payload
  } else if (topt.zero_copy && data.storage) {
    // Share the staging buffer into the envelope: every hop of a tree or
    // ring forward references the same bytes.  The buffer must not be
    // mutated after this point (collectives uphold that discipline).
    env->payload = detail::Payload::shared_view(data);
    st.stats.zero_copy_bytes += data.len;
  } else {
    env->payload = build_payload(data.view(), /*borrow_ok=*/false, topt,
                                 runtime_->buffer_pool(), st.stats);
  }

  // Timing before the seam, seam before the lock (see send_bytes).  A
  // shared staging buffer crossing the shm/tcp seam is flattened into the
  // frame by serialization — the refcounted buffer stays valid throughout,
  // so sharing into the envelope is safe on every backend.
  const double alpha = cost_model().message_time(world_rank_, wdest, 0);
  const double overhead = cost_model().send_overhead();
  env->arrival_head = st.clock + alpha;
  env->byte_time =
      cost_model().message_time(world_rank_, wdest, data.len) - alpha;
  env = runtime_->transport_envelope(std::move(env));

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  st.stats.transport_bytes_sent += data.len;
  ++st.stats.transport_messages_sent;
  auto pending = runtime_->deliver_locked(env);
  if (pending) {
    lock.unlock();
    env->payload.copy_to(pending->buffer);
    lock.lock();
    pending->copy_in_flight = false;
    pending->done = true;
    env->matched = true;
    runtime_->condvar().notify_all();
  }
  st.clock += overhead;
  st.stats.sim_comm_seconds += overhead;
}

detail::StagedBuffer Comm::recv_staged(int source, int tag, Status* status) {
  validate_peer(source, "recv");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  const bool zero_copy = runtime_->options().transport.zero_copy;

  if (auto m = mb.unexpected.find(source, tag, context_, /*internal=*/true)) {
    const std::shared_ptr<detail::Envelope> env = m->handle();
    const Status stt{env->source, env->tag, env->payload.size()};
    const double completion =
        std::max({st.clock, env->arrival_head, mb.link_busy_until}) +
        env->byte_time;
    mb.link_busy_until = completion;
    env->completion_time = completion;
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    mb.unexpected.erase(*m);
    detail::StagedBuffer sb;
    if (stt.bytes == 0) {
      // empty message
    } else if (zero_copy && env->payload.shareable()) {
      sb = env->payload.share();  // adopt, no copy
      st.stats.zero_copy_bytes += stt.bytes;
    } else {
      bool hit = false;
      detail::Buffer buf = runtime_->buffer_pool().acquire(stt.bytes, &hit);
      ++(hit ? st.stats.pool_hits : st.stats.pool_misses);
      env->payload.copy_to(buf->data());
      sb = detail::StagedBuffer{std::move(buf), 0, stt.bytes};
      st.stats.copied_bytes += stt.bytes;
    }
    env->matched = true;
    runtime_->condvar().notify_all();
    if (status != nullptr) *status = stt;
    return sb;
  }

  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->want_staged = true;
  req->capacity = std::numeric_limits<std::size_t>::max();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = true;
  req->post_time = st.clock;
  mb.posted.push_back(req);

  try {
    runtime_->blocking_wait(lock, world_rank_, "Recv (staged)",
                            [&req] { return req->done; });
  } catch (...) {
    if (!req->done) std::erase(mb.posted, req);
    throw;
  }
  if (!req->error.empty()) throw MpiError(req->error);
  const double completion = std::max(st.clock, req->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (req->staged_shared) {
    st.stats.zero_copy_bytes += req->status.bytes;
  } else {
    st.stats.copied_bytes += req->status.bytes;
  }
  if (status != nullptr) *status = req->status;
  return std::move(req->staged);
}

void Comm::trace_end(Primitive op, int peer, int tag, std::size_t bytes,
                     const TraceStart& t0) {
  obs::Recorder* const rec = runtime_->recorder();
  if (rec == nullptr) return;
  detail::RankState& st = state();
  obs::Event e;
  e.rank = world_rank_;
  e.op = op_code(op);
  e.cat = primitive_category(op);
  e.peer = peer;
  e.tag = tag;
  e.context = context_;
  e.bytes = bytes;
  // Consume the message edges the byte-level transport stamped since t0
  // was taken (at most one each way per user operation).
  e.seq_out = std::exchange(st.last_tx_seq, 0);
  e.seq_in = std::exchange(st.last_rx_seq, 0);
  e.t_start = t0.sim;
  e.t_end = st.clock;
  e.wall_start = t0.wall;
  e.wall_end = rec->wall_now();
  e.name = primitive_name(op);
  // The lane belongs to this rank's thread, so no lock is needed.
  rec->lane(world_rank_).events.push_back(e);
}

void Comm::phase_begin(std::string_view name) {
  obs::Recorder* const rec = runtime_->recorder();
  if (rec == nullptr) return;
  state().phase_stack.push_back(
      detail::PhaseFrame{name, state().clock, rec->wall_now()});
}

void Comm::phase_end() {
  obs::Recorder* const rec = runtime_->recorder();
  if (rec == nullptr) return;
  detail::RankState& st = state();
  if (st.phase_stack.empty()) return;
  const detail::PhaseFrame frame = st.phase_stack.back();
  st.phase_stack.pop_back();
  obs::Event e;
  e.rank = world_rank_;
  e.cat = obs::Category::kPhase;
  e.context = context_;
  e.t_start = frame.sim_start;
  e.t_end = st.clock;
  e.wall_start = frame.wall_start;
  e.wall_end = rec->wall_now();
  e.name = frame.name;
  rec->lane(world_rank_).events.push_back(e);
}

Status Comm::wait(Request& request) {
  count_call(Primitive::kWait);
  const TraceStart t0 = trace_begin();
  const Status st = wait_nocount(request);
  trace_end(Primitive::kWait, st.source, st.tag, st.bytes, t0);
  return st;
}

bool Comm::advance_collective(
    const std::shared_ptr<detail::CollectiveState>& cs, bool blocking) {
  if (cs->done) return true;
  // Complete the posted sub-operations in post order (deterministic clock
  // adoption).  Non-blocking callers bail out at the first pending one.
  while (cs->completed < cs->subs.size()) {
    if (!blocking) {
      std::unique_lock<std::mutex> lock(runtime_->mutex());
      const auto& rs = cs->subs[cs->completed];
      const bool sub_done = rs->kind == detail::RequestState::Kind::kSend
                                ? (rs->done || rs->envelope->matched)
                                : rs->done;
      if (!sub_done) return false;
    }
    Request sub(cs->subs[cs->completed]);
    wait_nocount(sub);
    ++cs->completed;
  }
  // Root-side fan-in: before running `finish`, a non-blocking caller must
  // prove every lazily ingested message is already queued, so the blocking
  // receives inside `finish` provably fast-path.
  if (!blocking && !cs->ingests.empty()) {
    std::unique_lock<std::mutex> lock(runtime_->mutex());
    detail::Mailbox& mb = runtime_->mailbox(world_rank_);
    for (const auto& in : cs->ingests) {
      if (!mb.unexpected.find(in.source, in.tag, context_,
                              /*internal=*/true)) {
        return false;
      }
    }
  }
  if (cs->finish) {
    // Cleared only after success: a RankFailedError unwinding out of the
    // ingestion leaves the request incomplete, so waiting again rethrows
    // instead of silently succeeding.
    cs->finish(*this);
    cs->finish = nullptr;
  }
  cs->done = true;
  return true;
}

Status Comm::wait_nocount(Request& request) {
  if (!request.valid()) throw MpiError("wait on an empty Request");
  if (request.coll_ != nullptr) {
    advance_collective(request.coll_, /*blocking=*/true);
    return request.coll_->status;
  }
  auto rs = request.state_;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  if (rs->kind == detail::RequestState::Kind::kSend) {
    const auto& env = rs->envelope;
    if (env->rendezvous && !rs->done) {
      runtime_->blocking_wait(lock, world_rank_, "Wait (Isend rendezvous)",
                              [&env] { return env->matched; });
      rs->done = true;
      rs->completion_time = env->completion_time;
    }
    const double completion = std::max(st.clock, rs->completion_time);
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    return Status{};
  }

  try {
    runtime_->blocking_wait(lock, world_rank_, "Wait (Irecv)",
                            [&rs] { return rs->done; });
  } catch (...) {
    // See recv_bytes: never leave a sender copying into a buffer whose
    // owner is unwinding, and never leave a dangling posted receive.
    if (rs->copy_in_flight) {
      while (!rs->done) runtime_->condvar().wait(lock);
    } else if (!rs->done) {
      std::erase(runtime_->mailbox(world_rank_).posted, rs);
    }
    throw;
  }
  if (!rs->error.empty()) throw MpiError(rs->error);
  const double completion = std::max(st.clock, rs->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (!rs->internal && !rs->consumed) {
    st.stats.p2p_bytes_received += rs->status.bytes;
    ++st.stats.p2p_messages_received;
    record_channel_received(st, runtime_->options().record_channels,
                            rs->src_world, rs->status.bytes);
    // Hand the matched message's edge to the completing operation's trace
    // event (zero when the irecv fast path already consumed it).
    if (rs->trace_seq != 0) {
      st.last_rx_seq = std::exchange(rs->trace_seq, 0);
    }
  }
  rs->consumed = true;
  return rs->status;
}

std::size_t Comm::wait_any(std::span<Request> requests, Status* status) {
  count_call(Primitive::kWait);
  if (requests.empty()) throw MpiError("wait_any on an empty request list");
  for (const Request& r : requests) {
    if (!r.valid()) throw MpiError("wait_any on an empty Request");
  }
  auto sub_done = [](const std::shared_ptr<detail::RequestState>& rs) {
    return rs->kind == detail::RequestState::Kind::kSend
               ? (rs->done || rs->envelope->matched)
               : rs->done;
  };
  // Completable without blocking.  For collectives: every remaining sub
  // done and every lazy ingest already queued (`finish` itself only posts
  // eager work, so it never blocks once this holds).  Checked under the
  // runtime lock.
  auto request_done = [&](const Request& r) {
    if (r.coll_ == nullptr) return sub_done(r.state_);
    const detail::CollectiveState& cs = *r.coll_;
    if (cs.done) return true;
    for (std::size_t i = cs.completed; i < cs.subs.size(); ++i) {
      if (!sub_done(cs.subs[i])) return false;
    }
    detail::Mailbox& mb = runtime_->mailbox(world_rank_);
    for (const auto& in : cs.ingests) {
      if (!mb.unexpected.find(in.source, in.tag, context_,
                              /*internal=*/true)) {
        return false;
      }
    }
    return true;
  };

  std::size_t which = requests.size();
  {
    std::unique_lock<std::mutex> lock(runtime_->mutex());
    runtime_->blocking_wait(lock, world_rank_, "Waitany", [&] {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (request_done(requests[i])) {
          which = i;
          return true;
        }
      }
      return false;
    });
  }
  // Complete the found request (adopts clocks/counters idempotently).
  const Status st = wait_nocount(requests[which]);
  // wait_any records no trace event of its own; drop the pending message
  // edge so it cannot leak into the next traced operation.
  state().last_rx_seq = 0;
  if (status != nullptr) *status = st;
  return which;
}

bool Comm::test(Request& request, Status* status) {
  if (!request.valid()) throw MpiError("test on an empty Request");
  if (request.coll_ != nullptr) {
    if (!advance_collective(request.coll_, /*blocking=*/false)) return false;
    if (status != nullptr) *status = request.coll_->status;
    return true;
  }
  auto rs = request.state_;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  const bool done = rs->kind == detail::RequestState::Kind::kSend
                        ? (rs->done || rs->envelope->matched)
                        : rs->done;
  if (!done) return false;
  if (!rs->error.empty()) throw MpiError(rs->error);
  if (rs->kind == detail::RequestState::Kind::kSend &&
      rs->envelope->rendezvous && !rs->done) {
    rs->done = true;
    rs->completion_time = rs->envelope->completion_time;
  }
  const double completion = std::max(st.clock, rs->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (rs->kind == detail::RequestState::Kind::kRecv && !rs->internal &&
      !rs->consumed) {
    st.stats.p2p_bytes_received += rs->status.bytes;
    ++st.stats.p2p_messages_received;
    record_channel_received(st, runtime_->options().record_channels,
                            rs->src_world, rs->status.bytes);
  }
  rs->consumed = true;
  if (status != nullptr) *status = rs->status;
  return true;
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid()) wait(r);
  }
}

Status Comm::probe(int source, int tag) {
  count_call(Primitive::kProbe);
  const TraceStart t_begin = trace_begin();
  if (source != kAnySource) validate_peer(source, "probe");
  if (tag != kAnyTag) validate_user_tag(tag, "probe");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  const detail::Envelope* found = nullptr;
  auto find_match = [&]() -> bool {
    if (auto m =
            mb.unexpected.find(source, tag, context_, /*internal=*/false)) {
      found = m->handle().get();
      return true;
    }
    return false;
  };
  runtime_->blocking_wait(lock, world_rank_, "Probe", find_match);
  // Probing reveals the envelope metadata once the message head arrives;
  // the payload itself is ingested by the subsequent receive.
  const double completion = std::max(st.clock, found->arrival_head);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  lock.unlock();
  trace_end(Primitive::kProbe, found->source, found->tag,
            found->payload.size(), t_begin);
  return Status{found->source, found->tag, found->payload.size()};
}

std::optional<Status> Comm::iprobe(int source, int tag) {
  if (source != kAnySource) validate_peer(source, "iprobe");
  if (tag != kAnyTag) validate_user_tag(tag, "iprobe");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  if (auto m = mb.unexpected.find(source, tag, context_, /*internal=*/false)) {
    const auto& env = m->handle();
    return Status{env->source, env->tag, env->payload.size()};
  }
  return std::nullopt;
}

void Comm::fault_tick(Primitive p) {
  const FaultOptions& plan = runtime_->options().faults;
  if (world_rank_ != plan.kill_rank) return;
  detail::RankState& st = state();
  if (++st.primitive_calls != plan.kill_at_call) return;
  std::ostringstream os;
  os << "rank " << world_rank_ << " killed by fault injection at primitive "
     << "call " << plan.kill_at_call << " (" << primitive_name(p) << ")";
  const std::string why = os.str();
  // Publish the death before unwinding so every survivor — blocked now or
  // blocking later — gets RankFailedError instead of hanging.
  runtime_->note_rank_killed(world_rank_, why);
  throw RankFailedError(why);
}

void Comm::send_reliable_bytes(std::span<const std::byte> data, int dest,
                               int tag) {
  validate_peer(dest, "send_reliable");
  validate_user_tag(tag, "send_reliable");
  DIPDC_REQUIRE(runtime_->options().detect_deadlock,
                "send_reliable requires detect_deadlock: deterministic "
                "acknowledgement timeouts piggyback on global-stall proofs");
  detail::RankState& st = state();
  const int wdest = to_world(dest);
  const std::uint64_t seq = ++st.reliable_next_seq[wdest];

  std::vector<std::byte> frame(sizeof(detail::ReliableHeader) + data.size());
  const detail::ReliableHeader hdr{seq};
  std::memcpy(frame.data(), &hdr, sizeof(hdr));
  if (!data.empty()) {
    std::memcpy(frame.data() + sizeof(hdr), data.data(), data.size());
  }

  const ReliableOptions& ro = runtime_->options().reliable;
  for (int attempt = 0; attempt <= ro.max_retries; ++attempt) {
    if (attempt > 0) ++st.stats.reliable_retries;
    send_bytes(frame, dest, tag, /*internal=*/false);
    for (;;) {
      detail::ReliableHeader ack{};
      const bool got = recv_ack_timeout(
          std::as_writable_bytes(std::span<detail::ReliableHeader>(&ack, 1)),
          dest, detail::kReliableAckTag, nullptr);
      if (!got) break;  // provably lost: retransmit
      if (ack.seq == seq) return;
      // A stale acknowledgement for an earlier frame (its duplicate was
      // acked twice); discard it and keep waiting for ours.
    }
  }
  std::ostringstream os;
  os << "send_reliable: no acknowledgement from rank " << dest << " (tag "
     << tag << ") after " << ro.max_retries
     << " retransmissions — retry budget exhausted";
  throw MpiError(os.str());
}

Status Comm::recv_reliable_bytes(std::span<std::byte> data, int source,
                                 int tag) {
  detail::RankState& st = state();
  std::vector<std::byte> frame(sizeof(detail::ReliableHeader) + data.size());
  for (;;) {
    const Status raw = recv_bytes(frame, source, tag, /*internal=*/false);
    if (raw.bytes < sizeof(detail::ReliableHeader)) {
      throw MpiError(
          "recv_reliable: frame lacks a sequence header — the peer must "
          "send with send_reliable");
    }
    detail::ReliableHeader hdr{};
    std::memcpy(&hdr, frame.data(), sizeof(hdr));
    // Acknowledge every frame, duplicates included: the sender may be
    // retransmitting precisely because an earlier copy went unacknowledged
    // from its point of view.  Acks ride the lossless control channel.
    const detail::ReliableHeader ack{hdr.seq};
    send_bytes(std::as_bytes(std::span<const detail::ReliableHeader>(&ack, 1)),
               raw.source, detail::kReliableAckTag, /*internal=*/true);
    std::uint64_t& delivered = st.reliable_delivered_seq[to_world(raw.source)];
#ifdef DIPDC_MUTATE_RELIABLE_DUP
    // Planted bug (fuzzer-validation builds only, -DDIPDC_MUTATION=
    // reliable-dup): off-by-one high-water mark lets an injected duplicate
    // of the most recently delivered frame through as a fresh message.
    if (hdr.seq < delivered) {
#else
    if (hdr.seq <= delivered) {
#endif
      // Retransmission or injected duplicate of an already-delivered frame.
      ++st.stats.reliable_duplicates;
      continue;
    }
    delivered = hdr.seq;
    const std::size_t payload = raw.bytes - sizeof(hdr);
    if (payload > 0) {
      std::memcpy(data.data(), frame.data() + sizeof(hdr), payload);
    }
    return Status{raw.source, raw.tag, payload};
  }
}

bool Comm::recv_ack_timeout(std::span<std::byte> data, int source, int tag,
                            Status* status) {
  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  const ReliableOptions& ro = runtime_->options().reliable;

  // Fast path: the acknowledgement already arrived.  Acks are 8 bytes, so
  // the copy always happens under the lock.
  if (auto m = mb.unexpected.find(source, tag, context_, /*internal=*/true)) {
    const std::shared_ptr<detail::Envelope> env = m->handle();
    if (env->payload.size() > data.size()) {
      throw MpiError("reliable delivery: oversized acknowledgement frame");
    }
    const Status stt{env->source, env->tag, env->payload.size()};
    const double completion =
        std::max({st.clock, env->arrival_head, mb.link_busy_until}) +
        env->byte_time;
    mb.link_busy_until = completion;
    env->completion_time = completion;
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    st.stats.copied_bytes += stt.bytes;
    mb.unexpected.erase(*m);
    env->payload.copy_to(data.data());
    env->matched = true;
    runtime_->condvar().notify_all();
    if (status != nullptr) *status = stt;
    return true;
  }

  // Slow path: post the receive, but let the wait expire when the runtime
  // proves the whole world is stalled (the ack provably cannot arrive).
  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->buffer = data.data();
  req->capacity = data.size();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = true;
  req->post_time = st.clock;
  mb.posted.push_back(req);

  detail_runtime::Runtime::WaitOutcome outcome;
  try {
    outcome = runtime_->blocking_wait_for(
        lock, world_rank_, "Recv (reliable ack)",
        [&req] { return req->done; }, /*can_timeout=*/true);
  } catch (...) {
    // See recv_bytes: keep `data` safe across the unwind.
    if (req->copy_in_flight) {
      while (!req->done) runtime_->condvar().wait(lock);
    } else if (!req->done) {
      std::erase(mb.posted, req);
    }
    throw;
  }
  bool received = outcome == detail_runtime::Runtime::WaitOutcome::kReady;
  if (!received) {
    // The timeout may have raced an arriving ack; a sender mid-copy into
    // our buffer means the ack did arrive.
    if (req->copy_in_flight) {
      while (!req->done) runtime_->condvar().wait(lock);
    }
    received = req->done;
  }
  if (!received) {
    std::erase(mb.posted, req);
    st.clock += ro.timeout_seconds;
    st.stats.sim_comm_seconds += ro.timeout_seconds;
    ++st.stats.reliable_timeouts;
    return false;
  }
  if (!req->error.empty()) throw MpiError(req->error);
  const double completion = std::max(st.clock, req->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  st.stats.copied_bytes += req->status.bytes;
  if (status != nullptr) *status = req->status;
  return true;
}

}  // namespace dipdc::minimpi
