// Point-to-point transport: the byte-level operations behind the typed API.
#include "minimpi/comm.hpp"

#include <algorithm>
#include <sstream>

#include "minimpi/error.hpp"

namespace dipdc::minimpi {

namespace {

std::shared_ptr<detail::Envelope> make_envelope(
    int source, int world_dest, int tag, int context,
    std::span<const std::byte> data, bool internal, bool rendezvous) {
  auto env = std::make_shared<detail::Envelope>();
  env->source = source;
  env->dest = world_dest;
  env->tag = tag;
  env->context = context;
  env->payload.assign(data.begin(), data.end());
  env->internal = internal;
  env->rendezvous = rendezvous;
  return env;
}

}  // namespace

void Comm::validate_peer(int peer, const char* what) const {
  if (peer < 0 || peer >= size()) {
    std::ostringstream os;
    os << what << ": peer rank " << peer << " outside communicator of size "
       << size();
    throw MpiError(os.str());
  }
}

void Comm::validate_user_tag(int tag, const char* what) const {
  if (tag < 0) {
    std::ostringstream os;
    os << what << ": user tags must be non-negative (got " << tag
       << "); negative tags are reserved for collectives";
    throw MpiError(os.str());
  }
}

void Comm::sim_compute(double flops, double mem_bytes) {
  const double dt = cost_model().kernel_time(world_rank_, flops, mem_bytes);
  state().clock += dt;
  state().stats.sim_compute_seconds += dt;
}

void Comm::sim_advance(double seconds) {
  DIPDC_REQUIRE(seconds >= 0.0, "cannot advance the clock backwards");
  state().clock += seconds;
  state().stats.sim_compute_seconds += seconds;
}

void Comm::send_bytes(std::span<const std::byte> data, int dest, int tag,
                      bool internal) {
  validate_peer(dest, "send");
  if (!internal) validate_user_tag(tag, "send");
  const int wdest = to_world(dest);
  // Collective-internal messages are always eager: real MPI collectives
  // never deadlock, and the linear root loops must not serialize on
  // rendezvous handshakes.
  const bool rendezvous =
      !internal && data.size() > runtime_->options().eager_threshold;
  auto env = make_envelope(rank_, wdest, tag, context_, data, internal,
                           rendezvous);

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  const double alpha = cost_model().message_time(world_rank_, wdest, 0);
  const double overhead = cost_model().send_overhead();
  env->arrival_head = st.clock + alpha;
  env->byte_time =
      cost_model().message_time(world_rank_, wdest, data.size()) - alpha;
  st.stats.transport_bytes_sent += data.size();
  ++st.stats.transport_messages_sent;
  if (!internal) {
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
  }
  runtime_->deliver_locked(env);
  if (rendezvous) {
    runtime_->blocking_wait(lock, world_rank_, "Send (rendezvous)",
                            [&env] { return env->matched; });
    const double completion = std::max(st.clock, env->completion_time);
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
  } else {
    // The eager sender only pays its local injection overhead (LogP "o");
    // the wire latency is experienced by the receiver.
    st.clock += overhead;
    st.stats.sim_comm_seconds += overhead;
  }
}

Status Comm::recv_bytes(std::span<std::byte> data, int source, int tag,
                        bool internal) {
  if (source != kAnySource) validate_peer(source, "recv");
  if (!internal && tag != kAnyTag) validate_user_tag(tag, "recv");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);

  // Fast path: a matching message already arrived.
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    detail::Envelope& env = **it;
    if (!detail::filters_match(source, tag, context_, internal, env)) {
      continue;
    }
    if (env.payload.size() > data.size()) {
      std::ostringstream os;
      os << "message truncation: recv buffer holds " << data.size()
         << " bytes but rank " << env.source << " sent "
         << env.payload.size() << " bytes (tag " << env.tag << ")";
      throw MpiError(os.str());
    }
    std::copy(env.payload.begin(), env.payload.end(), data.data());
    const Status status{env.source, env.tag, env.payload.size()};
    const double completion =
        std::max({st.clock, env.arrival_head, mb.link_busy_until}) +
        env.byte_time;
    mb.link_busy_until = completion;
    env.completion_time = completion;
    env.matched = true;
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    if (!internal) {
      st.stats.p2p_bytes_received += env.payload.size();
      ++st.stats.p2p_messages_received;
    }
    mb.unexpected.erase(it);
    runtime_->condvar().notify_all();  // a rendezvous sender may be waiting
    return status;
  }

  // Slow path: post the receive and block until a sender matches it.
  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->buffer = data.data();
  req->capacity = data.size();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = internal;
  req->post_time = st.clock;
  mb.posted.push_back(req);

  runtime_->blocking_wait(lock, world_rank_, "Recv",
                          [&req] { return req->done; });
  if (!req->error.empty()) throw MpiError(req->error);
  const double completion = std::max(st.clock, req->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (!internal) {
    st.stats.p2p_bytes_received += req->status.bytes;
    ++st.stats.p2p_messages_received;
  }
  return req->status;
}

Request Comm::isend_bytes(std::span<const std::byte> data, int dest, int tag,
                          bool internal) {
  validate_peer(dest, "isend");
  if (!internal) validate_user_tag(tag, "isend");
  const int wdest = to_world(dest);
  const bool rendezvous =
      !internal && data.size() > runtime_->options().eager_threshold;
  auto env = make_envelope(rank_, wdest, tag, context_, data, internal,
                           rendezvous);

  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kSend;
  req->envelope = env;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  const double alpha = cost_model().message_time(world_rank_, wdest, 0);
  env->arrival_head = st.clock + alpha;
  env->byte_time =
      cost_model().message_time(world_rank_, wdest, data.size()) - alpha;
  st.stats.transport_bytes_sent += data.size();
  ++st.stats.transport_messages_sent;
  if (!internal) {
    st.stats.p2p_bytes_sent += data.size();
    ++st.stats.p2p_messages_sent;
  }
  runtime_->deliver_locked(env);
  // The non-blocking send itself only pays injection overhead; a rendezvous
  // Isend defers the synchronization to wait().
  st.clock += cost_model().send_overhead();
  st.stats.sim_comm_seconds += cost_model().send_overhead();
  if (!rendezvous) {
    req->done = true;
    req->completion_time = st.clock;
  }
  return Request(req);
}

Request Comm::irecv_bytes(std::span<std::byte> data, int source, int tag,
                          bool internal) {
  if (source != kAnySource) validate_peer(source, "irecv");
  if (!internal && tag != kAnyTag) validate_user_tag(tag, "irecv");

  auto req = std::make_shared<detail::RequestState>();
  req->kind = detail::RequestState::Kind::kRecv;
  req->buffer = data.data();
  req->capacity = data.size();
  req->source_filter = source;
  req->tag_filter = tag;
  req->context = context_;
  req->internal = internal;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  req->post_time = st.clock;
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    detail::Envelope& env = **it;
    if (!detail::filters_match(source, tag, context_, internal, env)) {
      continue;
    }
    if (env.payload.size() > req->capacity) {
      std::ostringstream os;
      os << "message truncation: irecv buffer holds " << req->capacity
         << " bytes but rank " << env.source << " sent "
         << env.payload.size() << " bytes (tag " << env.tag << ")";
      req->error = os.str();
    } else {
      std::copy(env.payload.begin(), env.payload.end(), req->buffer);
    }
    req->status = Status{env.source, env.tag, env.payload.size()};
    const double completion =
        std::max({req->post_time, env.arrival_head, mb.link_busy_until}) +
        env.byte_time;
    mb.link_busy_until = completion;
    req->completion_time = completion;
    env.completion_time = completion;
    env.matched = true;
    req->done = true;
    mb.unexpected.erase(it);
    runtime_->condvar().notify_all();
    return Request(req);
  }
  mb.posted.push_back(req);
  return Request(req);
}

void Comm::trace_end(Primitive op, int peer, int tag, std::size_t bytes,
                     double t0) {
  if (!runtime_->options().record_trace) return;
  // The trace vector belongs to this rank's RankState and is only touched
  // by the owner thread, so no lock is needed.
  state().trace.push_back(
      TraceEvent{world_rank_, op, peer, tag, bytes, t0, state().clock});
}

Status Comm::wait(Request& request) {
  count_call(Primitive::kWait);
  const double t0 = wtime();
  const Status st = wait_nocount(request);
  trace_end(Primitive::kWait, st.source, st.tag, st.bytes, t0);
  return st;
}

Status Comm::wait_nocount(Request& request) {
  if (!request.valid()) throw MpiError("wait on an empty Request");
  auto rs = request.state_;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  if (rs->kind == detail::RequestState::Kind::kSend) {
    const auto& env = rs->envelope;
    if (env->rendezvous && !rs->done) {
      runtime_->blocking_wait(lock, world_rank_, "Wait (Isend rendezvous)",
                              [&env] { return env->matched; });
      rs->done = true;
      rs->completion_time = env->completion_time;
    }
    const double completion = std::max(st.clock, rs->completion_time);
    st.stats.sim_comm_seconds += completion - st.clock;
    st.clock = completion;
    return Status{};
  }

  runtime_->blocking_wait(lock, world_rank_, "Wait (Irecv)",
                          [&rs] { return rs->done; });
  if (!rs->error.empty()) throw MpiError(rs->error);
  const double completion = std::max(st.clock, rs->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (!rs->internal && !rs->consumed) {
    st.stats.p2p_bytes_received += rs->status.bytes;
    ++st.stats.p2p_messages_received;
  }
  rs->consumed = true;
  return rs->status;
}

std::size_t Comm::wait_any(std::span<Request> requests, Status* status) {
  count_call(Primitive::kWait);
  if (requests.empty()) throw MpiError("wait_any on an empty request list");
  for (const Request& r : requests) {
    if (!r.valid()) throw MpiError("wait_any on an empty Request");
  }
  auto request_done = [](const Request& r) {
    const auto& rs = r.state_;
    return rs->kind == detail::RequestState::Kind::kSend
               ? (rs->done || rs->envelope->matched)
               : rs->done;
  };

  std::size_t which = requests.size();
  {
    std::unique_lock<std::mutex> lock(runtime_->mutex());
    runtime_->blocking_wait(lock, world_rank_, "Waitany", [&] {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (request_done(requests[i])) {
          which = i;
          return true;
        }
      }
      return false;
    });
  }
  // Complete the found request (adopts clocks/counters idempotently).
  const Status st = wait_nocount(requests[which]);
  if (status != nullptr) *status = st;
  return which;
}

bool Comm::test(Request& request, Status* status) {
  if (!request.valid()) throw MpiError("test on an empty Request");
  auto rs = request.state_;

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  const bool done = rs->kind == detail::RequestState::Kind::kSend
                        ? (rs->done || rs->envelope->matched)
                        : rs->done;
  if (!done) return false;
  if (!rs->error.empty()) throw MpiError(rs->error);
  if (rs->kind == detail::RequestState::Kind::kSend &&
      rs->envelope->rendezvous && !rs->done) {
    rs->done = true;
    rs->completion_time = rs->envelope->completion_time;
  }
  const double completion = std::max(st.clock, rs->completion_time);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  if (rs->kind == detail::RequestState::Kind::kRecv && !rs->internal &&
      !rs->consumed) {
    st.stats.p2p_bytes_received += rs->status.bytes;
    ++st.stats.p2p_messages_received;
  }
  rs->consumed = true;
  if (status != nullptr) *status = rs->status;
  return true;
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid()) wait(r);
  }
}

Status Comm::probe(int source, int tag) {
  count_call(Primitive::kProbe);
  const double t_begin = wtime();
  if (source != kAnySource) validate_peer(source, "probe");
  if (tag != kAnyTag) validate_user_tag(tag, "probe");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::RankState& st = state();
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  const detail::Envelope* found = nullptr;
  auto find_match = [&]() -> bool {
    for (const auto& env : mb.unexpected) {
      if (detail::filters_match(source, tag, context_, /*internal=*/false,
                                *env)) {
        found = env.get();
        return true;
      }
    }
    return false;
  };
  runtime_->blocking_wait(lock, world_rank_, "Probe", find_match);
  // Probing reveals the envelope metadata once the message head arrives;
  // the payload itself is ingested by the subsequent receive.
  const double completion = std::max(st.clock, found->arrival_head);
  st.stats.sim_comm_seconds += completion - st.clock;
  st.clock = completion;
  lock.unlock();
  trace_end(Primitive::kProbe, found->source, found->tag,
            found->payload.size(), t_begin);
  return Status{found->source, found->tag, found->payload.size()};
}

std::optional<Status> Comm::iprobe(int source, int tag) {
  if (source != kAnySource) validate_peer(source, "iprobe");
  if (tag != kAnyTag) validate_user_tag(tag, "iprobe");

  std::unique_lock<std::mutex> lock(runtime_->mutex());
  detail::Mailbox& mb = runtime_->mailbox(world_rank_);
  for (const auto& env : mb.unexpected) {
    if (detail::filters_match(source, tag, context_, /*internal=*/false,
                              *env)) {
      return Status{env->source, env->tag, env->payload.size()};
    }
  }
  return std::nullopt;
}

}  // namespace dipdc::minimpi
