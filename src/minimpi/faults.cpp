#include "minimpi/faults.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/error.hpp"

namespace dipdc::minimpi {

namespace {

[[noreturn]] void bad_clause(const std::string& clause, const char* why) {
  throw MpiError("fault spec: bad clause '" + clause + "' (" + why + ")");
}

/// Strict full-string double parse; throws MpiError naming the clause.
double parse_num(const std::string& clause, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) bad_clause(clause, "trailing characters");
    return v;
  } catch (const MpiError&) {
    throw;
  } catch (const std::exception&) {
    bad_clause(clause, "expected a number");
  }
}

double parse_prob(const std::string& clause, const std::string& text) {
  const double p = parse_num(clause, text);
  if (p < 0.0 || p > 1.0) bad_clause(clause, "probability outside [0, 1]");
  return p;
}

long parse_long(const std::string& clause, const std::string& text) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(text, &pos);
    if (pos != text.size()) bad_clause(clause, "trailing characters");
    return v;
  } catch (const MpiError&) {
    throw;
  } catch (const std::exception&) {
    bad_clause(clause, "expected an integer");
  }
}

}  // namespace

void parse_fault_spec(const std::string& spec, FaultOptions& faults,
                      ReliableOptions& reliable) {
  std::vector<std::string> clauses;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) clauses.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (clauses.empty()) {
    throw MpiError("fault spec: empty specification");
  }

  for (const std::string& clause : clauses) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      bad_clause(clause, "expected key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);

    if (key == "drop") {
      faults.drop_prob = parse_prob(clause, value);
    } else if (key == "dup") {
      faults.dup_prob = parse_prob(clause, value);
    } else if (key == "delay") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        faults.delay_prob = parse_prob(clause, value);
      } else {
        faults.delay_prob = parse_prob(clause, value.substr(0, colon));
        faults.delay_seconds = parse_num(clause, value.substr(colon + 1));
        if (faults.delay_seconds < 0.0) {
          bad_clause(clause, "delay seconds must be non-negative");
        }
      }
    } else if (key == "kill") {
      const std::size_t at = value.find('@');
      if (at == std::string::npos) {
        faults.kill_rank = static_cast<int>(parse_long(clause, value));
        faults.kill_at_call = 1;
      } else {
        faults.kill_rank =
            static_cast<int>(parse_long(clause, value.substr(0, at)));
        const long n = parse_long(clause, value.substr(at + 1));
        if (n <= 0) bad_clause(clause, "call number must be positive");
        faults.kill_at_call = static_cast<std::uint64_t>(n);
      }
      if (faults.kill_rank < 0) bad_clause(clause, "rank must be >= 0");
    } else if (key == "retries") {
      const long k = parse_long(clause, value);
      if (k < 0) bad_clause(clause, "retries must be >= 0");
      reliable.max_retries = static_cast<int>(k);
    } else if (key == "timeout") {
      reliable.timeout_seconds = parse_num(clause, value);
      if (reliable.timeout_seconds < 0.0) {
        bad_clause(clause, "timeout must be non-negative");
      }
    } else {
      bad_clause(clause, "unknown key (drop|dup|delay|kill|retries|timeout)");
    }
  }
}

namespace detail {

FaultDecision draw_fault(const FaultOptions& plan, support::Xoshiro256& rng) {
  // One uniform per fault class, always, so the stream position after each
  // message is independent of which faults the plan arms.
  const double u_drop = rng.uniform();
  const double u_dup = rng.uniform();
  const double u_delay = rng.uniform();
  FaultDecision d;
  d.drop = u_drop < plan.drop_prob;
  d.duplicate = u_dup < plan.dup_prob;
  if (u_delay < plan.delay_prob) d.delay = plan.delay_seconds;
  return d;
}

}  // namespace detail

}  // namespace dipdc::minimpi
