// Reduction operators for Reduce / Allreduce / Scan.
#pragma once

#include <algorithm>

namespace dipdc::minimpi::ops {

struct Sum {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

struct Prod {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a * b;
  }
};

struct Min {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

struct Max {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

struct LogicalAnd {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a && b);
  }
};

struct LogicalOr {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a || b);
  }
};

}  // namespace dipdc::minimpi::ops
