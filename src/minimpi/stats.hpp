// Per-rank instrumentation of communication behaviour.
//
// The modules ask students to "reason about performance based on
// communication patterns and volumes" (learning outcome 13); these counters
// are the measured ground truth the benches print, and they also verify the
// paper's Table II (which primitives each module uses).
#pragma once

#include <array>
#include <cstdint>

#include "minimpi/types.hpp"

namespace dipdc::minimpi {

struct CommStats {
  /// User-level primitive invocation counts.
  std::array<std::uint64_t, kPrimitiveCount> calls{};

  /// Point-to-point payload bytes / messages from user-level Send/Isend
  /// (and the matching receives).
  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t p2p_messages_sent = 0;
  std::uint64_t p2p_bytes_received = 0;
  std::uint64_t p2p_messages_received = 0;

  /// Transport-level traffic including collective-internal messages; this
  /// is the honest "wire volume" measure used in the Module 5 comparison of
  /// the two k-means communication strategies.
  std::uint64_t transport_bytes_sent = 0;
  std::uint64_t transport_messages_sent = 0;

  /// Simulated time (seconds) spent in compute kernels vs. blocked in or
  /// advancing through communication.
  double sim_compute_seconds = 0.0;
  double sim_comm_seconds = 0.0;

  [[nodiscard]] std::uint64_t calls_to(Primitive p) const {
    return calls[static_cast<std::size_t>(p)];
  }

  /// Element-wise sum, used to aggregate across ranks.
  CommStats& operator+=(const CommStats& other);
};

}  // namespace dipdc::minimpi
