// Per-rank instrumentation of communication behaviour.
//
// The modules ask students to "reason about performance based on
// communication patterns and volumes" (learning outcome 13); these counters
// are the measured ground truth the benches print, and they also verify the
// paper's Table II (which primitives each module uses).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "minimpi/types.hpp"
#include "obs/metrics.hpp"

namespace dipdc::minimpi {

struct RunResult;

struct CommStats {
  /// User-level primitive invocation counts.
  std::array<std::uint64_t, kPrimitiveCount> calls{};

  /// Point-to-point payload bytes / messages from user-level Send/Isend
  /// (and the matching receives).
  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t p2p_messages_sent = 0;
  std::uint64_t p2p_bytes_received = 0;
  std::uint64_t p2p_messages_received = 0;

  /// Transport-level traffic including collective-internal messages; this
  /// is the honest "wire volume" measure used in the Module 5 comparison of
  /// the two k-means communication strategies.
  std::uint64_t transport_bytes_sent = 0;
  std::uint64_t transport_messages_sent = 0;

  // ---- Transport fast-path counters (real-world behaviour; none of these
  // affect simulated results) ----------------------------------------------

  /// Payload buffer pool reuse vs. fresh allocations.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Messages whose payload fit in the envelope's inline storage.
  std::uint64_t inline_messages = 0;
  /// Payload bytes handed off without a memcpy (borrowed rendezvous
  /// buffers, shared staging buffers, adopted receives) vs. memcpy'd.
  std::uint64_t zero_copy_bytes = 0;
  std::uint64_t copied_bytes = 0;
  /// Rendezvous sends that actually blocked waiting for the receiver (as
  /// opposed to matching an already-posted receive immediately).
  std::uint64_t rendezvous_stalls = 0;

  /// Envelopes serialized through a non-shared-memory transport backend
  /// (shm/tcp), and the wire bytes those frames carried (header included).
  /// Always zero on the threads backend, which skips the seam entirely.
  std::uint64_t backend_frames = 0;
  std::uint64_t backend_wire_bytes = 0;

  // ---- Fault injection and reliable delivery (all zero unless a fault
  // plan is armed or send_reliable is used) --------------------------------

  /// Injected faults, counted on the sending rank.
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t fault_delays = 0;
  /// send_reliable retransmissions (beyond the first attempt).
  std::uint64_t reliable_retries = 0;
  /// Acknowledgement waits that expired (each triggers a retransmission or,
  /// once the budget is exhausted, an MpiError).
  std::uint64_t reliable_timeouts = 0;
  /// Duplicate frames filtered out by recv_reliable (injected duplicates
  /// and spurious retransmissions alike).
  std::uint64_t reliable_duplicates = 0;

  /// Collective algorithm selection, one count per participating rank per
  /// invocation (index by CollectiveAlgo).
  std::array<std::uint64_t, kCollectiveAlgoCount> algo_uses{};

  /// Simulated time (seconds) spent in compute kernels vs. blocked in or
  /// advancing through communication vs. explicitly idled via
  /// Comm::sim_advance.
  double sim_compute_seconds = 0.0;
  double sim_comm_seconds = 0.0;
  double sim_idle_seconds = 0.0;

  [[nodiscard]] std::uint64_t calls_to(Primitive p) const {
    return calls[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::uint64_t algo_count(CollectiveAlgo a) const {
    return algo_uses[static_cast<std::size_t>(a)];
  }

  /// Element-wise sum, used to aggregate across ranks.
  CommStats& operator+=(const CommStats& other);
};

/// Multi-line human-readable report of the transport fast-path counters
/// and collective algorithm selection (zero-count rows are omitted).
std::string transport_report(const CommStats& stats);

/// Registers the nonzero CommStats counters into `reg` under stable dotted
/// names: calls.<primitive>, p2p.*, transport.*, pool.*, fault.*,
/// reliable.*, algo.<name>, and the time.compute/comm/idle gauges.
void register_comm_stats(obs::Registry& reg, const CommStats& stats);

/// One registry for a whole run: the summed CommStats of every rank, the
/// simulated makespan, a message-size histogram, and per-phase timers
/// (phase.<name>.seconds / .calls) aggregated from the recorded trace.
[[nodiscard]] obs::Registry build_metrics(const RunResult& result);

}  // namespace dipdc::minimpi
